//! Stopping criteria and solve reporting shared by all Krylov solvers.
//!
//! The paper's experiment protocol (§IV-D): right-hand side of all
//! ones, zero initial guess, stop when the relative residual norm drops
//! by six orders of magnitude, cap at 10,000 iterations.

use std::time::Duration;

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct SolveParams {
    /// Relative residual reduction target (paper: `1e-6`).
    pub tol: f64,
    /// Iteration cap (paper: 10,000).
    pub max_iters: usize,
    /// Record the residual history (costs one `Vec` push per iteration).
    pub record_history: bool,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            tol: 1e-6,
            max_iters: 10_000,
            record_history: false,
        }
    }
}

impl SolveParams {
    /// Paper protocol with a custom iteration cap.
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    /// Paper protocol with a custom tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Enable residual-history recording.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }
}

/// Why a solve ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Relative residual reached the target.
    Converged,
    /// Iteration cap hit.
    MaxIterations,
    /// A breakdown in the short recurrences (division by ~zero).
    Breakdown,
    /// Residual or iterate became non-finite.
    Diverged,
}

/// The outcome of one linear solve.
#[derive(Clone, Debug)]
pub struct SolveResult<T> {
    /// Final iterate.
    pub x: Vec<T>,
    /// Iterations performed (counted as preconditioned matrix-vector
    /// products, the convention MAGMA-sparse reports).
    pub iterations: usize,
    /// Final relative residual (`||b - A x|| / ||b||`, true residual).
    pub final_relres: f64,
    /// Why the solver stopped.
    pub reason: StopReason,
    /// Wall-clock time of the iteration loop.
    pub solve_time: Duration,
    /// Residual-norm history (empty unless requested).
    pub history: Vec<f64>,
}

impl<T> SolveResult<T> {
    /// `true` if the target tolerance was met.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let p = SolveParams::default();
        assert_eq!(p.tol, 1e-6);
        assert_eq!(p.max_iters, 10_000);
        assert!(!p.record_history);
    }

    #[test]
    fn builders() {
        let p = SolveParams::default()
            .with_tol(1e-8)
            .with_max_iters(50)
            .with_history();
        assert_eq!(p.tol, 1e-8);
        assert_eq!(p.max_iters, 50);
        assert!(p.record_history);
    }

    #[test]
    fn result_converged_flag() {
        let r = SolveResult::<f64> {
            x: vec![],
            iterations: 3,
            final_relres: 1e-9,
            reason: StopReason::Converged,
            solve_time: Duration::ZERO,
            history: vec![],
        };
        assert!(r.converged());
    }
}
