//! Stopping criteria and solve reporting shared by all Krylov solvers.
//!
//! The paper's experiment protocol (§IV-D): right-hand side of all
//! ones, zero initial guess, stop when the relative residual norm drops
//! by six orders of magnitude, cap at 10,000 iterations.
//!
//! Beyond the paper protocol, every solver reports *why* it stopped
//! with enough resolution for a driver to react: short-recurrence
//! breakdowns, non-finite residuals (a faulted preconditioner or RHS)
//! and stagnation each get their own [`StopReason`], so a run can never
//! silently burn the whole iteration budget on a solve that broke down
//! at iteration three.

use std::time::Duration;

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct SolveParams {
    /// Relative residual reduction target (paper: `1e-6`).
    pub tol: f64,
    /// Iteration cap (paper: 10,000).
    pub max_iters: usize,
    /// Record the residual history (costs one `Vec` push per iteration).
    pub record_history: bool,
    /// Stagnation window: stop with [`StopReason::Stagnated`] when the
    /// best residual norm has not improved by at least
    /// [`SolveParams::stagnation_rtol`] (relative) over this many
    /// consecutive iterations. `0` disables the check.
    pub stagnation_window: usize,
    /// Minimum relative improvement of the best residual norm that
    /// resets the stagnation window.
    pub stagnation_rtol: f64,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            tol: 1e-6,
            max_iters: 10_000,
            record_history: false,
            stagnation_window: 0,
            stagnation_rtol: 1e-8,
        }
    }
}

impl SolveParams {
    /// Paper protocol with a custom iteration cap.
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    /// Paper protocol with a custom tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Enable residual-history recording.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Enable stagnation detection over a window of `iters` iterations.
    pub fn with_stagnation_window(mut self, iters: usize) -> Self {
        self.stagnation_window = iters;
        self
    }
}

/// Incremental stagnation detector: feed it every residual norm; it
/// trips once the best norm has not improved (relatively) for a full
/// window of iterations.
#[derive(Clone, Debug)]
pub struct StagnationGuard {
    window: usize,
    rtol: f64,
    best: f64,
    since_improvement: usize,
}

impl StagnationGuard {
    /// Guard configured from the solve parameters (inactive when the
    /// window is zero).
    pub fn new(params: &SolveParams) -> Self {
        StagnationGuard {
            window: params.stagnation_window,
            rtol: params.stagnation_rtol,
            best: f64::INFINITY,
            since_improvement: 0,
        }
    }

    /// Record one residual norm; returns `true` when the solve has
    /// stagnated and should stop.
    pub fn observe(&mut self, normr: f64) -> bool {
        if self.window == 0 {
            return false;
        }
        if normr < self.best * (1.0 - self.rtol) {
            self.best = normr;
            self.since_improvement = 0;
            return false;
        }
        self.since_improvement += 1;
        self.since_improvement >= self.window
    }
}

/// Why a solve ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Relative residual reached the target.
    Converged,
    /// Iteration cap hit.
    MaxIterations,
    /// A breakdown in the short recurrences (division by ~zero).
    Breakdown,
    /// Residual or iterate became non-finite (NaN/Inf).
    NonFinite,
    /// The residual norm stopped improving for a full stagnation
    /// window (see [`SolveParams::stagnation_window`]).
    Stagnated,
}

impl StopReason {
    /// `true` for the abnormal endings a robust driver should react to
    /// (restart or fall back): breakdown, non-finite, stagnation.
    pub fn is_abnormal(self) -> bool {
        matches!(
            self,
            StopReason::Breakdown | StopReason::NonFinite | StopReason::Stagnated
        )
    }

    /// Stable label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::MaxIterations => "max_iterations",
            StopReason::Breakdown => "breakdown",
            StopReason::NonFinite => "non_finite",
            StopReason::Stagnated => "stagnated",
        }
    }
}

impl core::fmt::Display for StopReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of one linear solve.
#[derive(Clone, Debug)]
pub struct SolveResult<T> {
    /// Final iterate.
    pub x: Vec<T>,
    /// Iterations performed (counted as preconditioned matrix-vector
    /// products, the convention MAGMA-sparse reports).
    pub iterations: usize,
    /// Final relative residual (`||b - A x|| / ||b||`, true residual).
    pub final_relres: f64,
    /// Why the solver stopped.
    pub reason: StopReason,
    /// Wall-clock time of the iteration loop.
    pub solve_time: Duration,
    /// Residual-norm history (empty unless requested).
    pub history: Vec<f64>,
}

impl<T> SolveResult<T> {
    /// `true` if the target tolerance was met.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let p = SolveParams::default();
        assert_eq!(p.tol, 1e-6);
        assert_eq!(p.max_iters, 10_000);
        assert!(!p.record_history);
        assert_eq!(p.stagnation_window, 0, "stagnation check is opt-in");
    }

    #[test]
    fn builders() {
        let p = SolveParams::default()
            .with_tol(1e-8)
            .with_max_iters(50)
            .with_history()
            .with_stagnation_window(25);
        assert_eq!(p.tol, 1e-8);
        assert_eq!(p.max_iters, 50);
        assert!(p.record_history);
        assert_eq!(p.stagnation_window, 25);
    }

    #[test]
    fn result_converged_flag() {
        let r = SolveResult::<f64> {
            x: vec![],
            iterations: 3,
            final_relres: 1e-9,
            reason: StopReason::Converged,
            solve_time: Duration::ZERO,
            history: vec![],
        };
        assert!(r.converged());
    }

    #[test]
    fn abnormal_reasons_are_classified() {
        assert!(StopReason::Breakdown.is_abnormal());
        assert!(StopReason::NonFinite.is_abnormal());
        assert!(StopReason::Stagnated.is_abnormal());
        assert!(!StopReason::Converged.is_abnormal());
        assert!(!StopReason::MaxIterations.is_abnormal());
    }

    #[test]
    fn stagnation_guard_trips_after_flat_window() {
        let p = SolveParams::default().with_stagnation_window(3);
        let mut g = StagnationGuard::new(&p);
        assert!(!g.observe(1.0));
        assert!(!g.observe(0.5)); // improving
        assert!(!g.observe(0.5));
        assert!(!g.observe(0.5000001));
        assert!(g.observe(0.4999999999), "3rd flat iteration trips");
        // a real improvement resets the counter
        let mut g = StagnationGuard::new(&p);
        assert!(!g.observe(1.0));
        assert!(!g.observe(1.0));
        assert!(!g.observe(1.0));
        // window would trip here, but improvement arrives first
        let mut g2 = StagnationGuard::new(&p);
        g2.observe(1.0);
        g2.observe(1.0);
        assert!(!g2.observe(0.2));
        assert!(!g2.observe(0.2));
    }

    #[test]
    fn zero_window_never_stagnates() {
        let mut g = StagnationGuard::new(&SolveParams::default());
        for _ in 0..10_000 {
            assert!(!g.observe(1.0));
        }
    }
}
