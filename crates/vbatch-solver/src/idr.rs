//! IDR(s) — the Induced Dimension Reduction method with
//! biorthogonalization (van Gijzen & Sonneveld, TOMS 2011), the Krylov
//! solver the paper's block-Jacobi evaluation drives (IDR(4), §IV-D).
//!
//! The implementation follows the `idrs` reference algorithm: each
//! cycle performs `s` preconditioned matvecs inside the `G_j` space plus
//! one dimension-reduction step, maintaining `P^T G` lower triangular
//! through explicit biorthogonalization. The shadow space `P` is a
//! seeded, orthonormalized random `n x s` block, so runs are
//! reproducible.
//!
//! All iteration vectors come from a [`KrylovWorkspace`]; the main loop
//! performs no heap allocations — every temporary is checked out once
//! before the loop and reused in place, and `mem::swap` replaces the
//! former move-assignments into the `G`/`U` direction blocks.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::control::{SolveParams, SolveResult, StagnationGuard, StopReason};
use crate::workspace::KrylovWorkspace;
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_rt::SmallRng;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Angle safeguard for the omega computation ("maintaining the
/// convergence" constant of van Gijzen's implementation).
const KAPPA: f64 = 0.7;

/// Minimal-residual smoothing state (van Gijzen's "IDR(s) with
/// smoothing"): tracks an auxiliary iterate whose residual norm
/// decreases monotonically, taming IDR's erratic convergence curve.
struct Smoother<T> {
    xs: Vec<T>,
    rs: Vec<T>,
}

impl<T: Scalar> Smoother<T> {
    fn checkout(ws: &mut KrylovWorkspace<T>, x: &[T], r: &[T]) -> Self {
        let mut xs = ws.take(x.len());
        xs.copy_from_slice(x);
        let mut rs = ws.take(r.len());
        rs.copy_from_slice(r);
        Smoother { xs, rs }
    }

    /// Fold the latest (x, r) pair in; returns the smoothed residual norm.
    fn update(&mut self, x: &[T], r: &[T]) -> f64 {
        // s = rs - r; eta = (rs . s)/(s . s)
        let mut ss = T::ZERO;
        let mut rss = T::ZERO;
        for (rsi, ri) in self.rs.iter().zip(r) {
            let si = *rsi - *ri;
            ss += si * si;
            rss += *rsi * si;
        }
        if ss > T::ZERO {
            let eta = rss / ss;
            for ((xsi, &xi), (rsi, &ri)) in self.xs.iter_mut().zip(x).zip(self.rs.iter_mut().zip(r))
            {
                *xsi = *xsi - eta * (*xsi - xi);
                *rsi = *rsi - eta * (*rsi - ri);
            }
        }
        nrm2(&self.rs).to_f64()
    }
}

/// Solve `A x = b` with preconditioned IDR(s).
pub fn idr<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    let mut ws = KrylovWorkspace::new();
    idr_impl(a, b, s, m, params, false, &mut ws)
}

/// [`idr`] drawing all iteration vectors from a caller-owned
/// [`KrylovWorkspace`], so repeated solves (e.g. a time-stepping loop)
/// reuse buffers instead of re-allocating. Results are bitwise
/// identical to [`idr`].
pub fn idr_with_workspace<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    m: &M,
    params: &SolveParams,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    idr_impl(a, b, s, m, params, false, ws)
}

/// Solve `A x = b` with preconditioned IDR(s) plus minimal-residual
/// smoothing — the convergence curve of the returned iterate decreases
/// monotonically (an extension over the paper's plain IDR(4) setup).
pub fn idr_smoothed<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    let mut ws = KrylovWorkspace::new();
    idr_impl(a, b, s, m, params, true, &mut ws)
}

/// [`idr_smoothed`] drawing all iteration vectors from a caller-owned
/// [`KrylovWorkspace`].
pub fn idr_smoothed_with_workspace<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    m: &M,
    params: &SolveParams,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    idr_impl(a, b, s, m, params, true, ws)
}

fn idr_impl<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    m: &M,
    params: &SolveParams,
    smoothing: bool,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    assert!(s >= 1, "IDR needs s >= 1");
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    assert_eq!(m.dim(), a.nrows());
    let n = a.nrows();
    let _span = vbatch_trace::span!("solver.idr", n);
    let start = Instant::now();

    let normb = nrm2(b).to_f64();
    let mut history = Vec::with_capacity(if params.record_history {
        params.max_iters + 2
    } else {
        0
    });
    let finish =
        |x: Vec<T>, iterations: usize, reason: StopReason, history: Vec<f64>, start: Instant| {
            let relres = if normb == 0.0 {
                0.0
            } else {
                nrm2(&residual(a, &x, b)).to_f64() / normb
            };
            SolveResult {
                x,
                iterations,
                final_relres: relres,
                reason,
                solve_time: start.elapsed(),
                history,
            }
        };
    if normb == 0.0 {
        return finish(ws.take(n), 0, StopReason::Converged, history, start);
    }
    if !normb.is_finite() {
        // corrupted right-hand side: report it, don't iterate on NaN
        return finish(ws.take(n), 0, StopReason::NonFinite, history, start);
    }
    let tolb = params.tol * normb;

    let mut x = ws.take(n);
    let mut r = ws.take(n);
    r.copy_from_slice(b);
    let mut normr = nrm2(&r).to_f64();
    if params.record_history {
        history.push(normr / normb);
    }
    let mut stagnation = StagnationGuard::new(params);
    let mut smoother = if smoothing {
        Some(Smoother::checkout(ws, &x, &r))
    } else {
        None
    };

    // shadow space P: s orthonormalized random vectors (seeded)
    let p = shadow_space::<T>(n, s, 0xD1E5_EED5, ws);

    let mut g: Vec<Vec<T>> = (0..s).map(|_| ws.take(n)).collect();
    let mut u: Vec<Vec<T>> = (0..s).map(|_| ws.take(n)).collect();
    // M_s = P^T G, kept lower triangular (flat s*s, row-major); starts
    // as identity
    let mut ms = ws.take(s * s);
    for k in 0..s {
        ms[k * s + k] = T::ONE;
    }
    // per-iteration temporaries, checked out once: the loop below never
    // touches the allocator
    let mut f = ws.take(s);
    let mut c = ws.take(s);
    let mut v = ws.take(n);
    let mut uk = ws.take(n);
    let mut gk = ws.take(n);
    let mut t = ws.take(n);
    let mut om = T::ONE;
    let mut iter = 0usize;
    let mut stop: Option<StopReason> = None;

    'cycles: while normr > tolb && iter < params.max_iters {
        // f = P^T r
        for (i, fi) in f.iter_mut().enumerate() {
            *fi = dot(&p[i], &r);
        }
        for k in 0..s {
            let _step = vbatch_trace::span!("idr.step", iter);
            vbatch_trace::counter!("solver.iterations", 1);
            // solve the lower-triangular system Ms[k.., k..] c = f[k..];
            // every c entry is written before it is read, so the reused
            // buffer needs no clearing
            for i in k..s {
                let mut acc = f[i];
                for j in k..i {
                    acc -= ms[i * s + j] * c[j - k];
                }
                let d = ms[i * s + i];
                if d == T::ZERO || !d.is_finite() {
                    stop = Some(StopReason::Breakdown);
                    break 'cycles;
                }
                c[i - k] = acc / d;
            }
            // v = r - sum c_i g_i ; then precondition
            v.copy_from_slice(&r);
            for i in k..s {
                axpy(-c[i - k], &g[i], &mut v);
            }
            m.apply_inplace(&mut v);
            // u_k = om*v + sum c_i u_i
            uk.copy_from_slice(&v);
            vbatch_sparse::scal(om, &mut uk);
            for i in k..s {
                axpy(c[i - k], &u[i], &mut uk);
            }
            // g_k = A u_k (spmv overwrites gk row by row)
            spmv(a, &uk, &mut gk);
            iter += 1;
            // biorthogonalize against p_0..p_{k-1}
            for i in 0..k {
                let alpha = dot(&p[i], &gk) / ms[i * s + i];
                axpy(-alpha, &g[i], &mut gk);
                axpy(-alpha, &u[i], &mut uk);
            }
            // refresh column k of Ms
            for i in k..s {
                ms[i * s + k] = dot(&p[i], &gk);
            }
            let mkk = ms[k * s + k];
            if mkk == T::ZERO || !mkk.is_finite() {
                stop = Some(StopReason::Breakdown);
                break 'cycles;
            }
            let beta = f[k] / mkk;
            axpy(-beta, &gk, &mut r);
            axpy(beta, &uk, &mut x);
            normr = nrm2(&r).to_f64();
            if let Some(sm) = smoother.as_mut() {
                normr = sm.update(&x, &r);
            }
            if params.record_history {
                history.push(normr / normb);
            }
            if !normr.is_finite() {
                stop = Some(StopReason::NonFinite);
                break 'cycles;
            }
            if normr > tolb && stagnation.observe(normr) {
                stop = Some(StopReason::Stagnated);
                break 'cycles;
            }
            std::mem::swap(&mut g[k], &mut gk);
            std::mem::swap(&mut u[k], &mut uk);
            if normr <= tolb || iter >= params.max_iters {
                break;
            }
            // update f for the remaining steps of this cycle
            for (i, fi) in f.iter_mut().enumerate() {
                if i <= k {
                    *fi = T::ZERO;
                } else {
                    *fi -= beta * ms[i * s + k];
                }
            }
        }
        if normr <= tolb || iter >= params.max_iters {
            break;
        }
        // dimension-reduction step: enter G_{j+1}
        let _step = vbatch_trace::span!("idr.reduce", iter);
        vbatch_trace::counter!("solver.iterations", 1);
        v.copy_from_slice(&r);
        m.apply_inplace(&mut v);
        spmv(a, &v, &mut t);
        iter += 1;
        let nt = nrm2(&t);
        let nr = nrm2(&r);
        let ts = dot(&t, &r);
        if nt == T::ZERO {
            stop = Some(StopReason::Breakdown);
            break;
        }
        let rho = (ts.abs() / (nt * nr)).to_f64();
        om = ts / (nt * nt);
        if rho < KAPPA && rho > 0.0 {
            om *= T::from_f64(KAPPA / rho);
        }
        if om == T::ZERO || !om.is_finite() {
            stop = Some(StopReason::Breakdown);
            break;
        }
        axpy(om, &v, &mut x);
        axpy(-om, &t, &mut r);
        normr = nrm2(&r).to_f64();
        if let Some(sm) = smoother.as_mut() {
            normr = sm.update(&x, &r);
        }
        if params.record_history {
            history.push(normr / normb);
        }
        if !normr.is_finite() {
            stop = Some(StopReason::NonFinite);
            break;
        }
        if normr > tolb && stagnation.observe(normr) {
            stop = Some(StopReason::Stagnated);
            break;
        }
    }

    let aborted = stop.is_some();
    let reason = stop.unwrap_or(if normr <= tolb {
        StopReason::Converged
    } else {
        StopReason::MaxIterations
    });
    // single exit point: recycle everything except the returned iterate
    ws.recycle_all([r, f, c, v, uk, gk, t, ms]);
    ws.recycle_all(p);
    ws.recycle_all(g);
    ws.recycle_all(u);
    let x_final = match smoother {
        // abnormal stops return the raw iterate, matching the
        // pre-workspace behavior of the early-return paths
        Some(sm) if !aborted => {
            ws.recycle(x);
            ws.recycle(sm.rs);
            sm.xs
        }
        Some(sm) => {
            ws.recycle(sm.xs);
            ws.recycle(sm.rs);
            x
        }
        None => x,
    };
    finish(x_final, iter, reason, history, start)
}

/// Build an orthonormal shadow block (modified Gram-Schmidt on seeded
/// Gaussian-ish vectors), drawing the vectors from the workspace.
fn shadow_space<T: Scalar>(
    n: usize,
    s: usize,
    seed: u64,
    ws: &mut KrylovWorkspace<T>,
) -> Vec<Vec<T>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p: Vec<Vec<T>> = Vec::with_capacity(s);
    for _ in 0..s {
        let mut v = ws.take(n);
        for vi in v.iter_mut() {
            *vi = T::from_f64(rng.gen_range(-1.0..1.0));
        }
        for q in &p {
            let alpha = dot(q, &v);
            axpy(-alpha, q, &mut v);
        }
        let nv = nrm2(&v);
        if nv > T::ZERO {
            vbatch_sparse::scal(T::ONE / nv, &mut v);
        }
        p.push(v);
    }
    p
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_precond::{Identity, Jacobi};
    use vbatch_sparse::gen::laplace::{convection_diffusion_2d, laplace_2d};

    #[test]
    fn solves_laplacian_unpreconditioned() {
        let a = laplace_2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let r = idr(&a, &b, 4, &Identity::new(100), &SolveParams::default());
        assert!(r.converged(), "{:?}", r.reason);
        assert!(r.final_relres < 1e-6);
        assert!(r.iterations > 0);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion_2d::<f64>(12, 12, 1.0);
        let b = vec![1.0; 144];
        let r = idr(&a, &b, 4, &Identity::new(144), &SolveParams::default());
        assert!(r.converged());
        // verify the true residual independently
        let res = residual(&a, &r.x, &b);
        assert!(nrm2(&res) / nrm2(&b) < 1e-6);
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        let a = {
            // badly scaled diagonal: Jacobi should help a lot
            let base = laplace_2d::<f64>(12, 12);
            let mut coo = vbatch_sparse::CooMatrix::new(144, 144);
            for r in 0..144 {
                let scale = 1.0 + (r % 10) as f64 * 10.0;
                for (c, v) in base.row_cols(r).iter().zip(base.row_vals(r)) {
                    coo.push(r, *c, v * scale);
                }
            }
            coo.to_csr()
        };
        let b = vec![1.0; 144];
        let plain = idr(&a, &b, 4, &Identity::new(144), &SolveParams::default());
        let jac = Jacobi::setup(&a).unwrap();
        let prec = idr(&a, &b, 4, &jac, &SolveParams::default());
        assert!(prec.converged());
        assert!(
            prec.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn s_variants_all_converge() {
        let a = laplace_2d::<f64>(8, 8);
        let b: Vec<f64> = (0..64).map(|i| 1.0 + (i % 5) as f64).collect();
        for s in [1usize, 2, 4, 8] {
            let r = idr(&a, &b, s, &Identity::new(64), &SolveParams::default());
            assert!(r.converged(), "s={s}: {:?}", r.reason);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplace_2d::<f64>(4, 4);
        let r = idr(
            &a,
            &[0.0; 16],
            4,
            &Identity::new(16),
            &SolveParams::default(),
        );
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_respected() {
        let a = laplace_2d::<f64>(20, 20);
        let b = vec![1.0; 400];
        let params = SolveParams::default().with_max_iters(5);
        let r = idr(&a, &b, 4, &Identity::new(400), &params);
        assert_eq!(r.reason, StopReason::MaxIterations);
        assert!(r.iterations <= 6); // cycle may finish the step in flight
    }

    #[test]
    fn history_is_monotonic_enough_and_recorded() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let params = SolveParams::default().with_history();
        let r = idr(&a, &b, 4, &Identity::new(64), &params);
        assert!(!r.history.is_empty());
        assert!(*r.history.last().unwrap() <= 1e-6);
    }

    #[test]
    fn smoothed_idr_solves_and_is_monotone() {
        let a = convection_diffusion_2d::<f64>(14, 14, 0.9);
        let n = a.nrows();
        let b = vec![1.0; n];
        let params = SolveParams::default().with_history();
        let r = idr_smoothed(&a, &b, 4, &Identity::new(n), &params);
        assert!(r.converged(), "{:?}", r.reason);
        assert!(r.final_relres < 1e-6 * 1.5);
        // the smoothed residual history never increases (up to roundoff)
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12), "{} -> {}", w[0], w[1]);
        }
        // plain IDR's history on the same problem is NOT monotone
        let rp = idr(&a, &b, 4, &Identity::new(n), &params);
        let bumps = rp
            .history
            .windows(2)
            .filter(|w| w[1] > w[0] * (1.0 + 1e-12))
            .count();
        assert!(bumps > 0, "plain IDR should wiggle");
    }

    #[test]
    fn smoothed_and_plain_agree_on_the_solution() {
        let a = laplace_2d::<f64>(9, 9);
        let b: Vec<f64> = (0..81).map(|i| 1.0 + (i % 4) as f64).collect();
        let params = SolveParams::default().with_tol(1e-10);
        let r1 = idr(&a, &b, 4, &Identity::new(81), &params);
        let r2 = idr_smoothed(&a, &b, 4, &Identity::new(81), &params);
        assert!(r1.converged() && r2.converged());
        for (p, q) in r1.x.iter().zip(&r2.x) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn reproducible_runs() {
        let a = convection_diffusion_2d::<f64>(9, 9, 0.5);
        let b = vec![1.0; 81];
        let r1 = idr(&a, &b, 4, &Identity::new(81), &SolveParams::default());
        let r2 = idr(&a, &b, 4, &Identity::new(81), &SolveParams::default());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_fresh_allocation() {
        let a = convection_diffusion_2d::<f64>(10, 10, 0.7);
        let b = vec![1.0; 100];
        let fresh = idr(&a, &b, 4, &Identity::new(100), &SolveParams::default());
        let mut ws = KrylovWorkspace::for_idr(100, 4);
        let r1 = idr_with_workspace(
            &a,
            &b,
            4,
            &Identity::new(100),
            &SolveParams::default(),
            &mut ws,
        );
        // second solve reuses dirty recycled buffers
        let r2 = idr_with_workspace(
            &a,
            &b,
            4,
            &Identity::new(100),
            &SolveParams::default(),
            &mut ws,
        );
        assert_eq!(fresh.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(fresh.iterations, r1.iterations);
        assert!(ws.high_water() > 0);
        // smoothed variant too (exercises the smoother checkout path)
        let sf = idr_smoothed(&a, &b, 4, &Identity::new(100), &SolveParams::default());
        let s1 = idr_smoothed_with_workspace(
            &a,
            &b,
            4,
            &Identity::new(100),
            &SolveParams::default(),
            &mut ws,
        );
        assert_eq!(sf.x, s1.x);
    }
}
