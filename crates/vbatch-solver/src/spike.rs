//! SPIKE-style split solver for banded systems over the batch layer.
//!
//! The splitting of Li/Serban/Negrut (*Analysis of a Splitting
//! Approach for the Parallel Solution of Linear Systems on GPU
//! Cards*): a banded matrix cut into `p` partitions factors as
//! `A = D S`, where `D = diag(A_1, ..., A_p)` collects the partition
//! diagonal blocks and `S` is the identity plus the **spikes**
//! `V_j = A_j^{-1} [0; B_j]` (right) and `W_j = A_j^{-1} [C_{j-1}; 0]`
//! (left) induced by the coupling tips. Every dense sub-problem runs
//! through the existing [`BatchPlan`]/[`Backend`] pipeline:
//!
//! 1. all `p` partitions are factorized as **one** variable-size batch
//!    (any backend × layout × precision policy);
//! 2. the spikes come out of `2k` batched solves against those
//!    factors;
//! 3. the interface unknowns satisfy a block-tridiagonal *reduced
//!    system*; its **truncated** variant (justified for diagonally
//!    dominant inputs, where spike magnitudes decay away from the
//!    interfaces) drops the interface-to-interface couplings, leaving
//!    `p - 1` independent `2k × 2k` blocks — a second batch through
//!    the same plan machinery;
//! 4. recovery `x_j = g_j - V_j x_{j+1}^{(t)} - W_j x_{j-1}^{(b)}` is
//!    exact given exact interface values, so the only truncation error
//!    lives in step 3. The direct-solver entry point wraps the pass in
//!    an **iterative-refinement outer loop** against the monolithic
//!    residual `b - A x` — the exactness escape hatch that takes the
//!    truncated pass to machine-level relative residuals.
//!
//! One SPIKE pass (`apply_inplace`) is also a preconditioner, exposed
//! behind the PR-6 trait pair as [`PrecondKind::Spike`]. Warm applies
//! are allocation-free: both prepared batched solves and the spike
//! GEMV recovery run on buffers sized at setup (the module is opted
//! into the workspace allocation tripwires).

#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vbatch_core::{FactorError, Scalar, VectorBatch};
use vbatch_exec::{
    inject_batch, Backend, BatchPlan, BlockStatus, ExecStats, FactorizedBatch, FaultClass, Phase,
    PreparedApply,
};
use vbatch_precond::{
    BlockPreconditioner, PrecondKind, PrecondOptions, Preconditioner, SetupReport,
};
use vbatch_sparse::{
    extract_spike_blocks, nrm2, spmv, BlockPartition, CsrMatrix, SpikeError, SpikePartition,
};

/// The factorized reduced (interface) system: `p - 1` independent
/// `2k × 2k` blocks of the truncated SPIKE variant, prepared for
/// allocation-free warm solves.
struct Reduced<T: Scalar> {
    factors: FactorizedBatch<T>,
    prepared: PreparedApply<T>,
}

/// Result of one direct SPIKE solve ([`SpikeSolver::solve`]).
#[derive(Clone, Debug)]
pub struct SpikeSolve<T: Scalar> {
    /// The computed solution.
    pub x: Vec<T>,
    /// Refinement corrections applied after the initial SPIKE pass.
    pub refinements: usize,
    /// Final true relative residual `||b - A x|| / ||b||`.
    pub relres: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Wall-clock time of the whole solve (passes + residuals).
    pub solve_time: Duration,
}

/// The assembled SPIKE split solver / preconditioner.
///
/// Setup factorizes the partition batch and the truncated reduced
/// system; afterwards [`SpikeSolver::apply_inplace`] performs one
/// truncated SPIKE pass with zero heap allocation, and
/// [`SpikeSolver::solve`] wraps that pass in iterative refinement
/// against the retained monolithic matrix.
pub struct SpikeSolver<T: Scalar> {
    /// The monolithic matrix, retained for refinement residuals.
    a: CsrMatrix<T>,
    spart: SpikePartition,
    backend: Arc<dyn Backend<T>>,
    factors: FactorizedBatch<T>,
    prepared: PreparedApply<T>,
    /// Right spikes `V_j` (`n_j × k`, column-major); empty for the
    /// last partition and when the bandwidth is zero.
    v_spikes: Vec<Vec<T>>,
    /// Left spikes `W_j` (`n_j × k`, column-major); empty for the
    /// first partition and when the bandwidth is zero.
    w_spikes: Vec<Vec<T>>,
    /// Truncated reduced system; `None` when there are no interfaces
    /// (single partition or zero bandwidth), where the SPIKE pass
    /// degenerates bitwise to the plain batched solve.
    reduced: Option<Reduced<T>>,
    /// Interface workspace (`2k (p - 1)` elements), preallocated so
    /// `&self` applies stay allocation-free.
    ws: Mutex<Vec<T>>,
    apply_stats: Mutex<ExecStats>,
    fault_map: Vec<Option<FaultClass>>,
    /// Wall-clock time of the whole setup (extraction, partition
    /// factorization, spike formation, reduced assembly).
    pub setup_time: Duration,
    /// Partition blocks degraded to a fallback during factorization.
    pub fallback_blocks: usize,
    /// Execution statistics of the setup phase.
    pub stats: ExecStats,
}

impl<T: Scalar> SpikeSolver<T> {
    /// Set up the split solver for `a` under the validated SPIKE
    /// geometry `sp`, on `backend`, configured by `opts` (factorization
    /// method, batch layout, health triage, precision policy, optional
    /// fault injection — the same options bag as every other batched
    /// preconditioner).
    #[allow(clippy::disallowed_methods, clippy::disallowed_macros)] // setup-time allocation
    pub fn setup(
        a: &CsrMatrix<T>,
        sp: &SpikePartition,
        backend: Arc<dyn Backend<T>>,
        opts: PrecondOptions,
    ) -> Result<Self, FactorError> {
        let _span = vbatch_trace::span!("spike.setup", sp.len());
        let start = Instant::now();
        let mut stats = ExecStats::new();

        // Extraction doubles as the banded-structure proof: any
        // nonzero outside the partitions and their tips is an error.
        let t_ex = Instant::now();
        let mut blocks = extract_spike_blocks(a, sp).map_err(spike_to_factor_error)?;
        stats.add_phase(Phase::Extract, t_ex.elapsed());

        let fault_map = opts
            .fault
            .as_ref()
            .map(|plan| inject_batch(&mut blocks.diag, plan))
            .unwrap_or_default();

        let part = sp.part();
        let sizes = part.sizes();
        let plan = BatchPlan::for_method_with_layout::<T>(
            blocks.diag.sizes(),
            opts.method.plan_method(),
            opts.layout,
        )
        .with_health(opts.health)
        .with_precision(opts.precision);
        let factors = backend.factorize(blocks.diag, &plan, &mut stats);
        let fallback_blocks = factors.fallback_count();
        let prepared = backend.prepare_apply(&factors);

        // Spike formation + reduced assembly/factorization, reported
        // together as the Reduce phase.
        let t_red = Instant::now();
        let k = sp.bandwidth();
        let p = part.len();
        let ifaces = sp.interfaces();
        let mut v_spikes = vec![Vec::new(); p];
        let mut w_spikes = vec![Vec::new(); p];
        if ifaces > 0 {
            for j in 0..p {
                if j + 1 < p {
                    v_spikes[j] = vec![T::ZERO; sizes[j] * k];
                }
                if j > 0 {
                    w_spikes[j] = vec![T::ZERO; sizes[j] * k];
                }
            }
            // One batched solve per spike column: partitions that lack
            // the spike keep a zero right-hand side (and solve to
            // zero), so each sweep stays a single batch call.
            for col in 0..k {
                let mut rhs = VectorBatch::zeros(&sizes);
                for j in 0..p - 1 {
                    let nj = sizes[j];
                    let tip = blocks.upper_tips.block(j);
                    let seg = rhs.seg_mut(j);
                    for r in 0..k {
                        seg[nj - k + r] = tip[col * k + r];
                    }
                }
                backend.solve(&factors, &mut rhs, &mut stats);
                for j in 0..p - 1 {
                    let nj = sizes[j];
                    v_spikes[j][col * nj..(col + 1) * nj].copy_from_slice(rhs.seg(j));
                }
                let mut rhs = VectorBatch::zeros(&sizes);
                for j in 1..p {
                    let tip = blocks.lower_tips.block(j - 1);
                    let seg = rhs.seg_mut(j);
                    seg[..k].copy_from_slice(&tip[col * k..(col + 1) * k]);
                }
                backend.solve(&factors, &mut rhs, &mut stats);
                for j in 1..p {
                    let nj = sizes[j];
                    w_spikes[j][col * nj..(col + 1) * nj].copy_from_slice(rhs.seg(j));
                }
            }
        }

        // Truncated reduced system: per interface i the 2k x 2k block
        //   [ I            V_i^(b) ]
        //   [ W_{i+1}^(t)  I       ]
        // in the unknowns [x_i^(b); x_{i+1}^(t)] — couplings to the
        // neighbouring interfaces are dropped (the truncation), so the
        // blocks are independent and factorize as a second batch
        // through the same plan machinery.
        let reduced = if ifaces > 0 {
            let m = 2 * k;
            let mut red = vbatch_core::MatrixBatch::zeros(&vec![m; ifaces]);
            for i in 0..ifaces {
                let blk = red.block_mut(i);
                for d in 0..m {
                    blk[d * m + d] = T::ONE;
                }
                let ni = sizes[i];
                let n1 = sizes[i + 1];
                for c in 0..k {
                    for r in 0..k {
                        blk[(k + c) * m + r] = v_spikes[i][c * ni + (ni - k + r)];
                        blk[c * m + (k + r)] = w_spikes[i + 1][c * n1 + r];
                    }
                }
            }
            let rplan = BatchPlan::for_method_with_layout::<T>(
                red.sizes(),
                opts.method.plan_method(),
                opts.layout,
            )
            .with_health(opts.health)
            .with_precision(opts.precision);
            let rfactors = backend.factorize(red, &rplan, &mut stats);
            let rprepared = backend.prepare_apply(&rfactors);
            Some(Reduced {
                factors: rfactors,
                prepared: rprepared,
            })
        } else {
            None
        };
        stats.add_phase(Phase::Reduce, t_red.elapsed());

        // Pre-warm the steady-state histogram entries so the first
        // apply does not pay their one-time node insertions.
        let mut apply_stats = ExecStats::new();
        apply_stats.add_phase(Phase::Apply, Duration::ZERO);
        apply_stats.record_precond(PrecondKind::Spike.label(), 0);

        Ok(SpikeSolver {
            a: a.clone(),
            spart: sp.clone(),
            backend,
            factors,
            prepared,
            v_spikes,
            w_spikes,
            reduced,
            ws: Mutex::new(vec![T::ZERO; 2 * k * ifaces]),
            apply_stats: Mutex::new(apply_stats),
            fault_map,
            setup_time: start.elapsed(),
            fallback_blocks,
            stats,
        })
    }

    /// Convenience setup: detect the bandwidth, split into
    /// `partitions` near-uniform pieces, and build on `backend` with
    /// default options.
    pub fn setup_uniform(
        a: &CsrMatrix<T>,
        partitions: usize,
        backend: Arc<dyn Backend<T>>,
    ) -> Result<Self, FactorError> {
        let sp = SpikePartition::detect(a, partitions).map_err(spike_to_factor_error)?;
        Self::setup(a, &sp, backend, PrecondOptions::default())
    }

    /// The SPIKE geometry this solver was built for.
    pub fn spike_partition(&self) -> &SpikePartition {
        &self.spart
    }

    /// Per-partition factorization status (the PR-3 triage path:
    /// which kernel factorized each partition, or which error degraded
    /// it to a sanitized fallback).
    pub fn statuses(&self) -> &[BlockStatus] {
        &self.factors.status
    }

    /// The fault assignment injected during setup (one entry per
    /// partition when [`PrecondOptions::fault`] was set, else empty).
    pub fn fault_map(&self) -> &[Option<FaultClass>] {
        &self.fault_map
    }

    /// The execution backend running the batched kernels.
    pub fn backend(&self) -> &dyn Backend<T> {
        self.backend.as_ref()
    }

    /// One truncated SPIKE pass, in place: `v` enters as a right-hand
    /// side and leaves as the (truncated) solution. `red` must have
    /// `2 k (p - 1)` elements. Allocation-free on the CPU backends.
    fn apply_pass(&self, v: &mut [T], red: &mut [T], stats: &mut ExecStats) {
        // g = D^{-1} v: the prepared batched partition solve (the flat
        // vector tiles the partitions exactly).
        self.backend
            .solve_prepared(&self.factors, &self.prepared, v, stats);
        let Some(reduced) = &self.reduced else {
            return;
        };
        let k = self.spart.bandwidth();
        let part = self.spart.part();
        let p = part.len();
        // Gather the interface right-hand sides [g_i^(b); g_{i+1}^(t)].
        for i in 0..p - 1 {
            let ri = part.range(i);
            let r1 = part.range(i + 1);
            for t in 0..k {
                red[2 * k * i + t] = v[ri.end - k + t];
                red[2 * k * i + k + t] = v[r1.start + t];
            }
        }
        self.backend
            .solve_prepared(&reduced.factors, &reduced.prepared, red, stats);
        // Recovery x_j = g_j - V_j x_{j+1}^(t) - W_j x_{j-1}^(b),
        // applied to every row (exact given exact interface values):
        // column-wise axpy sweeps over the stored dense spikes.
        for j in 0..p {
            let range = part.range(j);
            let nj = range.end - range.start;
            let seg = &mut v[range.start..range.end];
            if j + 1 < p {
                let xi = &red[2 * k * j + k..2 * k * j + 2 * k];
                let vj = &self.v_spikes[j];
                for (c, &alpha) in xi.iter().enumerate() {
                    let col = &vj[c * nj..(c + 1) * nj];
                    for (d, s) in seg.iter_mut().zip(col) {
                        *d -= *s * alpha;
                    }
                }
            }
            if j > 0 {
                let eta = &red[2 * k * (j - 1)..2 * k * (j - 1) + k];
                let wj = &self.w_spikes[j];
                for (c, &alpha) in eta.iter().enumerate() {
                    let col = &wj[c * nj..(c + 1) * nj];
                    for (d, s) in seg.iter_mut().zip(col) {
                        *d -= *s * alpha;
                    }
                }
            }
        }
    }

    /// Direct solve with the default refinement budget: tolerance
    /// `max(10 n eps, 1e-14)` on the true relative residual, at most
    /// 60 corrections.
    pub fn solve(&self, b: &[T]) -> SpikeSolve<T> {
        let tol = (10.0 * b.len() as f64 * T::epsilon().to_f64()).max(1e-14);
        self.solve_with(b, tol, 60)
    }

    /// Direct solve: one truncated SPIKE pass followed by iterative
    /// refinement `x <- x + M(b - A x)` against the **monolithic**
    /// residual until `||b - A x|| / ||b|| <= tol` or `max_refine`
    /// corrections — the exactness escape hatch over the truncated
    /// reduced system (and, under narrowed-precision factor storage,
    /// the classic mixed-precision refinement loop).
    #[allow(clippy::disallowed_methods, clippy::disallowed_macros)] // per-solve buffers, not warm-apply path
    pub fn solve_with(&self, b: &[T], tol: f64, max_refine: usize) -> SpikeSolve<T> {
        let _span = vbatch_trace::span!("spike.solve", b.len());
        let start = Instant::now();
        let n = b.len();
        debug_assert_eq!(n, self.spart.part().total());
        let mut stats = ExecStats::new();
        let mut red = vec![T::ZERO; self.red_len()];
        let mut x = b.to_vec();
        self.apply_pass(&mut x, &mut red, &mut stats);
        let bnorm = nrm2(b).to_f64();
        let mut r = vec![T::ZERO; n];
        let mut refinements = 0usize;
        let (converged, relres) = loop {
            let _rspan = vbatch_trace::span!("spike.refine", refinements);
            spmv(&self.a, &x, &mut r);
            for (ri, &bi) in r.iter_mut().zip(b) {
                *ri = bi - *ri;
            }
            let rn = nrm2(&r).to_f64();
            let rr = if bnorm > 0.0 { rn / bnorm } else { rn };
            if !rr.is_finite() || rr <= tol || refinements >= max_refine {
                break (rr.is_finite() && rr <= tol, rr);
            }
            self.apply_pass(&mut r, &mut red, &mut stats);
            for (xi, &zi) in x.iter_mut().zip(r.iter()) {
                *xi += zi;
            }
            refinements += 1;
        };
        self.apply_stats
            .lock()
            .expect("apply stats poisoned")
            .merge(&stats);
        SpikeSolve {
            x,
            refinements,
            relres,
            converged,
            solve_time: start.elapsed(),
        }
    }

    fn red_len(&self) -> usize {
        2 * self.spart.bandwidth() * self.spart.interfaces()
    }

    /// Resident workspace in elements across the warm apply path: both
    /// prepared batched solves plus the interface buffer.
    pub fn workspace_hwm_elems(&self) -> usize {
        let reduced = self
            .reduced
            .as_ref()
            .map(|r| r.prepared.workspace_hwm_elems())
            .unwrap_or(0);
        self.prepared.workspace_hwm_elems() + reduced + self.red_len()
    }
}

/// Map a geometry/extraction failure onto the factorization error
/// vocabulary the preconditioner setup contract speaks: a partition
/// too small for its coupling window reports the `2k` window order
/// against the partition size; an out-of-band nonzero reports its
/// position.
fn spike_to_factor_error(e: SpikeError) -> FactorError {
    match e {
        SpikeError::NotSquare { rows, cols } => FactorError::NotSquare { rows, cols },
        SpikeError::PartitionMismatch { covered, n } => FactorError::NotSquare {
            rows: covered,
            cols: n,
        },
        SpikeError::PartitionTooSmall {
            size, bandwidth, ..
        } => FactorError::TooLarge {
            n: 2 * bandwidth,
            max: size,
        },
        SpikeError::OutOfBand { row, col, .. } => FactorError::NonFinite { row, col },
    }
}

impl<T: Scalar> Preconditioner<T> for SpikeSolver<T> {
    /// One truncated SPIKE pass through the prepared batched solves
    /// and the stored dense spikes — no per-call dispatch rebuild and,
    /// on the CPU backends, no heap allocation.
    fn apply_inplace(&self, v: &mut [T]) {
        debug_assert_eq!(v.len(), self.spart.part().total());
        let _span = vbatch_trace::span!("spike.apply", v.len());
        let mut red = self.ws.lock().expect("spike workspace poisoned");
        let mut stats = self.apply_stats.lock().expect("apply stats poisoned");
        stats.record_precond(PrecondKind::Spike.label(), 1);
        self.apply_pass(v, &mut red, &mut stats);
    }

    fn dim(&self) -> usize {
        self.spart.part().total()
    }

    fn label(&self) -> String {
        format!(
            "spike(p={}, k={}, trunc+ir)",
            self.spart.len(),
            self.spart.bandwidth()
        )
    }
}

impl<T: Scalar> BlockPreconditioner<T> for SpikeSolver<T> {
    fn kind() -> PrecondKind {
        PrecondKind::Spike
    }

    /// Canonical options-driven setup: `part` is taken as the SPIKE
    /// partition and the half-bandwidth is detected from `a` (every
    /// partition must span at least twice the detected bandwidth).
    fn setup_opts(
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        backend: Arc<dyn Backend<T>>,
        opts: PrecondOptions,
    ) -> Result<Self, FactorError> {
        let sp = SpikePartition::new(part.clone(), a.bandwidth()).map_err(spike_to_factor_error)?;
        SpikeSolver::setup(a, &sp, backend, opts)
    }

    fn partition(&self) -> &BlockPartition {
        self.spart.part()
    }

    fn statuses(&self) -> &[BlockStatus] {
        &self.factors.status
    }

    fn setup_report(&self) -> SetupReport {
        SetupReport {
            setup_time: self.setup_time,
            fallback_blocks: self.fallback_blocks,
            stats: self.stats.clone(),
            backend_name: self.backend.name(),
        }
    }

    fn apply_stats(&self) -> ExecStats {
        self.apply_stats
            .lock()
            .expect("apply stats poisoned")
            .clone()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_core::{solve_system, Exec};
    use vbatch_exec::backend_for_exec;
    use vbatch_sparse::CooMatrix;

    fn banded(n: usize, bw: usize, dominance: f64, seed: u64) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in vbatch_rt::testgen::banded_system_triplets(n, bw, dominance, seed) {
            coo.push(i, j, v);
        }
        coo.to_csr()
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7 + 3) % 11) as f64 / 11.0 - 0.4)
            .collect()
    }

    #[test]
    fn truncated_pass_plus_refinement_hits_machine_residual() {
        let n = 96;
        let a = banded(n, 2, 2.0, 9);
        let sp = SpikePartition::detect(&a, 4).unwrap();
        let m = SpikeSolver::setup(
            &a,
            &sp,
            backend_for_exec(Exec::Sequential),
            PrecondOptions::default(),
        )
        .unwrap();
        let b = rhs(n);
        let out = m.solve_with(&b, 1e-12, 60);
        assert!(
            out.converged,
            "relres {} after {}",
            out.relres, out.refinements
        );
        assert!(out.relres <= 1e-12);
        // and against the dense reference
        let xref = solve_system(&a.to_dense(), &b).unwrap();
        for i in 0..n {
            assert!((out.x[i] - xref[i]).abs() < 1e-8 * xref[i].abs().max(1.0));
        }
    }

    #[test]
    fn single_partition_needs_no_reduced_system() {
        let n = 24;
        let a = banded(n, 1, 2.0, 4);
        let sp = SpikePartition::detect(&a, 1).unwrap();
        let m = SpikeSolver::setup(
            &a,
            &sp,
            backend_for_exec(Exec::Sequential),
            PrecondOptions::default(),
        )
        .unwrap();
        assert!(m.reduced.is_none());
        let out = m.solve(&rhs(n));
        assert!(out.converged);
    }

    #[test]
    fn setup_opts_detects_bandwidth_and_rejects_small_partitions() {
        let a = banded(24, 3, 2.0, 1);
        // 24 rows, bandwidth 3: 6 partitions of size 4 < 2k = 6
        let part = BlockPartition::uniform(24, 4);
        let res = SpikeSolver::setup_opts(
            &a,
            &part,
            backend_for_exec(Exec::Sequential),
            PrecondOptions::default(),
        );
        let Err(err) = res else {
            panic!("undersized partition must be rejected")
        };
        assert_eq!(err, FactorError::TooLarge { n: 6, max: 4 });
    }
}
