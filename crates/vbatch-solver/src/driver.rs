//! Backend-parameterized preconditioned solve drivers, generic over the
//! [`BlockPreconditioner`] trait: build the preconditioner (block-Jacobi
//! or block-ILU(0)) on an explicit `vbatch-exec` backend and run the
//! paper's IDR(s) on it, reporting the solve outcome together with the
//! preconditioner setup statistics (kernel histogram, flops, fallback
//! blocks). This is the seam experiments use to swap both the CPU
//! backends / SIMT simulator and the preconditioner without touching
//! solver code. The historical block-Jacobi entry points
//! ([`idr_block_jacobi`], [`idr_block_jacobi_robust`], [`IdrBjSolver`])
//! survive as thin instantiations of the generic drivers.

use crate::{gmres, idr, idr_with_workspace, KrylovWorkspace, SolveParams, SolveResult};
use std::sync::Arc;
use std::time::Duration;
use vbatch_core::{FactorError, Scalar};
use vbatch_exec::{Backend, ExecStats};
use vbatch_precond::{
    BjMethod, BlockIlu0, BlockJacobi, BlockPreconditioner, PrecondKind, PrecondOptions,
};
use vbatch_sparse::{axpy, nrm2, residual, BlockPartition, CsrMatrix};

/// A preconditioned solve plus the setup-phase execution statistics.
pub struct PrecondSolve<T> {
    /// The Krylov solve outcome.
    pub result: SolveResult<T>,
    /// Wall-clock time of preconditioner setup (extract + factorize).
    pub setup_time: Duration,
    /// Singular blocks degraded to a fallback during factorization.
    pub fallback_blocks: usize,
    /// Blocks stored in lowered (`T::Lower`) precision after setup —
    /// nonzero only under a storage-lowering [`vbatch_exec::PrecisionPolicy`].
    pub lowered_blocks: usize,
    /// Blocks the condest gate promoted back to native precision under
    /// [`vbatch_exec::PrecisionPolicy::MixedPromote`].
    pub promoted_blocks: usize,
    /// Execution statistics of the setup phase.
    pub setup_stats: ExecStats,
    /// Backend the preconditioner ran on.
    pub backend_name: &'static str,
    /// Label of the preconditioner that drove the solve
    /// (e.g. `block-jacobi(LU, max 12)`).
    pub precond_label: String,
}

/// Solve `A x = b` with IDR(s) preconditioned by any
/// [`BlockPreconditioner`] set up through its canonical options-driven
/// constructor on the given execution backend.
pub fn idr_precond<T: Scalar, M: BlockPreconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    backend: Arc<dyn Backend<T>>,
    opts: PrecondOptions,
    params: &SolveParams,
) -> Result<PrecondSolve<T>, FactorError> {
    let m = M::setup_opts(a, part, backend, opts)?;
    let result = idr(a, b, s, &m, params);
    Ok(finish_solve(result, &m))
}

/// Dispatch [`idr_precond`] on a runtime [`PrecondKind`] token — the
/// entry point behind the benchmark bins' `--precond {bj,bilu,spike}` flag.
#[allow(clippy::too_many_arguments)] // mirrors idr_precond + kind
pub fn idr_precond_kind<T: Scalar>(
    kind: PrecondKind,
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    backend: Arc<dyn Backend<T>>,
    opts: PrecondOptions,
    params: &SolveParams,
) -> Result<PrecondSolve<T>, FactorError> {
    match kind {
        PrecondKind::BlockJacobi => {
            idr_precond::<T, BlockJacobi<T>>(a, b, s, part, backend, opts, params)
        }
        PrecondKind::BlockIlu0 => {
            idr_precond::<T, BlockIlu0<T>>(a, b, s, part, backend, opts, params)
        }
        PrecondKind::Spike => {
            idr_precond::<T, crate::spike::SpikeSolver<T>>(a, b, s, part, backend, opts, params)
        }
    }
}

/// Solve `A x = b` with IDR(s) preconditioned by block-Jacobi set up on
/// the given execution backend (thin wrapper over [`idr_precond`]).
pub fn idr_block_jacobi<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    method: BjMethod,
    backend: Arc<dyn Backend<T>>,
    params: &SolveParams,
) -> Result<PrecondSolve<T>, FactorError> {
    idr_precond::<T, BlockJacobi<T>>(
        a,
        b,
        s,
        part,
        backend,
        PrecondOptions::default().with_method(method),
        params,
    )
}

fn finish_solve<T: Scalar, M: BlockPreconditioner<T>>(
    result: SolveResult<T>,
    m: &M,
) -> PrecondSolve<T> {
    let report = m.setup_report();
    let lowered_blocks = report
        .stats
        .precision_histogram()
        .get("lower")
        .copied()
        .unwrap_or(0) as usize;
    let promoted_blocks = report.stats.promotions as usize;
    PrecondSolve {
        result,
        setup_time: report.setup_time,
        fallback_blocks: report.fallback_blocks,
        lowered_blocks,
        promoted_blocks,
        setup_stats: report.stats,
        backend_name: report.backend_name,
        precond_label: m.label(),
    }
}

/// A reusable solve handle, generic over the preconditioner: setup runs
/// once, then every [`IdrSolver::solve`] call reuses both the prepared
/// preconditioner apply and a persistent [`KrylovWorkspace`] — after
/// the first solve, subsequent solves allocate nothing in their
/// iteration loops. Results are bitwise identical to the one-shot
/// [`idr_precond`].
pub struct IdrSolver<T: Scalar, M: BlockPreconditioner<T>> {
    m: M,
    ws: KrylovWorkspace<T>,
    s: usize,
    params: SolveParams,
    backend_name: &'static str,
}

/// The historical name: the reusable IDR handle specialized to
/// block-Jacobi.
pub type IdrBjSolver<T> = IdrSolver<T, BlockJacobi<T>>;

impl<T: Scalar, M: BlockPreconditioner<T>> IdrSolver<T, M> {
    /// Build the preconditioner on `backend` through its canonical
    /// options-driven constructor and pre-seed the Krylov workspace for
    /// IDR(s) solves of this dimension.
    pub fn setup_opts(
        a: &CsrMatrix<T>,
        s: usize,
        part: &BlockPartition,
        backend: Arc<dyn Backend<T>>,
        opts: PrecondOptions,
        params: &SolveParams,
    ) -> Result<Self, FactorError> {
        let m = M::setup_opts(a, part, backend, opts)?;
        let backend_name = m.setup_report().backend_name;
        Ok(IdrSolver {
            m,
            ws: KrylovWorkspace::for_idr(a.nrows(), s),
            s,
            params: params.clone(),
            backend_name,
        })
    }

    /// Solve `A x = b`, reusing the preconditioner and workspace. `a`
    /// must have the dimension the handle was set up for.
    pub fn solve(&mut self, a: &CsrMatrix<T>, b: &[T]) -> SolveResult<T> {
        idr_with_workspace(a, b, self.s, &self.m, &self.params, &mut self.ws)
    }

    /// The preconditioner owned by this handle.
    pub fn precond(&self) -> &M {
        &self.m
    }

    /// The persistent Krylov workspace (e.g. for high-water inspection).
    pub fn workspace(&self) -> &KrylovWorkspace<T> {
        &self.ws
    }

    /// Backend the preconditioner was set up on.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }
}

impl<T: Scalar> IdrBjSolver<T> {
    /// Historical block-Jacobi entry point (thin wrapper over
    /// [`IdrSolver::setup_opts`]).
    pub fn setup(
        a: &CsrMatrix<T>,
        s: usize,
        part: &BlockPartition,
        method: BjMethod,
        backend: Arc<dyn Backend<T>>,
        params: &SolveParams,
    ) -> Result<Self, FactorError> {
        Self::setup_opts(
            a,
            s,
            part,
            backend,
            PrecondOptions::default().with_method(method),
            params,
        )
    }
}

/// What a robust driver does when a solve ends abnormally
/// ([`StopReason::is_abnormal`]): first restart IDR from the current
/// iterate (residual-system restart, up to `max_restarts` times), then
/// hand the original system to restarted GMRES as a last resort.
#[derive(Clone, Copy, Debug)]
pub struct RobustPolicy {
    /// IDR restarts to attempt before falling back (each restart solves
    /// the residual system `A e = b - A x` and corrects `x`).
    pub max_restarts: usize,
    /// Restart length for the GMRES fallback; `0` disables it.
    pub gmres_restart: usize,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        RobustPolicy {
            max_restarts: 1,
            gmres_restart: 30,
        }
    }
}

/// A [`PrecondSolve`] plus what the robust driver had to do to get it.
pub struct RobustSolve<T> {
    /// The (possibly restarted / fallen-back) solve outcome. Iteration
    /// counts and histories accumulate across all attempts.
    pub solve: PrecondSolve<T>,
    /// IDR restarts actually performed.
    pub restarts: usize,
    /// `true` if the GMRES fallback ran.
    pub used_gmres: bool,
}

/// [`idr_precond`] wrapped in the breakdown-recovery policy: on an
/// abnormal stop the driver restarts IDR from the current iterate, and
/// if it still cannot finish cleanly, falls back to GMRES(m) with the
/// same preconditioner. A corrupted right-hand side (non-finite norm)
/// is reported as [`StopReason::NonFinite`] without burning iterations.
#[allow(clippy::too_many_arguments)] // mirrors idr_precond + policy
pub fn idr_precond_robust<T: Scalar, M: BlockPreconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    backend: Arc<dyn Backend<T>>,
    opts: PrecondOptions,
    params: &SolveParams,
    policy: &RobustPolicy,
) -> Result<RobustSolve<T>, FactorError> {
    let m = M::setup_opts(a, part, backend, opts)?;
    let normb = nrm2(b).to_f64();

    let mut result = idr(a, b, s, &m, params);
    let mut restarts = 0usize;
    let mut used_gmres = false;

    while result.reason.is_abnormal() && restarts < policy.max_restarts {
        let r = residual(a, &result.x, b);
        if !nrm2(&r).to_f64().is_finite() {
            // the right-hand side (or iterate) is corrupted beyond what
            // a restart can repair
            break;
        }
        restarts += 1;
        let retry = idr(a, &r, s, &m, params);
        let mut x = result.x.clone();
        axpy(T::ONE, &retry.x, &mut x);
        result = merge_attempts(a, b, normb, x, &result, retry);
    }

    if result.reason.is_abnormal() && policy.gmres_restart > 0 {
        used_gmres = true;
        let g = gmres(a, b, policy.gmres_restart, &m, params);
        let x = g.x.clone();
        result = merge_attempts(a, b, normb, x, &result, g);
    }

    Ok(RobustSolve {
        solve: finish_solve(result, &m),
        restarts,
        used_gmres,
    })
}

/// Historical block-Jacobi entry point (thin wrapper over
/// [`idr_precond_robust`]).
#[allow(clippy::too_many_arguments)] // mirrors idr_block_jacobi + policy
pub fn idr_block_jacobi_robust<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    method: BjMethod,
    backend: Arc<dyn Backend<T>>,
    params: &SolveParams,
    policy: &RobustPolicy,
) -> Result<RobustSolve<T>, FactorError> {
    idr_precond_robust::<T, BlockJacobi<T>>(
        a,
        b,
        s,
        part,
        backend,
        PrecondOptions::default().with_method(method),
        params,
        policy,
    )
}

/// Fold a retry/fallback attempt into the running result: the iterate
/// is `x`, counters and histories accumulate, the stop reason is the
/// latest attempt's (upgraded to `Converged` if the true residual now
/// meets the tolerance).
fn merge_attempts<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    normb: f64,
    x: Vec<T>,
    prev: &SolveResult<T>,
    attempt: SolveResult<T>,
) -> SolveResult<T> {
    let final_relres = if normb == 0.0 {
        0.0
    } else {
        nrm2(&residual(a, &x, b)).to_f64() / normb
    };
    let mut history = prev.history.clone();
    history.extend_from_slice(&attempt.history);
    SolveResult {
        x,
        iterations: prev.iterations + attempt.iterations,
        final_relres,
        reason: attempt.reason,
        solve_time: prev.solve_time + attempt.solve_time,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopReason;
    use vbatch_exec::CpuSequential;
    use vbatch_sparse::gen::laplace::laplace_2d;

    fn backend() -> Arc<dyn Backend<f64>> {
        Arc::new(CpuSequential)
    }

    #[test]
    fn robust_solve_converges_without_intervention() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let r = idr_block_jacobi_robust(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
            &RobustPolicy::default(),
        )
        .unwrap();
        assert!(r.solve.result.converged());
        assert_eq!(r.restarts, 0);
        assert!(!r.used_gmres);
    }

    #[test]
    fn reusable_solver_matches_one_shot_bitwise() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let one_shot = idr_block_jacobi(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        let mut handle = IdrBjSolver::setup(
            &a,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        let r1 = handle.solve(&a, &b);
        let r2 = handle.solve(&a, &b); // reuses recycled buffers
        assert!(r1.converged());
        assert_eq!(one_shot.result.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(one_shot.result.iterations, r2.iterations);
        assert!(handle.workspace().high_water() > 0);
        assert_eq!(handle.backend_name(), "cpu-seq");
        assert!(one_shot.precond_label.starts_with("block-jacobi"));
        // the prepared apply ran once per IDR iteration in both solves
        let stats = handle.precond().apply_stats();
        assert_eq!(stats.applies as usize, 2 * r1.iterations);
    }

    #[test]
    fn generic_driver_runs_block_ilu() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let bilu = idr_precond::<f64, BlockIlu0<f64>>(
            &a,
            &b,
            4,
            &part,
            backend(),
            PrecondOptions::default().with_method(BjMethod::SmallLu),
            &SolveParams::default(),
        )
        .unwrap();
        assert!(bilu.result.converged());
        assert!(bilu.precond_label.starts_with("block-ilu0"));
        // runtime dispatch agrees with the static instantiation
        let kinded = idr_precond_kind(
            PrecondKind::BlockIlu0,
            &a,
            &b,
            4,
            &part,
            backend(),
            PrecondOptions::default().with_method(BjMethod::SmallLu),
            &SolveParams::default(),
        )
        .unwrap();
        assert_eq!(bilu.result.x, kinded.result.x);
        assert_eq!(bilu.result.iterations, kinded.result.iterations);
    }

    #[test]
    fn generic_reusable_handle_runs_block_ilu() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let mut handle = IdrSolver::<f64, BlockIlu0<f64>>::setup_opts(
            &a,
            4,
            &part,
            backend(),
            PrecondOptions::default().with_method(BjMethod::SmallLu),
            &SolveParams::default(),
        )
        .unwrap();
        let r1 = handle.solve(&a, &b);
        let r2 = handle.solve(&a, &b);
        assert!(r1.converged());
        assert_eq!(r1.x, r2.x);
        // BILU must not need more iterations than BJ on this SPD model
        let bj = idr_block_jacobi(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        assert!(r1.iterations <= bj.result.iterations);
    }

    #[test]
    fn mixed_precision_policy_converges_degraded_free() {
        use vbatch_exec::PrecisionPolicy;
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let dp = idr_block_jacobi(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        let mixed = idr_precond::<f64, BlockJacobi<f64>>(
            &a,
            &b,
            4,
            &part,
            backend(),
            PrecondOptions::default()
                .with_method(BjMethod::SmallLu)
                .with_precision(PrecisionPolicy::mixed::<f64>()),
            &SolveParams::default(),
        )
        .unwrap();
        assert!(mixed.result.converged());
        assert_eq!(mixed.fallback_blocks, 0, "no block may degrade under mixed");
        // well-conditioned Laplace diagonal blocks: all lowered, none promoted
        assert_eq!(mixed.lowered_blocks, 16);
        assert_eq!(mixed.promoted_blocks, 0);
        assert_eq!(dp.lowered_blocks, 0);
        // the converged iterates agree to solver tolerance
        let diff: f64 = dp
            .result
            .x
            .iter()
            .zip(&mixed.result.x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = dp.result.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            diff / norm < 1e-6,
            "mixed drifted: relative diff {:e}",
            diff / norm
        );
    }

    #[test]
    fn nan_rhs_reports_non_finite_not_max_iters() {
        let a = laplace_2d::<f64>(6, 6);
        let mut b = vec![1.0; 36];
        b[0] = f64::NAN;
        let part = BlockPartition::uniform(36, 4);
        let r = idr_block_jacobi_robust(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
            &RobustPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.solve.result.reason, StopReason::NonFinite);
        assert!(r.used_gmres, "policy exhausts the fallback chain");
        assert_eq!(r.restarts, 0, "a NaN RHS cannot be restarted");
    }
}
