//! Backend-parameterized preconditioned solve driver: build a
//! block-Jacobi preconditioner on an explicit `vbatch-exec` backend and
//! run the paper's IDR(s) on it, reporting the solve outcome together
//! with the preconditioner setup statistics (kernel histogram, flops,
//! fallback blocks). This is the seam experiments use to swap the CPU
//! backends and the SIMT simulator without touching solver code.

use crate::{idr, SolveParams, SolveResult};
use std::sync::Arc;
use std::time::Duration;
use vbatch_core::{FactorError, Scalar};
use vbatch_exec::{Backend, ExecStats};
use vbatch_precond::{BjMethod, BlockJacobi};
use vbatch_sparse::{BlockPartition, CsrMatrix};

/// A preconditioned solve plus the setup-phase execution statistics.
pub struct PrecondSolve<T> {
    /// The Krylov solve outcome.
    pub result: SolveResult<T>,
    /// Wall-clock time of preconditioner setup (extract + factorize).
    pub setup_time: Duration,
    /// Singular blocks degraded to the scalar-Jacobi fallback.
    pub fallback_blocks: usize,
    /// Execution statistics of the setup phase.
    pub setup_stats: ExecStats,
    /// Backend the preconditioner ran on.
    pub backend_name: &'static str,
}

/// Solve `A x = b` with IDR(s) preconditioned by block-Jacobi set up on
/// the given execution backend.
pub fn idr_block_jacobi<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    method: BjMethod,
    backend: Arc<dyn Backend<T>>,
    params: &SolveParams,
) -> Result<PrecondSolve<T>, FactorError> {
    let name = backend.name();
    let m = BlockJacobi::setup_with_backend(a, part, method, backend)?;
    let result = idr(a, b, s, &m, params);
    Ok(PrecondSolve {
        result,
        setup_time: m.setup_time,
        fallback_blocks: m.fallback_blocks,
        setup_stats: m.stats,
        backend_name: name,
    })
}
