//! Backend-parameterized preconditioned solve driver: build a
//! block-Jacobi preconditioner on an explicit `vbatch-exec` backend and
//! run the paper's IDR(s) on it, reporting the solve outcome together
//! with the preconditioner setup statistics (kernel histogram, flops,
//! fallback blocks). This is the seam experiments use to swap the CPU
//! backends and the SIMT simulator without touching solver code.

use crate::{gmres, idr, idr_with_workspace, KrylovWorkspace, SolveParams, SolveResult};
use std::sync::Arc;
use std::time::Duration;
use vbatch_core::{FactorError, Scalar};
use vbatch_exec::{Backend, ExecStats};
use vbatch_precond::{BjMethod, BlockJacobi};
use vbatch_sparse::{axpy, nrm2, residual, BlockPartition, CsrMatrix};

/// A preconditioned solve plus the setup-phase execution statistics.
pub struct PrecondSolve<T> {
    /// The Krylov solve outcome.
    pub result: SolveResult<T>,
    /// Wall-clock time of preconditioner setup (extract + factorize).
    pub setup_time: Duration,
    /// Singular blocks degraded to the scalar-Jacobi fallback.
    pub fallback_blocks: usize,
    /// Execution statistics of the setup phase.
    pub setup_stats: ExecStats,
    /// Backend the preconditioner ran on.
    pub backend_name: &'static str,
}

/// Solve `A x = b` with IDR(s) preconditioned by block-Jacobi set up on
/// the given execution backend.
pub fn idr_block_jacobi<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    method: BjMethod,
    backend: Arc<dyn Backend<T>>,
    params: &SolveParams,
) -> Result<PrecondSolve<T>, FactorError> {
    let name = backend.name();
    let m = BlockJacobi::setup_with_backend(a, part, method, backend)?;
    let result = idr(a, b, s, &m, params);
    Ok(PrecondSolve {
        result,
        setup_time: m.setup_time,
        fallback_blocks: m.fallback_blocks,
        setup_stats: m.stats,
        backend_name: name,
    })
}

/// A reusable solve handle: block-Jacobi setup runs once, then every
/// [`IdrBjSolver::solve`] call reuses both the prepared preconditioner
/// apply and a persistent [`KrylovWorkspace`] — after the first solve,
/// subsequent solves allocate nothing in their iteration loops. Results
/// are bitwise identical to the one-shot [`idr_block_jacobi`].
pub struct IdrBjSolver<T: Scalar> {
    m: BlockJacobi<T>,
    ws: KrylovWorkspace<T>,
    s: usize,
    params: SolveParams,
    backend_name: &'static str,
}

impl<T: Scalar> IdrBjSolver<T> {
    /// Build the preconditioner on `backend` and pre-seed the Krylov
    /// workspace for IDR(s) solves of this dimension.
    pub fn setup(
        a: &CsrMatrix<T>,
        s: usize,
        part: &BlockPartition,
        method: BjMethod,
        backend: Arc<dyn Backend<T>>,
        params: &SolveParams,
    ) -> Result<Self, FactorError> {
        let name = backend.name();
        let m = BlockJacobi::setup_with_backend(a, part, method, backend)?;
        Ok(IdrBjSolver {
            m,
            ws: KrylovWorkspace::for_idr(a.nrows(), s),
            s,
            params: params.clone(),
            backend_name: name,
        })
    }

    /// Solve `A x = b`, reusing the preconditioner and workspace. `a`
    /// must have the dimension the handle was set up for.
    pub fn solve(&mut self, a: &CsrMatrix<T>, b: &[T]) -> SolveResult<T> {
        idr_with_workspace(a, b, self.s, &self.m, &self.params, &mut self.ws)
    }

    /// The block-Jacobi preconditioner owned by this handle.
    pub fn precond(&self) -> &BlockJacobi<T> {
        &self.m
    }

    /// The persistent Krylov workspace (e.g. for high-water inspection).
    pub fn workspace(&self) -> &KrylovWorkspace<T> {
        &self.ws
    }

    /// Backend the preconditioner was set up on.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }
}

/// What a robust driver does when a solve ends abnormally
/// ([`StopReason::is_abnormal`]): first restart IDR from the current
/// iterate (residual-system restart, up to `max_restarts` times), then
/// hand the original system to restarted GMRES as a last resort.
#[derive(Clone, Copy, Debug)]
pub struct RobustPolicy {
    /// IDR restarts to attempt before falling back (each restart solves
    /// the residual system `A e = b - A x` and corrects `x`).
    pub max_restarts: usize,
    /// Restart length for the GMRES fallback; `0` disables it.
    pub gmres_restart: usize,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        RobustPolicy {
            max_restarts: 1,
            gmres_restart: 30,
        }
    }
}

/// A [`PrecondSolve`] plus what the robust driver had to do to get it.
pub struct RobustSolve<T> {
    /// The (possibly restarted / fallen-back) solve outcome. Iteration
    /// counts and histories accumulate across all attempts.
    pub solve: PrecondSolve<T>,
    /// IDR restarts actually performed.
    pub restarts: usize,
    /// `true` if the GMRES fallback ran.
    pub used_gmres: bool,
}

/// [`idr_block_jacobi`] wrapped in the breakdown-recovery policy: on an
/// abnormal stop the driver restarts IDR from the current iterate, and
/// if it still cannot finish cleanly, falls back to GMRES(m) with the
/// same preconditioner. A corrupted right-hand side (non-finite norm)
/// is reported as [`StopReason::NonFinite`] without burning iterations.
#[allow(clippy::too_many_arguments)] // mirrors idr_block_jacobi + policy
pub fn idr_block_jacobi_robust<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    s: usize,
    part: &BlockPartition,
    method: BjMethod,
    backend: Arc<dyn Backend<T>>,
    params: &SolveParams,
    policy: &RobustPolicy,
) -> Result<RobustSolve<T>, FactorError> {
    let name = backend.name();
    let m = BlockJacobi::setup_with_backend(a, part, method, backend)?;
    let normb = nrm2(b).to_f64();

    let mut result = idr(a, b, s, &m, params);
    let mut restarts = 0usize;
    let mut used_gmres = false;

    while result.reason.is_abnormal() && restarts < policy.max_restarts {
        let r = residual(a, &result.x, b);
        if !nrm2(&r).to_f64().is_finite() {
            // the right-hand side (or iterate) is corrupted beyond what
            // a restart can repair
            break;
        }
        restarts += 1;
        let retry = idr(a, &r, s, &m, params);
        let mut x = result.x.clone();
        axpy(T::ONE, &retry.x, &mut x);
        result = merge_attempts(a, b, normb, x, &result, retry);
    }

    if result.reason.is_abnormal() && policy.gmres_restart > 0 {
        used_gmres = true;
        let g = gmres(a, b, policy.gmres_restart, &m, params);
        let x = g.x.clone();
        result = merge_attempts(a, b, normb, x, &result, g);
    }

    Ok(RobustSolve {
        solve: PrecondSolve {
            result,
            setup_time: m.setup_time,
            fallback_blocks: m.fallback_blocks,
            setup_stats: m.stats,
            backend_name: name,
        },
        restarts,
        used_gmres,
    })
}

/// Fold a retry/fallback attempt into the running result: the iterate
/// is `x`, counters and histories accumulate, the stop reason is the
/// latest attempt's (upgraded to `Converged` if the true residual now
/// meets the tolerance).
fn merge_attempts<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    normb: f64,
    x: Vec<T>,
    prev: &SolveResult<T>,
    attempt: SolveResult<T>,
) -> SolveResult<T> {
    let final_relres = if normb == 0.0 {
        0.0
    } else {
        nrm2(&residual(a, &x, b)).to_f64() / normb
    };
    let mut history = prev.history.clone();
    history.extend_from_slice(&attempt.history);
    SolveResult {
        x,
        iterations: prev.iterations + attempt.iterations,
        final_relres,
        reason: attempt.reason,
        solve_time: prev.solve_time + attempt.solve_time,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopReason;
    use vbatch_exec::CpuSequential;
    use vbatch_sparse::gen::laplace::laplace_2d;

    fn backend() -> Arc<dyn Backend<f64>> {
        Arc::new(CpuSequential)
    }

    #[test]
    fn robust_solve_converges_without_intervention() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let r = idr_block_jacobi_robust(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
            &RobustPolicy::default(),
        )
        .unwrap();
        assert!(r.solve.result.converged());
        assert_eq!(r.restarts, 0);
        assert!(!r.used_gmres);
    }

    #[test]
    fn reusable_solver_matches_one_shot_bitwise() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let part = BlockPartition::uniform(64, 4);
        let one_shot = idr_block_jacobi(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        let mut handle = IdrBjSolver::setup(
            &a,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
        )
        .unwrap();
        let r1 = handle.solve(&a, &b);
        let r2 = handle.solve(&a, &b); // reuses recycled buffers
        assert!(r1.converged());
        assert_eq!(one_shot.result.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(one_shot.result.iterations, r2.iterations);
        assert!(handle.workspace().high_water() > 0);
        assert_eq!(handle.backend_name(), "cpu-seq");
        // the prepared apply ran once per IDR iteration in both solves
        let stats = handle.precond().apply_stats();
        assert_eq!(stats.applies as usize, 2 * r1.iterations);
    }

    #[test]
    fn nan_rhs_reports_non_finite_not_max_iters() {
        let a = laplace_2d::<f64>(6, 6);
        let mut b = vec![1.0; 36];
        b[0] = f64::NAN;
        let part = BlockPartition::uniform(36, 4);
        let r = idr_block_jacobi_robust(
            &a,
            &b,
            4,
            &part,
            BjMethod::SmallLu,
            backend(),
            &SolveParams::default(),
            &RobustPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.solve.result.reason, StopReason::NonFinite);
        assert!(r.used_gmres, "policy exhausts the fallback chain");
        assert_eq!(r.restarts, 0, "a NaN RHS cannot be restarted");
    }
}
