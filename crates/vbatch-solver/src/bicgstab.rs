//! BiCGSTAB (van der Vorst) with left preconditioning — a second
//! nonsymmetric Krylov solver for cross-checking the IDR results (the
//! MAGMA-sparse study the paper builds on, ref.\[11\], compares both).
//!
//! All nine iteration vectors come from a [`KrylovWorkspace`]; the
//! iteration loop performs no heap allocations.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::control::{SolveParams, SolveResult, StagnationGuard, StopReason};
use crate::workspace::KrylovWorkspace;
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Solve `A x = b` with preconditioned BiCGSTAB.
pub fn bicgstab<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    let mut ws = KrylovWorkspace::new();
    bicgstab_with_workspace(a, b, m, params, &mut ws)
}

/// [`bicgstab`] drawing all iteration vectors from a caller-owned
/// [`KrylovWorkspace`]. Results are bitwise identical to [`bicgstab`].
pub fn bicgstab_with_workspace<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    m: &M,
    params: &SolveParams,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    let n = a.nrows();
    let _span = vbatch_trace::span!("solver.bicgstab", n);
    let start = Instant::now();
    let normb = nrm2(b).to_f64();
    let mut history = Vec::with_capacity(if params.record_history {
        params.max_iters + 2
    } else {
        0
    });

    let finish = |x: Vec<T>, iters: usize, reason: StopReason, history: Vec<f64>| {
        let relres = if normb == 0.0 {
            0.0
        } else {
            nrm2(&residual(a, &x, b)).to_f64() / normb
        };
        SolveResult {
            x,
            iterations: iters,
            final_relres: relres,
            reason,
            solve_time: start.elapsed(),
            history,
        }
    };
    if normb == 0.0 {
        return finish(ws.take(n), 0, StopReason::Converged, history);
    }
    if !normb.is_finite() {
        // corrupted right-hand side: report it, don't iterate on NaN
        return finish(ws.take(n), 0, StopReason::NonFinite, history);
    }
    let tolb = params.tol * normb;
    let mut stagnation = StagnationGuard::new(params);

    let mut x = ws.take(n);
    let mut r = ws.take(n);
    r.copy_from_slice(b);
    let mut r_hat = ws.take(n);
    r_hat.copy_from_slice(&r);
    let mut rho = T::ONE;
    let mut alpha = T::ONE;
    let mut omega = T::ONE;
    let mut v = ws.take(n);
    let mut p = ws.take(n);
    // per-iteration temporaries, checked out once
    let mut phat = ws.take(n);
    let mut s_vec = ws.take(n);
    let mut shat = ws.take(n);
    let mut t = ws.take(n);
    let mut normr = nrm2(&r).to_f64();
    if params.record_history {
        history.push(normr / normb);
    }
    let mut iter = 0usize;
    let mut stop: Option<StopReason> = None;

    while normr > tolb && iter < params.max_iters {
        let _step = vbatch_trace::span!("bicgstab.step", iter);
        vbatch_trace::counter!("solver.iterations", 1);
        let rho_new = dot(&r_hat, &r);
        if rho_new == T::ZERO || !rho_new.is_finite() {
            stop = Some(StopReason::Breakdown);
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        phat.copy_from_slice(&p);
        m.apply_inplace(&mut phat);
        spmv(a, &phat, &mut v);
        iter += 1;
        let denom = dot(&r_hat, &v);
        if denom == T::ZERO || !denom.is_finite() {
            stop = Some(StopReason::Breakdown);
            break;
        }
        alpha = rho / denom;
        s_vec.copy_from_slice(&r);
        axpy(-alpha, &v, &mut s_vec);
        let norms = nrm2(&s_vec).to_f64();
        if norms <= tolb {
            axpy(alpha, &phat, &mut x);
            if params.record_history {
                history.push(norms / normb);
            }
            stop = Some(StopReason::Converged);
            break;
        }
        shat.copy_from_slice(&s_vec);
        m.apply_inplace(&mut shat);
        spmv(a, &shat, &mut t);
        iter += 1;
        let tt = dot(&t, &t);
        if tt == T::ZERO {
            stop = Some(StopReason::Breakdown);
            break;
        }
        omega = dot(&t, &s_vec) / tt;
        if omega == T::ZERO || !omega.is_finite() {
            stop = Some(StopReason::Breakdown);
            break;
        }
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        // r takes over s_vec's values (former move-assign, now a swap so
        // both buffers stay checked out)
        std::mem::swap(&mut r, &mut s_vec);
        axpy(-omega, &t, &mut r);
        normr = nrm2(&r).to_f64();
        if params.record_history {
            history.push(normr / normb);
        }
        if !normr.is_finite() {
            stop = Some(StopReason::NonFinite);
            break;
        }
        if normr > tolb && stagnation.observe(normr) {
            stop = Some(StopReason::Stagnated);
            break;
        }
    }
    let reason = stop.unwrap_or(if normr <= tolb {
        StopReason::Converged
    } else {
        StopReason::MaxIterations
    });
    ws.recycle_all([r, r_hat, v, p, phat, s_vec, shat, t]);
    finish(x, iter, reason, history)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_precond::Identity;
    use vbatch_sparse::gen::laplace::{convection_diffusion_2d, laplace_2d};

    #[test]
    fn solves_spd_system() {
        let a = laplace_2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let r = bicgstab(&a, &b, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
        assert!(r.final_relres < 1e-6);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion_2d::<f64>(10, 10, 1.2);
        let b: Vec<f64> = (0..100).map(|i| (i % 7) as f64 - 3.0).collect();
        let r = bicgstab(&a, &b, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
    }

    #[test]
    fn zero_rhs() {
        let a = laplace_2d::<f64>(4, 4);
        let r = bicgstab(&a, &[0.0; 16], &Identity::new(16), &SolveParams::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let a = laplace_2d::<f64>(25, 25);
        let b = vec![1.0; 625];
        let params = SolveParams::default().with_max_iters(4);
        let r = bicgstab(&a, &b, &Identity::new(625), &params);
        assert_eq!(r.reason, StopReason::MaxIterations);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        let a = convection_diffusion_2d::<f64>(9, 9, 1.1);
        let b = vec![1.0; 81];
        let fresh = bicgstab(&a, &b, &Identity::new(81), &SolveParams::default());
        let mut ws = KrylovWorkspace::for_bicgstab(81);
        let r1 =
            bicgstab_with_workspace(&a, &b, &Identity::new(81), &SolveParams::default(), &mut ws);
        let r2 =
            bicgstab_with_workspace(&a, &b, &Identity::new(81), &SolveParams::default(), &mut ws);
        assert_eq!(fresh.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(fresh.iterations, r1.iterations);
    }
}
