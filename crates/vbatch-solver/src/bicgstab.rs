//! BiCGSTAB (van der Vorst) with left preconditioning — a second
//! nonsymmetric Krylov solver for cross-checking the IDR results (the
//! MAGMA-sparse study the paper builds on, ref.\[11\], compares both).

use crate::control::{SolveParams, SolveResult, StagnationGuard, StopReason};
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Solve `A x = b` with preconditioned BiCGSTAB.
pub fn bicgstab<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    let n = a.nrows();
    let start = Instant::now();
    let normb = nrm2(b).to_f64();
    let mut history = Vec::new();

    let finish = |x: Vec<T>, iters: usize, reason: StopReason, history: Vec<f64>| {
        let relres = if normb == 0.0 {
            0.0
        } else {
            nrm2(&residual(a, &x, b)).to_f64() / normb
        };
        SolveResult {
            x,
            iterations: iters,
            final_relres: relres,
            reason,
            solve_time: start.elapsed(),
            history,
        }
    };
    if normb == 0.0 {
        return finish(vec![T::ZERO; n], 0, StopReason::Converged, history);
    }
    if !normb.is_finite() {
        // corrupted right-hand side: report it, don't iterate on NaN
        return finish(vec![T::ZERO; n], 0, StopReason::NonFinite, history);
    }
    let tolb = params.tol * normb;
    let mut stagnation = StagnationGuard::new(params);

    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho = T::ONE;
    let mut alpha = T::ONE;
    let mut omega = T::ONE;
    let mut v = vec![T::ZERO; n];
    let mut p = vec![T::ZERO; n];
    let mut normr = nrm2(&r).to_f64();
    if params.record_history {
        history.push(normr / normb);
    }
    let mut iter = 0usize;

    while normr > tolb && iter < params.max_iters {
        let rho_new = dot(&r_hat, &r);
        if rho_new == T::ZERO || !rho_new.is_finite() {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let mut phat = p.clone();
        m.apply_inplace(&mut phat);
        spmv(a, &phat, &mut v);
        iter += 1;
        let denom = dot(&r_hat, &v);
        if denom == T::ZERO || !denom.is_finite() {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        alpha = rho / denom;
        let mut s_vec = r.clone();
        axpy(-alpha, &v, &mut s_vec);
        let norms = nrm2(&s_vec).to_f64();
        if norms <= tolb {
            axpy(alpha, &phat, &mut x);
            if params.record_history {
                history.push(norms / normb);
            }
            return finish(x, iter, StopReason::Converged, history);
        }
        let mut shat = s_vec.clone();
        m.apply_inplace(&mut shat);
        let mut t = vec![T::ZERO; n];
        spmv(a, &shat, &mut t);
        iter += 1;
        let tt = dot(&t, &t);
        if tt == T::ZERO {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        omega = dot(&t, &s_vec) / tt;
        if omega == T::ZERO || !omega.is_finite() {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        r = s_vec;
        axpy(-omega, &t, &mut r);
        normr = nrm2(&r).to_f64();
        if params.record_history {
            history.push(normr / normb);
        }
        if !normr.is_finite() {
            return finish(x, iter, StopReason::NonFinite, history);
        }
        if normr > tolb && stagnation.observe(normr) {
            return finish(x, iter, StopReason::Stagnated, history);
        }
    }
    let reason = if normr <= tolb {
        StopReason::Converged
    } else {
        StopReason::MaxIterations
    };
    finish(x, iter, reason, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbatch_precond::Identity;
    use vbatch_sparse::gen::laplace::{convection_diffusion_2d, laplace_2d};

    #[test]
    fn solves_spd_system() {
        let a = laplace_2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let r = bicgstab(&a, &b, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
        assert!(r.final_relres < 1e-6);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion_2d::<f64>(10, 10, 1.2);
        let b: Vec<f64> = (0..100).map(|i| (i % 7) as f64 - 3.0).collect();
        let r = bicgstab(&a, &b, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
    }

    #[test]
    fn zero_rhs() {
        let a = laplace_2d::<f64>(4, 4);
        let r = bicgstab(&a, &[0.0; 16], &Identity::new(16), &SolveParams::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let a = laplace_2d::<f64>(25, 25);
        let b = vec![1.0; 625];
        let params = SolveParams::default().with_max_iters(4);
        let r = bicgstab(&a, &b, &Identity::new(625), &params);
        assert_eq!(r.reason, StopReason::MaxIterations);
    }
}
