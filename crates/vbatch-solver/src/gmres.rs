//! Restarted GMRES(m) with left preconditioning and modified
//! Gram-Schmidt orthogonalization — the long-recurrence reference
//! against the short-recurrence solvers (IDR, BiCGSTAB).
//!
//! The Krylov basis, Hessenberg columns (flat, row-major) and rotation
//! state all come from a [`KrylovWorkspace`]; after warm-up neither the
//! restart cycles nor the inner Arnoldi steps allocate.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::control::{SolveParams, SolveResult, StopReason};
use crate::workspace::KrylovWorkspace;
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Solve `A x = b` with preconditioned GMRES, restarting every
/// `restart` iterations.
pub fn gmres<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    restart: usize,
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    let mut ws = KrylovWorkspace::new();
    gmres_with_workspace(a, b, restart, m, params, &mut ws)
}

/// [`gmres`] drawing the Krylov basis and all iteration state from a
/// caller-owned [`KrylovWorkspace`]. Results are bitwise identical to
/// [`gmres`].
pub fn gmres_with_workspace<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    restart: usize,
    m: &M,
    params: &SolveParams,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    assert!(restart >= 1);
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    let n = a.nrows();
    let _span = vbatch_trace::span!("solver.gmres", n);
    let start = Instant::now();
    let normb = nrm2(b).to_f64();
    let mut history = Vec::with_capacity(if params.record_history {
        2 * (params.max_iters + 2)
    } else {
        0
    });

    let finish = |x: Vec<T>, iters: usize, reason: StopReason, history: Vec<f64>| {
        let relres = if normb == 0.0 {
            0.0
        } else {
            nrm2(&residual(a, &x, b)).to_f64() / normb
        };
        SolveResult {
            x,
            iterations: iters,
            final_relres: relres,
            reason,
            solve_time: start.elapsed(),
            history,
        }
    };
    if normb == 0.0 {
        return finish(ws.take(n), 0, StopReason::Converged, history);
    }
    if !normb.is_finite() {
        // corrupted right-hand side: report it, don't iterate on NaN
        return finish(ws.take(n), 0, StopReason::NonFinite, history);
    }
    // left preconditioning: the Arnoldi residual is the *preconditioned*
    // one; convergence is still checked on the true residual at restarts
    let mut x = ws.take(n);
    let mut r = ws.take(n);
    let mut w = ws.take(n);
    // persistent Krylov basis; per restart only basis[..=k_done] is live
    let mut basis: Vec<Vec<T>> = (0..restart + 1).map(|_| ws.take(n)).collect();
    // Hessenberg (restart+1 rows x restart cols, flat) + Givens state;
    // every entry is written before it is read within a restart cycle,
    // so none of these need re-zeroing between cycles
    let mut h = ws.take((restart + 1) * restart);
    let mut cs = ws.take(restart);
    let mut sn = ws.take(restart);
    let mut g = ws.take(restart + 1);
    let mut y = ws.take(restart);
    let mut iter = 0usize;
    let reason;

    'outer: loop {
        // true residual r = b - A x, computed in place
        spmv(a, &x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let true_normr = nrm2(&r).to_f64();
        if params.record_history {
            history.push(true_normr / normb);
        }
        if !true_normr.is_finite() {
            reason = StopReason::NonFinite;
            break 'outer;
        }
        if true_normr <= params.tol * normb {
            reason = StopReason::Converged;
            break 'outer;
        }
        if iter >= params.max_iters {
            reason = StopReason::MaxIterations;
            break 'outer;
        }
        m.apply_inplace(&mut r);
        let beta = nrm2(&r);
        if !beta.is_finite() {
            // the preconditioner produced NaN/Inf — a faulted block
            reason = StopReason::NonFinite;
            break 'outer;
        }
        if beta == T::ZERO {
            reason = StopReason::Breakdown;
            break 'outer;
        }
        // Arnoldi with MGS
        basis[0].copy_from_slice(&r);
        vbatch_sparse::scal(T::ONE / beta, &mut basis[0]);
        g[0] = beta;
        let mut k_done = 0usize;
        for k in 0..restart {
            if iter >= params.max_iters {
                break;
            }
            let _step = vbatch_trace::span!("gmres.step", iter);
            vbatch_trace::counter!("solver.iterations", 1);
            spmv(a, &basis[k], &mut w);
            iter += 1;
            m.apply_inplace(&mut w);
            for (i, vi) in basis[..=k].iter().enumerate() {
                h[i * restart + k] = dot(vi, &w);
                axpy(-h[i * restart + k], vi, &mut w);
            }
            let hk1 = nrm2(&w);
            h[(k + 1) * restart + k] = hk1;
            // apply previous rotations to column k
            for i in 0..k {
                let t = cs[i] * h[i * restart + k] + sn[i] * h[(i + 1) * restart + k];
                h[(i + 1) * restart + k] =
                    -sn[i] * h[i * restart + k] + cs[i] * h[(i + 1) * restart + k];
                h[i * restart + k] = t;
            }
            // new rotation
            let denom = (h[k * restart + k] * h[k * restart + k] + hk1 * hk1).sqrt();
            if denom == T::ZERO {
                k_done = k;
                break;
            }
            cs[k] = h[k * restart + k] / denom;
            sn[k] = hk1 / denom;
            h[k * restart + k] = denom;
            h[(k + 1) * restart + k] = T::ZERO;
            g[k + 1] = -sn[k] * g[k];
            g[k] = cs[k] * g[k];
            k_done = k + 1;
            let prec_res = g[k + 1].abs().to_f64();
            if params.record_history {
                history.push(prec_res / normb);
            }
            if hk1 == T::ZERO || prec_res <= params.tol * normb * 0.1 {
                break;
            }
            if k + 1 < restart + 1 {
                basis[k + 1].copy_from_slice(&w);
                vbatch_sparse::scal(T::ONE / hk1, &mut basis[k + 1]);
            }
        }
        // back-substitute y and update x
        if k_done == 0 {
            reason = StopReason::Breakdown;
            break 'outer;
        }
        for i in (0..k_done).rev() {
            let mut acc = g[i];
            for j in i + 1..k_done {
                acc -= h[i * restart + j] * y[j];
            }
            y[i] = acc / h[i * restart + i];
        }
        for (j, &yj) in y[..k_done].iter().enumerate() {
            axpy(yj, &basis[j], &mut x);
        }
    }

    ws.recycle_all([r, w, h, cs, sn, g, y]);
    ws.recycle_all(basis);
    finish(x, iter, reason, history)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_precond::{Identity, Jacobi};
    use vbatch_sparse::gen::laplace::{convection_diffusion_2d, laplace_2d};

    #[test]
    fn solves_spd_system() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let r = gmres(&a, &b, 30, &Identity::new(64), &SolveParams::default());
        assert!(r.converged(), "{:?} relres {}", r.reason, r.final_relres);
    }

    #[test]
    fn solves_nonsymmetric_with_restart() {
        let a = convection_diffusion_2d::<f64>(10, 10, 0.9);
        let b: Vec<f64> = (0..100).map(|i| 1.0 + (i % 3) as f64).collect();
        let r = gmres(&a, &b, 15, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
        assert!(r.final_relres < 1e-6);
    }

    #[test]
    fn preconditioning_works() {
        let a = convection_diffusion_2d::<f64>(10, 10, 0.9);
        let b = vec![1.0; 100];
        let jac = Jacobi::setup(&a).unwrap();
        let r = gmres(&a, &b, 20, &jac, &SolveParams::default());
        assert!(r.converged());
    }

    #[test]
    fn zero_rhs() {
        let a = laplace_2d::<f64>(3, 3);
        let r = gmres(&a, &[0.0; 9], 5, &Identity::new(9), &SolveParams::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap() {
        let a = laplace_2d::<f64>(20, 20);
        let b = vec![1.0; 400];
        let r = gmres(
            &a,
            &b,
            10,
            &Identity::new(400),
            &SolveParams::default().with_max_iters(7),
        );
        assert_eq!(r.reason, StopReason::MaxIterations);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        let a = convection_diffusion_2d::<f64>(9, 9, 0.8);
        let b = vec![1.0; 81];
        let fresh = gmres(&a, &b, 12, &Identity::new(81), &SolveParams::default());
        let mut ws = KrylovWorkspace::for_gmres(81, 12);
        let r1 = gmres_with_workspace(
            &a,
            &b,
            12,
            &Identity::new(81),
            &SolveParams::default(),
            &mut ws,
        );
        let r2 = gmres_with_workspace(
            &a,
            &b,
            12,
            &Identity::new(81),
            &SolveParams::default(),
            &mut ws,
        );
        assert_eq!(fresh.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(fresh.iterations, r1.iterations);
    }
}
