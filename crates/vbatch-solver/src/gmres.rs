//! Restarted GMRES(m) with left preconditioning and modified
//! Gram-Schmidt orthogonalization — the long-recurrence reference
//! against the short-recurrence solvers (IDR, BiCGSTAB).

use crate::control::{SolveParams, SolveResult, StopReason};
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Solve `A x = b` with preconditioned GMRES, restarting every
/// `restart` iterations.
pub fn gmres<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    restart: usize,
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    assert!(restart >= 1);
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    let n = a.nrows();
    let start = Instant::now();
    let normb = nrm2(b).to_f64();
    let mut history = Vec::new();

    let finish = |x: Vec<T>, iters: usize, reason: StopReason, history: Vec<f64>| {
        let relres = if normb == 0.0 {
            0.0
        } else {
            nrm2(&residual(a, &x, b)).to_f64() / normb
        };
        SolveResult {
            x,
            iterations: iters,
            final_relres: relres,
            reason,
            solve_time: start.elapsed(),
            history,
        }
    };
    if normb == 0.0 {
        return finish(vec![T::ZERO; n], 0, StopReason::Converged, history);
    }
    if !normb.is_finite() {
        // corrupted right-hand side: report it, don't iterate on NaN
        return finish(vec![T::ZERO; n], 0, StopReason::NonFinite, history);
    }
    // left preconditioning: the Arnoldi residual is the *preconditioned*
    // one; convergence is still checked on the true residual at restarts
    let mut x = vec![T::ZERO; n];
    let mut iter = 0usize;

    loop {
        // true residual, then preconditioned residual
        let mut r = residual(a, &x, b);
        let true_normr = nrm2(&r).to_f64();
        if params.record_history {
            history.push(true_normr / normb);
        }
        if !true_normr.is_finite() {
            return finish(x, iter, StopReason::NonFinite, history);
        }
        if true_normr <= params.tol * normb {
            return finish(x, iter, StopReason::Converged, history);
        }
        if iter >= params.max_iters {
            return finish(x, iter, StopReason::MaxIterations, history);
        }
        m.apply_inplace(&mut r);
        let beta = nrm2(&r);
        if !beta.is_finite() {
            // the preconditioner produced NaN/Inf — a faulted block
            return finish(x, iter, StopReason::NonFinite, history);
        }
        if beta == T::ZERO {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        // Arnoldi with MGS
        let mut v: Vec<Vec<T>> = Vec::with_capacity(restart + 1);
        {
            let mut v0 = r;
            vbatch_sparse::scal(T::ONE / beta, &mut v0);
            v.push(v0);
        }
        let mut h = vec![vec![T::ZERO; restart]; restart + 1];
        // Givens rotations
        let mut cs = vec![T::ZERO; restart];
        let mut sn = vec![T::ZERO; restart];
        let mut g = vec![T::ZERO; restart + 1];
        g[0] = beta;
        let mut k_done = 0usize;
        for k in 0..restart {
            if iter >= params.max_iters {
                break;
            }
            let mut w = vec![T::ZERO; n];
            spmv(a, &v[k], &mut w);
            iter += 1;
            m.apply_inplace(&mut w);
            for (i, vi) in v.iter().enumerate() {
                h[i][k] = dot(vi, &w);
                axpy(-h[i][k], vi, &mut w);
            }
            let hk1 = nrm2(&w);
            h[k + 1][k] = hk1;
            // apply previous rotations to column k
            for i in 0..k {
                let t = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
                h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
                h[i][k] = t;
            }
            // new rotation
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt();
            if denom == T::ZERO {
                k_done = k;
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = hk1 / denom;
            h[k][k] = denom;
            h[k + 1][k] = T::ZERO;
            g[k + 1] = -sn[k] * g[k];
            g[k] = cs[k] * g[k];
            k_done = k + 1;
            let prec_res = g[k + 1].abs().to_f64();
            if params.record_history {
                history.push(prec_res / normb);
            }
            if hk1 == T::ZERO || prec_res <= params.tol * normb * 0.1 {
                break;
            }
            let mut vk1 = w;
            vbatch_sparse::scal(T::ONE / hk1, &mut vk1);
            v.push(vk1);
        }
        // back-substitute y and update x
        if k_done == 0 {
            return finish(x, iter, StopReason::Breakdown, history);
        }
        let mut y = vec![T::ZERO; k_done];
        for i in (0..k_done).rev() {
            let mut acc = g[i];
            for j in i + 1..k_done {
                acc -= h[i][j] * y[j];
            }
            y[i] = acc / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            axpy(yj, &v[j], &mut x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbatch_precond::{Identity, Jacobi};
    use vbatch_sparse::gen::laplace::{convection_diffusion_2d, laplace_2d};

    #[test]
    fn solves_spd_system() {
        let a = laplace_2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let r = gmres(&a, &b, 30, &Identity::new(64), &SolveParams::default());
        assert!(r.converged(), "{:?} relres {}", r.reason, r.final_relres);
    }

    #[test]
    fn solves_nonsymmetric_with_restart() {
        let a = convection_diffusion_2d::<f64>(10, 10, 0.9);
        let b: Vec<f64> = (0..100).map(|i| 1.0 + (i % 3) as f64).collect();
        let r = gmres(&a, &b, 15, &Identity::new(100), &SolveParams::default());
        assert!(r.converged());
        assert!(r.final_relres < 1e-6);
    }

    #[test]
    fn preconditioning_works() {
        let a = convection_diffusion_2d::<f64>(10, 10, 0.9);
        let b = vec![1.0; 100];
        let jac = Jacobi::setup(&a).unwrap();
        let r = gmres(&a, &b, 20, &jac, &SolveParams::default());
        assert!(r.converged());
    }

    #[test]
    fn zero_rhs() {
        let a = laplace_2d::<f64>(3, 3);
        let r = gmres(&a, &[0.0; 9], 5, &Identity::new(9), &SolveParams::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap() {
        let a = laplace_2d::<f64>(20, 20);
        let b = vec![1.0; 400];
        let r = gmres(
            &a,
            &b,
            10,
            &Identity::new(400),
            &SolveParams::default().with_max_iters(7),
        );
        assert_eq!(r.reason, StopReason::MaxIterations);
    }
}
