//! # vbatch-solver
//!
//! Krylov solvers for the block-Jacobi evaluation of the ICPP'17 paper:
//! **IDR(s)** with biorthogonalization ([`idr()`] — the paper drives
//! IDR(4)), plus BiCGSTAB ([`bicgstab()`]), CG ([`cg()`]) and restarted
//! GMRES ([`gmres()`]) as cross-checks. All solvers take any
//! `vbatch_precond::Preconditioner`, use the paper's stopping protocol
//! ([`control`]: relative residual `1e-6`, cap 10,000) and report
//! iterations, true final residual, timing and optional histories.
//! The [`driver`] module adds a backend-parameterized entry point that
//! builds the block-Jacobi preconditioner on an explicit
//! `vbatch-exec` [`vbatch_exec::Backend`].
//!
//! Every solver distinguishes abnormal endings — recurrence
//! [`StopReason::Breakdown`], [`StopReason::NonFinite`] residuals from
//! faulted data, and optional [`StopReason::Stagnated`] detection — and
//! [`driver::idr_block_jacobi_robust`] reacts to them with a
//! restart-then-GMRES-fallback policy ([`driver::RobustPolicy`]).

pub mod bicgstab;
pub mod cg;
pub mod control;
pub mod driver;
pub mod gmres;
pub mod idr;
pub mod spike;
pub mod workspace;

pub use bicgstab::{bicgstab, bicgstab_with_workspace};
pub use cg::{cg, cg_with_workspace};
pub use control::{SolveParams, SolveResult, StagnationGuard, StopReason};
pub use driver::{
    idr_block_jacobi, idr_block_jacobi_robust, idr_precond, idr_precond_kind, idr_precond_robust,
    IdrBjSolver, IdrSolver, PrecondSolve, RobustPolicy, RobustSolve,
};
pub use gmres::{gmres, gmres_with_workspace};
pub use idr::{idr, idr_smoothed, idr_smoothed_with_workspace, idr_with_workspace};
pub use spike::{SpikeSolve, SpikeSolver};
pub use workspace::KrylovWorkspace;
