//! Preconditioned Conjugate Gradients — for the SPD problems in the
//! suite (pairs naturally with the Cholesky-based block-Jacobi
//! extension).
//!
//! All iteration vectors come from a [`KrylovWorkspace`]; the iteration
//! loop performs no heap allocations.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::control::{SolveParams, SolveResult, StopReason};
use crate::workspace::KrylovWorkspace;
use std::time::Instant;
use vbatch_core::Scalar;
use vbatch_precond::Preconditioner;
use vbatch_sparse::{axpy, dot, nrm2, residual, spmv, CsrMatrix};

/// Solve the SPD system `A x = b` with preconditioned CG.
pub fn cg<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    m: &M,
    params: &SolveParams,
) -> SolveResult<T> {
    let mut ws = KrylovWorkspace::new();
    cg_with_workspace(a, b, m, params, &mut ws)
}

/// [`cg`] drawing all iteration vectors from a caller-owned
/// [`KrylovWorkspace`]. Results are bitwise identical to [`cg`].
pub fn cg_with_workspace<T: Scalar, M: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    m: &M,
    params: &SolveParams,
    ws: &mut KrylovWorkspace<T>,
) -> SolveResult<T> {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(b.len(), a.nrows());
    let n = a.nrows();
    let _span = vbatch_trace::span!("solver.cg", n);
    let start = Instant::now();
    let normb = nrm2(b).to_f64();
    let mut history = Vec::with_capacity(if params.record_history {
        params.max_iters + 2
    } else {
        0
    });

    let finish = |x: Vec<T>, iters: usize, reason: StopReason, history: Vec<f64>| {
        let relres = if normb == 0.0 {
            0.0
        } else {
            nrm2(&residual(a, &x, b)).to_f64() / normb
        };
        SolveResult {
            x,
            iterations: iters,
            final_relres: relres,
            reason,
            solve_time: start.elapsed(),
            history,
        }
    };
    if normb == 0.0 {
        return finish(ws.take(n), 0, StopReason::Converged, history);
    }
    let tolb = params.tol * normb;

    let mut x = ws.take(n);
    let mut r = ws.take(n);
    r.copy_from_slice(b);
    let mut z = ws.take(n);
    z.copy_from_slice(&r);
    m.apply_inplace(&mut z);
    let mut p = ws.take(n);
    p.copy_from_slice(&z);
    let mut ap = ws.take(n);
    let mut rz = dot(&r, &z);
    let mut normr = nrm2(&r).to_f64();
    if params.record_history {
        history.push(normr / normb);
    }
    let mut iter = 0usize;
    let mut stop: Option<StopReason> = None;

    while normr > tolb && iter < params.max_iters {
        let _step = vbatch_trace::span!("cg.step", iter);
        vbatch_trace::counter!("solver.iterations", 1);
        spmv(a, &p, &mut ap);
        iter += 1;
        let pap = dot(&p, &ap);
        if pap == T::ZERO || !pap.is_finite() {
            stop = Some(StopReason::Breakdown);
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        normr = nrm2(&r).to_f64();
        if params.record_history {
            history.push(normr / normb);
        }
        if !normr.is_finite() {
            stop = Some(StopReason::NonFinite);
            break;
        }
        if normr <= tolb {
            break;
        }
        z.copy_from_slice(&r);
        m.apply_inplace(&mut z);
        let rz_new = dot(&r, &z);
        if rz == T::ZERO {
            stop = Some(StopReason::Breakdown);
            break;
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let reason = stop.unwrap_or(if normr <= tolb {
        StopReason::Converged
    } else {
        StopReason::MaxIterations
    });
    ws.recycle_all([r, z, p, ap]);
    finish(x, iter, reason, history)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_precond::{Identity, Jacobi};
    use vbatch_sparse::gen::laplace::laplace_2d;

    #[test]
    fn solves_laplacian() {
        let a = laplace_2d::<f64>(12, 12);
        let b = vec![1.0; 144];
        let r = cg(&a, &b, &Identity::new(144), &SolveParams::default());
        assert!(r.converged());
        assert!(r.final_relres < 1e-6);
    }

    #[test]
    fn preconditioned_cg_converges() {
        let a = laplace_2d::<f64>(12, 12);
        let b = vec![1.0; 144];
        let jac = Jacobi::setup(&a).unwrap();
        let r = cg(&a, &b, &jac, &SolveParams::default());
        assert!(r.converged());
    }

    #[test]
    fn zero_rhs() {
        let a = laplace_2d::<f64>(3, 3);
        let r = cg(&a, &[0.0; 9], &Identity::new(9), &SolveParams::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap() {
        let a = laplace_2d::<f64>(30, 30);
        let b = vec![1.0; 900];
        let r = cg(
            &a,
            &b,
            &Identity::new(900),
            &SolveParams::default().with_max_iters(3),
        );
        assert_eq!(r.reason, StopReason::MaxIterations);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        let a = laplace_2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let fresh = cg(&a, &b, &Identity::new(100), &SolveParams::default());
        let mut ws = KrylovWorkspace::for_cg(100);
        let r1 = cg_with_workspace(
            &a,
            &b,
            &Identity::new(100),
            &SolveParams::default(),
            &mut ws,
        );
        let r2 = cg_with_workspace(
            &a,
            &b,
            &Identity::new(100),
            &SolveParams::default(),
            &mut ws,
        );
        assert_eq!(fresh.x, r1.x);
        assert_eq!(r1.x, r2.x);
        assert_eq!(fresh.iterations, r1.iterations);
    }
}
