//! Reusable iteration-vector workspace for the Krylov solvers.
//!
//! Every solver in this crate checks its iteration vectors (residual,
//! search directions, Krylov basis, shadow-space projections) out of a
//! [`KrylovWorkspace`] instead of allocating them per solve — and,
//! crucially, *never* allocates inside the iteration loop: all
//! per-iteration temporaries are checked out once before the loop and
//! reused in place. Combined with the prepared preconditioner apply of
//! `vbatch-exec`, a warm block-Jacobi + IDR(4) iteration performs zero
//! heap allocations (proven by the counting-allocator test in
//! `tests/zero_alloc.rs`).
//!
//! The workspace is a free-list of buffers: [`KrylovWorkspace::take`]
//! returns a zero-filled vector of the requested length, reusing a
//! recycled buffer when one with sufficient capacity exists. Reuse is
//! numerically invisible — a recycled buffer is re-zeroed on checkout,
//! so solves through a shared workspace are bitwise identical to
//! solves through fresh allocations (locked down by the
//! `workspace_reuse_is_bitwise_identical*` tests in every solver
//! module).

use vbatch_core::Scalar;

/// A free-list pool of iteration vectors for repeated Krylov solves.
#[derive(Debug, Default)]
pub struct KrylovWorkspace<T> {
    free: Vec<Vec<T>>,
    outstanding: usize,
    high_water: usize,
}

impl<T: Scalar> KrylovWorkspace<T> {
    /// Empty workspace; buffers are created on first checkout.
    pub fn new() -> Self {
        KrylovWorkspace {
            free: Vec::new(),
            outstanding: 0,
            high_water: 0,
        }
    }

    /// Workspace pre-seeded for IDR(s) on an order-`n` system: the
    /// shadow space, the `G`/`U` direction blocks, the iteration
    /// temporaries, and the two cycle-local small vectors.
    pub fn for_idr(n: usize, s: usize) -> Self {
        let mut ws = Self::new();
        // x, r, v, uk, gk, t + smoother pair + p, g, u blocks
        ws.seed(n, 8 + 3 * s);
        // f and c cycle vectors + the flat s*s projection matrix
        ws.seed(s, 2);
        ws.seed(s * s, 1);
        ws
    }

    /// Workspace pre-seeded for GMRES(m): the basis block plus the
    /// iteration temporaries and the flat Hessenberg/rotation storage.
    pub fn for_gmres(n: usize, restart: usize) -> Self {
        let mut ws = Self::new();
        ws.seed(n, restart + 4);
        ws.seed((restart + 1) * restart, 1);
        ws.seed(restart + 1, 4);
        ws
    }

    /// Workspace pre-seeded for BiCGSTAB on an order-`n` system.
    pub fn for_bicgstab(n: usize) -> Self {
        let mut ws = Self::new();
        ws.seed(n, 9);
        ws
    }

    /// Workspace pre-seeded for CG on an order-`n` system.
    pub fn for_cg(n: usize) -> Self {
        let mut ws = Self::new();
        ws.seed(n, 6);
        ws
    }

    fn seed(&mut self, len: usize, count: usize) {
        // Workspace construction is also when the Krylov hot loop's
        // trace ring is pre-sized, so iteration spans never allocate
        // once the loop is running.
        vbatch_trace::reserve_thread_ring(0);
        for _ in 0..count {
            self.free.push(vec![T::ZERO; len]);
        }
    }

    /// Check out a zero-filled buffer of exactly `len` elements,
    /// reusing a recycled buffer when one with enough capacity exists
    /// (allocation happens only during warm-up).
    pub fn take(&mut self, len: usize) -> Vec<T> {
        self.outstanding += 1;
        if self.outstanding > self.high_water {
            self.high_water = self.outstanding;
        }
        let pos = self.free.iter().position(|b| b.capacity() >= len);
        let mut buf = match pos {
            Some(i) => self.free.swap_remove(i),
            None => match self.free.pop() {
                Some(b) => b, // will grow below; keeps the pool bounded
                None => Vec::with_capacity(len),
            },
        };
        buf.clear();
        buf.resize(len, T::ZERO);
        buf
    }

    /// Return a buffer to the pool for later reuse.
    pub fn recycle(&mut self, buf: Vec<T>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.free.push(buf);
    }

    /// Return a block of buffers (e.g. a Krylov basis) to the pool.
    pub fn recycle_all<I: IntoIterator<Item = Vec<T>>>(&mut self, bufs: I) {
        for b in bufs {
            self.recycle(b);
        }
    }

    /// Most buffers ever checked out simultaneously.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Buffers currently waiting in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_dirty_recycle() {
        let mut ws: KrylovWorkspace<f64> = KrylovWorkspace::new();
        let mut v = ws.take(5);
        v.fill(3.5);
        ws.recycle(v);
        let v2 = ws.take(5);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.len(), 5);
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut ws: KrylovWorkspace<f64> = KrylovWorkspace::new();
        let v = ws.take(16);
        let p = v.as_ptr();
        ws.recycle(v);
        let v2 = ws.take(8); // smaller fits in the same buffer
        assert_eq!(v2.as_ptr(), p);
        ws.recycle(v2);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn preseeded_idr_workspace_covers_checkouts() {
        let (n, s) = (50, 4);
        let mut ws: KrylovWorkspace<f64> = KrylovWorkspace::for_idr(n, s);
        let before = ws.pooled();
        assert!(before >= 8 + 3 * s + 3);
        let a = ws.take(n);
        let b = ws.take(s);
        let c = ws.take(s * s);
        assert_eq!(ws.high_water(), 3);
        ws.recycle_all([a, b, c]);
        assert_eq!(ws.pooled(), before);
    }
}
