//! Acceptance comparison on seeded suite matrices: block-ILU(0) driven
//! through the generic [`BlockPreconditioner`] trait must converge on
//! the SPD / diagonally-dominant problems and must not need more IDR(4)
//! iterations than block-Jacobi on at least half of them — keeping the
//! extra coupling it retains is allowed to be a wash on weakly-coupled
//! problems, but must never be a systematic regression.

use std::sync::Arc;
use vbatch_exec::{Backend, CpuRayon};
use vbatch_precond::{BjMethod, BlockIlu0, BlockJacobi, PrecondOptions};
use vbatch_solver::{idr_precond, SolveParams};
use vbatch_sparse::{by_name, supervariable_blocking};

#[test]
fn bilu_converges_and_matches_or_beats_bj_on_half_the_suite() {
    // small SPD / diagonally-dominant members of the Table-I suite
    let names = ["bcsstk38", "Kuu", "nasa2910", "nd3k"];
    let backend: Arc<dyn Backend<f64>> = Arc::new(CpuRayon);
    let opts = PrecondOptions::default().with_method(BjMethod::SmallLu);
    let params = SolveParams::default();
    let mut no_worse = 0usize;
    for name in names {
        let p = by_name(name).expect("suite problem");
        let a = p.build();
        let part = supervariable_blocking(&a, 16);
        let b = vec![1.0; a.nrows()];
        let bj = idr_precond::<f64, BlockJacobi<f64>>(
            &a,
            &b,
            4,
            &part,
            backend.clone(),
            opts.clone(),
            &params,
        )
        .unwrap();
        let bilu = idr_precond::<f64, BlockIlu0<f64>>(
            &a,
            &b,
            4,
            &part,
            backend.clone(),
            opts.clone(),
            &params,
        )
        .unwrap();
        assert!(
            bilu.result.converged(),
            "{name}: block-ILU(0) failed to converge ({:?})",
            bilu.result.reason
        );
        assert!(
            bj.result.converged(),
            "{name}: block-Jacobi failed to converge ({:?})",
            bj.result.reason
        );
        if bilu.result.iterations <= bj.result.iterations {
            no_worse += 1;
        }
    }
    assert!(
        2 * no_worse >= names.len(),
        "block-ILU(0) beat or matched block-Jacobi on only {no_worse}/{} problems",
        names.len()
    );
}
