//! Property-based tests for the Krylov solvers: all of them must
//! actually solve randomly generated well-posed systems, agree with
//! each other, and respect their contracts (residual reporting,
//! iteration caps, determinism).

use vbatch_precond::{Identity, Jacobi};
use vbatch_rt::{run_cases, testgen, SmallRng};
use vbatch_solver::{bicgstab, cg, gmres, idr, SolveParams, StopReason};
use vbatch_sparse::{nrm2, residual, CooMatrix, CsrMatrix};

fn from_triplets(n: usize, trips: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    let mut c = CooMatrix::new(n, n);
    for &(i, j, v) in trips {
        c.push(i, j, v);
    }
    c.to_csr()
}

/// Random sparse diagonally-dominant nonsymmetric system.
fn random_system(n: usize, extra: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    from_triplets(n, &testgen::dd_system_triplets(n, extra))
}

fn entries(rng: &mut SmallRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(4usize..41);
    let extra = testgen::extra_couplings(rng, 60, 64, 1.0);
    (n, extra)
}

#[test]
fn all_solvers_reach_tolerance() {
    run_cases("all_solvers_reach_tolerance", 32, |rng, _case| {
        let (n, extra) = entries(rng);
        let a = random_system(n, &extra);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let params = SolveParams::default();
        let m = Identity::new(n);
        let normb = nrm2(&b);

        let solutions = [
            idr(&a, &b, 4, &m, &params),
            bicgstab(&a, &b, &m, &params),
            gmres(&a, &b, 20, &m, &params),
        ];
        for r in &solutions {
            assert!(r.converged(), "{:?}", r.reason);
            // reported residual must match a recomputed one
            let true_res = nrm2(&residual(&a, &r.x, &b)) / normb;
            assert!((true_res - r.final_relres).abs() < 1e-9);
            assert!(true_res <= 1e-6 * 1.001);
        }
        // solutions agree pairwise
        for w in solutions.windows(2) {
            for (p, q) in w[0].x.iter().zip(&w[1].x) {
                assert!((p - q).abs() < 1e-4, "{p} vs {q}");
            }
        }
    });
}

#[test]
fn cg_matches_idr_on_spd() {
    run_cases("cg_matches_idr_on_spd", 32, |rng, _case| {
        let (n, extra) = entries(rng);
        // symmetric + strictly dominant => SPD
        let a = from_triplets(n, &testgen::spd_system_triplets(n, &extra));
        let b = vec![1.0; n];
        let params = SolveParams::default();
        let m = Identity::new(n);
        let rc = cg(&a, &b, &m, &params);
        let ri = idr(&a, &b, 4, &m, &params);
        assert!(rc.converged());
        assert!(ri.converged());
        for (p, q) in rc.x.iter().zip(&ri.x) {
            assert!((p - q).abs() < 1e-4);
        }
    });
}

#[test]
fn jacobi_never_hurts_scaled_systems() {
    run_cases("jacobi_never_hurts_scaled_systems", 32, |rng, _case| {
        let (n, extra) = entries(rng);
        let scale_pow = rng.gen_range(0usize..6) as u32;
        // scale rows to create a badly-equilibrated system
        let base = random_system(n, &extra);
        let mut c = CooMatrix::new(n, n);
        for r in 0..n {
            let s = 10f64.powi(((r * 7919) % (scale_pow as usize + 1)) as i32);
            for (j, v) in base.row_cols(r).iter().zip(base.row_vals(r)) {
                c.push(r, *j, v * s);
            }
        }
        let a = c.to_csr();
        let b = vec![1.0; n];
        let params = SolveParams::default();
        let jac = Jacobi::setup(&a).unwrap();
        let r = idr(&a, &b, 4, &jac, &params);
        assert!(r.converged());
    });
}

#[test]
fn iteration_cap_is_hard() {
    run_cases("iteration_cap_is_hard", 32, |rng, _case| {
        let (n, extra) = entries(rng);
        let cap = rng.gen_range(1usize..5);
        let a = random_system(n, &extra);
        let b = vec![1.0; n];
        let params = SolveParams::default().with_max_iters(cap).with_tol(1e-30);
        let r = idr(&a, &b, 4, &Identity::new(n), &params);
        assert!(r.iterations <= cap + 1);
        assert!(matches!(
            r.reason,
            StopReason::MaxIterations | StopReason::Breakdown
        ));
    });
}

#[test]
fn deterministic_across_runs() {
    run_cases("deterministic_across_runs", 32, |rng, _case| {
        let (n, extra) = entries(rng);
        let a = random_system(n, &extra);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let params = SolveParams::default();
        let m = Identity::new(n);
        let r1 = idr(&a, &b, 4, &m, &params);
        let r2 = idr(&a, &b, 4, &m, &params);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
    });
}
