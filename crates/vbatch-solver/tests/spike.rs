//! SPIKE split-solver property suite.
//!
//! Contracts under test:
//!
//! * **differential** — the truncated SPIKE pass plus iterative
//!   refinement matches the monolithic solve to `c n eps`, for every
//!   backend × layout × precision policy the pipeline supports;
//! * **metamorphic** — the partition count is an implementation detail:
//!   `p ∈ {1, 2, 4, 8}` produce the same answer to tolerance, and
//!   `p = 1` degenerates **bitwise** to the plain batched solve (the
//!   whole-matrix block-Jacobi apply);
//! * **fault tolerance** — seeded singular/NaN partition blocks flow
//!   through the PR-3 triage path (per-block statuses match the
//!   injected map exactly) and the refinement outer loop still
//!   converges with 10% of the partitions corrupted.

use std::sync::Arc;

use vbatch_core::{solve_system, BatchLayout, Exec};
use vbatch_exec::{
    backend_for_exec, expected_health, Backend, CpuSequential, CpuSimd, FaultClass, FaultPlan,
    HealthPolicy, PrecisionPolicy, SimtSim,
};
use vbatch_precond::{BlockJacobi, PrecondOptions, Preconditioner};
use vbatch_solver::SpikeSolver;
use vbatch_sparse::{BlockPartition, CooMatrix, CsrMatrix, SpikePartition};

fn banded(n: usize, bw: usize, dominance: f64, seed: u64) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in vbatch_rt::testgen::banded_system_triplets(n, bw, dominance, seed) {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64 * 17 + seed * 13 + 5) % 23) as f64 / 23.0 - 0.4)
        .collect()
}

fn backends() -> Vec<(&'static str, Arc<dyn Backend<f64>>)> {
    vec![
        ("seq", backend_for_exec(Exec::Sequential)),
        ("rayon", backend_for_exec(Exec::Parallel)),
        ("simd", Arc::new(CpuSimd)),
        ("simt", Arc::new(SimtSim::default())),
    ]
}

/// SPIKE + refinement vs the dense monolithic solve, swept over every
/// backend, both layouts and all three precision policies. The matrix
/// is diagonally dominant (the truncated variant's home turf) and the
/// refinement loop must reach `1e-10` relative residual everywhere —
/// the acceptance bar — after which the solution must match the
/// monolithic reference to `c n eps` scaled by the solution magnitude.
#[test]
fn spike_matches_monolithic_for_every_backend_layout_policy() {
    let (n, bw, p) = (64, 2, 4);
    let a = banded(n, bw, 2.0, 42);
    let b = rhs(n, 1);
    let xref = solve_system(&a.to_dense(), &b).unwrap();
    let xnorm = xref.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    let ctol = 500.0 * n as f64 * f64::EPSILON * xnorm.max(1.0);
    let sp = SpikePartition::uniform(n, p, bw).unwrap();
    for (bname, backend) in backends() {
        for layout in [BatchLayout::Blocked, BatchLayout::interleaved()] {
            for policy in [
                PrecisionPolicy::FullDp,
                PrecisionPolicy::mixed::<f64>(),
                PrecisionPolicy::ForceSp,
            ] {
                let ctx = format!("{bname}/{}/{}", layout.label(), policy.label());
                let m = SpikeSolver::setup(
                    &a,
                    &sp,
                    backend.clone(),
                    PrecondOptions::default()
                        .with_layout(layout)
                        .with_precision(policy),
                )
                .unwrap_or_else(|e| panic!("{ctx}: setup failed: {e}"));
                let out = m.solve_with(&b, 1e-11, 100);
                assert!(
                    out.converged && out.relres <= 1e-10,
                    "{ctx}: relres {} after {} refinements",
                    out.relres,
                    out.refinements
                );
                for i in 0..n {
                    assert!(
                        (out.x[i] - xref[i]).abs() <= ctol,
                        "{ctx}: x[{i}] = {} vs {} (tol {ctol:.3e})",
                        out.x[i],
                        xref[i]
                    );
                }
            }
        }
    }
}

/// Metamorphic sweep over the partition count: the split is an
/// implementation detail, so every feasible `p` must agree with the
/// dense reference (and hence with every other `p`) to tolerance.
#[test]
fn partition_counts_agree_to_tolerance() {
    let (n, bw) = (128, 2);
    let a = banded(n, bw, 1.5, 7);
    let b = rhs(n, 3);
    let xref = solve_system(&a.to_dense(), &b).unwrap();
    let xnorm = xref.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    let tol = 1e-9 * xnorm.max(1.0);
    let backend = backend_for_exec(Exec::Sequential);
    for p in [1usize, 2, 4, 8] {
        let sp = SpikePartition::uniform(n, p, bw).unwrap();
        let m = SpikeSolver::setup(&a, &sp, backend.clone(), PrecondOptions::default()).unwrap();
        let out = m.solve_with(&b, 1e-11, 100);
        assert!(out.converged, "p={p}: relres {}", out.relres);
        for i in 0..n {
            assert!(
                (out.x[i] - xref[i]).abs() <= tol,
                "p={p}: x[{i}] = {} vs {}",
                out.x[i],
                xref[i]
            );
        }
    }
}

/// With a single partition there are no interfaces, no reduced system
/// and no spikes: the SPIKE pass is exactly the plain batched solve of
/// the whole matrix as one block. Bitwise exactly — the same
/// extraction values, the same plan construction and the same prepared
/// apply as whole-matrix block-Jacobi.
#[test]
fn single_partition_degenerates_to_plain_batched_solve_bitwise() {
    let n = 48;
    let a = banded(n, 3, 1.5, 11);
    let b = rhs(n, 5);
    let backend: Arc<dyn Backend<f64>> = Arc::new(CpuSequential);

    let sp = SpikePartition::uniform(n, 1, 3).unwrap();
    let m = SpikeSolver::setup(&a, &sp, backend.clone(), PrecondOptions::default()).unwrap();
    // max_refine = 0 isolates the single SPIKE pass
    let spike_x = m.solve_with(&b, 1e-30, 0).x;

    let whole = BlockPartition::from_ptr(vec![0, n]);
    let bj = BlockJacobi::setup_opts(&a, &whole, backend, PrecondOptions::default()).unwrap();
    let plain_x = bj.apply(&b);

    assert_eq!(spike_x, plain_x, "p = 1 must be the plain batched solve");
}

/// One SPIKE application (the preconditioner view) must equal the
/// direct solver's initial pass: apply_inplace and solve_with(.., 0)
/// share the same warm path.
#[test]
fn preconditioner_apply_equals_first_solver_pass() {
    let n = 96;
    let a = banded(n, 2, 2.0, 19);
    let b = rhs(n, 7);
    let sp = SpikePartition::uniform(n, 6, 2).unwrap();
    let m = SpikeSolver::setup(
        &a,
        &sp,
        backend_for_exec(Exec::Sequential),
        PrecondOptions::default(),
    )
    .unwrap();
    let pass = m.solve_with(&b, 1e-30, 0).x;
    let mut applied = b.clone();
    m.apply_inplace(&mut applied);
    assert_eq!(pass, applied);
}

/// Seeded singular / NaN partition blocks flow through the PR-3 triage
/// path: the per-partition statuses must match the injected fault map
/// exactly, and the refinement outer loop must still converge to
/// `1e-10` with 10% of the partitions corrupted (their factors degrade
/// to sanitized fallbacks; the strongly dominant monolithic matrix
/// keeps the refinement iteration contractive).
#[test]
fn fault_injection_triages_exactly_and_refinement_still_converges() {
    let (n, bw, p) = (240, 2, 20);
    let a = banded(n, bw, 5.0, 23);
    let b = rhs(n, 9);
    let plan = FaultPlan::new(77)
        .with(FaultClass::NanEntry, 0.05)
        .with(FaultClass::ZeroRow, 0.05);
    let sp = SpikePartition::uniform(n, p, bw).unwrap();
    let m = SpikeSolver::setup(
        &a,
        &sp,
        backend_for_exec(Exec::Sequential),
        PrecondOptions::default()
            .with_health(HealthPolicy::guarded::<f64>())
            .with_fault(plan),
    )
    .unwrap();

    let map = m.fault_map();
    assert_eq!(map.len(), p);
    let faulted = map.iter().filter(|f| f.is_some()).count();
    assert!(
        faulted >= 1 && faulted * 10 <= p * 2,
        "expected ~10% of {p} partitions faulted, got {faulted}"
    );
    for (j, status) in m.statuses().iter().enumerate() {
        assert_eq!(
            status.health,
            expected_health(map[j]),
            "partition {j}: injected {:?}, status {:?}",
            map[j],
            status
        );
    }

    let out = m.solve_with(&b, 1e-10, 400);
    assert!(
        out.converged,
        "refinement must absorb {faulted} degraded partitions \
         (relres {} after {} refinements)",
        out.relres, out.refinements
    );
}

/// A clean run under the same guarded policy reports every partition
/// healthy — the triage assertions above really are driven by the
/// injected faults.
#[test]
fn clean_guarded_setup_reports_all_partitions_healthy() {
    let (n, bw, p) = (120, 2, 10);
    let a = banded(n, bw, 5.0, 23);
    let sp = SpikePartition::uniform(n, p, bw).unwrap();
    let m = SpikeSolver::setup(
        &a,
        &sp,
        backend_for_exec(Exec::Sequential),
        PrecondOptions::default().with_health(HealthPolicy::guarded::<f64>()),
    )
    .unwrap();
    assert!(m.fault_map().is_empty());
    assert_eq!(m.fallback_blocks, 0);
    for status in m.statuses() {
        assert_eq!(status.health, expected_health(None));
    }
}

/// The trait-pair integration: `PrecondKind::Spike` drives an IDR(4)
/// solve through the generic kind-dispatched driver on a banded
/// system, converging like any other block preconditioner.
#[test]
fn spike_preconditions_idr_through_kind_dispatch() {
    use vbatch_precond::PrecondKind;
    use vbatch_solver::{idr_precond_kind, SolveParams, StopReason};
    let (n, bw, p) = (128, 2, 8);
    let a = banded(n, bw, 1.5, 31);
    let b = rhs(n, 11);
    let sp = SpikePartition::uniform(n, p, bw).unwrap();
    let solve = idr_precond_kind::<f64>(
        PrecondKind::Spike,
        &a,
        &b,
        4,
        sp.part(),
        backend_for_exec(Exec::Sequential),
        PrecondOptions::default(),
        &SolveParams::default(),
    )
    .unwrap();
    assert_eq!(solve.result.reason, StopReason::Converged);
    assert!(solve.precond_label.starts_with("spike(p=8"));
}
