//! Steady-state zero-allocation proof: with the counting allocator
//! installed as `#[global_allocator]`, a warm block-Jacobi + IDR(4)
//! iteration on `CpuSequential` touches the heap exactly zero times.
//!
//! Two layers of evidence:
//!
//! * the prepared preconditioner apply allocates nothing at all after
//!   warm-up (measured around a bare `apply_inplace` call);
//! * extending a warm solve by extra iterations costs zero additional
//!   allocations — i.e. everything a solve allocates is per-solve
//!   setup/teardown (`SolveResult`, final true-residual check), never
//!   per-iteration.

use std::sync::Arc;
use vbatch_exec::{Backend, CpuSequential, CpuSimd};
use vbatch_precond::{BjMethod, BlockIlu0, PrecondOptions, Preconditioner};
use vbatch_rt::CountingAlloc;
use vbatch_solver::{IdrBjSolver, IdrSolver, SolveParams, StopReason};
use vbatch_sparse::gen::laplace::laplace_2d;
use vbatch_sparse::BlockPartition;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn backend() -> Arc<dyn Backend<f64>> {
    Arc::new(CpuSequential)
}

fn simd_backend() -> Arc<dyn Backend<f64>> {
    Arc::new(CpuSimd)
}

#[test]
fn warm_prepared_apply_allocates_nothing() {
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    let m =
        vbatch_precond::BlockJacobi::setup_with_backend(&a, &part, BjMethod::SmallLu, backend())
            .unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    // warm-up: first apply may fault in lazy state
    m.apply_inplace(&mut v);
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm prepared apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

/// The steady-state guarantee must hold **with tracing active**: trace
/// rings are pre-sized at `prepare_apply` / workspace-seed time, so a
/// warm apply records its spans without touching the heap. Compiled
/// with the `trace` feature this proves instrumentation costs zero
/// allocations; compiled without it, it degenerates to the plain
/// zero-alloc check plus the guarantee that the event counter stays 0.
#[test]
fn warm_apply_with_tracing_enabled_allocates_nothing() {
    vbatch_trace::set_enabled(true);
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    let m =
        vbatch_precond::BlockJacobi::setup_with_backend(&a, &part, BjMethod::SmallLu, backend())
            .unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up (ring already reserved at setup)
    let ev0 = vbatch_trace::thread_events_written();
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    let ev1 = vbatch_trace::thread_events_written();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm traced apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    if vbatch_trace::enabled() {
        assert!(
            ev1 > ev0,
            "tracing is enabled but the measured applies recorded no events"
        );
        assert_eq!(vbatch_trace::dropped(), 0, "pre-sized ring dropped events");
    } else {
        assert_eq!(ev1, 0, "trace feature off: the event counter must stay 0");
    }
    assert!(v.iter().all(|x| x.is_finite()));
}

/// The guarantee extends to block-ILU(0): a warm apply runs two
/// level-scheduled triangular sweeps plus the prepared diagonal solve —
/// the level/preconditioner histograms are pre-warmed at setup, so the
/// whole three-stage apply touches the heap zero times.
#[test]
fn warm_bilu_apply_allocates_nothing() {
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    let m = BlockIlu0::setup_opts(
        &a,
        &part,
        backend(),
        PrecondOptions::default().with_method(BjMethod::SmallLu),
    )
    .unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm block-ILU(0) apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

/// And to the full Krylov loop over block-ILU(0): extra warm IDR
/// iterations through the generic [`IdrSolver`] handle cost zero
/// additional allocations, exactly as for block-Jacobi.
#[test]
fn warm_bilu_idr_iterations_allocate_nothing() {
    // 48x48 grid: block-ILU(0) needs ~25 IDR(4) iterations here, so
    // both capped runs below stop on MaxIterations
    let a = laplace_2d::<f64>(48, 48);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let part = BlockPartition::uniform(n, 8);
    let opts = PrecondOptions::default().with_method(BjMethod::SmallLu);

    let short = SolveParams::default().with_max_iters(4);
    let long = SolveParams::default().with_max_iters(20);

    let mut handle =
        IdrSolver::<f64, BlockIlu0<f64>>::setup_opts(&a, 4, &part, backend(), opts.clone(), &short)
            .unwrap();
    let warm = handle.solve(&a, &b);
    assert_eq!(warm.reason, StopReason::MaxIterations);

    let s0 = ALLOC.snapshot();
    let r_short = handle.solve(&a, &b);
    let allocs_short = ALLOC.snapshot().allocs_since(&s0);

    let mut handle_long =
        IdrSolver::<f64, BlockIlu0<f64>>::setup_opts(&a, 4, &part, backend(), opts, &long).unwrap();
    let warm_long = handle_long.solve(&a, &b);
    assert_eq!(warm_long.reason, StopReason::MaxIterations);

    let s1 = ALLOC.snapshot();
    let r_long = handle_long.solve(&a, &b);
    let allocs_long = ALLOC.snapshot().allocs_since(&s1);

    assert!(r_long.iterations > r_short.iterations + 10);
    assert_eq!(
        allocs_long,
        allocs_short,
        "the {} extra warm block-ILU(0) iterations must allocate nothing \
         (short solve: {allocs_short} allocs, long solve: {allocs_long})",
        r_long.iterations - r_short.iterations
    );
}

/// The wide-lane backend honours the same contract: a warm `CpuSimd`
/// block-Jacobi apply — which routes the interleaved classes through
/// the explicit SIMD TRSV with caller-provided scratch — allocates
/// exactly zero times. The default layout interleaves the uniform
/// `n = 8` classes, so this measures the lane kernels, not a blocked
/// delegate.
#[test]
fn warm_simd_prepared_apply_allocates_nothing() {
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    let m = vbatch_precond::BlockJacobi::setup_with_backend(
        &a,
        &part,
        BjMethod::SmallLu,
        simd_backend(),
    )
    .unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm cpu-simd prepared apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

/// Same proof over block-ILU(0) on `CpuSimd`: triangular sweeps plus
/// the SIMD diagonal solve, zero heap traffic once warm.
#[test]
fn warm_simd_bilu_apply_allocates_nothing() {
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    let m = BlockIlu0::setup_opts(
        &a,
        &part,
        simd_backend(),
        PrecondOptions::default().with_method(BjMethod::SmallLu),
    )
    .unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm cpu-simd block-ILU(0) apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

/// Differential proof on `CpuSimd`: extending a warm IDR(4) +
/// block-Jacobi solve by extra iterations costs zero additional
/// allocations, so the per-iteration SIMD apply path is heap-free.
#[test]
fn warm_simd_idr_iterations_allocate_nothing() {
    let a = laplace_2d::<f64>(20, 20);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let part = BlockPartition::uniform(n, 8);

    let short = SolveParams::default().with_max_iters(4);
    let long = SolveParams::default().with_max_iters(24);

    let mut handle =
        IdrBjSolver::setup(&a, 4, &part, BjMethod::SmallLu, simd_backend(), &short).unwrap();
    let warm = handle.solve(&a, &b);
    assert_eq!(warm.reason, StopReason::MaxIterations);

    let s0 = ALLOC.snapshot();
    let r_short = handle.solve(&a, &b);
    let allocs_short = ALLOC.snapshot().allocs_since(&s0);

    let mut handle_long =
        IdrBjSolver::setup(&a, 4, &part, BjMethod::SmallLu, simd_backend(), &long).unwrap();
    let warm_long = handle_long.solve(&a, &b);
    assert_eq!(warm_long.reason, StopReason::MaxIterations);

    let s1 = ALLOC.snapshot();
    let r_long = handle_long.solve(&a, &b);
    let allocs_long = ALLOC.snapshot().allocs_since(&s1);

    assert!(r_long.iterations > r_short.iterations + 10);
    assert_eq!(
        allocs_long,
        allocs_short,
        "the {} extra warm cpu-simd iterations must allocate nothing \
         (short solve: {allocs_short} allocs, long solve: {allocs_long})",
        r_long.iterations - r_short.iterations
    );
}

/// The zero-allocation contract survives the precision-policy split: a
/// warm mixed-storage apply runs the widening triangular solves plus
/// one refinement step against the retained DP block, all through
/// caller-provided scratch sized at `prepare_apply` time. The default
/// layout interleaves the uniform `n = 8` classes, so this measures the
/// lowered interleaved path, not just blocked factors.
#[test]
fn warm_mixed_precision_apply_allocates_nothing() {
    use vbatch_exec::PrecisionPolicy;
    let a = laplace_2d::<f64>(16, 16);
    let n = a.nrows();
    let part = BlockPartition::uniform(n, 8);
    for layout in [
        vbatch_core::BatchLayout::Blocked,
        vbatch_core::BatchLayout::interleaved(),
    ] {
        for policy in [PrecisionPolicy::mixed::<f64>(), PrecisionPolicy::ForceSp] {
            let m = vbatch_precond::BlockJacobi::setup_opts(
                &a,
                &part,
                backend(),
                PrecondOptions::default()
                    .with_method(BjMethod::SmallLu)
                    .with_layout(layout)
                    .with_precision(policy),
            )
            .unwrap();
            let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            m.apply_inplace(&mut v); // warm-up
            let before = ALLOC.snapshot();
            m.apply_inplace(&mut v);
            m.apply_inplace(&mut v);
            let after = ALLOC.snapshot();
            assert_eq!(
                after.allocs_since(&before),
                0,
                "warm {}/{} apply must not allocate ({} bytes leaked in)",
                layout.label(),
                policy.label(),
                after.bytes_since(&before)
            );
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}

/// Differential proof for the mixed policy over the full Krylov loop:
/// extra warm IDR(4) iterations through lowered-storage block-Jacobi
/// factors cost zero additional allocations.
#[test]
fn warm_mixed_idr_iterations_allocate_nothing() {
    use vbatch_exec::PrecisionPolicy;
    let a = laplace_2d::<f64>(20, 20);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let part = BlockPartition::uniform(n, 8);
    let opts = PrecondOptions::default()
        .with_method(BjMethod::SmallLu)
        .with_precision(PrecisionPolicy::mixed::<f64>());

    let short = SolveParams::default().with_max_iters(4);
    let long = SolveParams::default().with_max_iters(24);

    let mut handle = IdrSolver::<f64, vbatch_precond::BlockJacobi<f64>>::setup_opts(
        &a,
        4,
        &part,
        backend(),
        opts.clone(),
        &short,
    )
    .unwrap();
    let warm = handle.solve(&a, &b);
    assert_eq!(warm.reason, StopReason::MaxIterations);

    let s0 = ALLOC.snapshot();
    let r_short = handle.solve(&a, &b);
    let allocs_short = ALLOC.snapshot().allocs_since(&s0);

    let mut handle_long = IdrSolver::<f64, vbatch_precond::BlockJacobi<f64>>::setup_opts(
        &a,
        4,
        &part,
        backend(),
        opts,
        &long,
    )
    .unwrap();
    let warm_long = handle_long.solve(&a, &b);
    assert_eq!(warm_long.reason, StopReason::MaxIterations);

    let s1 = ALLOC.snapshot();
    let r_long = handle_long.solve(&a, &b);
    let allocs_long = ALLOC.snapshot().allocs_since(&s1);

    assert!(r_long.iterations > r_short.iterations + 10);
    assert_eq!(
        allocs_long,
        allocs_short,
        "the {} extra warm mixed-precision iterations must allocate nothing \
         (short solve: {allocs_short} allocs, long solve: {allocs_long})",
        r_long.iterations - r_short.iterations
    );
}

/// The SPIKE apply path honours the same contract: a warm truncated
/// SPIKE pass — prepared partition solve, interface gather, prepared
/// reduced solve, spike GEMV recovery — touches the heap exactly zero
/// times (the interface workspace is sized at setup).
#[test]
fn warm_spike_apply_allocates_nothing() {
    use vbatch_sparse::{CooMatrix, SpikePartition};
    let n = 96;
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in vbatch_rt::testgen::banded_system_triplets(n, 2, 2.0, 13) {
        coo.push(i, j, v);
    }
    let a = coo.to_csr();
    let sp = SpikePartition::uniform(n, 6, 2).unwrap();
    let m =
        vbatch_solver::SpikeSolver::setup(&a, &sp, backend(), PrecondOptions::default()).unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm SPIKE apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

/// And with tracing active: the SPIKE apply records its spans through
/// pre-sized rings without heap traffic, exactly like block-Jacobi.
#[test]
fn warm_spike_apply_with_tracing_enabled_allocates_nothing() {
    use vbatch_sparse::{CooMatrix, SpikePartition};
    vbatch_trace::set_enabled(true);
    let n = 96;
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in vbatch_rt::testgen::banded_system_triplets(n, 2, 2.0, 13) {
        coo.push(i, j, v);
    }
    let a = coo.to_csr();
    let sp = SpikePartition::uniform(n, 6, 2).unwrap();
    let m =
        vbatch_solver::SpikeSolver::setup(&a, &sp, backend(), PrecondOptions::default()).unwrap();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    m.apply_inplace(&mut v); // warm-up (rings reserved at setup)
    let before = ALLOC.snapshot();
    m.apply_inplace(&mut v);
    m.apply_inplace(&mut v);
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm traced SPIKE apply must not allocate ({} bytes leaked in)",
        after.bytes_since(&before)
    );
    assert!(v.iter().all(|x| x.is_finite()));
}

#[test]
fn warm_idr_iterations_allocate_nothing() {
    let a = laplace_2d::<f64>(20, 20);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let part = BlockPartition::uniform(n, 8);

    // capped solves: both runs stop on MaxIterations, so they execute
    // identical per-solve setup/teardown and differ only in how many
    // warm iterations they run
    let short = SolveParams::default().with_max_iters(4);
    let long = SolveParams::default().with_max_iters(24);

    let mut handle =
        IdrBjSolver::setup(&a, 4, &part, BjMethod::SmallLu, backend(), &short).unwrap();
    // warm-up solve grows every pool to its high-water size
    let warm = handle.solve(&a, &b);
    assert_eq!(warm.reason, StopReason::MaxIterations);

    let s0 = ALLOC.snapshot();
    let r_short = handle.solve(&a, &b);
    let allocs_short = ALLOC.snapshot().allocs_since(&s0);

    let mut handle_long =
        IdrBjSolver::setup(&a, 4, &part, BjMethod::SmallLu, backend(), &long).unwrap();
    let warm_long = handle_long.solve(&a, &b);
    assert_eq!(warm_long.reason, StopReason::MaxIterations);

    let s1 = ALLOC.snapshot();
    let r_long = handle_long.solve(&a, &b);
    let allocs_long = ALLOC.snapshot().allocs_since(&s1);

    assert!(r_long.iterations > r_short.iterations + 10);
    assert_eq!(
        allocs_long,
        allocs_short,
        "the {} extra warm iterations must allocate nothing \
         (short solve: {allocs_short} allocs, long solve: {allocs_long})",
        r_long.iterations - r_short.iterations
    );
}
