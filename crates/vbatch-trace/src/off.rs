//! The compiled-out implementation (default, `trace` feature off).
//! Every entry point is an empty inline function over zero-sized or
//! data-free types, so the `span!`/`counter!` macros expand to code the
//! optimizer deletes entirely — callers carry no cfg-gates and pay no
//! cost. Signatures mirror `on.rs` exactly.

use crate::export::TraceSnapshot;

/// Interned callsite (inert: the feature is off).
pub struct Site {
    _name: &'static str,
}

impl Site {
    /// Const constructor for the macro-generated statics.
    pub const fn new(name: &'static str) -> Self {
        Site { _name: name }
    }

    /// No-op counter bump.
    #[inline(always)]
    pub fn add(_site: &Site, _n: u64) {}
}

/// Inert span handle: zero-sized, no drop glue.
#[must_use = "a span guard records its close on drop; binding it to _ closes immediately"]
pub struct SpanGuard {
    _priv: (),
}

impl SpanGuard {
    /// No-op span open.
    #[inline(always)]
    pub fn enter(_site: &Site, _payload: u64) -> SpanGuard {
        SpanGuard { _priv: () }
    }
}

/// Always `false`: the feature is compiled out.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op: there is no runtime gate to open.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// No-op: there are no rings to reserve.
#[inline(always)]
pub fn reserve_thread_ring(_cap_events: usize) {}

/// No-op duration record.
#[inline(always)]
pub fn record_duration(_site: &Site, _ns: u64) {}

/// No-op gauge raise.
#[inline(always)]
pub fn gauge_max(_site: &Site, _value: u64) {}

/// No-op labeled-counter bump.
#[inline(always)]
pub fn labeled_add(_group: &'static str, _label: &'static str, _n: u64) {}

/// Always zero.
#[inline(always)]
pub fn thread_events_written() -> u64 {
    0
}

/// Always zero.
#[inline(always)]
pub fn dropped() -> u64 {
    0
}

/// Always empty.
#[inline(always)]
pub fn snapshot() -> TraceSnapshot {
    TraceSnapshot::default()
}

/// No-op.
#[inline(always)]
pub fn reset() {}
