//! The drained, owned view of the trace state and its exporters. These
//! types are compiled unconditionally (with the `trace` feature off a
//! snapshot is simply empty), so reporting code in the bench bins never
//! needs a cfg-gate.
//!
//! Three output formats, per the phase-breakdown methodology of the
//! batched-kernel literature:
//!
//! * [`TraceSnapshot::chrome_trace_json`] — a `chrome://tracing` /
//!   Perfetto-loadable JSON timeline of span begin/end and counter
//!   events, one track per recorded thread;
//! * [`TraceSnapshot::metrics_csv`] / [`TraceSnapshot::events_csv`] —
//!   flat CSV, schema-stable, appendable next to the fig4/fig5 CSVs
//!   under `target/experiments/`;
//! * [`TraceSnapshot`]'s `Display` — a human summary (counters, span
//!   histograms with mean/p50/p99, drop accounting).

use std::fmt;

/// What one ring event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span!`).
    Begin,
    /// A span closed (guard drop).
    End,
    /// A counter bump (`counter!`), value in `payload`.
    Counter,
}

impl EventKind {
    /// Stable label used by the CSV exporter.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Counter => "counter",
        }
    }

    /// Chrome-trace phase letter (`B`/`E`/`C`).
    pub fn chrome_phase(self) -> char {
        match self {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Counter => 'C',
        }
    }
}

/// One drained ring event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Ring (thread) id the event was recorded on.
    pub tid: u64,
    /// Begin/end/counter.
    pub kind: EventKind,
    /// Site name (the literal passed to `span!`/`counter!`).
    pub name: &'static str,
    /// Monotonic timestamp, nanoseconds ([`vbatch_rt::bench::monotonic_ns`]).
    pub t_ns: u64,
    /// Span payload or counter increment.
    pub payload: u64,
}

/// One named counter's accumulated value.
#[derive(Clone, Copy, Debug)]
pub struct CounterSample {
    /// Counter site name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One labeled counter (`group` × `label`), the registry backing for
/// the `ExecStats` histograms (kernel/layout/health/recovery tallies).
#[derive(Clone, Copy, Debug)]
pub struct LabeledSample {
    /// Counter group, e.g. `"exec.kernel"`.
    pub group: &'static str,
    /// Label within the group, e.g. `"gauss-huard"`.
    pub label: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One high-water gauge's maximum observed value (`gauge_max!`) —
/// e.g. the deepest a service admission queue ever got.
#[derive(Clone, Copy, Debug)]
pub struct GaugeSample {
    /// Gauge site name.
    pub name: &'static str,
    /// Largest value ever recorded.
    pub value: u64,
}

/// Number of log₂ latency buckets per histogram: bucket `b` counts
/// durations in `[2^b, 2^(b+1))` nanoseconds.
pub const HIST_BUCKETS: usize = 64;

/// One span site's latency histogram.
#[derive(Clone, Debug)]
pub struct HistogramSample {
    /// Span site name.
    pub name: &'static str,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Log₂ buckets (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSample {
    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, resolved to the geometric
    /// midpoint of the log₂ bucket containing it.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << b) as f64 * 1.5;
            }
        }
        (1u64 << (HIST_BUCKETS - 1)) as f64 * 1.5
    }
}

/// A drained, owned copy of everything the trace layer recorded:
/// per-thread ring events plus the metrics registry. Obtained from
/// [`crate::snapshot`]; empty when the `trace` feature is off.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Ring events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Named counters, registration order.
    pub counters: Vec<CounterSample>,
    /// Labeled counters (`ExecStats` view backing), registration order.
    pub labeled: Vec<LabeledSample>,
    /// High-water gauges (`gauge_max!`), registration order.
    pub gauges: Vec<GaugeSample>,
    /// Span latency histograms, registration order.
    pub histograms: Vec<HistogramSample>,
    /// Events discarded because a ring wrapped or a thread had no ring.
    pub dropped_events: u64,
}

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceSnapshot {
    /// Serialize the event timeline as chrome-trace JSON (the "Trace
    /// Event Format" object form), loadable in `chrome://tracing` and
    /// Perfetto. Span events map to `B`/`E` phase pairs on one track
    /// per recorded thread; counters map to `C` events.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            json_escape(ev.name, &mut out);
            out.push_str("\",\"ph\":\"");
            out.push(ev.kind.chrome_phase());
            // chrome trace timestamps are microseconds (float)
            out.push_str(&format!(
                "\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                ev.t_ns as f64 / 1e3,
                ev.tid
            ));
            match ev.kind {
                EventKind::Counter => {
                    out.push_str(&format!(",\"args\":{{\"value\":{}}}", ev.payload));
                }
                EventKind::Begin if ev.payload != 0 => {
                    out.push_str(&format!(",\"args\":{{\"payload\":{}}}", ev.payload));
                }
                _ => {}
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Flat CSV of the event timeline:
    /// `kind,name,tid,t_ns,payload` — one row per ring event.
    pub fn events_csv(&self) -> String {
        let mut out = String::from("kind,name,tid,t_ns,payload\n");
        for ev in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                ev.kind.label(),
                ev.name,
                ev.tid,
                ev.t_ns,
                ev.payload
            ));
        }
        out
    }

    /// Flat CSV of the metrics registry:
    /// `metric,kind,value,count,sum_ns,mean_ns,p50_ns,p99_ns` — one row
    /// per counter, labeled counter (`group/label`), and span
    /// histogram. Schema-stable so rows can sit next to the fig4/fig5
    /// CSVs under `target/experiments/`.
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from("metric,kind,value,count,sum_ns,mean_ns,p50_ns,p99_ns\n");
        for c in &self.counters {
            out.push_str(&format!("{},counter,{},,,,,\n", c.name, c.value));
        }
        for l in &self.labeled {
            out.push_str(&format!(
                "{}/{},labeled,{},,,,,\n",
                l.group, l.label, l.value
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!("{},gauge,{},,,,,\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{},span,,{},{},{:.1},{:.1},{:.1}\n",
                h.name,
                h.count,
                h.sum_ns,
                h.mean_ns(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.99)
            ));
        }
        out
    }

    /// Compact `name=value;...` string of the named and labeled
    /// counters — the same convention as the `ExecStats::*_compact`
    /// histogram columns in the fig4/fig5 CSV schemas.
    pub fn compact_counters(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for c in &self.counters {
            parts.push(format!("{}={}", c.name, c.value));
        }
        for l in &self.labeled {
            parts.push(format!("{}/{}={}", l.group, l.label, l.value));
        }
        parts.join(";")
    }

    /// High-water value of the gauge `name`. Each `gauge_max!`
    /// callsite interns its own site, so same-named gauges fold with
    /// `max` — the high-water across every callsite.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .filter(|g| g.name == name)
            .map(|g| g.value)
            .max()
    }

    /// Total time recorded by the span site `name`, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.sum_ns)
            .sum()
    }

    /// Number of recorded entries for span site `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.count)
            .sum()
    }
}

impl fmt::Display for TraceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace summary: {} events, {} spans, {} counters, {} dropped",
            self.events.len(),
            self.histograms.iter().map(|h| h.count).sum::<u64>(),
            self.counters.len() + self.labeled.len(),
            self.dropped_events
        )?;
        let mut spans: Vec<&HistogramSample> =
            self.histograms.iter().filter(|h| h.count > 0).collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.sum_ns));
        if !spans.is_empty() {
            writeln!(
                f,
                "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "span", "count", "total [us]", "mean [ns]", "p50 [ns]", "p99 [ns]"
            )?;
            for h in spans {
                writeln!(
                    f,
                    "  {:<28} {:>10} {:>12.1} {:>12.1} {:>12.0} {:>12.0}",
                    h.name,
                    h.count,
                    h.sum_ns as f64 / 1e3,
                    h.mean_ns(),
                    h.quantile_ns(0.5),
                    h.quantile_ns(0.99)
                )?;
            }
        }
        for c in self.counters.iter().filter(|c| c.value > 0) {
            writeln!(f, "  counter {:<32} {:>12}", c.name, c.value)?;
        }
        for l in self.labeled.iter().filter(|l| l.value > 0) {
            writeln!(
                f,
                "  counter {:<32} {:>12}",
                format!("{}/{}", l.group, l.label),
                l.value
            )?;
        }
        for g in &self.gauges {
            writeln!(f, "  gauge   {:<32} {:>12}", g.name, g.value)?;
        }
        Ok(())
    }
}
