//! # vbatch-trace
//!
//! Lock-free, allocation-free tracing and metrics for the batched-LU
//! pipeline — phase-level timing evidence in the style of the paper's
//! Figs. 4–7, safe to leave compiled into the zero-allocation hot loop.
//!
//! Three layers:
//!
//! * **event rings** — per-thread fixed-capacity ring buffers of span
//!   begin/end and counter events, timestamped by the monotonic-clamped
//!   clock in [`vbatch_rt::bench::monotonic_ns`]. Recording is a few
//!   relaxed atomic stores plus an index bump; rings are pre-sized at
//!   setup time ([`reserve_thread_ring`]) so the steady state never
//!   allocates;
//! * **metrics registry** — fixed-size tables of named counters,
//!   labeled counters (the backing store the `ExecStats` histograms
//!   forward into), and log₂-bucketed span latency histograms;
//! * **exporters** — [`TraceSnapshot`] drains everything and renders
//!   chrome-trace JSON, flat CSV, or a human `Display` summary.
//!
//! ## Feature gating
//!
//! Everything is behind this crate's `trace` feature (off by default).
//! Dependents call [`span!`]/[`counter!`] and the functions below
//! unconditionally; with the feature off they are inline empty
//! functions the optimizer deletes, so no other crate carries
//! cfg-gates. Enable fleet-wide with the workspace-root feature:
//!
//! ```text
//! cargo test --workspace --features vbatch-trace/trace
//! ```
//!
//! ## Usage
//!
//! ```
//! // a span: records begin/end events + a latency histogram entry
//! {
//!     let _span = vbatch_trace::span!("factorize", 4000);
//!     // ... work ...
//! }
//! // a counter bump
//! vbatch_trace::counter!("solver.iterations", 1);
//! // drain and export
//! let snap = vbatch_trace::snapshot();
//! let _json = snap.chrome_trace_json();
//! println!("{snap}");
//! ```

pub mod export;

#[cfg(feature = "trace")]
mod on;
#[cfg(feature = "trace")]
pub use on::{
    dropped, enabled, gauge_max, labeled_add, record_duration, reserve_thread_ring, reset,
    set_enabled, snapshot, thread_events_written, Site, SpanGuard, DEFAULT_RING_EVENTS,
    MAX_LABELED, MAX_RINGS, MAX_SITES,
};

#[cfg(not(feature = "trace"))]
mod off;
#[cfg(not(feature = "trace"))]
pub use off::{
    dropped, enabled, gauge_max, labeled_add, record_duration, reserve_thread_ring, reset,
    set_enabled, snapshot, thread_events_written, Site, SpanGuard,
};

pub use export::{
    CounterSample, EventKind, GaugeSample, HistogramSample, LabeledSample, TraceEvent,
    TraceSnapshot, HIST_BUCKETS,
};

/// Open a span at this callsite; the returned guard records the close
/// (and a latency-histogram entry) when dropped. The optional second
/// argument is an opaque `u64` payload (batch size, block count, ...).
/// Compiles to nothing when the `trace` feature is off.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, 0u64)
    };
    ($name:expr, $payload:expr) => {{
        static __VBT_SITE: $crate::Site = $crate::Site::new($name);
        $crate::SpanGuard::enter(&__VBT_SITE, ($payload) as u64)
    }};
}

/// Bump the named counter at this callsite by `n` (also recorded as a
/// ring event). Compiles to nothing when the `trace` feature is off.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {{
        static __VBT_SITE: $crate::Site = $crate::Site::new($name);
        $crate::Site::add(&__VBT_SITE, ($n) as u64)
    }};
}

/// Record an externally measured duration into the named span
/// histogram without opening a span — the hook `ExecStats::add_phase`
/// forwards through. Compiles to nothing when the `trace` feature is
/// off.
#[macro_export]
macro_rules! duration {
    ($name:expr, $ns:expr) => {{
        static __VBT_SITE: $crate::Site = $crate::Site::new($name);
        $crate::record_duration(&__VBT_SITE, ($ns) as u64)
    }};
}

/// Raise the named high-water gauge at this callsite to at least
/// `value` — the maximum ever recorded is what a snapshot reports
/// ([`TraceSnapshot::gauge`]). For depth-style metrics (queue depth,
/// in-flight count) where the peak matters, not the sum. Compiles to
/// nothing when the `trace` feature is off.
#[macro_export]
macro_rules! gauge_max {
    ($name:expr, $value:expr) => {{
        static __VBT_SITE: $crate::Site = $crate::Site::new($name);
        $crate::gauge_max(&__VBT_SITE, ($value) as u64)
    }};
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        // retry: a concurrent test may close the global gate mid-record
        let mut snap = crate::snapshot();
        for _ in 0..1000 {
            crate::set_enabled(true);
            crate::gauge_max!("test.gauge", 5);
            crate::gauge_max!("test.gauge", 17);
            crate::gauge_max!("test.gauge", 3); // must not lower the mark
            snap = crate::snapshot();
            if snap.gauge("test.gauge") == Some(17) {
                break;
            }
        }
        assert_eq!(snap.gauge("test.gauge"), Some(17));
        assert!(snap.metrics_csv().contains("test.gauge,gauge,17"));
    }

    #[test]
    fn span_and_counter_record() {
        crate::set_enabled(true);
        crate::reserve_thread_ring(1024);
        let before = crate::thread_events_written();
        {
            let _g = crate::span!("test.span", 7);
            crate::counter!("test.counter", 3);
        }
        let after = crate::thread_events_written();
        assert_eq!(after - before, 3, "begin + counter + end");
        let snap = crate::snapshot();
        assert!(snap.span_count("test.span") >= 1);
        assert!(snap
            .counters
            .iter()
            .any(|c| c.name == "test.counter" && c.value >= 3));
        let json = snap.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("test.span"));
    }

    #[test]
    fn disabled_gate_drops_records() {
        crate::reserve_thread_ring(1024);
        crate::set_enabled(false);
        let before = crate::thread_events_written();
        {
            let _g = crate::span!("test.gated");
            crate::counter!("test.gated.counter", 1);
        }
        assert_eq!(crate::thread_events_written(), before);
        crate::set_enabled(true);
    }

    #[test]
    fn labeled_counters_intern_once() {
        crate::set_enabled(true);
        crate::labeled_add("test.group", "alpha", 2);
        crate::labeled_add("test.group", "alpha", 3);
        let snap = crate::snapshot();
        let hits: Vec<_> = snap
            .labeled
            .iter()
            .filter(|l| l.group == "test.group" && l.label == "alpha")
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].value >= 5);
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        crate::set_enabled(true);
        for ns in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            crate::duration!("test.quantiles", ns);
        }
        let snap = crate::snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.quantiles")
            .expect("histogram registered");
        assert!(h.count >= 5);
        assert!(h.quantile_ns(0.1) <= h.quantile_ns(0.5));
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
        assert!(h.mean_ns() > 0.0);
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod tests_off {
    #[test]
    fn everything_is_inert() {
        {
            let _g = crate::span!("off.span", 1);
            crate::counter!("off.counter", 1);
            crate::duration!("off.duration", 5);
        }
        assert!(!crate::enabled());
        assert_eq!(crate::thread_events_written(), 0);
        let snap = crate::snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(
            snap.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
