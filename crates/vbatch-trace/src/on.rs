//! The live implementation, compiled only with the `trace` feature.
//!
//! Hot-path discipline (this module is under the workspace allocation
//! tripwire): a span or counter record is
//!
//! * one relaxed load of the enabled flag,
//! * one relaxed load of the interned site id (slow-path interning runs
//!   once per site, into fixed static tables — no allocation),
//! * one [`vbatch_rt::bench::monotonic_ns`] read,
//! * three relaxed atomic stores into the thread's ring plus a relaxed
//!   index bump,
//! * and, on span close, three relaxed `fetch_add`s into the fixed
//!   histogram arrays.
//!
//! The only allocation in the entire layer is the creation of a
//! thread's event ring, which happens at most once per thread — either
//! explicitly at setup time via [`reserve_thread_ring`] (what
//! `PreparedApply::new` and the Krylov workspace constructors do) or
//! lazily on a thread's first event. Once [`MAX_RINGS`] rings exist,
//! further threads record metrics only; their ring events are counted
//! in [`dropped`]. Ring slots are `AtomicU64` words so the drain in
//! [`snapshot`] can read concurrently with writers without UB (a slot
//! mid-write can tear across its three words; snapshots are taken
//! after the measured region, where this does not occur).
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::export::{
    CounterSample, EventKind, HistogramSample, LabeledSample, TraceEvent, TraceSnapshot,
    HIST_BUCKETS,
};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use vbatch_rt::bench::monotonic_ns;

/// Maximum distinct `span!`/`counter!` sites; the last slot absorbs any
/// overflow so the fast path never branches on capacity.
pub const MAX_SITES: usize = 256;

/// Maximum distinct labeled counters (`group` × `label` pairs).
pub const MAX_LABELED: usize = 256;

/// Maximum per-thread event rings kept for draining; threads beyond
/// this record metrics but drop their ring events (counted).
pub const MAX_RINGS: usize = 64;

/// Ring capacity (events) when a thread's first event arrives before
/// any [`reserve_thread_ring`] call.
pub const DEFAULT_RING_EVENTS: usize = 1 << 13;

const WORDS_PER_EVENT: usize = 3;

// ---------------------------------------------------------------------
// runtime gate

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether tracing is live: the `trace` feature is compiled in *and*
/// the runtime gate is open (it is by default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open or close the runtime gate. With the gate closed the macros
/// still cost the one relaxed load that checks it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// site interning: fixed static tables, no allocation

struct StrSlot {
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

macro_rules! str_slot_array {
    ($n:expr) => {
        [const {
            StrSlot {
                ptr: AtomicPtr::new(std::ptr::null_mut()),
                len: AtomicUsize::new(0),
            }
        }; $n]
    };
}

impl StrSlot {
    fn store(&self, s: &'static str) {
        self.len.store(s.len(), Ordering::Relaxed);
        self.ptr.store(s.as_ptr() as *mut u8, Ordering::Release);
    }

    fn load(&self) -> Option<&'static str> {
        let ptr = self.ptr.load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        let len = self.len.load(Ordering::Relaxed);
        // SAFETY: only ever stored from a &'static str with this length.
        Some(unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) })
    }
}

static SITE_NAMES: [StrSlot; MAX_SITES] = str_slot_array!(MAX_SITES);
static SITE_IS_COUNTER: [AtomicBool; MAX_SITES] = [const { AtomicBool::new(false) }; MAX_SITES];
static SITE_LEN: AtomicUsize = AtomicUsize::new(0);
static REG: Mutex<()> = Mutex::new(());

/// One interned callsite, created by the `span!`/`counter!` macros as a
/// function-local `static`. The id is interned on first use (a short
/// uncontended lock, no allocation) and cached in the site itself.
pub struct Site {
    name: &'static str,
    /// 0 = not yet interned; otherwise id + 1.
    id: AtomicU32,
}

impl Site {
    /// Const constructor for the macro-generated statics.
    pub const fn new(name: &'static str) -> Self {
        Site {
            name,
            id: AtomicU32::new(0),
        }
    }

    #[inline]
    fn id(&self) -> usize {
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return (cached - 1) as usize;
        }
        self.intern()
    }

    #[cold]
    fn intern(&self) -> usize {
        let _guard = REG.lock().expect("trace site registry poisoned");
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return (cached - 1) as usize;
        }
        let idx = SITE_LEN.load(Ordering::Relaxed);
        let idx = if idx >= MAX_SITES - 1 {
            // overflow: everything else shares the sentinel slot
            SITE_NAMES[MAX_SITES - 1].store("trace.site_overflow");
            MAX_SITES - 1
        } else {
            SITE_NAMES[idx].store(self.name);
            SITE_LEN.store(idx + 1, Ordering::Release);
            idx
        };
        self.id.store(idx as u32 + 1, Ordering::Release);
        idx
    }

    /// Bump this site's counter by `n` and record a counter event on
    /// the current thread's ring. Used via the `counter!` macro.
    #[inline]
    pub fn add(site: &Site, n: u64) {
        if !enabled() {
            return;
        }
        let id = site.id();
        SITE_IS_COUNTER[id].store(true, Ordering::Relaxed);
        COUNTERS[id].fetch_add(n, Ordering::Relaxed);
        push_event(EventKind::Counter, id, monotonic_ns(), n);
    }
}

// ---------------------------------------------------------------------
// metrics registry: fixed atomic arrays

static COUNTERS: [AtomicU64; MAX_SITES] = [const { AtomicU64::new(0) }; MAX_SITES];
static GAUGE_MAX: [AtomicU64; MAX_SITES] = [const { AtomicU64::new(0) }; MAX_SITES];
static SITE_IS_GAUGE: [AtomicBool; MAX_SITES] = [const { AtomicBool::new(false) }; MAX_SITES];
static HIST_COUNT: [AtomicU64; MAX_SITES] = [const { AtomicU64::new(0) }; MAX_SITES];
static HIST_SUM: [AtomicU64; MAX_SITES] = [const { AtomicU64::new(0) }; MAX_SITES];
static HIST: [[AtomicU64; HIST_BUCKETS]; MAX_SITES] =
    [const { [const { AtomicU64::new(0) }; HIST_BUCKETS] }; MAX_SITES];

#[inline]
fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros()) as usize
}

#[inline]
fn record_duration_id(id: usize, ns: u64) {
    HIST_COUNT[id].fetch_add(1, Ordering::Relaxed);
    HIST_SUM[id].fetch_add(ns, Ordering::Relaxed);
    HIST[id][bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
}

/// Raise the named high-water gauge to at least `value` (a single
/// relaxed `fetch_max`; no ring event). Used via the `gauge_max!`
/// macro for depth-style metrics where the maximum ever observed is
/// the interesting number — e.g. admission-queue depth.
pub fn gauge_max(site: &Site, value: u64) {
    if !enabled() {
        return;
    }
    let id = site.id();
    SITE_IS_GAUGE[id].store(true, Ordering::Relaxed);
    GAUGE_MAX[id].fetch_max(value, Ordering::Relaxed);
}

/// Record a duration into the named span histogram without opening a
/// span — the forwarding hook for externally timed phases
/// (`ExecStats::add_phase`).
pub fn record_duration(site: &Site, ns: u64) {
    if !enabled() {
        return;
    }
    record_duration_id(site.id(), ns);
}

// labeled counters: (group, label) pairs in fixed slots, lock-free
// lookup over an append-only table

static LAB_GROUP: [StrSlot; MAX_LABELED] = str_slot_array!(MAX_LABELED);
static LAB_LABEL: [StrSlot; MAX_LABELED] = str_slot_array!(MAX_LABELED);
static LAB_VALUE: [AtomicU64; MAX_LABELED] = [const { AtomicU64::new(0) }; MAX_LABELED];
static LAB_LEN: AtomicUsize = AtomicUsize::new(0);

fn labeled_slot(group: &'static str, label: &'static str) -> usize {
    let n = LAB_LEN.load(Ordering::Acquire);
    for i in 0..n {
        if LAB_GROUP[i].load() == Some(group) && LAB_LABEL[i].load() == Some(label) {
            return i;
        }
    }
    labeled_intern(group, label)
}

#[cold]
fn labeled_intern(group: &'static str, label: &'static str) -> usize {
    let _guard = REG.lock().expect("trace labeled registry poisoned");
    let n = LAB_LEN.load(Ordering::Relaxed);
    for i in 0..n {
        if LAB_GROUP[i].load() == Some(group) && LAB_LABEL[i].load() == Some(label) {
            return i;
        }
    }
    if n >= MAX_LABELED - 1 {
        LAB_GROUP[MAX_LABELED - 1].store("trace");
        LAB_LABEL[MAX_LABELED - 1].store("labeled_overflow");
        return MAX_LABELED - 1;
    }
    LAB_GROUP[n].store(group);
    LAB_LABEL[n].store(label);
    LAB_LEN.store(n + 1, Ordering::Release);
    n
}

/// Bump the labeled counter `group`/`label` by `n`. This is the
/// registry entry `ExecStats` forwards its kernel/layout/health/
/// recovery tallies through; lookup is a lock-free scan of the fixed
/// table (first use of a pair interns it, without allocating).
pub fn labeled_add(group: &'static str, label: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    LAB_VALUE[labeled_slot(group, label)].fetch_add(n, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// per-thread event rings

struct EventRing {
    tid: u64,
    cap_events: usize,
    /// Total events ever pushed (wraps into the ring by modulo).
    head: AtomicU64,
    words: Box<[AtomicU64]>,
}

impl EventRing {
    // ring construction is the setup-time allocation the zero-alloc
    // guarantee is built around: it happens once per thread, at
    // `reserve_thread_ring` / first-event time, never per event
    #[allow(clippy::disallowed_methods)]
    fn with_capacity(tid: u64, cap_events: usize) -> Arc<EventRing> {
        let cap_events = cap_events.max(16);
        let mut words = Vec::new();
        words.reserve_exact(cap_events * WORDS_PER_EVENT);
        for _ in 0..cap_events * WORDS_PER_EVENT {
            words.push(AtomicU64::new(0));
        }
        Arc::new(EventRing {
            tid,
            cap_events,
            head: AtomicU64::new(0),
            words: words.into_boxed_slice(),
        })
    }

    #[inline]
    fn push(&self, kind: EventKind, site: usize, t_ns: u64, payload: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = (seq as usize % self.cap_events) * WORDS_PER_EVENT;
        let kind_bits = match kind {
            EventKind::Begin => 0u64,
            EventKind::End => 1,
            EventKind::Counter => 2,
        };
        self.words[slot].store(site as u64 | (kind_bits << 32), Ordering::Relaxed);
        self.words[slot + 1].store(t_ns, Ordering::Relaxed);
        self.words[slot + 2].store(payload, Ordering::Relaxed);
        self.head.store(seq + 1, Ordering::Release);
    }
}

// const initializer: `Vec::new` here allocates nothing, ever
#[allow(clippy::disallowed_methods)]
static RINGS: Mutex<Vec<Arc<EventRing>>> = Mutex::new(Vec::new());
static RING_COUNT: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's ring: unset, present, or permanently unavailable
    /// (ring budget exhausted — metrics only).
    static THREAD_RING: Cell<ThreadRingState> = const { Cell::new(ThreadRingState::Unset) };
}

#[derive(Clone, Copy)]
enum ThreadRingState {
    Unset,
    Ready(&'static EventRing),
    Unavailable,
}

// setup-time: ring creation allocates, exactly once per thread
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
fn create_thread_ring(cap_events: usize) -> ThreadRingState {
    let mut rings = RINGS.lock().expect("trace ring registry poisoned");
    if rings.len() >= MAX_RINGS {
        return ThreadRingState::Unavailable;
    }
    let ring = EventRing::with_capacity(rings.len() as u64, cap_events);
    // Leak one Arc clone into the thread-local as a plain reference:
    // the registry keeps the ring alive for the process lifetime.
    let raw: &'static EventRing = unsafe { &*(Arc::as_ptr(&ring)) };
    rings.push(ring);
    RING_COUNT.store(rings.len(), Ordering::Relaxed);
    ThreadRingState::Ready(raw)
}

/// Ensure the current thread has an event ring of at least
/// `cap_events` capacity, creating it now so later `span!`/`counter!`
/// records on this thread are allocation-free. Called from setup paths
/// (`PreparedApply::new`, Krylov workspace construction); a no-op if
/// the thread already has a ring or the ring budget is exhausted.
pub fn reserve_thread_ring(cap_events: usize) {
    THREAD_RING.with(|cell| {
        if let ThreadRingState::Unset = cell.get() {
            cell.set(create_thread_ring(cap_events.max(DEFAULT_RING_EVENTS)));
        }
    });
}

#[inline]
fn push_event(kind: EventKind, site: usize, t_ns: u64, payload: u64) {
    THREAD_RING.with(|cell| match cell.get() {
        ThreadRingState::Ready(ring) => ring.push(kind, site, t_ns, payload),
        ThreadRingState::Unset => {
            let state = create_thread_ring(DEFAULT_RING_EVENTS);
            cell.set(state);
            match state {
                ThreadRingState::Ready(ring) => ring.push(kind, site, t_ns, payload),
                _ => {
                    DROPPED.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ThreadRingState::Unavailable => {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Total ring events recorded by the *current thread* (its ring's
/// monotone head counter). The deterministic hook for the regression
/// tests: single-threaded sections can assert exact event counts
/// without interference from other test threads.
pub fn thread_events_written() -> u64 {
    THREAD_RING.with(|cell| match cell.get() {
        ThreadRingState::Ready(ring) => ring.head.load(Ordering::Relaxed),
        _ => 0,
    })
}

/// Events dropped process-wide (ring budget exhausted).
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// spans

/// RAII span handle produced by the `span!` macro: records a begin
/// event at construction and an end event plus a latency-histogram
/// entry at drop.
#[must_use = "a span guard records its close on drop; binding it to _ closes immediately"]
pub struct SpanGuard {
    /// Interned site id + 1; 0 when tracing was disabled at entry.
    site_id: u32,
    t0: u64,
}

impl SpanGuard {
    /// Open a span at `site` with an opaque payload (batch size, block
    /// count, iteration index — whatever the callsite finds useful).
    #[inline]
    pub fn enter(site: &Site, payload: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard { site_id: 0, t0: 0 };
        }
        let id = site.id();
        let t0 = monotonic_ns();
        push_event(EventKind::Begin, id, t0, payload);
        SpanGuard {
            site_id: id as u32 + 1,
            t0,
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.site_id == 0 {
            return;
        }
        let id = (self.site_id - 1) as usize;
        let t1 = monotonic_ns();
        push_event(EventKind::End, id, t1, 0);
        record_duration_id(id, t1.saturating_sub(self.t0));
    }
}

// ---------------------------------------------------------------------
// drain / reset

// export-time: building the owned snapshot allocates freely
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
/// Drain a copy of everything recorded so far: ring events (sorted by
/// timestamp), counters, labeled counters, and span histograms.
/// Non-destructive; concurrent recording keeps running.
pub fn snapshot() -> TraceSnapshot {
    let mut snap = TraceSnapshot {
        dropped_events: DROPPED.load(Ordering::Relaxed),
        ..TraceSnapshot::default()
    };

    let site_len = SITE_LEN.load(Ordering::Acquire);
    let names: Vec<&'static str> = (0..MAX_SITES)
        .map(|i| SITE_NAMES[i].load().unwrap_or("trace.unknown"))
        .collect();

    for id in 0..site_len.min(MAX_SITES) {
        let is_counter = SITE_IS_COUNTER[id].load(Ordering::Relaxed);
        let value = COUNTERS[id].load(Ordering::Relaxed);
        if is_counter || value > 0 {
            snap.counters.push(CounterSample {
                name: names[id],
                value,
            });
        }
        if SITE_IS_GAUGE[id].load(Ordering::Relaxed) {
            snap.gauges.push(crate::export::GaugeSample {
                name: names[id],
                value: GAUGE_MAX[id].load(Ordering::Relaxed),
            });
        }
        let count = HIST_COUNT[id].load(Ordering::Relaxed);
        if count > 0 {
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, bucket) in buckets.iter_mut().enumerate() {
                *bucket = HIST[id][b].load(Ordering::Relaxed);
            }
            snap.histograms.push(HistogramSample {
                name: names[id],
                count,
                sum_ns: HIST_SUM[id].load(Ordering::Relaxed),
                buckets,
            });
        }
    }

    let lab_len = LAB_LEN.load(Ordering::Acquire);
    for i in 0..lab_len.min(MAX_LABELED) {
        let (Some(group), Some(label)) = (LAB_GROUP[i].load(), LAB_LABEL[i].load()) else {
            continue;
        };
        snap.labeled.push(LabeledSample {
            group,
            label,
            value: LAB_VALUE[i].load(Ordering::Relaxed),
        });
    }

    let rings = RINGS.lock().expect("trace ring registry poisoned");
    for ring in rings.iter() {
        let head = ring.head.load(Ordering::Acquire);
        let kept = (head as usize).min(ring.cap_events);
        snap.dropped_events += head - kept as u64;
        let first = head - kept as u64;
        for seq in first..head {
            let slot = (seq as usize % ring.cap_events) * WORDS_PER_EVENT;
            let word0 = ring.words[slot].load(Ordering::Relaxed);
            let site = (word0 & 0xffff_ffff) as usize;
            let kind = match word0 >> 32 {
                0 => EventKind::Begin,
                1 => EventKind::End,
                _ => EventKind::Counter,
            };
            snap.events.push(TraceEvent {
                tid: ring.tid,
                kind,
                name: names.get(site).copied().unwrap_or("trace.unknown"),
                t_ns: ring.words[slot + 1].load(Ordering::Relaxed),
                payload: ring.words[slot + 2].load(Ordering::Relaxed),
            });
        }
    }
    drop(rings);

    snap.events.sort_by_key(|e| e.t_ns);
    snap
}

/// Zero every counter, histogram, ring head, and the drop counter.
/// Interned sites and rings stay registered (no allocation or free);
/// only their contents reset. Meant for process-local measurement
/// harnesses (the bench bins) — racy if other threads are recording.
pub fn reset() {
    for i in 0..MAX_SITES {
        COUNTERS[i].store(0, Ordering::Relaxed);
        GAUGE_MAX[i].store(0, Ordering::Relaxed);
        HIST_COUNT[i].store(0, Ordering::Relaxed);
        HIST_SUM[i].store(0, Ordering::Relaxed);
        for b in 0..HIST_BUCKETS {
            HIST[i][b].store(0, Ordering::Relaxed);
        }
    }
    for i in 0..MAX_LABELED {
        LAB_VALUE[i].store(0, Ordering::Relaxed);
    }
    let rings = RINGS.lock().expect("trace ring registry poisoned");
    for ring in rings.iter() {
        ring.head.store(0, Ordering::Relaxed);
    }
    DROPPED.store(0, Ordering::Relaxed);
}
