//! Post-factorization health triage (the fault-tolerance layer's
//! middle stage).
//!
//! With [`HealthPolicy::Guarded`], every block that factorized exactly
//! gets a Hager/Higham 1-norm condition estimate. Blocks whose estimate
//! exceeds the policy threshold are *recovered in place*: the original
//! block is equilibrated (LAPACK `geequ`-style row/column scalings),
//! refactorized, and replaced by a [`BlockFactor::EquilibratedLu`] whose
//! apply adds one step of iterative refinement. Blocks that cannot be
//! recovered escalate through the scalar-Jacobi fallback down to
//! identity rows, and every step taken is recorded in the block's
//! [`BlockStatus::recovery`] chain — so the caller can always tell the
//! difference between "factorized cleanly", "recovered exactly" and
//! "degraded".
//!
//! The triage pass never touches blocks that already fell back during
//! factorization (their health was classified from the factor error),
//! and [`HealthPolicy::Off`] skips it entirely, preserving the bitwise
//! layout-equivalence contract of the unguarded path.

use crate::factors::{
    block_diag, scalar_jacobi_from_diag, BlockFactor, BlockHealth, BlockStatus, FactorizedBatch,
    RecoveryStep,
};
use crate::plan::HealthPolicy;
use vbatch_core::lu::implicit::getrf_implicit_inplace;
use vbatch_core::lu::LuFactors;
use vbatch_core::{
    apply_equilibration, condest1, demote_slice, equilibrate, geqp3, getrf, norm1, DenseMat,
    MatrixBatch, Permutation, PivotStrategy, Scalar, StoragePrecision,
};

/// Hager/Higham estimate evaluated entirely in the storage precision:
/// the demoted block against its lowered LU factors. This is the right
/// scale for promotion decisions — it measures how the factors the
/// apply actually widens behave, and it costs a handful of SP
/// triangular solves rather than a DP refactorization.
fn condest_lowered<T: Scalar>(n: usize, lu: &[T::Lower], perm: &Permutation, a: &[T]) -> f64 {
    let lo = demote_slice(a);
    let a_lo = DenseMat::from_col_major(n, n, &lo);
    let f = LuFactors {
        lu: DenseMat::from_col_major(n, n, lu),
        perm: perm.clone(),
    };
    condest1(&a_lo, &f).to_f64()
}

/// Condition estimate of one exactly-factorized block, reusing the
/// factors where they are an LU form and refactorizing on the host
/// otherwise. Returns `None` for factor kinds that are not an exact
/// block inverse (the scalar-Jacobi fallback) or were already triaged.
fn condest_block<T: Scalar>(
    a: &DenseMat<T>,
    factor: &BlockFactor<T>,
    batch: &FactorizedBatch<T>,
) -> Option<f64> {
    match factor {
        BlockFactor::Lu { n, lu, perm } => {
            let f = LuFactors {
                lu: DenseMat::from_col_major(*n, *n, lu),
                perm: perm.clone(),
            };
            Some(condest1(a, &f).to_f64())
        }
        BlockFactor::InterleavedLu { class, slot } => {
            let cls = &batch.interleaved[*class];
            let (n, count) = (cls.n, cls.count());
            let lu = DenseMat::from_fn(n, n, |i, j| cls.data[(j * n + i) * count + slot]);
            let f = LuFactors {
                lu,
                perm: Permutation::from_row_of_step(cls.slot_row_of_step(*slot)),
            };
            Some(condest1(a, &f).to_f64())
        }
        BlockFactor::Inv { n, inv } => {
            // exact: the explicit inverse is already materialized
            let inv = DenseMat::from_col_major(*n, *n, inv);
            Some((norm1(a) * norm1(&inv)).to_f64())
        }
        BlockFactor::Gh(_) | BlockFactor::Chol(_) => {
            // the GH / Cholesky factor forms don't expose the LU solve
            // shape the estimator needs; refactorize on the host
            match getrf(a, PivotStrategy::Implicit) {
                Ok(f) => Some(condest1(a, &f).to_f64()),
                Err(_) => Some(f64::INFINITY),
            }
        }
        BlockFactor::LuLower { n, lu, perm } => {
            Some(condest_lowered::<T>(*n, lu, perm, a.as_slice()))
        }
        BlockFactor::GhLower { .. } => {
            // GH factors don't expose the LU solve shape; refactorize
            // the demoted block (still at the cheap SP flop rate)
            let n = a.rows();
            let mut lu = demote_slice(a.as_slice());
            match getrf_implicit_inplace(n, &mut lu) {
                Ok(perm) => Some(condest_lowered::<T>(n, &lu, &perm, a.as_slice())),
                Err(_) => Some(f64::INFINITY),
            }
        }
        BlockFactor::InterleavedLuLower { class, slot } => {
            let cls = &batch.interleaved_lower[*class];
            let (n, count) = (cls.n, cls.count());
            let lu: Vec<T::Lower> = (0..n * n).map(|e| cls.data[e * count + slot]).collect();
            let mut piv = vec![0usize; n];
            cls.slot_row_of_step_into(*slot, &mut piv);
            Some(condest_lowered::<T>(
                n,
                &lu,
                &Permutation::from_row_of_step(piv),
                a.as_slice(),
            ))
        }
        BlockFactor::ScalarJacobi { .. }
        | BlockFactor::EquilibratedLu { .. }
        | BlockFactor::Qr(_) => None,
    }
}

/// Conservatism of the pivot-growth screen: a block is certified safe
/// without a full condition estimate only when its pivot spread sits
/// this far below the promotion threshold. The spread reads the
/// conditioning off the elimination pivots alone, so it can
/// under-estimate; anything within one order of magnitude of the gate
/// still pays for the Hager/Higham sweep.
const SCREEN_SAFETY: f64 = 16.0;

/// Free pivot-growth screen over a lowered factor: the spread
/// `max|d_k| / min|d_k|` of the elimination pivots the factorization
/// already recorded — the LU `U` diagonal (implicit pivoting keeps
/// `U(k,k)` at row `row_of_step(k)` of column `k`) or the Gauss-Huard
/// step pivots retained on `m`'s diagonal. Costs `O(n)` per block
/// against the estimator's several `O(n²)` solves. Returns `None` for
/// factor kinds that expose no pivot diagonal (those always take the
/// full estimate).
fn pivot_spread<T: Scalar>(
    factor: &BlockFactor<T>,
    batch: &FactorizedBatch<T>,
    steps: &mut Vec<usize>,
) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    let mut feed = |v: f64| {
        let v = v.abs();
        lo = lo.min(v);
        hi = hi.max(v);
    };
    match factor {
        BlockFactor::LuLower { n, lu, perm, .. } => {
            for k in 0..*n {
                feed(lu[k * n + perm.row_of_step(k)].to_f64());
            }
        }
        BlockFactor::GhLower { gh, .. } => {
            // the diagonal is invariant under the transposed layout, so
            // m[(k,k)] is the step-k column pivot either way
            for k in 0..gh.order() {
                feed(gh.m[(k, k)].to_f64());
            }
        }
        BlockFactor::InterleavedLuLower { class, slot } => {
            let cls = &batch.interleaved_lower[*class];
            let (n, count) = (cls.n, cls.count());
            steps.resize(n, 0);
            cls.slot_row_of_step_into(*slot, steps);
            for (k, &r) in steps.iter().enumerate() {
                feed(cls.data[(k * n + r) * count + slot].to_f64());
            }
        }
        _ => return None,
    }
    Some(if lo > 0.0 { hi / lo } else { f64::INFINITY })
}

/// Mixed-precision promotion pass: estimate every *suspicious* lowered
/// block's condition in storage precision, cache the estimate on its
/// status (health triage reuses it instead of recomputing), and
/// refactorize in working precision any block whose estimate exceeds
/// the policy threshold — SP factors past `0.25/sqrt(eps_f32)` have
/// lost half their mantissa and one refinement step can no longer
/// recover DP accuracy.
///
/// Suspicion is decided by the free [`pivot_spread`] screen: blocks
/// whose recorded pivot spread sits a [`SCREEN_SAFETY`] margin below
/// the threshold are certified without the Hager/Higham sweep (their
/// `condest` stays unset until health triage wants one). This keeps the
/// promotion pass `O(n)` per healthy block, so the mixed policy retains
/// the SP flop-rate advantage it exists to exploit.
pub(crate) fn promote_unsafe_blocks<T: Scalar>(
    blocks: &MatrixBatch<T>,
    batch: &mut FactorizedBatch<T>,
    threshold: f64,
) {
    let _span = vbatch_trace::span!("exec.promote", batch.len());
    let mut steps = Vec::new();
    for i in 0..batch.len() {
        if batch.status[i].precision != StoragePrecision::Lower {
            continue;
        }
        if let Some(spread) = pivot_spread(&batch.factors[i], batch, &mut steps) {
            if spread * SCREEN_SAFETY <= threshold {
                continue;
            }
        }
        let n = batch.sizes[i];
        let a = DenseMat::from_col_major(n, n, blocks.block(i));
        let Some(k) = condest_block(&a, &batch.factors[i], batch) else {
            continue;
        };
        batch.status[i].condest = Some(k);
        // NaN-safe: only a definite exceedance promotes
        if !(k > threshold) {
            continue;
        }
        let kernel = batch.status[i].kernel;
        let (factor, mut status) = crate::cpu::factor_block(n, blocks.block(i).to_vec(), kernel);
        status.condest = Some(k);
        status.promoted = true;
        batch.factors[i] = factor;
        batch.status[i] = status;
    }
}

/// Escalate one unrecoverable block to scalar Jacobi (and, for rows
/// whose diagonal is unusable, identity), extending its recovery chain.
fn escalate_to_scalar_jacobi<T: Scalar>(
    n: usize,
    block: &[T],
    status: &mut BlockStatus,
) -> BlockFactor<T> {
    let diag = block_diag(n, block);
    let (factor, sanitized) = scalar_jacobi_from_diag(&diag);
    if sanitized < n {
        status.recovery.push(RecoveryStep::ScalarJacobi);
    }
    if sanitized > 0 {
        status.recovery.push(RecoveryStep::Identity);
    }
    factor
}

/// Run health triage over a freshly factorized batch. `blocks` must be
/// the original (uncorrupted by factorization — extraction keeps its
/// own copy) block data the batch was factorized from.
pub(crate) fn triage_batch<T: Scalar>(
    blocks: &MatrixBatch<T>,
    batch: &mut FactorizedBatch<T>,
    policy: HealthPolicy,
) {
    let HealthPolicy::Guarded { ill_threshold } = policy else {
        return;
    };
    let _span = vbatch_trace::span!("exec.triage", batch.len());
    for i in 0..batch.len() {
        if batch.status[i].is_fallback() {
            continue;
        }
        let n = batch.sizes[i];
        // reuse the condest a mixed-precision promotion pass already
        // computed and cached; estimate only where nothing is cached
        let k = match batch.status[i].condest {
            Some(k) => k,
            None => {
                let a = DenseMat::from_col_major(n, n, blocks.block(i));
                let Some(k) = condest_block(&a, &batch.factors[i], batch) else {
                    continue;
                };
                k
            }
        };
        batch.status[i].condest = Some(k);
        if !(k > ill_threshold) {
            batch.status[i].health = BlockHealth::Healthy;
            continue;
        }
        batch.status[i].health = BlockHealth::IllConditioned;
        let a = DenseMat::from_col_major(n, n, blocks.block(i));
        // recover: equilibrate + refactorize, then rank-revealing QR,
        // then surrender to scalar Jacobi
        let recovered = equilibrate(&a).and_then(|(r, c)| {
            let e = apply_equilibration(&a, &r, &c);
            getrf(&e, PivotStrategy::Implicit)
                .ok()
                .map(|f| BlockFactor::EquilibratedLu {
                    n,
                    lu: f.lu.as_slice().to_vec(),
                    perm: f.perm,
                    r,
                    c,
                    a: blocks.block(i).to_vec(),
                })
        });
        match recovered {
            Some(factor) => {
                batch.factors[i] = factor;
                batch.status[i].recovery.push(RecoveryStep::Equilibrated);
                // a recovered block stores working-precision factors
                // again, whatever policy factorized it
                batch.status[i].precision = StoragePrecision::Native;
            }
            None => match geqp3(n, blocks.block(i)) {
                Ok(f) => {
                    batch.factors[i] = BlockFactor::Qr(f);
                    batch.status[i].recovery.push(RecoveryStep::HouseholderQr);
                    batch.status[i].precision = StoragePrecision::Native;
                }
                Err(_) => {
                    batch.factors[i] =
                        escalate_to_scalar_jacobi(n, blocks.block(i), &mut batch.status[i]);
                    batch.status[i].precision = StoragePrecision::Native;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::cpu::CpuSequential;
    use crate::plan::{BatchPlan, KernelChoice, PlanMethod};
    use crate::stats::ExecStats;
    use vbatch_core::{BatchLayout, VectorBatch};

    fn batch_with_scaled_block() -> (Vec<usize>, MatrixBatch<f64>) {
        let sizes = vec![3usize, 3, 3];
        let mut batch = MatrixBatch::zeros(&sizes);
        for i in 0..3 {
            let b = batch.block_mut(i);
            for c in 0..3 {
                for r in 0..3 {
                    b[c * 3 + r] = if r == c { 4.0 } else { 0.5 };
                }
            }
        }
        // block 1: wildly scaled rows — huge condition number, but
        // exactly recoverable by equilibration
        {
            let b = batch.block_mut(1);
            for c in 0..3 {
                b[c * 3] *= 1e12;
                b[c * 3 + 2] *= 1e-12;
            }
        }
        (sizes, batch)
    }

    #[test]
    fn guarded_plan_equilibrates_ill_conditioned_blocks() {
        let (sizes, batch) = batch_with_scaled_block();
        let plan = BatchPlan::for_method_with_layout::<f64>(
            &sizes,
            PlanMethod::SmallLu,
            BatchLayout::Blocked,
        )
        .with_health(HealthPolicy::guarded::<f64>());
        let mut stats = ExecStats::new();
        let fact = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
        assert_eq!(fact.status[1].health, BlockHealth::IllConditioned);
        assert_eq!(fact.status[1].recovery, vec![RecoveryStep::Equilibrated]);
        assert!(!fact.status[1].is_fallback(), "equilibration is exact");
        assert_eq!(fact.fallback_count(), 0);
        assert!(fact.status[1].condest.unwrap() > 1e12);
        for i in [0usize, 2] {
            assert_eq!(fact.status[i].health, BlockHealth::Healthy);
            assert!(fact.status[i].condest.unwrap() < 10.0);
            assert!(fact.status[i].recovery.is_empty());
        }
        assert_eq!(stats.health_histogram()["healthy"], 2);
        assert_eq!(stats.health_histogram()["ill_conditioned"], 1);
        assert_eq!(stats.recovery_histogram()["equilibrated"], 1);

        // the recovered block still applies the exact block inverse
        let x_true: Vec<f64> = (0..9).map(|i| 1.0 + 0.25 * i as f64).collect();
        let xb = VectorBatch::from_flat(&sizes, &x_true);
        let mut rhs = VectorBatch::zeros(&sizes);
        CpuSequential.apply_gemv(&batch, &xb, &mut rhs, &mut stats);
        CpuSequential.solve(&fact, &mut rhs, &mut stats);
        for (got, want) in rhs.as_slice().iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6 * want.abs(), "{got} vs {want}");
        }
    }

    #[test]
    fn triage_covers_interleaved_and_inverse_factors() {
        let (sizes, batch) = batch_with_scaled_block();
        // interleaved layout: all three order-3 blocks form one class
        let il = BatchPlan::for_method_with_layout::<f64>(
            &sizes,
            PlanMethod::SmallLu,
            BatchLayout::Interleaved { class_capacity: 2 },
        )
        .with_health(HealthPolicy::guarded::<f64>());
        let mut stats = ExecStats::new();
        let fact = CpuSequential.factorize(batch.clone(), &il, &mut stats);
        assert_eq!(fact.status[1].health, BlockHealth::IllConditioned);
        assert!(matches!(
            fact.factors[1],
            BlockFactor::EquilibratedLu { .. }
        ));
        // healthy slots stay in the interleaved class
        assert!(matches!(fact.factors[0], BlockFactor::InterleavedLu { .. }));

        // explicit-inverse method: condest is exact
        let gje = BatchPlan::for_method::<f64>(&sizes, PlanMethod::GjeInvert)
            .with_health(HealthPolicy::guarded::<f64>());
        let fact = CpuSequential.factorize(batch.clone(), &gje, &mut stats);
        assert_eq!(fact.status[1].health, BlockHealth::IllConditioned);
        assert_eq!(fact.status[0].health, BlockHealth::Healthy);

        // GH method: triage refactorizes on the host
        let gh = BatchPlan::for_method::<f64>(&sizes, PlanMethod::GaussHuard)
            .with_health(HealthPolicy::guarded::<f64>());
        let fact = CpuSequential.factorize(batch, &gh, &mut stats);
        assert_eq!(fact.status[1].health, BlockHealth::IllConditioned);
        assert_eq!(fact.status[1].kernel, KernelChoice::GaussHuard);
    }

    #[test]
    fn cached_condest_drives_qr_escalation_when_equilibration_cannot_refactorize() {
        // an exactly singular block behind a factor slot that claims
        // health: triage trusts the cached estimate verbatim (no
        // recomputation), equilibrated refactorization hits the zero
        // pivot, and the rank-revealing QR tier takes over
        let n = 2;
        let sizes = vec![n];
        let mut blocks = MatrixBatch::<f64>::zeros(&sizes);
        blocks.block_mut(0).copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        let (factor, mut status) = crate::cpu::factor_block(
            n,
            vec![2.0, 0.0, 0.0, 2.0],
            crate::plan::KernelChoice::SmallLu,
        );
        status.condest = Some(1e30);
        let mut batch = FactorizedBatch {
            sizes,
            factors: vec![factor],
            status: vec![status],
            interleaved: Vec::new(),
            interleaved_lower: Vec::new(),
            retained: None,
        };
        triage_batch(&blocks, &mut batch, HealthPolicy::guarded::<f64>());
        assert_eq!(batch.status[0].health, BlockHealth::IllConditioned);
        assert!(matches!(batch.factors[0], BlockFactor::Qr(_)));
        assert_eq!(batch.status[0].recovery, vec![RecoveryStep::HouseholderQr]);
        assert_eq!(batch.status[0].precision, StoragePrecision::Native);
        // the cached estimate was consumed, not replaced
        assert_eq!(batch.status[0].condest, Some(1e30));
    }

    #[test]
    fn health_off_leaves_factors_untouched() {
        let (sizes, batch) = batch_with_scaled_block();
        let plan = BatchPlan::for_method::<f64>(&sizes, PlanMethod::SmallLu);
        let mut stats = ExecStats::new();
        let fact = CpuSequential.factorize(batch, &plan, &mut stats);
        for s in &fact.status {
            assert_eq!(s.health, BlockHealth::Healthy);
            assert!(s.condest.is_none());
            assert!(s.recovery.is_empty());
        }
    }
}
