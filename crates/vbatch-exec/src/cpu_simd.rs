//! The explicit-wide-lane host backend.
//!
//! [`CpuSimd`] maps one interleaved *slot per vector lane* — the CPU
//! realization of the paper's one-matrix-per-SIMT-lane mapping — and
//! routes every class the plan marked [`ClassLayout::Interleaved`]
//! through the lane-wide GETRF/TRSV kernels of
//! `vbatch_core::interleaved_simd`:
//!
//! ```text
//! interleaved class (n=16, count=20k)      lane group (W = 8, AVX-512 DP)
//! slot:   0  1  2  3  4  5  6  7 | 8 ...   one vector register holds
//! a(0,0) [.  .  .  .  .  .  .  .]| .       a(i,j) of 8 matrices; the
//! a(1,0) [.  .  .  .  .  .  .  .]| .       whole elimination for the
//!  ...                           |         group runs before the next
//! a(n,n) [.  .  .  .  .  .  .  .]| .       group starts (L1-resident)
//! ```
//!
//! Blocked-layout blocks and ragged classes the planner kept out of the
//! interleaved layout are delegated to the same scoped-thread parallel
//! driver `CpuRayon` uses, so `CpuSimd` is a strict superset: never
//! slower on the parts the lane kernels don't cover, and bitwise
//! identical everywhere (see the rounding contract in
//! `vbatch_core::interleaved_simd`).
//!
//! The solve-side paths (`solve`, `solve_prepared`, `sweep_triangular`)
//! run sequentially: the lane kernels make them compute-dense enough
//! that the scoped-thread harness' per-call setup (which also
//! allocates) would cost more than it buys at preconditioner-apply
//! sizes, and keeping them sequential preserves the warm-apply
//! zero-allocation guarantee that `vbatch-solver`'s counting-allocator
//! tests pin down.

use crate::apply::PreparedApply;
use crate::backend::Backend;
use crate::cpu::{factorize_cpu, invert_cpu, solve_cpu, solve_prepared_cpu};
use crate::factors::{BlockStatus, FactorizedBatch};
use crate::plan::BatchPlan;
use crate::stats::ExecStats;
use vbatch_core::{Exec, MatrixBatch, Scalar, VectorBatch};
use vbatch_sparse::{BlockPartition, CsrMatrix};

/// Wide-lane host backend: interleaved classes on explicit SIMD
/// chunks, everything else on the `CpuRayon` paths. See the module
/// docs for the lane mapping and execution policy.
pub struct CpuSimd;

impl<T: Scalar> Backend<T> for CpuSimd {
    fn name(&self) -> &'static str {
        "cpu-simd"
    }

    fn extract_blocks(
        &self,
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        stats: &mut ExecStats,
    ) -> MatrixBatch<T> {
        crate::cpu::extract_cpu(a, part, stats)
    }

    fn factorize(
        &self,
        blocks: MatrixBatch<T>,
        plan: &BatchPlan,
        stats: &mut ExecStats,
    ) -> FactorizedBatch<T> {
        // parallel=true: blocked/ragged blocks go through the same
        // scoped-thread pool as CpuRayon; interleaved chunks run the
        // lane kernels (and parallelize across chunks when the pool
        // has threads to spare)
        factorize_cpu(blocks, plan, true, true, stats)
    }

    fn solve(&self, factors: &FactorizedBatch<T>, rhs: &mut VectorBatch<T>, stats: &mut ExecStats) {
        solve_cpu(factors, rhs, false, true, stats)
    }

    fn solve_prepared(
        &self,
        factors: &FactorizedBatch<T>,
        prepared: &PreparedApply<T>,
        v: &mut [T],
        stats: &mut ExecStats,
    ) {
        solve_prepared_cpu(factors, prepared, v, false, true, stats)
    }

    fn invert(
        &self,
        blocks: &MatrixBatch<T>,
        stats: &mut ExecStats,
    ) -> (MatrixBatch<T>, Vec<BlockStatus>) {
        invert_cpu(blocks, true, stats)
    }

    fn apply_gemv(
        &self,
        blocks: &MatrixBatch<T>,
        x: &VectorBatch<T>,
        y: &mut VectorBatch<T>,
        stats: &mut ExecStats,
    ) {
        crate::cpu::gemv_cpu(blocks, x, y, Exec::Parallel, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuRayon, CpuSequential};
    use crate::plan::ClassLayout;
    use vbatch_core::BatchLayout;
    use vbatch_rt::SmallRng;

    fn random_batch(sizes: &[usize], seed: u64) -> MatrixBatch<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let raw = vbatch_rt::testgen::dd_batch_of(&mut rng, sizes);
        let mut batch = MatrixBatch::zeros(sizes);
        for i in 0..batch.len() {
            batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
        }
        batch
    }

    #[test]
    fn simd_backend_matches_scalar_backends_bitwise() {
        // a populous interleavable class (non-multiple of every lane
        // width), a second class, and a ragged blocked tail
        let mut sizes = vec![8usize; 21];
        sizes.extend(std::iter::repeat_n(16, 9));
        sizes.push(30);
        let batch = random_batch(&sizes, 99);
        let plan = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved { class_capacity: 2 },
        );
        let total: usize = sizes.iter().sum();
        let flat: Vec<f64> = (0..total).map(|i| (i % 9) as f64 / 2.0 - 2.0).collect();

        let mut s_ref = ExecStats::new();
        let f_ref = CpuSequential.factorize(batch.clone(), &plan, &mut s_ref);
        let mut r_ref = VectorBatch::from_flat(&sizes, &flat);
        CpuSequential.solve(&f_ref, &mut r_ref, &mut s_ref);

        let mut s = ExecStats::new();
        let f = CpuSimd.factorize(batch.clone(), &plan, &mut s);
        for blk in 0..sizes.len() {
            assert_eq!(f_ref.row_of_step(blk), f.row_of_step(blk), "block {blk}");
        }
        let mut r = VectorBatch::from_flat(&sizes, &flat);
        CpuSimd.solve(&f, &mut r, &mut s);
        assert_eq!(r_ref.as_slice(), r.as_slice());

        // prepared path is bitwise identical too
        let prep = CpuSimd.prepare_apply(&f);
        let mut v = flat.clone();
        CpuSimd.solve_prepared(&f, &prep, &mut v, &mut s);
        assert_eq!(v.as_slice(), r_ref.as_slice());

        // parity with the parallel scalar backend as well
        let mut s_par = ExecStats::new();
        let f_par = CpuRayon.factorize(batch, &plan, &mut s_par);
        let mut r_par = VectorBatch::from_flat(&sizes, &flat);
        CpuRayon.solve(&f_par, &mut r_par, &mut s_par);
        assert_eq!(r_par.as_slice(), r.as_slice());
    }

    #[test]
    fn simd_backend_records_interleaved_simd_layout() {
        let sizes = vec![8usize; 12];
        let batch = random_batch(&sizes, 5);
        let plan = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved { class_capacity: 2 },
        );
        let mut s = ExecStats::new();
        let f = CpuSimd.factorize(batch, &plan, &mut s);
        assert_eq!(f.fallback_count(), 0);
        let hist = s.layout_histogram();
        assert_eq!(hist[ClassLayout::InterleavedSimd.label()], 12);
        assert!(!hist.contains_key(ClassLayout::Interleaved.label()));
        // histogram still covers every block exactly once
        let total: u64 = hist.values().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn blocked_layout_delegates_and_matches() {
        let sizes = [5usize, 9, 17, 33, 2];
        let batch = random_batch(&sizes, 31);
        let plan = BatchPlan::auto_with_layout::<f64>(&sizes, BatchLayout::Blocked);
        let total: usize = sizes.iter().sum();
        let flat: Vec<f64> = (0..total).map(|i| 1.0 + (i % 5) as f64).collect();

        let mut s1 = ExecStats::new();
        let mut s2 = ExecStats::new();
        let f1 = CpuSimd.factorize(batch.clone(), &plan, &mut s1);
        let f2 = CpuRayon.factorize(batch, &plan, &mut s2);
        let mut r1 = VectorBatch::from_flat(&sizes, &flat);
        let mut r2 = VectorBatch::from_flat(&sizes, &flat);
        CpuSimd.solve(&f1, &mut r1, &mut s1);
        CpuRayon.solve(&f2, &mut r2, &mut s2);
        assert_eq!(r1.as_slice(), r2.as_slice());
        assert_eq!(s1.layout_histogram()["blocked"], 5);
    }
}
