//! # vbatch-exec
//!
//! The batch *execution layer*: every consumer of the variable-size
//! batched kernels (block-Jacobi setup/apply, the benchmark figure
//! bins, the solvers) goes through two abstractions defined here
//! instead of matching on kernels directly:
//!
//! * [`BatchPlan`] — the *planner*. Given the size distribution of a
//!   batch it picks a kernel per size class following the paper's
//!   crossovers: Gauss-Huard below ≈16 (SP) / ≈23 (DP), the small-size
//!   LU up to 32, multi-problem-per-warp packing for n ≤ 16, and the
//!   two-rows-per-lane blocked LU above 32.
//! * [`Backend`] — the *executor*. Three implementations share one
//!   interface over [`vbatch_core::MatrixBatch`]es:
//!   [`CpuSequential`], [`CpuRayon`] (the scoped-thread parallel
//!   driver from `vbatch-rt`), and [`SimtSim`] (the warp-lockstep
//!   functional simulator of `vbatch-simt`).
//!
//! Factorization never aborts on the first singular block: each block
//! carries its own [`BlockStatus`] — which kernel ran, the triaged
//! [`BlockHealth`], an optional condition estimate, and the recovery
//! escalation chain — and singular blocks degrade through a
//! scalar-Jacobi (diagonal) fallback so the preconditioner stays
//! usable. With [`HealthPolicy::Guarded`], ill-conditioned blocks are
//! additionally equilibrated and refactorized ([`health`]), and the
//! [`fault`] module can corrupt batches deterministically to exercise
//! every one of these paths. [`ExecStats`] threads kernel/health
//! histograms, flop counts, failure counts and per-phase timings
//! through every backend.

pub mod apply;
pub mod backend;
pub mod cpu;
pub mod cpu_simd;
pub mod estimate;
pub mod factors;
pub mod fault;
pub mod health;
pub mod plan;
pub mod serve;
pub mod simt;
pub mod stats;
pub mod tri;

pub use apply::PreparedApply;
pub use backend::{backend_for_exec, Backend};
pub use cpu::{CpuRayon, CpuSequential};
pub use cpu_simd::CpuSimd;
pub use estimate::{estimate_planned_factor, PlannedEstimate};
pub use factors::{
    BlockFactor, BlockHealth, BlockStatus, FactorizedBatch, InterleavedLuClass,
    InterleavedLuLowerClass, RecoveryStep,
};
pub use fault::{apply_fault, expected_health, inject_batch, inject_rhs};
pub use plan::{
    gh_crossover_order, BatchPlan, ClassLayout, HealthPolicy, KernelChoice, PlanMethod, PlanParams,
    PrecisionPolicy, SizeClass,
};
pub use serve::SizeClassHandle;
pub use simt::SimtSim;
pub use stats::{ExecStats, Phase};
pub use tri::BlockTriangular;
pub use vbatch_rt::fault::{FaultClass, FaultPlan};
