//! Global block triangular factors and their level-scheduled sweeps —
//! the off-diagonal half of block-ILU(0).
//!
//! [`BlockTriangular`] stores one strict triangle of a block matrix in
//! block-CSR form (variable-size column-major blocks). Its *sweep*
//! accumulates `v_i := v_i − Σ_j A_ij v_j` over the stored blocks of
//! every block row — the eager (AXPY-style) form of the global sparse
//! triangular solve once the diagonal contribution is handled
//! separately (unit diagonal for `L`, the batched prepared solve for
//! `D`). Rows are processed either in natural dependency order
//! ([`BlockTriangular::sweep_sequential`]) or level by level through a
//! [`LevelSchedule`]; the two are bitwise identical because a row's
//! per-entry accumulation order (ascending block column) never changes
//! — only the interleaving of *independent* rows does. That identity is
//! what lets `CpuRayon` parallelize inside a level without perturbing
//! results.
//!
//! Like the prepared apply, the sweep is steady-state Krylov traffic:
//! this module is covered by the zero-allocation tripwire, and the
//! sweeps perform no heap allocation (construction is the one audited
//! exception).
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::apply::FlatVecPtr;
use std::ops::Range;
use vbatch_core::{gemv_neg_acc, Scalar};
use vbatch_rt::prelude::*;
use vbatch_sparse::{BlockPartition, BlockPattern, CsrMatrix, LevelSchedule, TriKind};

/// One strict block triangle of a sparse matrix under a block
/// partition: block-CSR structure over variable-size column-major
/// dense blocks.
pub struct BlockTriangular<T> {
    kind: TriKind,
    /// Scalar offset of every block row (a copy of the partition ptr).
    part_ptr: Vec<usize>,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Start of each entry's dense block in `data`.
    data_off: Vec<usize>,
    data: Vec<T>,
    /// Nominal flops of one full sweep (2·m·k per stored block).
    flops: f64,
}

impl<T: Scalar> BlockTriangular<T> {
    /// Extract the strict `kind` triangle of `a` at the block
    /// granularity of `part`, keeping exactly the blocks present in
    /// `pattern` (the ILU(0) fill constraint).
    // setup-time: the block-CSR structure and data are allocated here, once
    #[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
    pub fn extract(
        kind: TriKind,
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        pattern: &BlockPattern,
    ) -> Self {
        assert_eq!(part.total(), a.nrows(), "partition must cover the matrix");
        assert_eq!(pattern.len(), part.len(), "pattern must match partition");
        let nb = part.len();
        let part_ptr = part.as_ptr().to_vec();
        let mut row_ptr = Vec::with_capacity(nb + 1);
        let mut col_idx = Vec::new();
        let mut data_off = Vec::new();
        row_ptr.push(0);
        let mut total = 0usize;
        let mut flops = 0.0f64;
        for i in 0..nb {
            let cols = match kind {
                TriKind::Lower => pattern.lower_cols(i),
                TriKind::Upper => pattern.upper_cols(i),
            };
            for &j in cols {
                col_idx.push(j);
                data_off.push(total);
                total += part.size(i) * part.size(j);
                flops += 2.0 * (part.size(i) * part.size(j)) as f64;
            }
            row_ptr.push(col_idx.len());
        }
        let mut data = vec![T::ZERO; total];
        for i in 0..nb {
            let m = part.size(i);
            let row0 = part_ptr[i];
            let row_cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for r in part.range(i) {
                let lr = r - row0;
                for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                    let j = part.block_of(c);
                    let keep = match kind {
                        TriKind::Lower => j < i,
                        TriKind::Upper => j > i,
                    };
                    if !keep {
                        continue;
                    }
                    let e = row_ptr[i]
                        + row_cols
                            .binary_search(&j)
                            .expect("pattern covers every stored entry");
                    let lc = c - part_ptr[j];
                    data[data_off[e] + lc * m + lr] = v;
                }
            }
        }
        BlockTriangular {
            kind,
            part_ptr,
            row_ptr,
            col_idx,
            data_off,
            data,
            flops,
        }
    }

    /// The triangle this factor covers.
    pub fn kind(&self) -> TriKind {
        self.kind
    }

    /// Number of block rows.
    pub fn num_block_rows(&self) -> usize {
        self.part_ptr.len().saturating_sub(1)
    }

    /// Number of stored blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Total scalar dimension.
    pub fn dim(&self) -> usize {
        self.part_ptr.last().copied().unwrap_or(0)
    }

    /// Scalar order of block row/column `i`.
    pub fn block_size(&self, i: usize) -> usize {
        self.part_ptr[i + 1] - self.part_ptr[i]
    }

    /// Entry range of block row `i`.
    pub fn row_entries(&self, i: usize) -> Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Block column of entry `e`.
    pub fn col_of(&self, e: usize) -> usize {
        self.col_idx[e]
    }

    /// Entry index of block `(i, j)`, if stored.
    pub fn entry_index(&self, i: usize, j: usize) -> Option<usize> {
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        row.binary_search(&j).ok().map(|p| self.row_ptr[i] + p)
    }

    /// Dense data of entry `e` (column-major, `size_i × size_j` where
    /// `i` is the owning block row and `j = col_of(e)`).
    pub fn block_data(&self, e: usize) -> &[T] {
        let end = self.data_off.get(e + 1).copied().unwrap_or(self.data.len());
        &self.data[self.data_off[e]..end]
    }

    /// Mutable dense data of entry `e`.
    pub fn block_data_mut(&mut self, e: usize) -> &mut [T] {
        let end = self.data_off.get(e + 1).copied().unwrap_or(self.data.len());
        &mut self.data[self.data_off[e]..end]
    }

    /// Nominal flops of one full sweep.
    pub fn sweep_flops(&self) -> f64 {
        self.flops
    }

    /// Accumulate block row `i` into `v`:
    /// `v_i := v_i − Σ_j A_ij v_j` over the stored entries of the row,
    /// ascending block column. Allocation-free.
    pub fn sweep_row(&self, i: usize, v: &mut [T]) {
        let oi = self.part_ptr[i];
        let m = self.part_ptr[i + 1] - oi;
        for e in self.row_entries(i) {
            let j = self.col_idx[e];
            let oj = self.part_ptr[j];
            let k = self.part_ptr[j + 1] - oj;
            let block = &self.data[self.data_off[e]..self.data_off[e] + m * k];
            // strict triangle ⇒ i ≠ j ⇒ the two segments are disjoint
            let (x, y) = if oj < oi {
                let (lo, hi) = v.split_at_mut(oi);
                (&lo[oj..oj + k], &mut hi[..m])
            } else {
                let (lo, hi) = v.split_at_mut(oj);
                (&hi[..k], &mut lo[oi..oi + m])
            };
            gemv_neg_acc(m, k, block, x, y);
        }
    }

    /// Full sweep in natural dependency order: ascending rows for
    /// `Lower`, descending for `Upper`. The bitwise reference for the
    /// level-scheduled forms.
    pub fn sweep_sequential(&self, v: &mut [T]) {
        debug_assert_eq!(v.len(), self.dim());
        let nb = self.num_block_rows();
        match self.kind {
            TriKind::Lower => {
                for i in 0..nb {
                    self.sweep_row(i, v);
                }
            }
            TriKind::Upper => {
                for i in (0..nb).rev() {
                    self.sweep_row(i, v);
                }
            }
        }
    }

    /// Full sweep level by level, rows of each level in ascending
    /// order. Bitwise identical to [`Self::sweep_sequential`]: each
    /// row's dependencies are complete before its level starts, and the
    /// within-row accumulation order is unchanged.
    pub fn sweep_levels(&self, sched: &LevelSchedule, v: &mut [T]) {
        debug_assert_eq!(sched.kind(), self.kind);
        debug_assert_eq!(sched.num_rows(), self.num_block_rows());
        for l in 0..sched.num_levels() {
            for &i in sched.level(l) {
                self.sweep_row(i, v);
            }
        }
    }

    /// Level-by-level sweep with the rows of each level distributed
    /// over the thread pool. Rows of one level write disjoint segments
    /// and read only earlier-level segments, so the result is bitwise
    /// identical to the sequential forms.
    pub fn sweep_levels_parallel(&self, sched: &LevelSchedule, v: &mut [T]) {
        debug_assert_eq!(sched.kind(), self.kind);
        for l in 0..sched.num_levels() {
            let rows = sched.level(l);
            if rows.len() < 2 {
                for &i in rows {
                    self.sweep_row(i, v);
                }
                continue;
            }
            let ptr = FlatVecPtr::new(v);
            (0..rows.len()).into_par_iter().for_each(|t| {
                // SAFETY: rows of one level are mutually independent
                // (LevelSchedule invariant): each writes only its own
                // segment and reads segments finalized in earlier
                // levels, so concurrent reborrows never alias a write.
                let view = unsafe { ptr.slice() };
                self.sweep_row(rows[t], view);
            });
        }
    }

    /// Zero every stored block containing a non-finite value (the
    /// off-diagonal analogue of the diagonal scalar-Jacobi fallback: a
    /// zeroed coupling block degrades the preconditioner toward
    /// block-Jacobi instead of poisoning every downstream row). Returns
    /// the number of blocks zeroed.
    pub fn sanitize_non_finite(&mut self) -> usize {
        let mut zeroed = 0;
        for e in 0..self.col_idx.len() {
            let block = self.block_data_mut(e);
            if block.iter().any(|x| !x.is_finite()) {
                block.fill(T::ZERO);
                zeroed += 1;
            }
        }
        zeroed
    }
}

/// Shared CPU sweep driver: level-scheduled execution (parallel within
/// a level when `parallel`), phase timing, flops and the level
/// histogram. Allocation-free after the first call warmed the
/// histogram entries.
pub(crate) fn sweep_cpu<T: Scalar>(
    tri: &BlockTriangular<T>,
    sched: &LevelSchedule,
    v: &mut [T],
    parallel: bool,
    stats: &mut crate::stats::ExecStats,
) {
    debug_assert_eq!(v.len(), tri.dim(), "sweep vector does not match factor");
    let _span = vbatch_trace::span!("exec.sweep", tri.nnz_blocks());
    let t0 = std::time::Instant::now();
    if parallel {
        tri.sweep_levels_parallel(sched, v);
    } else {
        tri.sweep_levels(sched, v);
    }
    stats.add_flops(tri.sweep_flops());
    stats.add_phase(crate::stats::Phase::Sweep, t0.elapsed());
    stats.record_levels(sched);
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_sparse::gen::laplace::laplace_2d;

    fn setup(
        kind: TriKind,
    ) -> (
        BlockTriangular<f64>,
        LevelSchedule,
        CsrMatrix<f64>,
        BlockPartition,
    ) {
        let a = laplace_2d::<f64>(10, 9);
        let part = BlockPartition::uniform(90, 7);
        let pattern = BlockPattern::build(&a, &part);
        let tri = BlockTriangular::extract(kind, &a, &part, &pattern);
        let sched = match kind {
            TriKind::Lower => LevelSchedule::lower(&pattern),
            TriKind::Upper => LevelSchedule::upper(&pattern),
        };
        (tri, sched, a, part)
    }

    #[test]
    fn extract_keeps_exactly_the_strict_triangle() {
        for kind in [TriKind::Lower, TriKind::Upper] {
            let (tri, _, a, part) = setup(kind);
            assert_eq!(tri.dim(), 90);
            // reconstruct A restricted to the strict triangle and compare
            let dense = a.to_dense();
            for i in 0..part.len() {
                for e in tri.row_entries(i) {
                    let j = tri.col_of(e);
                    match kind {
                        TriKind::Lower => assert!(j < i),
                        TriKind::Upper => assert!(j > i),
                    }
                    let (m, k) = (part.size(i), part.size(j));
                    let block = tri.block_data(e);
                    for c in 0..k {
                        for r in 0..m {
                            let expect = dense[(part.range(i).start + r, part.range(j).start + c)];
                            assert_eq!(block[c * m + r], expect);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_is_the_unit_triangular_substitution() {
        // Processing rows in dependency order makes the sweep the
        // substitution solve of (I + T) v = x with T the strict block
        // triangle.
        for kind in [TriKind::Lower, TriKind::Upper] {
            let (tri, _, a, part) = setup(kind);
            let x: Vec<f64> = (0..90).map(|i| (i % 13) as f64 / 3.0 - 2.0).collect();
            let mut v = x.clone();
            tri.sweep_sequential(&mut v);
            // scalar reference substitution over the dense matrix,
            // block rows in the same dependency order
            let dense = a.to_dense();
            let mut r = x;
            let order: Vec<usize> = match kind {
                TriKind::Lower => (0..part.len()).collect(),
                TriKind::Upper => (0..part.len()).rev().collect(),
            };
            for &i in &order {
                for row in part.range(i) {
                    let mut acc = r[row];
                    for j in 0..part.len() {
                        let keep = match kind {
                            TriKind::Lower => j < i,
                            TriKind::Upper => j > i,
                        };
                        if !keep {
                            continue;
                        }
                        for c in part.range(j) {
                            acc -= dense[(row, c)] * r[c];
                        }
                    }
                    r[row] = acc;
                }
            }
            for row in 0..90 {
                assert!((v[row] - r[row]).abs() < 1e-12, "row {row}");
            }
            // and (I + T) v reproduces x
            for &i in &order {
                for row in part.range(i) {
                    let mut acc = v[row];
                    for j in 0..part.len() {
                        let keep = match kind {
                            TriKind::Lower => j < i,
                            TriKind::Upper => j > i,
                        };
                        if !keep {
                            continue;
                        }
                        for c in part.range(j) {
                            acc += dense[(row, c)] * v[c];
                        }
                    }
                    assert!((acc - (row % 13) as f64 / 3.0 + 2.0).abs() < 1e-11, "{row}");
                }
            }
        }
    }

    #[test]
    fn level_scheduled_sweeps_are_bitwise_sequential() {
        for kind in [TriKind::Lower, TriKind::Upper] {
            let (tri, sched, _, _) = setup(kind);
            assert!(sched.num_levels() > 1);
            let x: Vec<f64> = (0..90)
                .map(|i| ((i * 31) % 17) as f64 / 5.0 - 1.5)
                .collect();
            let mut seq = x.clone();
            tri.sweep_sequential(&mut seq);
            let mut lvl = x.clone();
            tri.sweep_levels(&sched, &mut lvl);
            assert_eq!(seq, lvl);
            let mut par = x;
            tri.sweep_levels_parallel(&sched, &mut par);
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn sanitize_zeroes_poisoned_blocks() {
        let (mut tri, _, _, _) = setup(TriKind::Lower);
        assert!(tri.nnz_blocks() > 1);
        tri.block_data_mut(0)[1] = f64::NAN;
        let e = tri.nnz_blocks() - 1;
        tri.block_data_mut(e)[0] = f64::INFINITY;
        assert_eq!(tri.sanitize_non_finite(), 2);
        assert!(tri.block_data(0).iter().all(|&x| x == 0.0));
        assert!(tri.block_data(e).iter().all(|&x| x == 0.0));
        assert_eq!(tri.sanitize_non_finite(), 0);
    }
}
