//! Kernel planning: map a batch's size distribution to concrete kernel
//! choices using the paper's crossover points, and to a memory layout
//! per size class (interleave populous uniform classes, keep ragged
//! tails blocked).

use vbatch_core::{BatchLayout, Scalar};

/// A concrete kernel selected for a size class of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelChoice {
    /// Multi-problem-per-warp packed LU (`⌊32/n⌋` problems per warp,
    /// n ≤ 16).
    PackedLu,
    /// Register-resident small-size LU with implicit pivoting (n ≤ 32).
    SmallLu,
    /// Two-rows-per-lane blocked LU (n > 32; the simulator kernel
    /// covers up to 64, larger orders run on the host).
    BlockedLu,
    /// Gauss-Huard with row-major factor storage.
    GaussHuard,
    /// Gauss-Huard-T: dual storage with a coalesced column copy.
    GaussHuardT,
    /// Gauss-Jordan explicit inversion (apply becomes a GEMV).
    GjeInvert,
    /// Cholesky for SPD blocks.
    Cholesky,
}

impl KernelChoice {
    /// Every choice, in display order.
    pub const ALL: [KernelChoice; 7] = [
        KernelChoice::PackedLu,
        KernelChoice::SmallLu,
        KernelChoice::BlockedLu,
        KernelChoice::GaussHuard,
        KernelChoice::GaussHuardT,
        KernelChoice::GjeInvert,
        KernelChoice::Cholesky,
    ];

    /// Stable label used in stats histograms and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            KernelChoice::PackedLu => "packed-lu",
            KernelChoice::SmallLu => "small-lu",
            KernelChoice::BlockedLu => "blocked-lu",
            KernelChoice::GaussHuard => "gauss-huard",
            KernelChoice::GaussHuardT => "gauss-huard-t",
            KernelChoice::GjeInvert => "gje-invert",
            KernelChoice::Cholesky => "cholesky",
        }
    }
}

/// What the caller asks the planner for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMethod {
    /// Let the planner pick per size class (paper crossovers).
    Auto,
    /// Force the LU family (small-size LU ≤ 32, blocked LU above).
    SmallLu,
    /// Force Gauss-Huard (falls back to blocked LU above 32).
    GaussHuard,
    /// Force Gauss-Huard-T (falls back to blocked LU above 32).
    GaussHuardT,
    /// Force explicit inversion.
    GjeInvert,
    /// Force Cholesky (SPD blocks).
    Cholesky,
}

/// Crossover order below which Gauss-Huard beats the small-size LU
/// (Fig. 6: ≈16 in single precision, ≈23 in double).
pub fn gh_crossover_order(element_bytes: usize) -> usize {
    if element_bytes <= 4 {
        16
    } else {
        23
    }
}

/// The memory layout the planner settled on for one size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassLayout {
    /// One contiguous column-major slice per block.
    Blocked,
    /// The class is packed element-interleaved and processed by the
    /// class-wide sweep kernels.
    Interleaved,
    /// Interleaved class executed by the explicit wide-lane SIMD
    /// kernels. The planner never emits this: it is the stats-side
    /// label `CpuSimd` records when it takes over a class the plan
    /// marked [`ClassLayout::Interleaved`], so histograms show which
    /// blocks actually went down the lane-wide path.
    InterleavedSimd,
}

impl ClassLayout {
    /// Stable label used in stats histograms and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            ClassLayout::Blocked => "blocked",
            ClassLayout::Interleaved => "interleaved",
            ClassLayout::InterleavedSimd => "interleaved-simd",
        }
    }
}

/// Post-factorization health triage policy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum HealthPolicy {
    /// No triage: factorized blocks are reported healthy, failed blocks
    /// fall straight back to scalar Jacobi. This is the default — it
    /// preserves the bitwise layout-equivalence contract and adds zero
    /// overhead.
    #[default]
    Off,
    /// Estimate every block's 1-norm condition number after
    /// factorization; blocks whose estimate exceeds `ill_threshold` are
    /// equilibrated and refactorized (with one step of iterative
    /// refinement in the apply), and blocks that cannot be recovered
    /// escalate through scalar Jacobi down to identity.
    Guarded {
        /// Condition-estimate threshold above which a block counts as
        /// ill-conditioned. [`HealthPolicy::guarded`] picks
        /// `0.25 / sqrt(eps)` for the scalar type.
        ill_threshold: f64,
    },
}

impl HealthPolicy {
    /// Guarded triage with the default threshold for scalar type `T`:
    /// `0.25 / sqrt(eps)` (≈ 1.7e7 in double, ≈ 724 in single) — the
    /// point where a block solve loses about half the mantissa.
    pub fn guarded<T: Scalar>() -> Self {
        HealthPolicy::Guarded {
            ill_threshold: 0.25 / T::epsilon().to_f64().sqrt(),
        }
    }

    /// `true` when triage is enabled.
    pub fn is_guarded(&self) -> bool {
        matches!(self, HealthPolicy::Guarded { .. })
    }
}

/// Storage-precision policy for factorization — the generalization of
/// [`HealthPolicy`] to the precision axis. The working precision is
/// always the batch's scalar type `T`; the policy only decides what
/// precision the *factors* are stored (and computed) in.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PrecisionPolicy {
    /// Factorize and store every block in the working precision. This
    /// is the default and is bitwise identical to the pre-policy
    /// pipeline.
    #[default]
    FullDp,
    /// Factorize every block in `T::Lower` (single precision for `f64`
    /// batches) and apply through the widening solves with one step of
    /// iterative refinement, but *promote* any block whose 1-norm
    /// condition estimate exceeds `condest_threshold` back to a
    /// full-working-precision factorization. The condest computed here
    /// is cached on the block status and reused by health triage.
    MixedPromote {
        /// Condition-estimate threshold above which the lower-precision
        /// factors are considered unsafe and the block is refactorized
        /// in working precision. [`PrecisionPolicy::mixed`] picks
        /// `0.25 / sqrt(eps_lower)` — the same half-the-mantissa rule
        /// [`HealthPolicy::guarded`] uses, evaluated at the *storage*
        /// precision.
        condest_threshold: f64,
    },
    /// Factorize every block in `T::Lower` unconditionally: no condition
    /// estimates, no promotions. On a well-conditioned batch this is
    /// bitwise identical to [`PrecisionPolicy::MixedPromote`] (which
    /// promotes nothing there); on an ill-conditioned batch it trades
    /// accuracy for the SP flop rate.
    ForceSp,
}

impl PrecisionPolicy {
    /// Mixed policy with the default promotion threshold for scalar
    /// type `T`: `0.25 / sqrt(eps)` of the *storage* precision
    /// `T::Lower` (≈ 724 for f32 storage) — past that, SP factors lose
    /// half their mantissa and refinement stalls.
    pub fn mixed<T: Scalar>() -> Self {
        PrecisionPolicy::MixedPromote {
            condest_threshold: 0.25 / <T::Lower as Scalar>::epsilon().to_f64().sqrt(),
        }
    }

    /// Stable label used in stats, CSV columns, and CLI flags:
    /// `dp` / `mixed` / `sp`.
    pub fn label(self) -> &'static str {
        match self {
            PrecisionPolicy::FullDp => "dp",
            PrecisionPolicy::MixedPromote { .. } => "mixed",
            PrecisionPolicy::ForceSp => "sp",
        }
    }

    /// `true` when the policy stores factors in lowered precision (for
    /// at least the well-conditioned blocks).
    pub fn lowers_storage(&self) -> bool {
        !matches!(self, PrecisionPolicy::FullDp)
    }
}

/// Tunable planner thresholds. [`PlanParams::for_scalar`] gives the
/// paper's values for the element type.
#[derive(Clone, Copy, Debug)]
pub struct PlanParams {
    /// Below this order GH wins over the small-size LU.
    pub gh_crossover: usize,
    /// Largest order eligible for multi-problem-per-warp packing.
    pub pack_max: usize,
    /// Largest order the one-row-per-lane kernels handle (warp width).
    pub small_max: usize,
    /// Batch layout policy: with [`BatchLayout::Interleaved`], LU-family
    /// size classes whose population reaches `class_capacity` are
    /// stored interleaved; everything else stays blocked.
    pub layout: BatchLayout,
    /// Post-factorization health triage policy.
    pub health: HealthPolicy,
    /// Storage-precision policy for factorization.
    pub precision: PrecisionPolicy,
}

impl PlanParams {
    /// Paper thresholds for scalar type `T`, with the default
    /// interleaving policy, triage off, and full-precision storage.
    pub fn for_scalar<T: Scalar>() -> Self {
        PlanParams {
            gh_crossover: gh_crossover_order(T::BYTES),
            pack_max: 16,
            small_max: 32,
            layout: BatchLayout::interleaved(),
            health: HealthPolicy::Off,
            precision: PrecisionPolicy::FullDp,
        }
    }
}

/// One size class of a plan: `count` blocks of order `n`, all executed
/// with the same kernel on the same layout.
#[derive(Clone, Copy, Debug)]
pub struct SizeClass {
    /// Block order.
    pub n: usize,
    /// Number of blocks of this order.
    pub count: usize,
    /// Kernel the planner selected for the class.
    pub kernel: KernelChoice,
    /// Memory layout the planner selected for the class.
    pub layout: ClassLayout,
}

/// A kernel and layout assignment for every block of a batch.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Distinct size classes, ascending by order.
    pub classes: Vec<SizeClass>,
    choice: Vec<KernelChoice>,
    layouts: Vec<ClassLayout>,
    health: HealthPolicy,
    precision: PrecisionPolicy,
}

/// Interleaving pays only for the LU-family sweep kernels on small
/// orders and needs enough slots per class to amortize the pack/unpack
/// copies; ragged tails and the >32 blocked-LU path stay blocked.
fn pick_layout(kernel: KernelChoice, count: usize, p: &PlanParams) -> ClassLayout {
    let interleavable = matches!(kernel, KernelChoice::PackedLu | KernelChoice::SmallLu);
    match p.layout {
        BatchLayout::Interleaved { class_capacity } if interleavable && count >= class_capacity => {
            ClassLayout::Interleaved
        }
        _ => ClassLayout::Blocked,
    }
}

fn pick(n: usize, count: usize, method: PlanMethod, p: &PlanParams) -> KernelChoice {
    match method {
        PlanMethod::GjeInvert => KernelChoice::GjeInvert,
        PlanMethod::Cholesky => KernelChoice::Cholesky,
        _ if n > p.small_max => KernelChoice::BlockedLu,
        PlanMethod::SmallLu => KernelChoice::SmallLu,
        PlanMethod::GaussHuard => KernelChoice::GaussHuard,
        PlanMethod::GaussHuardT => KernelChoice::GaussHuardT,
        PlanMethod::Auto => {
            if n <= p.pack_max && count >= 2 {
                KernelChoice::PackedLu
            } else if n < p.gh_crossover {
                KernelChoice::GaussHuard
            } else {
                KernelChoice::SmallLu
            }
        }
    }
}

impl BatchPlan {
    /// Plan with explicit parameters.
    pub fn with_params(sizes: &[usize], method: PlanMethod, params: &PlanParams) -> Self {
        let mut counts = std::collections::BTreeMap::new();
        for &n in sizes {
            *counts.entry(n).or_insert(0usize) += 1;
        }
        let classes: Vec<SizeClass> = counts
            .iter()
            .map(|(&n, &count)| {
                let kernel = pick(n, count, method, params);
                SizeClass {
                    n,
                    count,
                    kernel,
                    layout: pick_layout(kernel, count, params),
                }
            })
            .collect();
        let by_n = |n: usize| &classes[classes.binary_search_by_key(&n, |c| c.n).unwrap()];
        let choice = sizes.iter().map(|&n| by_n(n).kernel).collect();
        let layouts = sizes.iter().map(|&n| by_n(n).layout).collect();
        BatchPlan {
            classes,
            choice,
            layouts,
            health: params.health,
            precision: params.precision,
        }
    }

    /// Same plan with a different health triage policy.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// The health triage policy the backends run after factorization.
    pub fn health(&self) -> HealthPolicy {
        self.health
    }

    /// Same plan with a different storage-precision policy.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// The storage-precision policy the backends factorize under.
    pub fn precision(&self) -> PrecisionPolicy {
        self.precision
    }

    /// Paper-crossover automatic plan for scalar type `T`.
    pub fn auto<T: Scalar>(sizes: &[usize]) -> Self {
        Self::with_params(sizes, PlanMethod::Auto, &PlanParams::for_scalar::<T>())
    }

    /// Plan honouring a forced method where the sizes allow it.
    pub fn for_method<T: Scalar>(sizes: &[usize], method: PlanMethod) -> Self {
        Self::with_params(sizes, method, &PlanParams::for_scalar::<T>())
    }

    /// Automatic plan with an explicit layout policy.
    pub fn auto_with_layout<T: Scalar>(sizes: &[usize], layout: BatchLayout) -> Self {
        let params = PlanParams {
            layout,
            ..PlanParams::for_scalar::<T>()
        };
        Self::with_params(sizes, PlanMethod::Auto, &params)
    }

    /// Service-runtime plan for one uniform size class: kernel and
    /// layout are chosen as if the class were at its full `capacity`
    /// population, regardless of how many members this flush actually
    /// carries. The automatic crossovers consult the class count (the
    /// packed kernel needs ≥ 2 members to pay off; interleaving needs a
    /// full class), so a solo flush and a full flush of the same class
    /// would otherwise run *different* kernels and diverge by an ULP —
    /// breaking the isolation contract of `vbatch-serve`, which
    /// promises a member's bits never depend on who it was co-batched
    /// with.
    pub fn uniform_at_capacity<T: Scalar>(
        n: usize,
        count: usize,
        capacity: usize,
        layout: BatchLayout,
    ) -> Self {
        assert!(count >= 1, "empty class");
        assert!(
            count <= capacity,
            "class population {count} exceeds capacity {capacity}"
        );
        let params = PlanParams {
            layout,
            ..PlanParams::for_scalar::<T>()
        };
        let kernel = pick(n, capacity, PlanMethod::Auto, &params);
        let class_layout = pick_layout(kernel, capacity, &params);
        BatchPlan {
            classes: vec![SizeClass {
                n,
                count,
                kernel,
                layout: class_layout,
            }],
            choice: vec![kernel; count],
            layouts: vec![class_layout; count],
            health: params.health,
            precision: params.precision,
        }
    }

    /// Forced-method plan with an explicit layout policy.
    pub fn for_method_with_layout<T: Scalar>(
        sizes: &[usize],
        method: PlanMethod,
        layout: BatchLayout,
    ) -> Self {
        let params = PlanParams {
            layout,
            ..PlanParams::for_scalar::<T>()
        };
        Self::with_params(sizes, method, &params)
    }

    /// Kernel selected for block `block`.
    pub fn kernel_for(&self, block: usize) -> KernelChoice {
        self.choice[block]
    }

    /// Layout selected for block `block`'s size class.
    pub fn layout_for(&self, block: usize) -> ClassLayout {
        self.layouts[block]
    }

    /// Number of blocks planned.
    pub fn len(&self) -> usize {
        self.choice.len()
    }

    /// `true` when the plan covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.choice.is_empty()
    }

    /// Kernel-choice histogram over blocks, in [`KernelChoice::ALL`]
    /// order, zero-count entries omitted.
    pub fn histogram(&self) -> Vec<(KernelChoice, usize)> {
        KernelChoice::ALL
            .iter()
            .filter_map(|&k| {
                let c: usize = self
                    .classes
                    .iter()
                    .filter(|cl| cl.kernel == k)
                    .map(|cl| cl.count)
                    .sum();
                (c > 0).then_some((k, c))
            })
            .collect()
    }

    /// Histogram as a compact `label=count;label=count` string for CSV
    /// columns.
    pub fn histogram_compact(&self) -> String {
        self.histogram()
            .iter()
            .map(|(k, c)| format!("{}={c}", k.label()))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Layout histogram over blocks, zero-count entries omitted.
    pub fn layout_histogram(&self) -> Vec<(ClassLayout, usize)> {
        [
            ClassLayout::Blocked,
            ClassLayout::Interleaved,
            ClassLayout::InterleavedSimd,
        ]
        .iter()
        .filter_map(|&l| {
            let c: usize = self
                .classes
                .iter()
                .filter(|cl| cl.layout == l)
                .map(|cl| cl.count)
                .sum();
            (c > 0).then_some((l, c))
        })
        .collect()
    }

    /// Layout histogram as a compact `label=count;...` string for CSV.
    pub fn layout_compact(&self) -> String {
        self.layout_histogram()
            .iter()
            .map(|(l, c)| format!("{}={c}", l.label()))
            .collect::<Vec<_>>()
            .join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_follows_paper_crossovers_f64() {
        // singleton sizes so packing does not kick in
        let plan = BatchPlan::auto::<f64>(&[4, 22, 23, 32, 33, 64, 100]);
        // pack needs count >= 2, so these fall through to GH / small LU
        assert_eq!(plan.kernel_for(0), KernelChoice::GaussHuard);
        assert_eq!(plan.kernel_for(1), KernelChoice::GaussHuard); // 22 < 23
        assert_eq!(plan.kernel_for(2), KernelChoice::SmallLu); // 23
        assert_eq!(plan.kernel_for(3), KernelChoice::SmallLu);
        assert_eq!(plan.kernel_for(4), KernelChoice::BlockedLu);
        assert_eq!(plan.kernel_for(5), KernelChoice::BlockedLu);
        assert_eq!(plan.kernel_for(6), KernelChoice::BlockedLu);
    }

    #[test]
    fn auto_crossover_is_lower_in_single_precision() {
        let plan32 = BatchPlan::auto::<f32>(&[16, 22]);
        assert_eq!(plan32.kernel_for(0), KernelChoice::SmallLu);
        assert_eq!(plan32.kernel_for(1), KernelChoice::SmallLu);
        let plan64 = BatchPlan::auto::<f64>(&[16, 22]);
        assert_eq!(plan64.kernel_for(0), KernelChoice::GaussHuard);
        assert_eq!(plan64.kernel_for(1), KernelChoice::GaussHuard);
    }

    #[test]
    fn packing_requires_multiplicity() {
        let plan = BatchPlan::auto::<f64>(&[8, 8, 8, 16, 16, 17, 17]);
        for b in 0..5 {
            assert_eq!(plan.kernel_for(b), KernelChoice::PackedLu, "block {b}");
        }
        // 17 > pack_max: two of them still are not packed
        assert_eq!(plan.kernel_for(5), KernelChoice::GaussHuard);
    }

    #[test]
    fn forced_methods_respect_size_limits() {
        let plan = BatchPlan::for_method::<f64>(&[8, 40], PlanMethod::GaussHuardT);
        assert_eq!(plan.kernel_for(0), KernelChoice::GaussHuardT);
        assert_eq!(plan.kernel_for(1), KernelChoice::BlockedLu);
        let plan = BatchPlan::for_method::<f64>(&[8, 40], PlanMethod::GjeInvert);
        assert_eq!(plan.kernel_for(0), KernelChoice::GjeInvert);
        assert_eq!(plan.kernel_for(1), KernelChoice::GjeInvert);
    }

    #[test]
    fn layout_interleaves_populous_lu_classes_only() {
        // 40 blocks of order 8 (PackedLu, >= capacity) + 3 of order 20
        // (GaussHuard in f64) + 2 of order 40 (BlockedLu)
        let mut sizes = vec![8usize; 40];
        sizes.extend([20, 20, 20, 40, 40]);
        let plan = BatchPlan::auto::<f64>(&sizes);
        for b in 0..40 {
            assert_eq!(plan.layout_for(b), ClassLayout::Interleaved, "block {b}");
        }
        for b in 40..45 {
            assert_eq!(plan.layout_for(b), ClassLayout::Blocked, "block {b}");
        }
        assert_eq!(plan.layout_compact(), "blocked=5;interleaved=40");
    }

    #[test]
    fn layout_respects_class_capacity_and_blocked_policy() {
        let sizes = vec![8usize; 40];
        let small_cap = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved { class_capacity: 41 },
        );
        assert_eq!(small_cap.layout_for(0), ClassLayout::Blocked);
        let forced_blocked = BatchPlan::auto_with_layout::<f64>(&sizes, BatchLayout::Blocked);
        assert_eq!(forced_blocked.layout_for(0), ClassLayout::Blocked);
        assert_eq!(forced_blocked.layout_compact(), "blocked=40");
    }

    #[test]
    fn precision_policy_defaults_and_labels() {
        assert_eq!(PrecisionPolicy::default(), PrecisionPolicy::FullDp);
        assert_eq!(PrecisionPolicy::FullDp.label(), "dp");
        assert_eq!(PrecisionPolicy::ForceSp.label(), "sp");
        assert!(!PrecisionPolicy::FullDp.lowers_storage());
        assert!(PrecisionPolicy::ForceSp.lowers_storage());
        // the mixed threshold is evaluated at the *storage* precision:
        // identical for f32 and f64 batches since both store f32
        let m64 = PrecisionPolicy::mixed::<f64>();
        let m32 = PrecisionPolicy::mixed::<f32>();
        assert_eq!(m64, m32);
        assert_eq!(m64.label(), "mixed");
        match m64 {
            PrecisionPolicy::MixedPromote { condest_threshold } => {
                let want = 0.25 / (f32::EPSILON as f64).sqrt();
                assert!((condest_threshold - want).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn plan_carries_precision_policy() {
        let plan = BatchPlan::auto::<f64>(&[8, 8, 30]);
        assert_eq!(plan.precision(), PrecisionPolicy::FullDp);
        let plan = plan.with_precision(PrecisionPolicy::ForceSp);
        assert_eq!(plan.precision(), PrecisionPolicy::ForceSp);
        let uni = BatchPlan::uniform_at_capacity::<f64>(8, 3, 16, BatchLayout::interleaved())
            .with_precision(PrecisionPolicy::mixed::<f64>());
        assert_eq!(uni.precision().label(), "mixed");
    }

    #[test]
    fn histogram_counts_blocks() {
        let plan = BatchPlan::auto::<f64>(&[8, 8, 30, 40]);
        let h = plan.histogram();
        assert_eq!(
            h,
            vec![
                (KernelChoice::PackedLu, 2),
                (KernelChoice::SmallLu, 1),
                (KernelChoice::BlockedLu, 1),
            ]
        );
        assert_eq!(
            plan.histogram_compact(),
            "packed-lu=2;small-lu=1;blocked-lu=1"
        );
    }
}
