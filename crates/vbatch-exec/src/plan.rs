//! Kernel planning: map a batch's size distribution to concrete kernel
//! choices using the paper's crossover points.

use vbatch_core::Scalar;

/// A concrete kernel selected for a size class of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelChoice {
    /// Multi-problem-per-warp packed LU (`⌊32/n⌋` problems per warp,
    /// n ≤ 16).
    PackedLu,
    /// Register-resident small-size LU with implicit pivoting (n ≤ 32).
    SmallLu,
    /// Two-rows-per-lane blocked LU (n > 32; the simulator kernel
    /// covers up to 64, larger orders run on the host).
    BlockedLu,
    /// Gauss-Huard with row-major factor storage.
    GaussHuard,
    /// Gauss-Huard-T: dual storage with a coalesced column copy.
    GaussHuardT,
    /// Gauss-Jordan explicit inversion (apply becomes a GEMV).
    GjeInvert,
    /// Cholesky for SPD blocks.
    Cholesky,
}

impl KernelChoice {
    /// Every choice, in display order.
    pub const ALL: [KernelChoice; 7] = [
        KernelChoice::PackedLu,
        KernelChoice::SmallLu,
        KernelChoice::BlockedLu,
        KernelChoice::GaussHuard,
        KernelChoice::GaussHuardT,
        KernelChoice::GjeInvert,
        KernelChoice::Cholesky,
    ];

    /// Stable label used in stats histograms and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            KernelChoice::PackedLu => "packed-lu",
            KernelChoice::SmallLu => "small-lu",
            KernelChoice::BlockedLu => "blocked-lu",
            KernelChoice::GaussHuard => "gauss-huard",
            KernelChoice::GaussHuardT => "gauss-huard-t",
            KernelChoice::GjeInvert => "gje-invert",
            KernelChoice::Cholesky => "cholesky",
        }
    }
}

/// What the caller asks the planner for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMethod {
    /// Let the planner pick per size class (paper crossovers).
    Auto,
    /// Force the LU family (small-size LU ≤ 32, blocked LU above).
    SmallLu,
    /// Force Gauss-Huard (falls back to blocked LU above 32).
    GaussHuard,
    /// Force Gauss-Huard-T (falls back to blocked LU above 32).
    GaussHuardT,
    /// Force explicit inversion.
    GjeInvert,
    /// Force Cholesky (SPD blocks).
    Cholesky,
}

/// Crossover order below which Gauss-Huard beats the small-size LU
/// (Fig. 6: ≈16 in single precision, ≈23 in double).
pub fn gh_crossover_order(element_bytes: usize) -> usize {
    if element_bytes <= 4 {
        16
    } else {
        23
    }
}

/// Tunable planner thresholds. [`PlanParams::for_scalar`] gives the
/// paper's values for the element type.
#[derive(Clone, Copy, Debug)]
pub struct PlanParams {
    /// Below this order GH wins over the small-size LU.
    pub gh_crossover: usize,
    /// Largest order eligible for multi-problem-per-warp packing.
    pub pack_max: usize,
    /// Largest order the one-row-per-lane kernels handle (warp width).
    pub small_max: usize,
}

impl PlanParams {
    /// Paper thresholds for scalar type `T`.
    pub fn for_scalar<T: Scalar>() -> Self {
        PlanParams {
            gh_crossover: gh_crossover_order(T::BYTES),
            pack_max: 16,
            small_max: 32,
        }
    }
}

/// One size class of a plan: `count` blocks of order `n`, all executed
/// with the same kernel.
#[derive(Clone, Copy, Debug)]
pub struct SizeClass {
    /// Block order.
    pub n: usize,
    /// Number of blocks of this order.
    pub count: usize,
    /// Kernel the planner selected for the class.
    pub kernel: KernelChoice,
}

/// A kernel assignment for every block of a batch.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Distinct size classes, ascending by order.
    pub classes: Vec<SizeClass>,
    choice: Vec<KernelChoice>,
}

fn pick(n: usize, count: usize, method: PlanMethod, p: &PlanParams) -> KernelChoice {
    match method {
        PlanMethod::GjeInvert => KernelChoice::GjeInvert,
        PlanMethod::Cholesky => KernelChoice::Cholesky,
        _ if n > p.small_max => KernelChoice::BlockedLu,
        PlanMethod::SmallLu => KernelChoice::SmallLu,
        PlanMethod::GaussHuard => KernelChoice::GaussHuard,
        PlanMethod::GaussHuardT => KernelChoice::GaussHuardT,
        PlanMethod::Auto => {
            if n <= p.pack_max && count >= 2 {
                KernelChoice::PackedLu
            } else if n < p.gh_crossover {
                KernelChoice::GaussHuard
            } else {
                KernelChoice::SmallLu
            }
        }
    }
}

impl BatchPlan {
    /// Plan with explicit parameters.
    pub fn with_params(sizes: &[usize], method: PlanMethod, params: &PlanParams) -> Self {
        let mut counts = std::collections::BTreeMap::new();
        for &n in sizes {
            *counts.entry(n).or_insert(0usize) += 1;
        }
        let classes: Vec<SizeClass> = counts
            .iter()
            .map(|(&n, &count)| SizeClass {
                n,
                count,
                kernel: pick(n, count, method, params),
            })
            .collect();
        let by_n = |n: usize| classes[classes.binary_search_by_key(&n, |c| c.n).unwrap()].kernel;
        let choice = sizes.iter().map(|&n| by_n(n)).collect();
        BatchPlan { classes, choice }
    }

    /// Paper-crossover automatic plan for scalar type `T`.
    pub fn auto<T: Scalar>(sizes: &[usize]) -> Self {
        Self::with_params(sizes, PlanMethod::Auto, &PlanParams::for_scalar::<T>())
    }

    /// Plan honouring a forced method where the sizes allow it.
    pub fn for_method<T: Scalar>(sizes: &[usize], method: PlanMethod) -> Self {
        Self::with_params(sizes, method, &PlanParams::for_scalar::<T>())
    }

    /// Kernel selected for block `block`.
    pub fn kernel_for(&self, block: usize) -> KernelChoice {
        self.choice[block]
    }

    /// Number of blocks planned.
    pub fn len(&self) -> usize {
        self.choice.len()
    }

    /// `true` when the plan covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.choice.is_empty()
    }

    /// Kernel-choice histogram over blocks, in [`KernelChoice::ALL`]
    /// order, zero-count entries omitted.
    pub fn histogram(&self) -> Vec<(KernelChoice, usize)> {
        KernelChoice::ALL
            .iter()
            .filter_map(|&k| {
                let c: usize = self
                    .classes
                    .iter()
                    .filter(|cl| cl.kernel == k)
                    .map(|cl| cl.count)
                    .sum();
                (c > 0).then_some((k, c))
            })
            .collect()
    }

    /// Histogram as a compact `label=count;label=count` string for CSV
    /// columns.
    pub fn histogram_compact(&self) -> String {
        self.histogram()
            .iter()
            .map(|(k, c)| format!("{}={c}", k.label()))
            .collect::<Vec<_>>()
            .join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_follows_paper_crossovers_f64() {
        // singleton sizes so packing does not kick in
        let plan = BatchPlan::auto::<f64>(&[4, 22, 23, 32, 33, 64, 100]);
        // pack needs count >= 2, so these fall through to GH / small LU
        assert_eq!(plan.kernel_for(0), KernelChoice::GaussHuard);
        assert_eq!(plan.kernel_for(1), KernelChoice::GaussHuard); // 22 < 23
        assert_eq!(plan.kernel_for(2), KernelChoice::SmallLu); // 23
        assert_eq!(plan.kernel_for(3), KernelChoice::SmallLu);
        assert_eq!(plan.kernel_for(4), KernelChoice::BlockedLu);
        assert_eq!(plan.kernel_for(5), KernelChoice::BlockedLu);
        assert_eq!(plan.kernel_for(6), KernelChoice::BlockedLu);
    }

    #[test]
    fn auto_crossover_is_lower_in_single_precision() {
        let plan32 = BatchPlan::auto::<f32>(&[16, 22]);
        assert_eq!(plan32.kernel_for(0), KernelChoice::SmallLu);
        assert_eq!(plan32.kernel_for(1), KernelChoice::SmallLu);
        let plan64 = BatchPlan::auto::<f64>(&[16, 22]);
        assert_eq!(plan64.kernel_for(0), KernelChoice::GaussHuard);
        assert_eq!(plan64.kernel_for(1), KernelChoice::GaussHuard);
    }

    #[test]
    fn packing_requires_multiplicity() {
        let plan = BatchPlan::auto::<f64>(&[8, 8, 8, 16, 16, 17, 17]);
        for b in 0..5 {
            assert_eq!(plan.kernel_for(b), KernelChoice::PackedLu, "block {b}");
        }
        // 17 > pack_max: two of them still are not packed
        assert_eq!(plan.kernel_for(5), KernelChoice::GaussHuard);
    }

    #[test]
    fn forced_methods_respect_size_limits() {
        let plan = BatchPlan::for_method::<f64>(&[8, 40], PlanMethod::GaussHuardT);
        assert_eq!(plan.kernel_for(0), KernelChoice::GaussHuardT);
        assert_eq!(plan.kernel_for(1), KernelChoice::BlockedLu);
        let plan = BatchPlan::for_method::<f64>(&[8, 40], PlanMethod::GjeInvert);
        assert_eq!(plan.kernel_for(0), KernelChoice::GjeInvert);
        assert_eq!(plan.kernel_for(1), KernelChoice::GjeInvert);
    }

    #[test]
    fn histogram_counts_blocks() {
        let plan = BatchPlan::auto::<f64>(&[8, 8, 30, 40]);
        let h = plan.histogram();
        assert_eq!(
            h,
            vec![
                (KernelChoice::PackedLu, 2),
                (KernelChoice::SmallLu, 1),
                (KernelChoice::BlockedLu, 1),
            ]
        );
        assert_eq!(
            plan.histogram_compact(),
            "packed-lu=2;small-lu=1;blocked-lu=1"
        );
    }
}
