//! Applying a [`FaultPlan`] to batch data — the numerical half of the
//! fault-injection layer (the assignment half lives in
//! `vbatch_rt::fault`, which is scalar-agnostic).
//!
//! Injection is deterministic in every respect: which blocks are hit is
//! the plan's seeded assignment, and *where* inside a block each fault
//! class strikes is a fixed function of the block order. The
//! differential fault suite relies on this to assert per-block statuses
//! against the exact injected map.

use crate::factors::BlockHealth;
use vbatch_core::{MatrixBatch, Scalar, VectorBatch};
use vbatch_rt::fault::{FaultClass, FaultPlan};

/// Corrupt one column-major `n × n` block in place according to `fault`.
/// [`FaultClass::RhsNan`] leaves the matrix untouched (see
/// [`inject_rhs`]).
pub fn apply_fault<T: Scalar>(n: usize, block: &mut [T], fault: FaultClass) {
    debug_assert_eq!(block.len(), n * n);
    if n == 0 {
        return;
    }
    match fault {
        FaultClass::NanEntry => {
            // off-diagonal when possible: row 0 of the last column
            block[(n - 1) * n] = T::from_f64(f64::NAN);
        }
        FaultClass::InfEntry => {
            // a different corner: last row of the first column
            block[n - 1] = T::from_f64(f64::INFINITY);
        }
        FaultClass::ZeroRow => {
            let row = n / 2;
            for col in 0..n {
                block[col * n + row] = T::ZERO;
            }
        }
        FaultClass::EpsColumn => {
            // sqrt(eps) drives the condition number far past the
            // guarded triage threshold (0.25/sqrt(eps)) while leaving
            // the block recoverable: the exact solve of the scaled
            // block amplifies by ~1/sqrt(eps), keeping the attainable
            // Krylov accuracy (eps · kappa) below the paper's 1e-6
            let col = n / 2;
            let scale = T::epsilon().sqrt();
            for row in 0..n {
                block[col * n + row] *= scale;
            }
        }
        FaultClass::RhsNan => {}
    }
}

/// Inject the plan's faults into a matrix batch, returning the
/// assignment so callers can cross-check the resulting per-block
/// statuses. RHS faults are returned in the assignment but applied
/// separately via [`inject_rhs`].
pub fn inject_batch<T: Scalar>(
    blocks: &mut MatrixBatch<T>,
    plan: &FaultPlan,
) -> Vec<Option<FaultClass>> {
    let assignment = plan.assign(blocks.len());
    for (i, fault) in assignment.iter().enumerate() {
        if let Some(f) = fault {
            let n = blocks.size(i);
            apply_fault(n, blocks.block_mut(i), *f);
        }
    }
    assignment
}

/// Apply the RHS faults of an assignment to a vector batch: the first
/// entry of each victim segment becomes NaN.
pub fn inject_rhs<T: Scalar>(rhs: &mut VectorBatch<T>, assignment: &[Option<FaultClass>]) {
    for (i, fault) in assignment.iter().enumerate() {
        if *fault == Some(FaultClass::RhsNan) {
            let seg = rhs.seg_mut(i);
            if !seg.is_empty() {
                seg[0] = T::from_f64(f64::NAN);
            }
        }
    }
}

/// The [`BlockHealth`] a guarded factorization
/// ([`crate::HealthPolicy::Guarded`]) must report for a block hit by
/// `fault`, assuming the block was healthy before injection.
pub fn expected_health(fault: Option<FaultClass>) -> BlockHealth {
    match fault {
        None | Some(FaultClass::RhsNan) => BlockHealth::Healthy,
        Some(FaultClass::NanEntry) | Some(FaultClass::InfEntry) => BlockHealth::NonFinite,
        Some(FaultClass::ZeroRow) => BlockHealth::Singular,
        Some(FaultClass::EpsColumn) => BlockHealth::IllConditioned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_deterministic_and_local() {
        let sizes = vec![4usize; 20];
        let plan = FaultPlan::new(11)
            .with(FaultClass::NanEntry, 0.1)
            .with(FaultClass::ZeroRow, 0.1);
        let mk = || {
            let mut b = MatrixBatch::<f64>::zeros(&sizes);
            for i in 0..b.len() {
                for (k, v) in b.block_mut(i).iter_mut().enumerate() {
                    *v = 1.0 + (i * 31 + k) as f64 * 0.01;
                }
            }
            b
        };
        let mut a = mk();
        let mut b = mk();
        let asg_a = inject_batch(&mut a, &plan);
        let asg_b = inject_batch(&mut b, &plan);
        assert_eq!(asg_a, asg_b);
        // bit-level comparison: NaN payloads must agree too
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // untouched blocks are bitwise intact
        let clean = mk();
        for (i, fault) in asg_a.iter().enumerate() {
            if fault.is_none() {
                assert_eq!(a.block(i), clean.block(i), "block {i}");
            }
        }
        assert_eq!(asg_a.iter().filter(|f| f.is_some()).count(), 4);
    }

    #[test]
    fn fault_classes_corrupt_as_documented() {
        let n = 5;
        let fresh = || vec![1.0f64; n * n];

        let mut b = fresh();
        apply_fault(n, &mut b, FaultClass::NanEntry);
        assert_eq!(b.iter().filter(|v| v.is_nan()).count(), 1);

        let mut b = fresh();
        apply_fault(n, &mut b, FaultClass::InfEntry);
        assert_eq!(b.iter().filter(|v| v.is_infinite()).count(), 1);

        let mut b = fresh();
        apply_fault(n, &mut b, FaultClass::ZeroRow);
        let row = n / 2;
        for col in 0..n {
            assert_eq!(b[col * n + row], 0.0);
        }
        assert_eq!(b.iter().filter(|&&v| v == 0.0).count(), n);

        let mut b = fresh();
        apply_fault(n, &mut b, FaultClass::EpsColumn);
        let col = n / 2;
        for row in 0..n {
            assert_eq!(b[col * n + row], f64::EPSILON.sqrt());
        }

        let mut b = fresh();
        apply_fault(n, &mut b, FaultClass::RhsNan);
        assert!(b.iter().all(|v| *v == 1.0), "RhsNan must not touch A");
    }

    #[test]
    fn rhs_injection_hits_only_victim_segments() {
        let sizes = vec![3usize, 3, 3];
        let mut rhs = VectorBatch::<f64>::from_flat(&sizes, &[1.0; 9]);
        let assignment = vec![None, Some(FaultClass::RhsNan), Some(FaultClass::ZeroRow)];
        inject_rhs(&mut rhs, &assignment);
        assert!(rhs.seg(0).iter().all(|v| v.is_finite()));
        assert!(rhs.seg(1)[0].is_nan());
        assert!(rhs.seg(1)[1..].iter().all(|v| v.is_finite()));
        assert!(rhs.seg(2).iter().all(|v| v.is_finite()));
    }
}
