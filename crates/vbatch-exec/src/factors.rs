//! Host-side factorized batch: the interchange format between a
//! backend's `factorize` and `solve` calls, with per-block status.

use crate::plan::KernelChoice;
use vbatch_core::{
    lu_solve_inplace, lu_solve_interleaved_slot, CholeskyFactors, FactorError, GhFactors,
    Permutation, Scalar, TrsvVariant, VectorBatch,
};

/// Outcome of factorizing one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockStatus {
    /// Factorized successfully with the planned kernel.
    Factorized(KernelChoice),
    /// Factorization failed; the block degraded to scalar Jacobi
    /// (diagonal) so the preconditioner stays usable.
    FallbackScalarJacobi {
        /// The kernel that was attempted.
        kernel: KernelChoice,
        /// Why it failed.
        error: FactorError,
    },
}

impl BlockStatus {
    /// `true` when the block fell back to scalar Jacobi.
    pub fn is_fallback(&self) -> bool {
        matches!(self, BlockStatus::FallbackScalarJacobi { .. })
    }
}

/// One block's factors, in whatever form the planned kernel produces.
#[derive(Clone, Debug)]
pub enum BlockFactor<T: Scalar> {
    /// Combined `L\U` (column-major, pivot order) plus the pivot
    /// sequence, from any of the LU kernels.
    Lu {
        /// Block order.
        n: usize,
        /// Combined factors, column-major.
        lu: Vec<T>,
        /// Row-of-step pivot sequence.
        perm: Permutation,
    },
    /// Gauss-Huard factors (either storage layout).
    Gh(GhFactors<T>),
    /// Explicit inverse (column-major), from GJE inversion.
    Inv {
        /// Block order.
        n: usize,
        /// Inverse matrix, column-major.
        inv: Vec<T>,
    },
    /// Cholesky factor for SPD blocks.
    Chol(CholeskyFactors<T>),
    /// Scalar-Jacobi fallback: the reciprocal diagonal of the original
    /// block (identity where the diagonal was zero or non-finite).
    ScalarJacobi {
        /// Reciprocal diagonal entries.
        inv_diag: Vec<T>,
    },
    /// The block's LU factors live in an interleaved size class
    /// ([`FactorizedBatch::interleaved`]) rather than a per-block
    /// allocation.
    InterleavedLu {
        /// Index into [`FactorizedBatch::interleaved`].
        class: usize,
        /// Slot of this block within the class.
        slot: usize,
    },
}

/// LU factors of one interleaved size class: `blocks.len()` systems of
/// order `n`, with combined `L\U` values stored element-interleaved
/// (`data[(j*n + i) * count + slot]`) and row-of-step pivot lanes
/// (`piv[k * count + slot]`).
#[derive(Clone, Debug)]
pub struct InterleavedLuClass<T> {
    /// Block order of the class.
    pub n: usize,
    /// Slot → original block index.
    pub blocks: Vec<usize>,
    /// Interleaved combined `L\U` factors.
    pub data: Vec<T>,
    /// Interleaved row-of-step pivot lanes.
    pub piv: Vec<usize>,
}

impl<T: Scalar> InterleavedLuClass<T> {
    /// Number of slots in the class.
    pub fn count(&self) -> usize {
        self.blocks.len()
    }

    /// Solve one slot's system in place (strided host path; bitwise
    /// identical to the class-wide sweep).
    pub fn solve_slot_inplace(&self, slot: usize, seg: &mut [T]) {
        lu_solve_interleaved_slot(self.n, self.count(), slot, &self.data, &self.piv, seg);
    }

    /// Row-of-step pivot sequence of one slot.
    pub fn slot_row_of_step(&self, slot: usize) -> Vec<usize> {
        let count = self.count();
        (0..self.n).map(|k| self.piv[k * count + slot]).collect()
    }
}

/// Build the scalar-Jacobi fallback factor from a block's original
/// diagonal.
pub(crate) fn scalar_jacobi_from_diag<T: Scalar>(diag: &[T]) -> BlockFactor<T> {
    let inv_diag = diag
        .iter()
        .map(|&d| {
            if d != T::ZERO && d.is_finite() {
                T::ONE / d
            } else {
                T::ONE
            }
        })
        .collect();
    BlockFactor::ScalarJacobi { inv_diag }
}

/// Extract the diagonal of a column-major `n × n` block.
pub(crate) fn block_diag<T: Scalar>(n: usize, data: &[T]) -> Vec<T> {
    (0..n).map(|i| data[i * n + i]).collect()
}

/// A factorized variable-size batch with per-block status, produced by
/// [`crate::Backend::factorize`] and consumed by
/// [`crate::Backend::solve`].
#[derive(Clone, Debug)]
pub struct FactorizedBatch<T: Scalar> {
    /// Block orders.
    pub sizes: Vec<usize>,
    /// Per-block factors.
    pub factors: Vec<BlockFactor<T>>,
    /// Per-block factorization status.
    pub status: Vec<BlockStatus>,
    /// Interleaved size classes referenced by
    /// [`BlockFactor::InterleavedLu`] entries (empty for a fully
    /// blocked factorization).
    pub interleaved: Vec<InterleavedLuClass<T>>,
}

impl<T: Scalar> FactorizedBatch<T> {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Number of blocks that degraded to the scalar-Jacobi fallback.
    pub fn fallback_count(&self) -> usize {
        self.status.iter().filter(|s| s.is_fallback()).count()
    }

    /// Host reference solve of block `block` against segment `seg`
    /// (used by the CPU backends and as the simulator's host path).
    pub fn solve_block_inplace(&self, block: usize, seg: &mut [T]) {
        let n = self.sizes[block];
        debug_assert_eq!(seg.len(), n);
        match &self.factors[block] {
            BlockFactor::Lu { n, lu, perm } => {
                lu_solve_inplace(TrsvVariant::Eager, *n, lu, perm.as_slice(), seg);
            }
            BlockFactor::Gh(f) => f.solve_inplace(seg),
            BlockFactor::Inv { n, inv } => {
                let x: Vec<T> = seg.to_vec();
                for (i, out) in seg.iter_mut().enumerate() {
                    let mut acc = T::ZERO;
                    for (j, &xj) in x.iter().enumerate() {
                        acc = inv[j * n + i].mul_add(xj, acc);
                    }
                    *out = acc;
                }
            }
            BlockFactor::Chol(f) => f.solve_inplace(TrsvVariant::Eager, seg),
            BlockFactor::ScalarJacobi { inv_diag } => {
                for (s, &d) in seg.iter_mut().zip(inv_diag) {
                    *s *= d;
                }
            }
            BlockFactor::InterleavedLu { class, slot } => {
                self.interleaved[*class].solve_slot_inplace(*slot, seg);
            }
        }
    }

    /// Row-of-step pivot sequence of block `block`, when its factors
    /// are an LU form (blocked or interleaved). Used by the golden
    /// differential suite to assert bitwise pivot agreement.
    pub fn row_of_step(&self, block: usize) -> Option<Vec<usize>> {
        match &self.factors[block] {
            BlockFactor::Lu { perm, .. } => Some(perm.as_slice().to_vec()),
            BlockFactor::InterleavedLu { class, slot } => {
                Some(self.interleaved[*class].slot_row_of_step(*slot))
            }
            _ => None,
        }
    }

    /// Host reference solve over a whole vector batch, sequentially.
    pub fn solve_all_inplace(&self, rhs: &mut VectorBatch<T>) {
        for (i, seg) in rhs.segs_mut().into_iter().enumerate() {
            self.solve_block_inplace(i, seg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_jacobi_guards_bad_diagonal() {
        let f = scalar_jacobi_from_diag(&[2.0f64, 0.0, f64::NAN, -4.0]);
        match f {
            BlockFactor::ScalarJacobi { inv_diag } => {
                assert_eq!(inv_diag, vec![0.5, 1.0, 1.0, -0.25]);
            }
            _ => panic!("wrong factor kind"),
        }
    }

    #[test]
    fn inv_factor_applies_inverse() {
        // A = [[2, 0], [0, 4]], inv = [[0.5, 0], [0, 0.25]] col-major
        let fb = FactorizedBatch {
            sizes: vec![2],
            factors: vec![BlockFactor::Inv {
                n: 2,
                inv: vec![0.5, 0.0, 0.0, 0.25],
            }],
            status: vec![BlockStatus::Factorized(KernelChoice::GjeInvert)],
            interleaved: Vec::new(),
        };
        let mut seg = [8.0f64, 8.0];
        fb.solve_block_inplace(0, &mut seg);
        assert_eq!(seg, [4.0, 2.0]);
        assert_eq!(fb.fallback_count(), 0);
    }
}
