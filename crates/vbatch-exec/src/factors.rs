//! Host-side factorized batch: the interchange format between a
//! backend's `factorize` and `solve` calls, with per-block status.
//!
//! The solve arms in this module are apply-phase hot paths (they run on
//! every preconditioned Krylov iteration): the `disallowed_methods` /
//! `disallowed_macros` deny below forbids `Vec::new` / `vec!` /
//! `to_vec` here so per-apply allocations cannot creep back in.
//! Setup-time code that legitimately allocates carries a targeted
//! `allow` with a comment.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::plan::KernelChoice;
use vbatch_core::{
    gh_solve_widened_scratch, lu_solve_inplace_scratch, lu_solve_interleaved_slot_scratch,
    lu_solve_interleaved_slot_widened_scratch, lu_solve_widened_scratch, residual_into,
    CholeskyFactors, FactorError, GhFactors, MatrixBatch, Permutation, QrFactors, Scalar,
    StoragePrecision, TrsvVariant, VectorBatch,
};

/// Numerical health classification of one factorized block, assigned by
/// the post-factorization triage pass (see `crate::health`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockHealth {
    /// Factorized cleanly, condition estimate below the ill threshold.
    Healthy,
    /// Factorized, but the condition estimate exceeds the policy
    /// threshold: the apply may lose most of its accuracy.
    IllConditioned,
    /// Factorization hit an (exactly or numerically) zero pivot.
    Singular,
    /// The block contained NaN/Inf entries.
    NonFinite,
}

impl BlockHealth {
    /// Stable label used in stats histograms and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            BlockHealth::Healthy => "healthy",
            BlockHealth::IllConditioned => "ill_conditioned",
            BlockHealth::Singular => "singular",
            BlockHealth::NonFinite => "non_finite",
        }
    }
}

impl core::fmt::Display for BlockHealth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One step in a block's recovery escalation chain, in the order it was
/// applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecoveryStep {
    /// Row/column equilibration + refactorization (the block keeps an
    /// exact — now better-conditioned — LU; the apply adds one step of
    /// iterative refinement).
    Equilibrated,
    /// Refactorized with column-pivoted Householder QR — the
    /// rank-revealing tier between equilibration and the scalar-Jacobi
    /// surrender: the block keeps an exact orthogonal factorization
    /// whose solve truncates negligible pivots instead of amplifying
    /// them.
    HouseholderQr,
    /// Degraded to the scalar-Jacobi (reciprocal diagonal) fallback.
    ScalarJacobi,
    /// Diagonal entries that were zero or non-finite were replaced by
    /// ones: those rows act as the identity.
    Identity,
}

impl RecoveryStep {
    /// Stable label used in stats histograms and test diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStep::Equilibrated => "equilibrated",
            RecoveryStep::HouseholderQr => "householder_qr",
            RecoveryStep::ScalarJacobi => "scalar_jacobi",
            RecoveryStep::Identity => "identity",
        }
    }
}

/// Outcome of factorizing one block: the kernel that ran, the triaged
/// health of the block, and any recovery escalation that was applied.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockStatus {
    /// The kernel that was planned (and attempted) for the block.
    pub kernel: KernelChoice,
    /// Triaged numerical health. Without a health policy this is
    /// [`BlockHealth::Healthy`] for factorized blocks and
    /// [`BlockHealth::Singular`]/[`BlockHealth::NonFinite`] for blocks
    /// that failed to factorize.
    pub health: BlockHealth,
    /// 1-norm condition estimate, when the triage pass computed one.
    pub condest: Option<f64>,
    /// The factorization error that triggered recovery, if any.
    pub error: Option<FactorError>,
    /// Recovery escalation chain, in application order. Empty for
    /// blocks that factorized cleanly.
    pub recovery: Vec<RecoveryStep>,
    /// Precision the block's factors are *stored* in. The working
    /// precision of the apply is always the batch scalar `T`;
    /// [`StoragePrecision::Lower`] means the solve widens SP factors
    /// element-by-element and refines against the retained DP block.
    pub precision: StoragePrecision,
    /// `true` when a mixed-precision policy promoted this block back to
    /// native-precision factors because its condition estimate exceeded
    /// the promotion threshold.
    pub promoted: bool,
}

impl BlockStatus {
    /// A block factorized cleanly by `kernel` (native storage).
    // status construction is setup-time, not an apply path
    #[allow(clippy::disallowed_methods)]
    pub fn factorized(kernel: KernelChoice) -> Self {
        BlockStatus {
            kernel,
            health: BlockHealth::Healthy,
            condest: None,
            error: None,
            recovery: Vec::new(),
            precision: StoragePrecision::Native,
            promoted: false,
        }
    }

    /// A block whose factorization failed with `error` and degraded to
    /// the scalar-Jacobi fallback; `sanitized` counts diagonal entries
    /// that had to be replaced by identity rows.
    // status construction is setup-time, not an apply path
    #[allow(clippy::disallowed_methods)]
    pub fn fallback(kernel: KernelChoice, error: FactorError, sanitized: usize, n: usize) -> Self {
        let health = match error {
            FactorError::NonFinite { .. } => BlockHealth::NonFinite,
            _ => BlockHealth::Singular,
        };
        let mut recovery = Vec::new();
        if sanitized < n {
            recovery.push(RecoveryStep::ScalarJacobi);
        }
        if sanitized > 0 {
            recovery.push(RecoveryStep::Identity);
        }
        BlockStatus {
            kernel,
            health,
            condest: None,
            error: Some(error),
            recovery,
            precision: StoragePrecision::Native,
            promoted: false,
        }
    }

    /// `true` when the block lost its exact factorization — degraded to
    /// scalar Jacobi or identity rows. Equilibration alone does *not*
    /// count: the block still applies an exact block inverse.
    pub fn is_fallback(&self) -> bool {
        self.recovery
            .iter()
            .any(|&s| matches!(s, RecoveryStep::ScalarJacobi | RecoveryStep::Identity))
    }
}

/// One block's factors, in whatever form the planned kernel produces.
#[derive(Clone, Debug)]
pub enum BlockFactor<T: Scalar> {
    /// Combined `L\U` (column-major, pivot order) plus the pivot
    /// sequence, from any of the LU kernels.
    Lu {
        /// Block order.
        n: usize,
        /// Combined factors, column-major.
        lu: Vec<T>,
        /// Row-of-step pivot sequence.
        perm: Permutation,
    },
    /// Gauss-Huard factors (either storage layout).
    Gh(GhFactors<T>),
    /// Explicit inverse (column-major), from GJE inversion.
    Inv {
        /// Block order.
        n: usize,
        /// Inverse matrix, column-major.
        inv: Vec<T>,
    },
    /// Cholesky factor for SPD blocks.
    Chol(CholeskyFactors<T>),
    /// Scalar-Jacobi fallback: the reciprocal diagonal of the original
    /// block (identity where the diagonal was zero or non-finite).
    ScalarJacobi {
        /// Reciprocal diagonal entries.
        inv_diag: Vec<T>,
    },
    /// LU of the equilibrated block `diag(r) * A * diag(c)`, produced by
    /// the health triage pass for ill-conditioned blocks. The apply
    /// solves through the scalings and adds one step of iterative
    /// refinement against the retained original block.
    EquilibratedLu {
        /// Block order.
        n: usize,
        /// Combined factors of the equilibrated block, column-major.
        lu: Vec<T>,
        /// Row-of-step pivot sequence.
        perm: Permutation,
        /// Row scalings.
        r: Vec<T>,
        /// Column scalings.
        c: Vec<T>,
        /// The original (unequilibrated) block, column-major, kept for
        /// the refinement residual.
        a: Vec<T>,
    },
    /// The block's LU factors live in an interleaved size class
    /// ([`FactorizedBatch::interleaved`]) rather than a per-block
    /// allocation.
    InterleavedLu {
        /// Index into [`FactorizedBatch::interleaved`].
        class: usize,
        /// Slot of this block within the class.
        slot: usize,
    },
    /// Combined `L\U` stored in *lowered* precision (`T::Lower`),
    /// produced by the mixed/SP precision policies. The apply widens
    /// each factor element on read, accumulates in `T`, and adds one
    /// step of iterative refinement whose residual reads the block out
    /// of the batch-wide retained copy ([`FactorizedBatch::retained`])
    /// — lowered factors never carry their own working-precision
    /// duplicate.
    LuLower {
        /// Block order.
        n: usize,
        /// Combined factors in storage precision, column-major.
        lu: Vec<T::Lower>,
        /// Row-of-step pivot sequence.
        perm: Permutation,
    },
    /// Gauss-Huard factors stored in lowered precision, applied through
    /// the widening replay with one refinement step against the
    /// retained native block ([`FactorizedBatch::retained`]).
    GhLower {
        /// Factors in storage precision.
        gh: GhFactors<T::Lower>,
    },
    /// Column-pivoted Householder QR in working precision — the
    /// rank-revealing escalation tier above [`BlockFactor::EquilibratedLu`].
    Qr(QrFactors<T>),
    /// The block's lowered-precision LU factors live in an interleaved
    /// size class ([`FactorizedBatch::interleaved_lower`]).
    InterleavedLuLower {
        /// Index into [`FactorizedBatch::interleaved_lower`].
        class: usize,
        /// Slot of this block within the class.
        slot: usize,
    },
}

/// LU factors of one interleaved size class: `blocks.len()` systems of
/// order `n`, with combined `L\U` values stored element-interleaved
/// (`data[(j*n + i) * count + slot]`) and row-of-step pivot lanes
/// (`piv[k * count + slot]`).
#[derive(Clone, Debug)]
pub struct InterleavedLuClass<T> {
    /// Block order of the class.
    pub n: usize,
    /// Slot → original block index.
    pub blocks: Vec<usize>,
    /// Interleaved combined `L\U` factors.
    pub data: Vec<T>,
    /// Interleaved row-of-step pivot lanes.
    pub piv: Vec<usize>,
}

impl<T: Scalar> InterleavedLuClass<T> {
    /// Number of slots in the class.
    pub fn count(&self) -> usize {
        self.blocks.len()
    }

    /// Solve one slot's system in place (strided host path; bitwise
    /// identical to the class-wide sweep).
    pub fn solve_slot_inplace(&self, slot: usize, seg: &mut [T]) {
        // setup/compat path: the prepared apply uses the scratch form
        #[allow(clippy::disallowed_macros)]
        let mut scratch = vec![T::ZERO; self.n];
        self.solve_slot_inplace_scratch(slot, seg, &mut scratch);
    }

    /// [`InterleavedLuClass::solve_slot_inplace`] with caller scratch
    /// (`scratch.len() >= n`); performs no heap allocation.
    pub fn solve_slot_inplace_scratch(&self, slot: usize, seg: &mut [T], scratch: &mut [T]) {
        lu_solve_interleaved_slot_scratch(
            self.n,
            self.count(),
            slot,
            &self.data,
            &self.piv,
            seg,
            scratch,
        );
    }

    /// Row-of-step pivot sequence of one slot.
    pub fn slot_row_of_step(&self, slot: usize) -> Vec<usize> {
        // test/diagnostic API, not an apply path
        #[allow(clippy::disallowed_macros)]
        let mut out = vec![0usize; self.n];
        self.slot_row_of_step_into(slot, &mut out);
        out
    }

    /// Non-allocating [`InterleavedLuClass::slot_row_of_step`]: write
    /// slot `slot`'s pivot sequence into `out` (`out.len() == n`).
    pub fn slot_row_of_step_into(&self, slot: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.n);
        let count = self.count();
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.piv[k * count + slot];
        }
    }
}

/// Lowered-precision LU factors of one interleaved size class. The
/// widening apply's refinement residual reads each slot's original
/// block out of the batch-wide retained copy
/// ([`FactorizedBatch::retained`]) — the class keeps no
/// working-precision duplicate, which is what lets the lowered
/// factorization pack *less* data than the native one.
#[derive(Clone, Debug)]
pub struct InterleavedLuLowerClass<T: Scalar> {
    /// Block order of the class.
    pub n: usize,
    /// Slot → original block index.
    pub blocks: Vec<usize>,
    /// Interleaved combined `L\U` factors in storage precision.
    pub data: Vec<T::Lower>,
    /// Interleaved row-of-step pivot lanes.
    pub piv: Vec<usize>,
}

impl<T: Scalar> InterleavedLuLowerClass<T> {
    /// Number of slots in the class.
    pub fn count(&self) -> usize {
        self.blocks.len()
    }

    /// Widening solve of one slot's system with one refinement step
    /// against the slot's original block `orig` (column-major, order
    /// `n` — the caller reads it out of the retained batch).
    /// `scratch.len() >= 4 n` (saved RHS, residual, correction, inner
    /// permutation gather); no heap allocation.
    pub fn solve_slot_inplace_scratch(
        &self,
        slot: usize,
        orig: &[T],
        seg: &mut [T],
        scratch: &mut [T],
    ) {
        let n = self.n;
        let count = self.count();
        debug_assert_eq!(seg.len(), n);
        debug_assert_eq!(orig.len(), n * n);
        debug_assert!(scratch.len() >= 4 * n);
        let (saved, rest) = scratch[..4 * n].split_at_mut(n);
        let (resid, rest) = rest.split_at_mut(n);
        let (e, inner) = rest.split_at_mut(n);
        saved.copy_from_slice(seg);
        lu_solve_interleaved_slot_widened_scratch(
            n, count, slot, &self.data, &self.piv, seg, inner,
        );
        // residual against the retained original block (column-major
        // traversal — the same element order the interleaved copy used,
        // so the refinement bits are unchanged)
        resid.copy_from_slice(saved);
        for (j, &xj) in seg.iter().enumerate() {
            for (i, ri) in resid.iter_mut().enumerate() {
                *ri = (-orig[j * n + i]).mul_add(xj, *ri);
            }
        }
        e.copy_from_slice(resid);
        lu_solve_interleaved_slot_widened_scratch(n, count, slot, &self.data, &self.piv, e, inner);
        for (x, &ei) in seg.iter_mut().zip(e.iter()) {
            if ei.is_finite() {
                *x += ei;
            }
        }
    }

    /// Non-allocating pivot-sequence read of one slot
    /// (`out.len() == n`).
    pub fn slot_row_of_step_into(&self, slot: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.n);
        let count = self.count();
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.piv[k * count + slot];
        }
    }
}

/// Build the scalar-Jacobi fallback factor from a block's original
/// diagonal; also reports how many entries had to be sanitized to the
/// identity (zero or non-finite diagonal).
pub(crate) fn scalar_jacobi_from_diag<T: Scalar>(diag: &[T]) -> (BlockFactor<T>, usize) {
    let mut sanitized = 0usize;
    let inv_diag = diag
        .iter()
        .map(|&d| {
            if d != T::ZERO && d.is_finite() {
                T::ONE / d
            } else {
                sanitized += 1;
                T::ONE
            }
        })
        .collect();
    (BlockFactor::ScalarJacobi { inv_diag }, sanitized)
}

/// Extract the diagonal of a column-major `n × n` block.
pub(crate) fn block_diag<T: Scalar>(n: usize, data: &[T]) -> Vec<T> {
    (0..n).map(|i| data[i * n + i]).collect()
}

/// A factorized variable-size batch with per-block status, produced by
/// [`crate::Backend::factorize`] and consumed by
/// [`crate::Backend::solve`].
#[derive(Clone, Debug)]
pub struct FactorizedBatch<T: Scalar> {
    /// Block orders.
    pub sizes: Vec<usize>,
    /// Per-block factors.
    pub factors: Vec<BlockFactor<T>>,
    /// Per-block factorization status.
    pub status: Vec<BlockStatus>,
    /// Interleaved size classes referenced by
    /// [`BlockFactor::InterleavedLu`] entries (empty for a fully
    /// blocked factorization).
    pub interleaved: Vec<InterleavedLuClass<T>>,
    /// Lowered-precision interleaved size classes referenced by
    /// [`BlockFactor::InterleavedLuLower`] entries (empty under the
    /// full-precision policy).
    pub interleaved_lower: Vec<InterleavedLuLowerClass<T>>,
    /// The original batch in working precision, retained only under a
    /// storage-lowering precision policy: the widening applies read
    /// their refinement residuals out of it, so the lowered factors
    /// never duplicate working-precision data per block. `None` under
    /// `FullDp` (and at the `f32` floor), where factorization consumes
    /// the batch as before.
    pub retained: Option<MatrixBatch<T>>,
}

impl<T: Scalar> FactorizedBatch<T> {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Number of blocks that degraded to the scalar-Jacobi fallback.
    pub fn fallback_count(&self) -> usize {
        self.status.iter().filter(|s| s.is_fallback()).count()
    }

    /// Column-major working-precision data of block `block`, read out
    /// of the retained batch. Only lowered factors call this; a batch
    /// that holds lowered factors always carries its retained copy.
    fn retained_block(&self, block: usize) -> &[T] {
        self.retained
            .as_ref()
            .expect("lowered factors require the retained working-precision batch")
            .block(block)
    }

    /// Scratch elements [`FactorizedBatch::solve_block_inplace_with`]
    /// needs for block `block`: `n` for the single-copy forms, `4 n`
    /// for the refining forms — equilibrated LU and every
    /// lowered-precision factor (RHS copy, residual, correction, and
    /// the permutation gather of the two inner solves) — `0` for the
    /// copy-free forms.
    pub fn solve_scratch_elems(&self, block: usize) -> usize {
        let n = self.sizes[block];
        match &self.factors[block] {
            BlockFactor::Lu { .. }
            | BlockFactor::Gh(_)
            | BlockFactor::Inv { .. }
            | BlockFactor::InterleavedLu { .. }
            | BlockFactor::Qr(_) => n,
            BlockFactor::Chol(_) | BlockFactor::ScalarJacobi { .. } => 0,
            BlockFactor::EquilibratedLu { .. }
            | BlockFactor::LuLower { .. }
            | BlockFactor::GhLower { .. }
            | BlockFactor::InterleavedLuLower { .. } => 4 * n,
        }
    }

    /// Host reference solve of block `block` against segment `seg`
    /// (used by the CPU backends and as the simulator's host path).
    pub fn solve_block_inplace(&self, block: usize, seg: &mut [T]) {
        // setup/compat path: the prepared apply uses the scratch form
        #[allow(clippy::disallowed_macros)]
        let mut scratch = vec![T::ZERO; self.solve_scratch_elems(block)];
        self.solve_block_inplace_with(block, seg, &mut scratch);
    }

    /// [`FactorizedBatch::solve_block_inplace`] with caller-provided
    /// scratch (`scratch.len() >= solve_scratch_elems(block)`): every
    /// RHS copy — the permutation gather of the LU forms, the GH
    /// un-permute, the GEMV input of the explicit inverse, the
    /// refinement temporaries of the equilibrated path — lands in
    /// `scratch`, so the apply performs zero heap allocations. Copies
    /// are element-exact; results are bitwise identical to the
    /// allocating form.
    pub fn solve_block_inplace_with(&self, block: usize, seg: &mut [T], scratch: &mut [T]) {
        let n = self.sizes[block];
        debug_assert_eq!(seg.len(), n);
        debug_assert!(scratch.len() >= self.solve_scratch_elems(block));
        match &self.factors[block] {
            BlockFactor::Lu { n, lu, perm } => {
                lu_solve_inplace_scratch(TrsvVariant::Eager, *n, lu, perm.as_slice(), seg, scratch);
            }
            BlockFactor::Gh(f) => f.solve_inplace_scratch(seg, scratch),
            BlockFactor::Inv { n, inv } => {
                let x = &mut scratch[..*n];
                x.copy_from_slice(seg);
                for (i, out) in seg.iter_mut().enumerate() {
                    let mut acc = T::ZERO;
                    for (j, &xj) in x.iter().enumerate() {
                        acc = inv[j * n + i].mul_add(xj, acc);
                    }
                    *out = acc;
                }
            }
            BlockFactor::Chol(f) => f.solve_inplace(TrsvVariant::Eager, seg),
            BlockFactor::ScalarJacobi { inv_diag } => {
                for (s, &d) in seg.iter_mut().zip(inv_diag) {
                    *s *= d;
                }
            }
            BlockFactor::EquilibratedLu {
                n,
                lu,
                perm,
                r,
                c,
                a,
            } => {
                let n = *n;
                let (b, rest) = scratch[..4 * n].split_at_mut(n);
                let (resid, rest) = rest.split_at_mut(n);
                let (e, perm_scratch) = rest.split_at_mut(n);
                b.copy_from_slice(seg);
                // x = diag(c) * (LU)^{-1} * diag(r) * b
                let mut solve_scaled = |rhs: &[T], out: &mut [T]| {
                    for (o, (&ri, &bi)) in out.iter_mut().zip(r.iter().zip(rhs)) {
                        *o = ri * bi;
                    }
                    lu_solve_inplace_scratch(
                        TrsvVariant::Eager,
                        n,
                        lu,
                        perm.as_slice(),
                        out,
                        perm_scratch,
                    );
                    for (o, &ci) in out.iter_mut().zip(c) {
                        *o *= ci;
                    }
                };
                solve_scaled(b, seg);
                // one step of iterative refinement against the original
                // block: e = solve(b - A x), x += e
                resid.copy_from_slice(b);
                for (j, &xj) in seg.iter().enumerate() {
                    for (i, ri) in resid.iter_mut().enumerate() {
                        *ri = (-a[j * n + i]).mul_add(xj, *ri);
                    }
                }
                e.fill(T::ZERO);
                solve_scaled(resid, e);
                for (x, &ei) in seg.iter_mut().zip(e.iter()) {
                    if ei.is_finite() {
                        *x += ei;
                    }
                }
            }
            BlockFactor::InterleavedLu { class, slot } => {
                self.interleaved[*class].solve_slot_inplace_scratch(*slot, seg, scratch);
            }
            BlockFactor::LuLower { n, lu, perm } => {
                let n = *n;
                let a = self.retained_block(block);
                let (saved, rest) = scratch[..4 * n].split_at_mut(n);
                let (resid, rest) = rest.split_at_mut(n);
                let (e, inner) = rest.split_at_mut(n);
                saved.copy_from_slice(seg);
                lu_solve_widened_scratch(TrsvVariant::Eager, n, lu, perm.as_slice(), seg, inner);
                // one refinement step against the retained DP block
                residual_into(n, a, seg, saved, resid);
                e.copy_from_slice(resid);
                lu_solve_widened_scratch(TrsvVariant::Eager, n, lu, perm.as_slice(), e, inner);
                for (x, &ei) in seg.iter_mut().zip(e.iter()) {
                    if ei.is_finite() {
                        *x += ei;
                    }
                }
            }
            BlockFactor::GhLower { gh } => {
                let a = self.retained_block(block);
                let (saved, rest) = scratch[..4 * n].split_at_mut(n);
                let (resid, rest) = rest.split_at_mut(n);
                let (e, inner) = rest.split_at_mut(n);
                saved.copy_from_slice(seg);
                gh_solve_widened_scratch(gh, seg, inner);
                residual_into(n, a, seg, saved, resid);
                e.copy_from_slice(resid);
                gh_solve_widened_scratch(gh, e, inner);
                for (x, &ei) in seg.iter_mut().zip(e.iter()) {
                    if ei.is_finite() {
                        *x += ei;
                    }
                }
            }
            BlockFactor::Qr(f) => f.solve_inplace_scratch(seg, scratch),
            BlockFactor::InterleavedLuLower { class, slot } => {
                self.interleaved_lower[*class].solve_slot_inplace_scratch(
                    *slot,
                    self.retained_block(block),
                    seg,
                    scratch,
                );
            }
        }
    }

    /// Row-of-step pivot sequence of block `block`, when its factors
    /// are an LU form (blocked or interleaved). Used by the golden
    /// differential suite to assert bitwise pivot agreement.
    // test/diagnostic API, not an apply path
    #[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
    pub fn row_of_step(&self, block: usize) -> Option<Vec<usize>> {
        match &self.factors[block] {
            BlockFactor::Lu { perm, .. } | BlockFactor::LuLower { perm, .. } => {
                Some(perm.as_slice().to_vec())
            }
            BlockFactor::InterleavedLu { class, slot } => {
                Some(self.interleaved[*class].slot_row_of_step(*slot))
            }
            BlockFactor::InterleavedLuLower { class, slot } => {
                let cl = &self.interleaved_lower[*class];
                let mut out = vec![0usize; cl.n];
                cl.slot_row_of_step_into(*slot, &mut out);
                Some(out)
            }
            _ => None,
        }
    }

    /// Host reference solve over a whole vector batch, sequentially.
    pub fn solve_all_inplace(&self, rhs: &mut VectorBatch<T>) {
        for (i, seg) in rhs.segs_mut().into_iter().enumerate() {
            self.solve_block_inplace(i, seg);
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use vbatch_core::{getrf, DenseMat, PivotStrategy};

    #[test]
    fn scalar_jacobi_guards_bad_diagonal() {
        let (f, sanitized) = scalar_jacobi_from_diag(&[2.0f64, 0.0, f64::NAN, -4.0]);
        assert_eq!(sanitized, 2);
        match f {
            BlockFactor::ScalarJacobi { inv_diag } => {
                assert_eq!(inv_diag, vec![0.5, 1.0, 1.0, -0.25]);
            }
            _ => panic!("wrong factor kind"),
        }
    }

    #[test]
    fn inv_factor_applies_inverse() {
        // A = [[2, 0], [0, 4]], inv = [[0.5, 0], [0, 0.25]] col-major
        let fb = FactorizedBatch {
            sizes: vec![2],
            factors: vec![BlockFactor::Inv {
                n: 2,
                inv: vec![0.5, 0.0, 0.0, 0.25],
            }],
            status: vec![BlockStatus::factorized(KernelChoice::GjeInvert)],
            interleaved: Vec::new(),
            interleaved_lower: Vec::new(),
            retained: None,
        };
        let mut seg = [8.0f64, 8.0];
        fb.solve_block_inplace(0, &mut seg);
        assert_eq!(seg, [4.0, 2.0]);
        assert_eq!(fb.fallback_count(), 0);
    }

    #[test]
    fn fallback_status_classifies_health_and_chain() {
        let s = BlockStatus::fallback(
            KernelChoice::SmallLu,
            FactorError::SingularPivot { step: 1 },
            0,
            4,
        );
        assert_eq!(s.health, BlockHealth::Singular);
        assert_eq!(s.recovery, vec![RecoveryStep::ScalarJacobi]);
        assert!(s.is_fallback());

        let s = BlockStatus::fallback(
            KernelChoice::SmallLu,
            FactorError::NonFinite { row: 0, col: 1 },
            2,
            4,
        );
        assert_eq!(s.health, BlockHealth::NonFinite);
        assert_eq!(
            s.recovery,
            vec![RecoveryStep::ScalarJacobi, RecoveryStep::Identity]
        );

        // fully sanitized diagonal: pure identity fallback
        let s = BlockStatus::fallback(
            KernelChoice::SmallLu,
            FactorError::NonFinite { row: 0, col: 0 },
            3,
            3,
        );
        assert_eq!(s.recovery, vec![RecoveryStep::Identity]);
        assert!(s.is_fallback());

        // clean factorization is not a fallback
        assert!(!BlockStatus::factorized(KernelChoice::SmallLu).is_fallback());
    }

    #[test]
    fn equilibrated_lu_solves_badly_scaled_block() {
        // severely scaled block; the equilibrated path must recover the
        // true solution to near machine precision
        let a = DenseMat::from_row_major(2, 2, &[1e9, 2e9, 3e-9, 1e-9]);
        let (r, c) = vbatch_core::equilibrate(&a).unwrap();
        let e = vbatch_core::apply_equilibration(&a, &r, &c);
        let f = getrf(&e, PivotStrategy::Implicit).unwrap();
        let fb = FactorizedBatch {
            sizes: vec![2],
            factors: vec![BlockFactor::EquilibratedLu {
                n: 2,
                lu: f.lu.as_slice().to_vec(),
                perm: f.perm,
                r,
                c,
                a: a.as_slice().to_vec(),
            }],
            status: vec![BlockStatus::factorized(KernelChoice::SmallLu)],
            interleaved: Vec::new(),
            interleaved_lower: Vec::new(),
            retained: None,
        };
        let x_true = [1.5f64, -0.25];
        let mut seg = [
            a[(0, 0)] * x_true[0] + a[(0, 1)] * x_true[1],
            a[(1, 0)] * x_true[0] + a[(1, 1)] * x_true[1],
        ];
        fb.solve_block_inplace(0, &mut seg);
        assert!((seg[0] - x_true[0]).abs() < 1e-10, "{seg:?}");
        assert!((seg[1] - x_true[1]).abs() < 1e-10, "{seg:?}");
    }
}
