//! Launch-time estimation for *planned* batches: charge the device
//! model with the per-warp cost of whatever kernel the planner selected
//! for each size class. This is what the figure bins report when they
//! let the planner (instead of a fixed kernel) choose.

use crate::plan::{BatchPlan, KernelChoice};
use vbatch_core::Scalar;
use vbatch_simt::kernels::multi::problems_per_warp;
use vbatch_simt::kernels::{gauss_huard, getrf, large, multi};
use vbatch_simt::{
    factor_nominal_flops, CostCounter, CostTable, DeviceModel, GhStorage, LaunchReport,
};

/// Estimate of a planner-driven factorization launch.
pub struct PlannedEstimate {
    /// Device-model timing of the planned kernels plus nominal flops.
    pub report: LaunchReport,
    /// Compact kernel-choice histogram (`label=count;...`).
    pub histogram: String,
    /// Blocks charged to the device model.
    pub device_blocks: usize,
    /// Blocks the plan routes to host paths the device model does not
    /// cover (GJE, Cholesky, orders above the blocked-LU limit).
    pub host_blocks: usize,
}

/// Per-warp cost of one block of order `n` under kernel `k`, plus the
/// number of warps a class of `count` such blocks launches. `None` for
/// kernels the simulator does not model.
fn class_cost<T: Scalar>(k: KernelChoice, n: usize, count: usize) -> Option<(CostCounter, u64)> {
    match k {
        KernelChoice::SmallLu => Some((getrf::warp_cost::<T>(n), count as u64)),
        KernelChoice::GaussHuard => Some((
            gauss_huard::warp_cost::<T>(n, GhStorage::RowMajor),
            count as u64,
        )),
        KernelChoice::GaussHuardT => Some((
            gauss_huard::warp_cost::<T>(n, GhStorage::Dual),
            count as u64,
        )),
        KernelChoice::PackedLu => {
            let per_warp = problems_per_warp(n).max(1);
            Some((multi::warp_cost::<T>(n), count.div_ceil(per_warp) as u64))
        }
        KernelChoice::BlockedLu if n <= large::MAX_N => {
            Some((large::warp_cost::<T>(n), count as u64))
        }
        _ => None,
    }
}

/// Estimate the factorization launch of `plan` over blocks of `sizes`
/// on `device`.
pub fn estimate_planned_factor<T: Scalar>(
    device: &DeviceModel,
    plan: &BatchPlan,
    sizes: &[usize],
) -> PlannedEstimate {
    let mut costs = Vec::new();
    let mut device_blocks = 0usize;
    let mut host_blocks = 0usize;
    for class in &plan.classes {
        match class_cost::<T>(class.kernel, class.n, class.count) {
            Some(c) => {
                device_blocks += class.count;
                costs.push(c);
            }
            None => host_blocks += class.count,
        }
    }
    let table = CostTable::for_element_bytes(T::BYTES);
    PlannedEstimate {
        report: LaunchReport {
            time: device.estimate(&costs, &table),
            nominal_flops: factor_nominal_flops(sizes),
        },
        histogram: plan.histogram_compact(),
        device_blocks,
        host_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BatchPlan;

    #[test]
    fn planned_estimate_covers_all_blocks() {
        let sizes: Vec<usize> = vec![8; 50].into_iter().chain(vec![24; 30]).collect();
        let plan = BatchPlan::auto::<f64>(&sizes);
        let est = estimate_planned_factor::<f64>(&DeviceModel::p100(), &plan, &sizes);
        assert_eq!(est.device_blocks, 80);
        assert_eq!(est.host_blocks, 0);
        assert!(est.report.time.seconds > 0.0);
        assert!(est.report.gflops() > 0.0);
        assert!(est.histogram.contains("packed-lu=50"));
    }

    #[test]
    fn packed_classes_charge_fewer_warps_than_blocks() {
        // 32 blocks of order 8 pack 4 per warp: the packed estimate must
        // beat one-warp-per-block small LU on time
        let sizes = vec![8usize; 32];
        let packed = BatchPlan::auto::<f64>(&sizes);
        let unpacked = BatchPlan::for_method::<f64>(&sizes, crate::plan::PlanMethod::SmallLu);
        let dev = DeviceModel::p100();
        let a = estimate_planned_factor::<f64>(&dev, &packed, &sizes);
        let b = estimate_planned_factor::<f64>(&dev, &unpacked, &sizes);
        assert!(
            a.report.time.seconds < b.report.time.seconds,
            "packed {} >= unpacked {}",
            a.report.time.seconds,
            b.report.time.seconds
        );
    }
}
