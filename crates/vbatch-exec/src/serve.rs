//! Reusable per-size-class batch-solve handles for the long-running
//! service runtime (`vbatch-serve`).
//!
//! A service batcher flushes one size class over and over with varying
//! member counts; setting each flush up from scratch would re-plan the
//! batch, re-allocate the RHS staging, and scatter statistics across
//! throwaway sinks. [`SizeClassHandle`] hoists everything that survives
//! a flush into one long-lived object:
//!
//! * the [`BatchPlan`] for every member count seen so far (plan
//!   construction walks the size distribution and applies the paper's
//!   crossovers — pure overhead to repeat for an identical shape);
//! * the RHS staging [`VectorBatch`], recycled in place through
//!   [`VectorBatch::reset_uniform`];
//! * one cumulative [`ExecStats`] sink, so service metrics aggregate
//!   across flushes for free.
//!
//! The matrix staging itself is rebuilt per flush: [`Backend::factorize`]
//! consumes the batch by value (its storage becomes factor storage or is
//! dropped), so those allocations are inherent to the current backend
//! contract and are the documented exception on this warm path.
//!
//! Isolation contract: with the blocked layout every block is
//! factorized and solved independently, so a member's result is a pure
//! function of its own `(A, b)` — co-batched neighbours (including
//! poisoned ones) can never perturb it bitwise. The interleaved/SIMD
//! layouts uphold the same contract through the lane-differential
//! golden suites of PRs 2/7. `vbatch-serve`'s chaos suite asserts this
//! end to end.

use crate::backend::Backend;
use crate::factors::BlockStatus;
use crate::plan::{BatchPlan, HealthPolicy, PrecisionPolicy};
use crate::stats::ExecStats;
use std::sync::Arc;
use vbatch_core::{BatchLayout, MatrixBatch, Scalar, VectorBatch};

/// A reusable solve handle for one size class (block order `n`) with a
/// bounded member count, owned by one shard worker — not `Sync`-shared;
/// each shard keeps its own.
pub struct SizeClassHandle<T: Scalar> {
    n: usize,
    capacity: usize,
    backend: Arc<dyn Backend<T>>,
    health: HealthPolicy,
    layout: BatchLayout,
    precision: PrecisionPolicy,
    /// Uniform size list at full capacity; flushes borrow a prefix.
    sizes: Vec<usize>,
    /// Plan cache, indexed by member count (`1..=capacity`).
    plans: Vec<Option<BatchPlan>>,
    /// Recycled RHS staging.
    rhs: VectorBatch<T>,
    /// Cumulative statistics across every flush of this handle.
    stats: ExecStats,
    flushes: u64,
}

impl<T: Scalar> SizeClassHandle<T> {
    /// A handle for systems of order `n`, batching at most `capacity`
    /// members per flush.
    pub fn new(
        n: usize,
        capacity: usize,
        backend: Arc<dyn Backend<T>>,
        health: HealthPolicy,
        layout: BatchLayout,
        precision: PrecisionPolicy,
    ) -> Self {
        assert!(n >= 1, "block order must be at least 1");
        assert!(capacity >= 1, "class capacity must be at least 1");
        let mut plans = Vec::with_capacity(capacity + 1);
        plans.resize_with(capacity + 1, || None);
        SizeClassHandle {
            n,
            capacity,
            backend,
            health,
            layout,
            precision,
            sizes: vec![n; capacity],
            plans,
            rhs: VectorBatch::zeros(&[]),
            stats: ExecStats::new(),
            flushes: 0,
        }
    }

    /// Block order of this class.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum members per flush.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Flushes executed through this handle.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Cumulative execution statistics across all flushes.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Solve `A_i x_i = b_i` for a batch of systems of this class:
    /// `blocks[i]` is the column-major `n x n` matrix, `rhs[i]` (length
    /// `n`) is overwritten with the solution. Returns one
    /// [`BlockStatus`] per member describing the kernel that ran, the
    /// triaged health, and any degradation — the raw material of the
    /// service's typed outcomes. Never panics on singular or non-finite
    /// members; they degrade per block exactly like the preconditioner
    /// setup path.
    pub fn solve_batch(&mut self, blocks: &[&[T]], rhs: &mut [&mut [T]]) -> Vec<BlockStatus> {
        let count = blocks.len();
        assert_eq!(count, rhs.len(), "one RHS per block");
        assert!(count >= 1, "empty flush");
        assert!(
            count <= self.capacity,
            "flush of {count} exceeds class capacity {}",
            self.capacity
        );
        let n = self.n;
        let sizes = &self.sizes[..count];

        let mut batch = MatrixBatch::zeros(sizes);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.len(), n * n, "block {i}: expected order {n}");
            batch.block_mut(i).copy_from_slice(b);
        }
        self.rhs.reset_uniform(count, n);
        for (i, r) in rhs.iter().enumerate() {
            assert_eq!(r.len(), n, "rhs {i}: expected length {n}");
            self.rhs.seg_mut(i).copy_from_slice(r);
        }

        let plan = self.plans[count].get_or_insert_with(|| {
            // Kernel choice pinned at full capacity so a solo flush and
            // a full flush run bitwise-identical arithmetic.
            BatchPlan::uniform_at_capacity::<T>(n, count, self.capacity, self.layout)
                .with_health(self.health)
                .with_precision(self.precision)
        });
        let factors = self.backend.factorize(batch, plan, &mut self.stats);
        self.backend.solve(&factors, &mut self.rhs, &mut self.stats);

        for (i, r) in rhs.iter_mut().enumerate() {
            r.copy_from_slice(self.rhs.seg(i));
        }
        self.flushes += 1;
        factors.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSequential;
    use crate::factors::BlockHealth;

    fn dd_block(n: usize, salt: usize) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let h = (i * 131 + j * 37 + salt * 17 + 3) % 1024;
                a[j * n + i] = h as f64 / 512.0 - 1.0 + if i == j { (n + 2) as f64 } else { 0.0 };
            }
        }
        a
    }

    fn handle(n: usize, capacity: usize) -> SizeClassHandle<f64> {
        SizeClassHandle::new(
            n,
            capacity,
            Arc::new(CpuSequential),
            HealthPolicy::guarded::<f64>(),
            BatchLayout::Blocked,
            PrecisionPolicy::FullDp,
        )
    }

    #[test]
    fn solve_batch_matches_solo_solves_bitwise() {
        let n = 5;
        let blocks: Vec<Vec<f64>> = (0..7).map(|s| dd_block(n, s)).collect();
        let rhs0: Vec<Vec<f64>> = (0..7)
            .map(|s| (0..n).map(|i| 1.0 + ((s + i) % 4) as f64).collect())
            .collect();

        // co-batched flush
        let mut h = handle(n, 8);
        let mut co: Vec<Vec<f64>> = rhs0.clone();
        let block_refs: Vec<&[f64]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut co_refs: Vec<&mut [f64]> = co.iter_mut().map(|r| r.as_mut_slice()).collect();
        let status = h.solve_batch(&block_refs, &mut co_refs);
        assert_eq!(status.len(), 7);
        assert!(status.iter().all(|s| s.health == BlockHealth::Healthy));

        // each member solo, through a fresh handle
        for i in 0..7 {
            let mut solo = handle(n, 8);
            let mut r = rhs0[i].clone();
            let mut refs: Vec<&mut [f64]> = vec![r.as_mut_slice()];
            solo.solve_batch(&[blocks[i].as_slice()], &mut refs);
            for (a, b) in r.iter().zip(&co[i]) {
                assert_eq!(a.to_bits(), b.to_bits(), "member {i} differs from solo run");
            }
        }
    }

    #[test]
    fn handle_reuses_plans_and_accumulates_stats() {
        let n = 4;
        let mut h = handle(n, 16);
        for round in 0..3 {
            let blocks: Vec<Vec<f64>> = (0..5).map(|s| dd_block(n, s + round)).collect();
            let mut rhs: Vec<Vec<f64>> = (0..5).map(|_| vec![1.0; n]).collect();
            let block_refs: Vec<&[f64]> = blocks.iter().map(|b| b.as_slice()).collect();
            let mut rhs_refs: Vec<&mut [f64]> = rhs.iter_mut().map(|r| r.as_mut_slice()).collect();
            let status = h.solve_batch(&block_refs, &mut rhs_refs);
            assert_eq!(status.len(), 5);
        }
        assert_eq!(h.flushes(), 3);
        // one plan entry materialized (count=5), reused across flushes
        assert_eq!(h.plans.iter().filter(|p| p.is_some()).count(), 1);
        // stats accumulated over all 15 members
        let total: u64 = h.stats().kernel_histogram().values().sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn poisoned_members_degrade_without_perturbing_neighbours() {
        let n = 4;
        let good = dd_block(n, 0);
        let mut rhs_good = vec![1.0; n];
        // solo reference for the healthy member
        {
            let mut h = handle(n, 4);
            let mut refs: Vec<&mut [f64]> = vec![rhs_good.as_mut_slice()];
            h.solve_batch(&[good.as_slice()], &mut refs);
        }
        // co-batch with a singular and a NaN neighbour
        let zero_row = {
            let mut b = dd_block(n, 1);
            for j in 0..n {
                b[j * n + 2] = 0.0;
            }
            b
        };
        let nan_block = {
            let mut b = dd_block(n, 2);
            b[1] = f64::NAN;
            b
        };
        let mut h = handle(n, 4);
        let mut r0 = vec![1.0; n];
        let mut r1 = vec![1.0; n];
        let mut r2 = vec![1.0; n];
        let mut refs: Vec<&mut [f64]> =
            vec![r0.as_mut_slice(), r1.as_mut_slice(), r2.as_mut_slice()];
        let status = h.solve_batch(
            &[good.as_slice(), zero_row.as_slice(), nan_block.as_slice()],
            &mut refs,
        );
        assert_eq!(status[0].health, BlockHealth::Healthy);
        assert_eq!(status[1].health, BlockHealth::Singular);
        assert_eq!(status[2].health, BlockHealth::NonFinite);
        assert!(status[1].is_fallback() && status[2].is_fallback());
        for (a, b) in r0.iter().zip(&rhs_good) {
            assert_eq!(a.to_bits(), b.to_bits(), "healthy member perturbed");
        }
        // degraded members still produce finite output
        assert!(r1.iter().chain(r2.iter()).all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "exceeds class capacity")]
    fn over_capacity_flush_is_rejected() {
        let mut h = handle(3, 2);
        let b: Vec<Vec<f64>> = (0..3).map(|s| dd_block(3, s)).collect();
        let mut r: Vec<Vec<f64>> = (0..3).map(|_| vec![1.0; 3]).collect();
        let brefs: Vec<&[f64]> = b.iter().map(|x| x.as_slice()).collect();
        let mut rrefs: Vec<&mut [f64]> = r.iter_mut().map(|x| x.as_mut_slice()).collect();
        h.solve_batch(&brefs, &mut rrefs);
    }
}
