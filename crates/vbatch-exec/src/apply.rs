//! Prepared preconditioner apply: the steady-state (per-Krylov-
//! iteration) solve path with all dispatch decisions and scratch
//! buffers precomputed at setup.
//!
//! [`crate::Backend::solve`] rebuilds its dispatch every call: segment
//! tables from the [`vbatch_core::VectorBatch`], the class-membership
//! partition, gather buffers for the interleaved classes, and a
//! permutation copy inside every LU solve. That is fine for one-shot
//! use but the preconditioner apply runs on *every* Krylov iteration —
//! the paper keeps this path allocation-free by holding the RHS in
//! registers and folding the pivot permutation into its load (§III-B).
//! [`PreparedApply`] is the host analogue: built once per factorized
//! batch, it stores
//!
//! * the ordered list of *apply units* — one per blocked system, one
//!   per interleaved size class (gather → class-wide sweep → scatter);
//! * each unit's flat-vector offsets, so the apply operates directly on
//!   the solver's `&mut [T]` with no `VectorBatch` round-trip;
//! * each unit's scratch buffer, pre-sized for the block's solve form
//!   and locked per unit so disjoint units can run concurrently.
//!
//! After the prepared apply is built, [`crate::Backend::solve_prepared`]
//! performs zero heap allocations on the CPU backends — proven by the
//! counting-allocator tests in `vbatch-solver` — and its results are
//! bitwise identical to `Backend::solve` (the scratch kernels perform
//! the same operations in the same order; only the storage of the
//! temporaries changed).
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::factors::{BlockFactor, FactorizedBatch};
use std::sync::Mutex;
use vbatch_core::{
    lu_solve_interleaved_class_scratch, lu_solve_interleaved_class_scratch_simd, Scalar,
};

/// One unit of prepared apply work: a single blocked system, or all
/// healthy slots of one interleaved size class.
pub(crate) enum ApplyUnit<T> {
    /// One blocked system: segment `offset .. offset + len` of the flat
    /// vector, solved through `FactorizedBatch::solve_block_inplace_with`.
    Block {
        /// Block index into the factorized batch.
        block: usize,
        /// Segment start in the flat apply vector.
        offset: usize,
        /// Segment length (= block order).
        len: usize,
        /// Pre-sized solve scratch (`solve_scratch_elems` elements).
        scratch: Mutex<Vec<T>>,
    },
    /// One interleaved size class: gather the member segments into
    /// full-width lanes, run the class-wide sweep, scatter back.
    Class {
        /// Class index into `FactorizedBatch::interleaved`.
        class: usize,
        /// Healthy members as `(slot, flat-vector offset)`; fallback
        /// slots solve a zero RHS and are not scattered back.
        members: Vec<(usize, usize)>,
        /// Gather lanes + permutation scratch (`2 * n * count`).
        scratch: Mutex<Vec<T>>,
    },
}

/// Precomputed apply dispatch for one factorized batch; see the module
/// docs. Build with [`crate::Backend::prepare_apply`], run with
/// [`crate::Backend::solve_prepared`].
pub struct PreparedApply<T: Scalar> {
    total: usize,
    units: Vec<ApplyUnit<T>>,
    hwm_elems: usize,
}

impl<T: Scalar> PreparedApply<T> {
    /// Precompute the apply dispatch for `factors`: class membership,
    /// flat-vector offsets, and per-unit scratch, none of which will be
    /// recomputed (or reallocated) by later applies.
    // setup-time: the dispatch tables and scratch are allocated here, once
    #[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
    pub fn new(factors: &FactorizedBatch<T>) -> Self {
        // Pre-size this thread's trace ring now so the per-unit spans of
        // later applies never allocate (the tracing-on zero-alloc
        // guarantee): 4 events per unit per apply, with headroom.
        vbatch_trace::reserve_thread_ring(4 * factors.len() + 1024);
        let mut offsets = Vec::with_capacity(factors.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &n in &factors.sizes {
            acc += n;
            offsets.push(acc);
        }

        let mut claimed = vec![false; factors.len()];
        let mut units = Vec::new();
        let mut hwm_elems = 0usize;
        for (c, cls) in factors.interleaved.iter().enumerate() {
            let mut members = Vec::with_capacity(cls.count());
            for (slot, &blk) in cls.blocks.iter().enumerate() {
                if matches!(factors.factors[blk], BlockFactor::InterleavedLu { .. }) {
                    members.push((slot, offsets[blk]));
                    claimed[blk] = true;
                }
            }
            if !members.is_empty() {
                let scratch_len = 2 * cls.n * cls.count();
                hwm_elems += scratch_len;
                units.push(ApplyUnit::Class {
                    class: c,
                    members,
                    scratch: Mutex::new(vec![T::ZERO; scratch_len]),
                });
            }
        }
        for blk in 0..factors.len() {
            if !claimed[blk] {
                let scratch_len = factors.solve_scratch_elems(blk);
                hwm_elems += scratch_len;
                units.push(ApplyUnit::Block {
                    block: blk,
                    offset: offsets[blk],
                    len: factors.sizes[blk],
                    scratch: Mutex::new(vec![T::ZERO; scratch_len]),
                });
            }
        }
        PreparedApply {
            total: acc,
            units,
            hwm_elems,
        }
    }

    /// Length of the flat vector this prepared apply expects.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of apply units (blocked systems + interleaved classes).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Total resident scratch across all units, in scalar elements —
    /// the workspace high-water mark reported to
    /// [`crate::ExecStats::record_apply`].
    pub fn workspace_hwm_elems(&self) -> usize {
        self.hwm_elems
    }

    pub(crate) fn units(&self) -> &[ApplyUnit<T>] {
        &self.units
    }
}

/// Run one apply unit against the flat vector `v`. Allocation-free:
/// every temporary lives in the unit's pre-sized scratch. The per-unit
/// mutex is uncontended in the sequential driver and held by exactly
/// one thread per unit in the parallel driver.
///
/// `simd` routes interleaved-class sweeps through the explicit
/// wide-lane TRSV (bitwise identical to the scalar sweep, and equally
/// allocation-free — the lane kernels run out of the same prepared
/// scratch).
pub(crate) fn run_apply_unit<T: Scalar>(
    factors: &FactorizedBatch<T>,
    unit: &ApplyUnit<T>,
    v: &mut [T],
    simd: bool,
) {
    match unit {
        ApplyUnit::Block {
            block,
            offset,
            len,
            scratch,
        } => {
            let _span = vbatch_trace::span!("apply.block", *len);
            let mut scratch = scratch.lock().expect("apply scratch poisoned");
            factors.solve_block_inplace_with(*block, &mut v[*offset..*offset + *len], &mut scratch);
        }
        ApplyUnit::Class {
            class,
            members,
            scratch,
        } => {
            let cls = &factors.interleaved[*class];
            let (n, count) = (cls.n, cls.count());
            let _span = vbatch_trace::span!("apply.class", n * count);
            let mut scratch = scratch.lock().expect("apply scratch poisoned");
            let (x, perm_scratch) = scratch.split_at_mut(n * count);
            // Gather into full-width lanes: absent slots (fallbacks,
            // sanitized to identity factors) solve a zero rhs and are
            // simply not scattered back.
            x.fill(T::ZERO);
            for &(slot, offset) in members {
                let seg = &v[offset..offset + n];
                for i in 0..n {
                    x[i * count + slot] = seg[i];
                }
            }
            if simd {
                lu_solve_interleaved_class_scratch_simd(
                    n,
                    count,
                    &cls.data,
                    &cls.piv,
                    x,
                    perm_scratch,
                );
            } else {
                lu_solve_interleaved_class_scratch(n, count, &cls.data, &cls.piv, x, perm_scratch);
            }
            for &(slot, offset) in members {
                let seg = &mut v[offset..offset + n];
                for i in 0..n {
                    seg[i] = x[i * count + slot];
                }
            }
        }
    }
}

/// A shareable raw view of the flat apply vector for the parallel
/// driver.
///
/// SAFETY contract: every apply unit of one [`PreparedApply`] touches a
/// disjoint set of segments (each block index appears in exactly one
/// unit, and segments of distinct blocks never overlap by
/// construction of the offsets), so concurrent `slice()` calls from
/// different units never alias.
#[derive(Clone, Copy)]
pub(crate) struct FlatVecPtr<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for FlatVecPtr<T> {}
unsafe impl<T: Send> Sync for FlatVecPtr<T> {}

impl<T> FlatVecPtr<T> {
    pub(crate) fn new(v: &mut [T]) -> Self {
        FlatVecPtr {
            ptr: v.as_mut_ptr(),
            len: v.len(),
        }
    }

    /// Reborrow the whole vector. Callers must uphold the disjointness
    /// contract above: at most one live borrow per apply unit, units
    /// touching disjoint segments.
    #[allow(clippy::mut_from_ref)] // deliberate: scoped-thread shared view
    pub(crate) unsafe fn slice(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::cpu::CpuSequential;
    use crate::plan::BatchPlan;
    use crate::stats::ExecStats;
    use vbatch_core::{BatchLayout, MatrixBatch, VectorBatch};
    use vbatch_rt::SmallRng;

    fn random_batch(sizes: &[usize], seed: u64) -> MatrixBatch<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let raw = vbatch_rt::testgen::dd_batch_of(&mut rng, sizes);
        let mut batch = MatrixBatch::zeros(sizes);
        for i in 0..batch.len() {
            batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
        }
        batch
    }

    #[test]
    fn prepared_apply_units_cover_every_block_once() {
        let sizes = [4usize, 4, 4, 7, 1];
        let batch = random_batch(&sizes, 5);
        let plan = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved { class_capacity: 2 },
        );
        let mut stats = ExecStats::new();
        let factors = CpuSequential.factorize(batch, &plan, &mut stats);
        let prep = PreparedApply::new(&factors);
        assert_eq!(prep.total(), sizes.iter().sum::<usize>());
        assert!(prep.workspace_hwm_elems() > 0);
        let mut seen = vec![0usize; sizes.len()];
        for u in prep.units() {
            match u {
                ApplyUnit::Block { block, .. } => seen[*block] += 1,
                ApplyUnit::Class { class, members, .. } => {
                    for &(slot, _) in members {
                        seen[factors.interleaved[*class].blocks[slot]] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn prepared_apply_matches_solve_bitwise() {
        let sizes = [3usize, 6, 6, 6, 2, 9];
        let batch = random_batch(&sizes, 77);
        for layout in [
            BatchLayout::Blocked,
            BatchLayout::Interleaved { class_capacity: 2 },
        ] {
            let plan = BatchPlan::auto_with_layout::<f64>(&sizes, layout);
            let mut stats = ExecStats::new();
            let factors = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
            let total: usize = sizes.iter().sum();
            let flat: Vec<f64> = (0..total).map(|i| (i % 7) as f64 - 3.0).collect();

            let mut via_solve = VectorBatch::from_flat(&sizes, &flat);
            CpuSequential.solve(&factors, &mut via_solve, &mut stats);

            let prep = CpuSequential.prepare_apply(&factors);
            let mut v = flat.clone();
            CpuSequential.solve_prepared(&factors, &prep, &mut v, &mut stats);
            assert_eq!(v.as_slice(), via_solve.as_slice());
            // and a second pass through the same workspace stays exact
            let mut v2 = flat.clone();
            CpuSequential.solve_prepared(&factors, &prep, &mut v2, &mut stats);
            assert_eq!(v2.as_slice(), v.as_slice());
            assert!(stats.applies >= 2);
            assert!(stats.workspace_hwm_elems >= prep.workspace_hwm_elems());
        }
    }

    #[test]
    fn flat_vec_ptr_roundtrip() {
        let mut v = vec![1.0f64, 2.0, 3.0];
        let p = FlatVecPtr::new(&mut v);
        unsafe {
            let s = p.slice();
            s[1] = 9.0;
        }
        assert_eq!(v, [1.0, 9.0, 3.0]);
    }
}
