//! The [`Backend`] trait: one interface over batch extraction,
//! factorization, solve, inversion and GEMV application.

use crate::apply::PreparedApply;
use crate::factors::{BlockStatus, FactorizedBatch};
use crate::plan::BatchPlan;
use crate::stats::{ExecStats, Phase};
use crate::tri::BlockTriangular;
use std::sync::Arc;
use std::time::Instant;
use vbatch_core::{Exec, MatrixBatch, Scalar, VectorBatch};
use vbatch_sparse::{BlockPartition, CsrMatrix, LevelSchedule};

/// An executor for variable-size batched work. Implementations:
/// [`crate::CpuSequential`], [`crate::CpuRayon`] and
/// [`crate::SimtSim`]. All methods take an [`ExecStats`] sink; every
/// backend fills in the kernel histogram, flops, failures and phase
/// timings the same way, so consumers can compare runs across backends.
pub trait Backend<T: Scalar>: Send + Sync {
    /// Short display name ("cpu-seq", "cpu-par", "simt-sim").
    fn name(&self) -> &'static str;

    /// Extract the diagonal blocks described by `part` from `a`.
    fn extract_blocks(
        &self,
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        stats: &mut ExecStats,
    ) -> MatrixBatch<T>;

    /// Factorize every block of `blocks` with the kernels selected by
    /// `plan`. Never fails as a whole: singular blocks degrade to the
    /// scalar-Jacobi fallback and are reported per block in the result's
    /// [`BlockStatus`] vector (and counted in `stats.failures`).
    fn factorize(
        &self,
        blocks: MatrixBatch<T>,
        plan: &BatchPlan,
        stats: &mut ExecStats,
    ) -> FactorizedBatch<T>;

    /// Solve every block system in place: `rhs[i] := A_i^{-1} rhs[i]`.
    fn solve(&self, factors: &FactorizedBatch<T>, rhs: &mut VectorBatch<T>, stats: &mut ExecStats);

    /// Precompute the apply dispatch (unit order, flat-vector offsets,
    /// per-unit scratch) for repeated [`Backend::solve_prepared`] calls
    /// against `factors`. Backend-independent by default.
    fn prepare_apply(&self, factors: &FactorizedBatch<T>) -> PreparedApply<T> {
        PreparedApply::new(factors)
    }

    /// Solve every block system of the flat vector `v` in place through
    /// a prepared apply workspace — the steady-state (per-Krylov-
    /// iteration) form of [`Backend::solve`], with results bitwise
    /// identical to it. The CPU backends run this without heap
    /// allocations; the default implementation is an allocating compat
    /// path (used by the simulator) that round-trips through
    /// [`Backend::solve`]. Timing lands in [`Phase::Apply`] and the
    /// workspace high-water mark in
    /// [`ExecStats::record_apply`].
    fn solve_prepared(
        &self,
        factors: &FactorizedBatch<T>,
        prepared: &PreparedApply<T>,
        v: &mut [T],
        stats: &mut ExecStats,
    ) {
        debug_assert_eq!(v.len(), prepared.total());
        let t0 = Instant::now();
        let mut rhs = VectorBatch::from_flat(&factors.sizes, v);
        self.solve(factors, &mut rhs, stats);
        v.copy_from_slice(rhs.as_slice());
        stats.add_phase(Phase::Apply, t0.elapsed());
        stats.record_apply(prepared.workspace_hwm_elems());
    }

    /// Accumulate one global block triangular sweep into the flat
    /// vector: `v_i := v_i − Σ_j T_ij v_j` over the stored blocks of
    /// `tri`, scheduled by `sched` — the off-diagonal half of a
    /// block-ILU(0) apply. Results are bitwise identical across
    /// backends and to [`BlockTriangular::sweep_sequential`]; backends
    /// differ only in how independent rows of one level are executed
    /// (and, for the simulator, in the device cost charged). Timing
    /// lands in [`Phase::Sweep`] and the per-level row counts in
    /// [`ExecStats::record_levels`]. Allocation-free after the first
    /// (warm-up) sweep.
    fn sweep_triangular(
        &self,
        tri: &BlockTriangular<T>,
        sched: &LevelSchedule,
        v: &mut [T],
        stats: &mut ExecStats,
    ) {
        crate::tri::sweep_cpu(tri, sched, v, false, stats)
    }

    /// Explicitly invert every block, with the same per-block fallback
    /// semantics as [`Backend::factorize`] (a failed block's "inverse"
    /// is the scalar-Jacobi diagonal matrix).
    fn invert(
        &self,
        blocks: &MatrixBatch<T>,
        stats: &mut ExecStats,
    ) -> (MatrixBatch<T>, Vec<BlockStatus>);

    /// Batched GEMV: `y[i] := blocks[i] * x[i]`.
    fn apply_gemv(
        &self,
        blocks: &MatrixBatch<T>,
        x: &VectorBatch<T>,
        y: &mut VectorBatch<T>,
        stats: &mut ExecStats,
    );
}

/// Map the legacy [`vbatch_core::Exec`] toggle to a backend, for
/// callers migrating from the old sequential/parallel API.
pub fn backend_for_exec<T: Scalar>(exec: Exec) -> Arc<dyn Backend<T>> {
    match exec {
        Exec::Sequential => Arc::new(crate::cpu::CpuSequential),
        Exec::Parallel => Arc::new(crate::cpu::CpuRayon),
    }
}
