//! The [`Backend`] trait: one interface over batch extraction,
//! factorization, solve, inversion and GEMV application.

use crate::factors::{BlockStatus, FactorizedBatch};
use crate::plan::BatchPlan;
use crate::stats::ExecStats;
use std::sync::Arc;
use vbatch_core::{Exec, MatrixBatch, Scalar, VectorBatch};
use vbatch_sparse::{BlockPartition, CsrMatrix};

/// An executor for variable-size batched work. Implementations:
/// [`crate::CpuSequential`], [`crate::CpuRayon`] and
/// [`crate::SimtSim`]. All methods take an [`ExecStats`] sink; every
/// backend fills in the kernel histogram, flops, failures and phase
/// timings the same way, so consumers can compare runs across backends.
pub trait Backend<T: Scalar>: Send + Sync {
    /// Short display name ("cpu-seq", "cpu-par", "simt-sim").
    fn name(&self) -> &'static str;

    /// Extract the diagonal blocks described by `part` from `a`.
    fn extract_blocks(
        &self,
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        stats: &mut ExecStats,
    ) -> MatrixBatch<T>;

    /// Factorize every block of `blocks` with the kernels selected by
    /// `plan`. Never fails as a whole: singular blocks degrade to the
    /// scalar-Jacobi fallback and are reported per block in the result's
    /// [`BlockStatus`] vector (and counted in `stats.failures`).
    fn factorize(
        &self,
        blocks: MatrixBatch<T>,
        plan: &BatchPlan,
        stats: &mut ExecStats,
    ) -> FactorizedBatch<T>;

    /// Solve every block system in place: `rhs[i] := A_i^{-1} rhs[i]`.
    fn solve(&self, factors: &FactorizedBatch<T>, rhs: &mut VectorBatch<T>, stats: &mut ExecStats);

    /// Explicitly invert every block, with the same per-block fallback
    /// semantics as [`Backend::factorize`] (a failed block's "inverse"
    /// is the scalar-Jacobi diagonal matrix).
    fn invert(
        &self,
        blocks: &MatrixBatch<T>,
        stats: &mut ExecStats,
    ) -> (MatrixBatch<T>, Vec<BlockStatus>);

    /// Batched GEMV: `y[i] := blocks[i] * x[i]`.
    fn apply_gemv(
        &self,
        blocks: &MatrixBatch<T>,
        x: &VectorBatch<T>,
        y: &mut VectorBatch<T>,
        stats: &mut ExecStats,
    );
}

/// Map the legacy [`vbatch_core::Exec`] toggle to a backend, for
/// callers migrating from the old sequential/parallel API.
pub fn backend_for_exec<T: Scalar>(exec: Exec) -> Arc<dyn Backend<T>> {
    match exec {
        Exec::Sequential => Arc::new(crate::cpu::CpuSequential),
        Exec::Parallel => Arc::new(crate::cpu::CpuRayon),
    }
}
