//! Execution statistics threaded through every backend call.
//!
//! [`ExecStats`] doubles as a *view* over the global `vbatch-trace`
//! metrics registry: every `record_*` call both updates the local
//! histograms (scoped to this stats object, mergeable, CSV-friendly)
//! and forwards the same observation to the process-wide registry as a
//! labeled counter or phase-duration histogram. With the `trace`
//! feature off the forwarding calls are inert inline stubs, so the
//! local histograms remain the only cost.

use crate::factors::{BlockHealth, RecoveryStep};
use crate::plan::{ClassLayout, KernelChoice};
use std::collections::BTreeMap;
use std::time::Duration;
use vbatch_core::StoragePrecision;
use vbatch_simt::CostCounter;
use vbatch_sparse::LevelSchedule;

/// Phases a backend reports timings for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Diagonal-block extraction from the sparse matrix.
    Extract,
    /// Batched factorization.
    Factorize,
    /// Batched triangular / replay solves.
    Solve,
    /// Batched explicit inversion.
    Invert,
    /// Batched GEMV application.
    Gemv,
    /// Preconditioner application through a prepared workspace
    /// ([`crate::PreparedApply`]): the per-iteration solve traffic of
    /// the Krylov hot loop.
    Apply,
    /// Global block triangular sweep ([`crate::BlockTriangular`]): the
    /// off-diagonal traffic of block-ILU(0) applies.
    Sweep,
    /// Reduced coupling-system work of a SPIKE split: spike-tip
    /// formation plus assembly and factorization of the interface
    /// system.
    Reduce,
}

impl Phase {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Extract => "extract",
            Phase::Factorize => "factorize",
            Phase::Solve => "solve",
            Phase::Invert => "invert",
            Phase::Gemv => "gemv",
            Phase::Apply => "apply",
            Phase::Sweep => "sweep",
            Phase::Reduce => "reduce",
        }
    }
}

/// Counters a backend fills in while executing a plan: which kernels
/// ran on how many blocks, nominal flops, factorization failures (blocks
/// that fell back to scalar Jacobi), wall-clock per phase, and — for the
/// SIMT backend — the accumulated device cost counter.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    kernels: BTreeMap<&'static str, u64>,
    layouts: BTreeMap<&'static str, u64>,
    health: BTreeMap<&'static str, u64>,
    recoveries: BTreeMap<&'static str, u64>,
    /// Nominal floating-point operations of the executed batched calls.
    pub flops: f64,
    /// Blocks whose factorization failed and degraded to the fallback.
    pub failures: usize,
    phase_times: BTreeMap<&'static str, Duration>,
    /// Summed device cost counters (SIMT backend only).
    pub device_cost: Option<CostCounter>,
    /// Largest apply-workspace footprint observed, in scalar elements
    /// (the high-water mark of the prepared apply's scratch buffers).
    pub workspace_hwm_elems: usize,
    /// Prepared-apply invocations folded into these stats.
    pub applies: u64,
    /// Level-set sweep histogram: level index → block rows processed at
    /// that level, summed over sweeps. Local-only (no trace
    /// forwarding): updated on the triangular-apply hot path, where the
    /// entries are pre-warmed at setup so steady-state updates never
    /// allocate.
    levels: BTreeMap<usize, u64>,
    /// Preconditioner-kind histogram: label → applies routed through
    /// that preconditioner. Local-only for the same hot-path reason.
    precond: BTreeMap<&'static str, u64>,
    /// Storage-precision histogram: label → blocks whose factors are
    /// stored in that precision.
    precisions: BTreeMap<&'static str, u64>,
    /// Blocks a mixed-precision policy promoted back to native-precision
    /// factors (condition estimate above the promotion threshold).
    pub promotions: u64,
}

impl ExecStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `blocks` blocks executed with kernel `k`.
    pub fn record_kernel(&mut self, k: KernelChoice, blocks: u64) {
        if blocks > 0 {
            *self.kernels.entry(k.label()).or_insert(0) += blocks;
            vbatch_trace::labeled_add("exec.kernel", k.label(), blocks);
        }
    }

    /// Record `blocks` blocks handled by a host path outside the planned
    /// kernel set (e.g. the simulator falling back above order 64).
    pub fn record_host(&mut self, label: &'static str, blocks: u64) {
        if blocks > 0 {
            *self.kernels.entry(label).or_insert(0) += blocks;
            vbatch_trace::labeled_add("exec.kernel", label, blocks);
        }
    }

    /// Record `blocks` blocks executed in layout `l`.
    pub fn record_layout(&mut self, l: ClassLayout, blocks: u64) {
        if blocks > 0 {
            *self.layouts.entry(l.label()).or_insert(0) += blocks;
            vbatch_trace::labeled_add("exec.layout", l.label(), blocks);
        }
    }

    /// Record one singular-block fallback.
    pub fn record_failure(&mut self) {
        self.failures += 1;
        vbatch_trace::counter!("exec.failures", 1);
    }

    /// Record one block triaged into health state `h`.
    pub fn record_health(&mut self, h: BlockHealth) {
        *self.health.entry(h.label()).or_insert(0) += 1;
        vbatch_trace::labeled_add("exec.health", h.label(), 1);
    }

    /// Record one recovery step applied to a block.
    pub fn record_recovery(&mut self, step: RecoveryStep) {
        *self.recoveries.entry(step.label()).or_insert(0) += 1;
        vbatch_trace::labeled_add("exec.recovery", step.label(), 1);
    }

    /// Record `blocks` blocks whose factors are stored in precision `p`.
    pub fn record_precision(&mut self, p: StoragePrecision, blocks: u64) {
        if blocks > 0 {
            *self.precisions.entry(p.label()).or_insert(0) += blocks;
            vbatch_trace::labeled_add("exec.precision", p.label(), blocks);
        }
    }

    /// Record one condest-gated promotion back to native precision.
    pub fn record_promotion(&mut self) {
        self.promotions += 1;
        vbatch_trace::counter!("exec.promotions", 1);
    }

    /// Accumulate nominal flops.
    pub fn add_flops(&mut self, f: f64) {
        self.flops += f;
    }

    /// Accumulate wall-clock time for a phase.
    pub fn add_phase(&mut self, phase: Phase, d: Duration) {
        *self.phase_times.entry(phase.label()).or_default() += d;
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        // one static site per phase so the registry keeps separate
        // latency histograms without runtime string formatting
        match phase {
            Phase::Extract => vbatch_trace::duration!("phase.extract", ns),
            Phase::Factorize => vbatch_trace::duration!("phase.factorize", ns),
            Phase::Solve => vbatch_trace::duration!("phase.solve", ns),
            Phase::Invert => vbatch_trace::duration!("phase.invert", ns),
            Phase::Gemv => vbatch_trace::duration!("phase.gemv", ns),
            Phase::Apply => vbatch_trace::duration!("phase.apply", ns),
            Phase::Sweep => vbatch_trace::duration!("phase.sweep", ns),
            Phase::Reduce => vbatch_trace::duration!("phase.reduce", ns),
        }
    }

    /// Record one prepared-apply invocation whose workspace footprint
    /// was `hwm_elems` scalar elements (folded in as a max).
    pub fn record_apply(&mut self, hwm_elems: usize) {
        self.applies += 1;
        if hwm_elems > self.workspace_hwm_elems {
            self.workspace_hwm_elems = hwm_elems;
        }
        vbatch_trace::counter!("exec.applies", 1);
    }

    /// Total recorded time for a phase.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        self.phase_times
            .get(phase.label())
            .copied()
            .unwrap_or_default()
    }

    /// Merge a device cost counter into the accumulated total.
    pub fn add_device_cost(&mut self, c: &CostCounter) {
        self.device_cost
            .get_or_insert_with(CostCounter::new)
            .merge(c);
    }

    /// Kernel-choice histogram (label → block count).
    pub fn kernel_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.kernels
    }

    /// Histogram as a compact `label=count;label=count` string for CSV.
    pub fn histogram_compact(&self) -> String {
        self.kernels
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Layout histogram (label → block count).
    pub fn layout_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.layouts
    }

    /// Layout histogram as a compact `label=count;...` string for CSV.
    pub fn layout_compact(&self) -> String {
        self.layouts
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Health histogram (label → block count).
    pub fn health_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.health
    }

    /// Health histogram as a compact `label=count;...` string for CSV.
    pub fn health_compact(&self) -> String {
        self.health
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Record `rows` block rows processed at sweep level `level`.
    /// `rows == 0` still inserts the entry — setup paths use that to
    /// pre-warm the histogram so steady-state updates never allocate a
    /// map node.
    pub fn record_level(&mut self, level: usize, rows: u64) {
        *self.levels.entry(level).or_insert(0) += rows;
    }

    /// Fold one full sweep of `sched` into the level histogram.
    pub fn record_levels(&mut self, sched: &LevelSchedule) {
        for l in 0..sched.num_levels() {
            self.record_level(l, sched.level(l).len() as u64);
        }
    }

    /// Level histogram (level index → block rows processed).
    pub fn level_histogram(&self) -> &BTreeMap<usize, u64> {
        &self.levels
    }

    /// Level histogram as a compact `level=rows;...` string for CSV.
    pub fn level_compact(&self) -> String {
        self.levels
            .iter()
            .map(|(l, c)| format!("{l}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Record `applies` applications routed through the preconditioner
    /// labeled `p`. `applies == 0` still inserts the entry (hot-path
    /// pre-warming, as for [`ExecStats::record_level`]).
    pub fn record_precond(&mut self, p: &'static str, applies: u64) {
        *self.precond.entry(p).or_insert(0) += applies;
    }

    /// Preconditioner histogram (label → applies).
    pub fn precond_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.precond
    }

    /// Preconditioner histogram as a compact `label=count;...` string.
    pub fn precond_compact(&self) -> String {
        self.precond
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Storage-precision histogram (label → block count).
    pub fn precision_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.precisions
    }

    /// Precision histogram as a compact `label=count;...` string.
    pub fn precision_compact(&self) -> String {
        self.precisions
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Recovery-step histogram (label → application count).
    pub fn recovery_histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.recoveries
    }

    /// Recovery histogram as a compact `label=count;...` string.
    pub fn recovery_compact(&self) -> String {
        self.recoveries
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Fold another stats object into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        for (k, c) in &other.kernels {
            *self.kernels.entry(k).or_insert(0) += c;
        }
        for (k, c) in &other.layouts {
            *self.layouts.entry(k).or_insert(0) += c;
        }
        for (k, c) in &other.health {
            *self.health.entry(k).or_insert(0) += c;
        }
        for (k, c) in &other.recoveries {
            *self.recoveries.entry(k).or_insert(0) += c;
        }
        for (&l, c) in &other.levels {
            *self.levels.entry(l).or_insert(0) += c;
        }
        for (k, c) in &other.precond {
            *self.precond.entry(k).or_insert(0) += c;
        }
        for (k, c) in &other.precisions {
            *self.precisions.entry(k).or_insert(0) += c;
        }
        self.promotions += other.promotions;
        self.flops += other.flops;
        self.failures += other.failures;
        for (p, d) in &other.phase_times {
            *self.phase_times.entry(p).or_default() += *d;
        }
        if let Some(c) = &other.device_cost {
            self.add_device_cost(c);
        }
        self.applies += other.applies;
        if other.workspace_hwm_elems > self.workspace_hwm_elems {
            self.workspace_hwm_elems = other.workspace_hwm_elems;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_merge() {
        let mut a = ExecStats::new();
        a.record_kernel(KernelChoice::SmallLu, 3);
        a.record_kernel(KernelChoice::GaussHuard, 2);
        a.add_flops(100.0);
        a.record_failure();
        a.add_phase(Phase::Factorize, Duration::from_millis(5));

        let mut b = ExecStats::new();
        b.record_kernel(KernelChoice::SmallLu, 1);
        b.add_phase(Phase::Factorize, Duration::from_millis(3));
        b.add_phase(Phase::Solve, Duration::from_millis(2));

        a.record_layout(ClassLayout::Interleaved, 3);
        b.record_layout(ClassLayout::Interleaved, 2);
        b.record_layout(ClassLayout::Blocked, 1);
        a.merge(&b);
        assert_eq!(a.layout_histogram()["interleaved"], 5);
        assert_eq!(a.layout_compact(), "blocked=1;interleaved=5");
        assert_eq!(a.kernel_histogram()["small-lu"], 4);
        assert_eq!(a.kernel_histogram()["gauss-huard"], 2);
        assert_eq!(a.failures, 1);
        assert_eq!(a.phase_time(Phase::Factorize), Duration::from_millis(8));
        assert_eq!(a.phase_time(Phase::Solve), Duration::from_millis(2));
        // BTreeMap ordering: alphabetical by label
        assert_eq!(a.histogram_compact(), "gauss-huard=2;small-lu=4");
    }

    #[test]
    fn health_and_recovery_histograms_merge() {
        let mut a = ExecStats::new();
        a.record_health(BlockHealth::Healthy);
        a.record_health(BlockHealth::Healthy);
        a.record_health(BlockHealth::Singular);
        a.record_recovery(RecoveryStep::ScalarJacobi);
        let mut b = ExecStats::new();
        b.record_health(BlockHealth::IllConditioned);
        b.record_recovery(RecoveryStep::Equilibrated);
        b.record_recovery(RecoveryStep::ScalarJacobi);
        a.merge(&b);
        assert_eq!(a.health_histogram()["healthy"], 2);
        assert_eq!(a.health_histogram()["singular"], 1);
        assert_eq!(a.health_compact(), "healthy=2;ill_conditioned=1;singular=1");
        assert_eq!(a.recovery_compact(), "equilibrated=1;scalar_jacobi=2");
    }

    #[test]
    fn level_and_precond_histograms_merge() {
        let mut a = ExecStats::new();
        a.record_level(0, 4);
        a.record_level(1, 2);
        a.record_precond("bj", 1);
        let mut b = ExecStats::new();
        b.record_level(1, 3);
        b.record_level(2, 0); // pre-warm: entry present at zero
        b.record_precond("bilu", 2);
        a.merge(&b);
        assert_eq!(a.level_histogram()[&1], 5);
        assert_eq!(a.level_compact(), "0=4;1=5;2=0");
        assert_eq!(a.precond_compact(), "bilu=2;bj=1");
    }

    #[test]
    fn precision_histogram_and_promotions_merge() {
        let mut a = ExecStats::new();
        a.record_precision(StoragePrecision::Lower, 3);
        a.record_precision(StoragePrecision::Native, 1);
        a.record_promotion();
        let mut b = ExecStats::new();
        b.record_precision(StoragePrecision::Lower, 2);
        b.record_promotion();
        b.record_promotion();
        a.merge(&b);
        assert_eq!(a.precision_histogram()["lower"], 5);
        assert_eq!(a.precision_histogram()["native"], 1);
        assert_eq!(a.precision_compact(), "lower=5;native=1");
        assert_eq!(a.promotions, 3);
        // zero-count records stay out of the histogram
        a.record_precision(StoragePrecision::Native, 0);
        assert_eq!(a.precision_histogram()["native"], 1);
    }

    #[test]
    fn zero_counts_are_not_recorded() {
        let mut s = ExecStats::new();
        s.record_kernel(KernelChoice::SmallLu, 0);
        assert!(s.kernel_histogram().is_empty());
        assert_eq!(s.histogram_compact(), "");
    }
}
