//! Host backends: sequential reference and the scoped-thread parallel
//! driver (`CpuRayon`, named for the rayon-style parallel surface it
//! uses from `vbatch-rt`). Both wrap the native kernels of
//! `vbatch-core`; they differ only in how blocks are distributed.

use crate::apply::{run_apply_unit, FlatVecPtr, PreparedApply};
use crate::backend::Backend;
use crate::factors::{
    block_diag, scalar_jacobi_from_diag, BlockFactor, BlockStatus, FactorizedBatch,
    InterleavedLuClass, InterleavedLuLowerClass,
};
use crate::plan::{BatchPlan, ClassLayout, KernelChoice, PrecisionPolicy};
use crate::stats::{ExecStats, Phase};
use std::time::Instant;
use vbatch_core::lu::implicit::getrf_implicit_inplace;
use vbatch_core::{
    batched_gemv, demote_slice, getrf_interleaved_class, getrf_interleaved_class_simd,
    gh_factorize, gje_invert, lu_solve_interleaved_class, lu_solve_interleaved_class_scratch_simd,
    potrf, DenseMat, Exec, FactorError, GhLayout, InterleavedClass, MatrixBatch, Scalar,
    StoragePrecision, VectorBatch,
};
use vbatch_rt::par::{num_threads, par_map_vec};
use vbatch_rt::prelude::*;
use vbatch_sparse::{extract_diag_blocks, BlockPartition, CsrMatrix};

/// One block after another; deterministic reference execution.
pub struct CpuSequential;

/// Blocks distributed over the scoped-thread pool of `vbatch-rt`.
pub struct CpuRayon;

/// Factorize one block with the planned kernel, degrading to scalar
/// Jacobi on failure.
pub(crate) fn factor_block<T: Scalar>(
    n: usize,
    mut data: Vec<T>,
    kernel: KernelChoice,
) -> (BlockFactor<T>, BlockStatus) {
    let diag = block_diag(n, &data);
    let fallback = |kernel: KernelChoice, error: FactorError, diag: &[T]| {
        let (factor, sanitized) = scalar_jacobi_from_diag(diag);
        (factor, BlockStatus::fallback(kernel, error, sanitized, n))
    };
    match kernel {
        KernelChoice::PackedLu | KernelChoice::SmallLu | KernelChoice::BlockedLu => {
            match getrf_implicit_inplace(n, &mut data) {
                Ok(perm) => (
                    BlockFactor::Lu { n, lu: data, perm },
                    BlockStatus::factorized(kernel),
                ),
                Err(e) => fallback(kernel, e, &diag),
            }
        }
        KernelChoice::GaussHuard | KernelChoice::GaussHuardT => {
            let layout = if kernel == KernelChoice::GaussHuardT {
                GhLayout::Transposed
            } else {
                GhLayout::Normal
            };
            let mat = DenseMat::from_col_major(n, n, &data);
            match gh_factorize(&mat, layout) {
                Ok(f) => (BlockFactor::Gh(f), BlockStatus::factorized(kernel)),
                Err(e) => fallback(kernel, e, &diag),
            }
        }
        KernelChoice::GjeInvert => {
            let mat = DenseMat::from_col_major(n, n, &data);
            match gje_invert(&mat) {
                Ok(inv) => (
                    BlockFactor::Inv {
                        n,
                        inv: inv.as_slice().to_vec(),
                    },
                    BlockStatus::factorized(kernel),
                ),
                Err(e) => fallback(kernel, e, &diag),
            }
        }
        KernelChoice::Cholesky => {
            let mat = DenseMat::from_col_major(n, n, &data);
            match potrf(&mat) {
                Ok(f) => (BlockFactor::Chol(f), BlockStatus::factorized(kernel)),
                Err(e) => fallback(kernel, e, &diag),
            }
        }
    }
}

/// Factorize one block in *lowered* storage precision: the LU/GH-family
/// factors are computed on the demoted copy, the original block is
/// retained in working precision for the apply's refinement residual.
/// Inversion and Cholesky have no widening apply path and stay native.
pub(crate) fn factor_block_lower<T: Scalar>(
    n: usize,
    block: &[T],
    kernel: KernelChoice,
) -> (BlockFactor<T>, BlockStatus) {
    let fallback = |kernel: KernelChoice, error: FactorError, data: &[T]| {
        let diag = block_diag(n, data);
        let (factor, sanitized) = scalar_jacobi_from_diag(&diag);
        (factor, BlockStatus::fallback(kernel, error, sanitized, n))
    };
    match kernel {
        KernelChoice::PackedLu | KernelChoice::SmallLu | KernelChoice::BlockedLu => {
            let mut lu = demote_slice(block);
            match getrf_implicit_inplace(n, &mut lu) {
                Ok(perm) => {
                    let mut status = BlockStatus::factorized(kernel);
                    status.precision = StoragePrecision::Lower;
                    (BlockFactor::LuLower { n, lu, perm }, status)
                }
                Err(e) => fallback(kernel, e, block),
            }
        }
        KernelChoice::GaussHuard | KernelChoice::GaussHuardT => {
            let layout = if kernel == KernelChoice::GaussHuardT {
                GhLayout::Transposed
            } else {
                GhLayout::Normal
            };
            let lo = demote_slice(block);
            let mat = DenseMat::from_col_major(n, n, &lo);
            match gh_factorize(&mat, layout) {
                Ok(gh) => {
                    let mut status = BlockStatus::factorized(kernel);
                    status.precision = StoragePrecision::Lower;
                    (BlockFactor::GhLower { gh }, status)
                }
                Err(e) => fallback(kernel, e, block),
            }
        }
        KernelChoice::GjeInvert | KernelChoice::Cholesky => factor_block(n, block.to_vec(), kernel),
    }
}

pub(crate) fn record_statuses(status: &[BlockStatus], stats: &mut ExecStats) {
    for s in status {
        if s.is_fallback() {
            stats.record_failure();
        } else {
            stats.record_kernel(s.kernel, 1);
        }
        stats.record_health(s.health);
        for &step in &s.recovery {
            stats.record_recovery(step);
        }
        stats.record_precision(s.precision, 1);
        if s.promoted {
            stats.record_promotion();
        }
    }
}

/// Per-chunk working-set budget for interleaved classes. Each
/// elimination step revisits the whole chunk, so the chunk must stay
/// cache-resident or every step streams it from memory and the layout
/// loses to blocked storage (whose 2 KB blocks never leave L1). L2 is
/// the sweet spot: wider lanes amortize the per-step lane bookkeeping
/// better than the extra L1 misses cost.
const INTERLEAVED_CHUNK_BYTES: usize = 128 * 1024;

/// Slots per interleaved chunk: bound `n² · slots · sizeof(T)` by the
/// cache budget, keeping at least a SIMD-width-friendly floor.
fn interleaved_chunk_slots<T>(n: usize) -> usize {
    let block_bytes = (n * n).max(1) * std::mem::size_of::<T>();
    (INTERLEAVED_CHUNK_BYTES / block_bytes).max(8)
}

/// Factorize one interleaved chunk (a contiguous span of one size
/// class): pack, run the class-wide sweep, and report per-slot errors.
/// Slots are numerically independent, so chunking never changes
/// results — only locality and how much parallelism the class exposes.
fn factor_interleaved_chunk<T: Scalar>(
    blocks: &MatrixBatch<T>,
    n: usize,
    members: Vec<usize>,
    simd: bool,
) -> (InterleavedLuClass<T>, Vec<Option<FactorError>>) {
    let packed = InterleavedClass::pack_from(blocks, &members);
    let (_, member_idx, mut data) = packed.into_parts();
    let count = member_idx.len();
    let mut piv = vec![0usize; n * count];
    let errs = if simd {
        getrf_interleaved_class_simd(n, count, &mut data, &mut piv)
    } else {
        getrf_interleaved_class(n, count, &mut data, &mut piv)
    };
    (
        InterleavedLuClass {
            n,
            blocks: member_idx,
            data,
            piv,
        },
        errs,
    )
}

/// Lowered-precision variant of [`factor_interleaved_chunk`]: the class
/// sweep runs on demoted data (twice the lanes per SIMD register). The
/// pack demotes *while gathering* — one strided read of the native
/// blocks, one contiguous write of the storage-precision slab — so the
/// lowered path moves strictly less data than the native one (the
/// refinement residual reads the batch-wide retained copy instead of a
/// per-class working-precision duplicate).
fn factor_interleaved_chunk_lower<T: Scalar>(
    blocks: &MatrixBatch<T>,
    n: usize,
    members: Vec<usize>,
    simd: bool,
) -> (InterleavedLuLowerClass<T>, Vec<Option<FactorError>>) {
    let count = members.len();
    let slices: Vec<&[T]> = members
        .iter()
        .map(|&b| {
            assert_eq!(blocks.size(b), n, "class members must share one order");
            blocks.block(b)
        })
        .collect();
    // same lane-major element order as `InterleavedClass::pack_from`,
    // demoted element-by-element (bitwise identical to demoting a
    // native pack after the fact)
    let mut data = vec![<T::Lower as Scalar>::ZERO; n * n * count];
    for (e, lane) in data.chunks_exact_mut(count).enumerate() {
        for (dst, blk) in lane.iter_mut().zip(&slices) {
            *dst = blk[e].demote();
        }
    }
    let mut piv = vec![0usize; n * count];
    let errs = if simd {
        getrf_interleaved_class_simd(n, count, &mut data, &mut piv)
    } else {
        getrf_interleaved_class(n, count, &mut data, &mut piv)
    };
    (
        InterleavedLuLowerClass {
            n,
            blocks: members,
            data,
            piv,
        },
        errs,
    )
}

pub(crate) fn factorize_cpu<T: Scalar>(
    blocks: MatrixBatch<T>,
    plan: &BatchPlan,
    parallel: bool,
    simd: bool,
    stats: &mut ExecStats,
) -> FactorizedBatch<T> {
    assert_eq!(plan.len(), blocks.len(), "plan does not match batch");
    let _span = vbatch_trace::span!("exec.factorize", blocks.len());
    let t0 = Instant::now();
    stats.add_flops(blocks.getrf_flops());
    let sizes = blocks.sizes().to_vec();

    // Partition blocks by the plan's per-class layout choice.
    let mut blocked_idx: Vec<usize> = Vec::new();
    let mut class_members = std::collections::BTreeMap::<usize, Vec<usize>>::new();
    for i in 0..blocks.len() {
        match plan.layout_for(i) {
            ClassLayout::Blocked => blocked_idx.push(i),
            ClassLayout::Interleaved | ClassLayout::InterleavedSimd => {
                class_members.entry(sizes[i]).or_default().push(i)
            }
        }
    }
    stats.record_layout(ClassLayout::Blocked, blocked_idx.len() as u64);
    // the SIMD backend records which kernels actually ran: interleaved
    // classes it takes over show up as `interleaved-simd` in the layout
    // histogram (totals still cover every block exactly once)
    let interleaved_label = if simd {
        ClassLayout::InterleavedSimd
    } else {
        ClassLayout::Interleaved
    };
    stats.record_layout(interleaved_label, (blocks.len() - blocked_idx.len()) as u64);

    // Precision policy: the lowered path only exists where the scalar
    // actually has a narrower storage format; at the f32 floor every
    // policy degenerates to the (bitwise-preserved) native path.
    let lowered = plan.precision().lowers_storage() && T::HAS_LOWER;

    let mut factors: Vec<Option<BlockFactor<T>>> = (0..blocks.len()).map(|_| None).collect();
    let mut status: Vec<Option<BlockStatus>> = (0..blocks.len()).map(|_| None).collect();

    // Blocked blocks: one isolated factorization per block. Under a
    // lowering policy the worker demotes straight out of the shared
    // batch — no per-block working-precision copy is ever made (the
    // retained batch serves the refinement residuals); the native path
    // keeps its owned copy and factorizes it in place.
    let shared = &blocks;
    let block_results: Vec<(usize, BlockFactor<T>, BlockStatus)> = if lowered {
        let work = |i: usize| {
            let _span = vbatch_trace::span!("factorize.block", sizes[i]);
            let (f, s) = factor_block_lower(sizes[i], shared.block(i), plan.kernel_for(i));
            (i, f, s)
        };
        if parallel {
            par_map_vec(blocked_idx, work)
        } else {
            blocked_idx.into_iter().map(work).collect()
        }
    } else {
        let items: Vec<(usize, Vec<T>)> = blocked_idx
            .iter()
            .map(|&i| (i, blocks.block(i).to_vec()))
            .collect();
        let block_work = |(i, data): (usize, Vec<T>)| {
            let _span = vbatch_trace::span!("factorize.block", sizes[i]);
            let (f, s) = factor_block(sizes[i], data, plan.kernel_for(i));
            (i, f, s)
        };
        if parallel {
            par_map_vec(items, block_work)
        } else {
            items.into_iter().map(block_work).collect()
        }
    };
    for (i, f, s) in block_results {
        factors[i] = Some(f);
        status[i] = Some(s);
    }

    // Interleaved classes: split each class into cache-sized chunks
    // (further divided for the thread pool when parallel) and run the
    // class-wide sweep on each.
    let chunk_target = if parallel { num_threads().max(1) } else { 1 };
    let mut chunks: Vec<(usize, Vec<usize>)> = Vec::new();
    for (n, members) in class_members {
        let per_thread = members.len().div_ceil(chunk_target).max(1);
        let chunk_len = per_thread.min(interleaved_chunk_slots::<T>(n));
        for c in members.chunks(chunk_len) {
            chunks.push((n, c.to_vec()));
        }
    }
    let blocks_ref = &blocks;
    let mut interleaved = Vec::new();
    let mut interleaved_lower = Vec::new();
    if lowered {
        let chunk_work = |(n, members): (usize, Vec<usize>)| {
            let _span = vbatch_trace::span!("factorize.chunk", n * members.len());
            factor_interleaved_chunk_lower(blocks_ref, n, members, simd)
        };
        let chunk_results: Vec<(InterleavedLuLowerClass<T>, Vec<Option<FactorError>>)> = if parallel
        {
            par_map_vec(chunks, chunk_work)
        } else {
            chunks.into_iter().map(chunk_work).collect()
        };
        interleaved_lower.reserve(chunk_results.len());
        for (class, errs) in chunk_results {
            let class_idx = interleaved_lower.len();
            for (slot, err) in errs.into_iter().enumerate() {
                let blk = class.blocks[slot];
                let kernel = plan.kernel_for(blk);
                match err {
                    None => {
                        factors[blk] = Some(BlockFactor::InterleavedLuLower {
                            class: class_idx,
                            slot,
                        });
                        let mut s = BlockStatus::factorized(kernel);
                        s.precision = StoragePrecision::Lower;
                        status[blk] = Some(s);
                    }
                    Some(error) => {
                        let diag = block_diag(class.n, blocks.block(blk));
                        let (factor, sanitized) = scalar_jacobi_from_diag(&diag);
                        factors[blk] = Some(factor);
                        status[blk] =
                            Some(BlockStatus::fallback(kernel, error, sanitized, class.n));
                    }
                }
            }
            interleaved_lower.push(class);
        }
    } else {
        let chunk_work = |(n, members): (usize, Vec<usize>)| {
            let _span = vbatch_trace::span!("factorize.chunk", n * members.len());
            factor_interleaved_chunk(blocks_ref, n, members, simd)
        };
        let chunk_results: Vec<(InterleavedLuClass<T>, Vec<Option<FactorError>>)> = if parallel {
            par_map_vec(chunks, chunk_work)
        } else {
            chunks.into_iter().map(chunk_work).collect()
        };
        interleaved.reserve(chunk_results.len());
        for (class, errs) in chunk_results {
            let class_idx = interleaved.len();
            for (slot, err) in errs.into_iter().enumerate() {
                let blk = class.blocks[slot];
                let kernel = plan.kernel_for(blk);
                match err {
                    None => {
                        factors[blk] = Some(BlockFactor::InterleavedLu {
                            class: class_idx,
                            slot,
                        });
                        status[blk] = Some(BlockStatus::factorized(kernel));
                    }
                    Some(error) => {
                        let diag = block_diag(class.n, blocks.block(blk));
                        let (factor, sanitized) = scalar_jacobi_from_diag(&diag);
                        factors[blk] = Some(factor);
                        status[blk] =
                            Some(BlockStatus::fallback(kernel, error, sanitized, class.n));
                    }
                }
            }
            interleaved.push(class);
        }
    }

    // Every index was routed to exactly one of the two partitions
    // above, so both vectors are fully populated.
    let factors: Vec<BlockFactor<T>> = factors
        .into_iter()
        .map(|f| f.expect("block covered by neither layout partition"))
        .collect();
    let status: Vec<BlockStatus> = status
        .into_iter()
        .map(|s| s.expect("block covered by neither layout partition"))
        .collect();
    let mut batch = FactorizedBatch {
        sizes,
        factors,
        status,
        interleaved,
        interleaved_lower,
        retained: None,
    };
    if lowered {
        if let PrecisionPolicy::MixedPromote { condest_threshold } = plan.precision() {
            crate::health::promote_unsafe_blocks(&blocks, &mut batch, condest_threshold);
        }
    }
    crate::health::triage_batch(&blocks, &mut batch, plan.health());
    if lowered {
        // the widening applies read their refinement residuals out of
        // the retained batch; the native path consumes it as before
        batch.retained = Some(blocks);
    }
    record_statuses(&batch.status, stats);
    stats.add_phase(Phase::Factorize, t0.elapsed());
    batch
}

/// One unit of solve work: either a single blocked system or all the
/// healthy slots of one interleaved class (gather → class-wide sweep →
/// scatter).
enum SolveUnit<'a, T> {
    Block(usize, &'a mut [T]),
    Class(usize, Vec<(usize, &'a mut [T])>),
}

fn run_solve_unit<T: Scalar>(factors: &FactorizedBatch<T>, unit: SolveUnit<'_, T>, simd: bool) {
    match unit {
        SolveUnit::Block(i, seg) => factors.solve_block_inplace(i, seg),
        SolveUnit::Class(c, mut members) => {
            let cls = &factors.interleaved[c];
            let (n, count) = (cls.n, cls.count());
            // Gather into full-width lanes: absent slots (fallbacks,
            // sanitized to identity factors) solve a zero rhs and are
            // simply not scattered back.
            let mut x = vec![T::ZERO; n * count];
            for (slot, seg) in &members {
                for i in 0..n {
                    x[i * count + slot] = seg[i];
                }
            }
            if simd {
                let mut scratch = vec![T::ZERO; n * count];
                lu_solve_interleaved_class_scratch_simd(
                    n,
                    count,
                    &cls.data,
                    &cls.piv,
                    &mut x,
                    &mut scratch,
                );
            } else {
                lu_solve_interleaved_class(n, count, &cls.data, &cls.piv, &mut x);
            }
            for (slot, seg) in &mut members {
                for i in 0..n {
                    seg[i] = x[i * count + *slot];
                }
            }
        }
    }
}

pub(crate) fn solve_cpu<T: Scalar>(
    factors: &FactorizedBatch<T>,
    rhs: &mut VectorBatch<T>,
    parallel: bool,
    simd: bool,
    stats: &mut ExecStats,
) {
    assert_eq!(factors.sizes, rhs.sizes(), "factors do not match rhs");
    let _span = vbatch_trace::span!("exec.solve", factors.sizes.len());
    let t0 = Instant::now();
    if factors.interleaved.is_empty() {
        if parallel {
            rhs.segs_mut()
                .into_par_iter()
                .enumerate()
                .for_each(|(i, seg)| factors.solve_block_inplace(i, seg));
        } else {
            factors.solve_all_inplace(rhs);
        }
    } else {
        let mut segs: Vec<Option<&mut [T]>> = rhs.segs_mut().into_iter().map(Some).collect();
        let mut units: Vec<SolveUnit<'_, T>> = Vec::new();
        for (c, cls) in factors.interleaved.iter().enumerate() {
            let mut members = Vec::with_capacity(cls.count());
            for (slot, &blk) in cls.blocks.iter().enumerate() {
                if matches!(factors.factors[blk], BlockFactor::InterleavedLu { .. }) {
                    members.push((slot, segs[blk].take().expect("segment claimed twice")));
                }
            }
            if !members.is_empty() {
                units.push(SolveUnit::Class(c, members));
            }
        }
        for (i, seg) in segs.into_iter().enumerate() {
            if let Some(seg) = seg {
                units.push(SolveUnit::Block(i, seg));
            }
        }
        if parallel {
            par_map_vec(units, |u| run_solve_unit(factors, u, simd));
        } else {
            for u in units {
                run_solve_unit(factors, u, simd);
            }
        }
    }
    stats.add_flops(factors.sizes.iter().map(|&n| 2.0 * (n * n) as f64).sum());
    stats.add_phase(Phase::Solve, t0.elapsed());
}

/// Steady-state apply through a [`PreparedApply`]: run every unit
/// against the flat vector, sequentially or over the thread pool. The
/// sequential path performs zero heap allocations (every temporary
/// lives in the prepared per-unit scratch); the parallel path allocates
/// only inside the thread-pool harness, never per block.
pub(crate) fn solve_prepared_cpu<T: Scalar>(
    factors: &FactorizedBatch<T>,
    prepared: &PreparedApply<T>,
    v: &mut [T],
    parallel: bool,
    simd: bool,
    stats: &mut ExecStats,
) {
    assert_eq!(
        v.len(),
        prepared.total(),
        "prepared apply does not match vector"
    );
    let _span = vbatch_trace::span!("exec.apply", prepared.unit_count());
    let t0 = Instant::now();
    let units = prepared.units();
    if parallel && units.len() > 1 {
        let ptr = FlatVecPtr::new(v);
        (0..units.len()).into_par_iter().for_each(|i| {
            // SAFETY: each unit touches a disjoint set of segments
            // (PreparedApply invariant), so the reborrowed views from
            // concurrent units never alias.
            let view = unsafe { ptr.slice() };
            run_apply_unit(factors, &units[i], view, simd);
        });
    } else {
        for unit in units {
            run_apply_unit(factors, unit, v, simd);
        }
    }
    stats.add_flops(factors.sizes.iter().map(|&n| 2.0 * (n * n) as f64).sum());
    stats.add_phase(Phase::Apply, t0.elapsed());
    stats.record_apply(prepared.workspace_hwm_elems());
}

pub(crate) fn invert_cpu<T: Scalar>(
    blocks: &MatrixBatch<T>,
    parallel: bool,
    stats: &mut ExecStats,
) -> (MatrixBatch<T>, Vec<BlockStatus>) {
    let _span = vbatch_trace::span!("exec.invert", blocks.len());
    let t0 = Instant::now();
    let sizes = blocks.sizes().to_vec();
    let items: Vec<(usize, Vec<T>)> = (0..blocks.len())
        .map(|i| (sizes[i], blocks.block(i).to_vec()))
        .collect();
    let work = |(n, data): (usize, Vec<T>)| -> (Vec<T>, BlockStatus) {
        let diag = block_diag(n, &data);
        let mat = DenseMat::from_col_major(n, n, &data);
        match gje_invert(&mat) {
            Ok(inv) => (
                inv.as_slice().to_vec(),
                BlockStatus::factorized(KernelChoice::GjeInvert),
            ),
            Err(error) => {
                // diagonal fallback "inverse"
                let mut d = vec![T::ZERO; n * n];
                let (factor, sanitized) = scalar_jacobi_from_diag(&diag);
                if let BlockFactor::ScalarJacobi { inv_diag } = factor {
                    for (i, &v) in inv_diag.iter().enumerate() {
                        d[i * n + i] = v;
                    }
                }
                (
                    d,
                    BlockStatus::fallback(KernelChoice::GjeInvert, error, sanitized, n),
                )
            }
        }
    };
    let results: Vec<(Vec<T>, BlockStatus)> = if parallel {
        par_map_vec(items, work)
    } else {
        items.into_iter().map(work).collect()
    };
    let mut out = MatrixBatch::zeros(&sizes);
    let mut status = Vec::with_capacity(results.len());
    for (i, (data, st)) in results.into_iter().enumerate() {
        out.block_mut(i).copy_from_slice(&data);
        status.push(st);
    }
    record_statuses(&status, stats);
    stats.add_flops(sizes.iter().map(|&n| 2.0 * (n * n * n) as f64).sum());
    stats.add_phase(Phase::Invert, t0.elapsed());
    (out, status)
}

pub(crate) fn gemv_cpu<T: Scalar>(
    blocks: &MatrixBatch<T>,
    x: &VectorBatch<T>,
    y: &mut VectorBatch<T>,
    exec: Exec,
    stats: &mut ExecStats,
) {
    let _span = vbatch_trace::span!("exec.gemv", blocks.len());
    let t0 = Instant::now();
    batched_gemv(blocks, x, y, exec);
    stats.add_flops(blocks.sizes().iter().map(|&n| 2.0 * (n * n) as f64).sum());
    stats.add_phase(Phase::Gemv, t0.elapsed());
}

pub(crate) fn extract_cpu<T: Scalar>(
    a: &CsrMatrix<T>,
    part: &BlockPartition,
    stats: &mut ExecStats,
) -> MatrixBatch<T> {
    let _span = vbatch_trace::span!("exec.extract", part.len());
    let t0 = Instant::now();
    let batch = extract_diag_blocks(a, part);
    stats.add_phase(Phase::Extract, t0.elapsed());
    batch
}

macro_rules! impl_cpu_backend {
    ($ty:ty, $name:literal, $parallel:literal, $exec:expr) => {
        impl<T: Scalar> Backend<T> for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn extract_blocks(
                &self,
                a: &CsrMatrix<T>,
                part: &BlockPartition,
                stats: &mut ExecStats,
            ) -> MatrixBatch<T> {
                extract_cpu(a, part, stats)
            }

            fn factorize(
                &self,
                blocks: MatrixBatch<T>,
                plan: &BatchPlan,
                stats: &mut ExecStats,
            ) -> FactorizedBatch<T> {
                factorize_cpu(blocks, plan, $parallel, false, stats)
            }

            fn solve(
                &self,
                factors: &FactorizedBatch<T>,
                rhs: &mut VectorBatch<T>,
                stats: &mut ExecStats,
            ) {
                solve_cpu(factors, rhs, $parallel, false, stats)
            }

            fn solve_prepared(
                &self,
                factors: &FactorizedBatch<T>,
                prepared: &PreparedApply<T>,
                v: &mut [T],
                stats: &mut ExecStats,
            ) {
                solve_prepared_cpu(factors, prepared, v, $parallel, false, stats)
            }

            fn sweep_triangular(
                &self,
                tri: &crate::tri::BlockTriangular<T>,
                sched: &vbatch_sparse::LevelSchedule,
                v: &mut [T],
                stats: &mut ExecStats,
            ) {
                crate::tri::sweep_cpu(tri, sched, v, $parallel, stats)
            }

            fn invert(
                &self,
                blocks: &MatrixBatch<T>,
                stats: &mut ExecStats,
            ) -> (MatrixBatch<T>, Vec<BlockStatus>) {
                invert_cpu(blocks, $parallel, stats)
            }

            fn apply_gemv(
                &self,
                blocks: &MatrixBatch<T>,
                x: &VectorBatch<T>,
                y: &mut VectorBatch<T>,
                stats: &mut ExecStats,
            ) {
                gemv_cpu(blocks, x, y, $exec, stats)
            }
        }
    };
}

impl_cpu_backend!(CpuSequential, "cpu-seq", false, Exec::Sequential);
impl_cpu_backend!(CpuRayon, "cpu-par", true, Exec::Parallel);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanMethod;
    use vbatch_rt::SmallRng;

    fn random_batch(sizes: &[usize], seed: u64) -> MatrixBatch<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut batch = MatrixBatch::zeros(sizes);
        for i in 0..batch.len() {
            let n = sizes[i];
            let block = batch.block_mut(i);
            for c in 0..n {
                for r in 0..n {
                    let v = rng.gen_range(-1.0..1.0);
                    block[c * n + r] = if r == c { v + n as f64 } else { v };
                }
            }
        }
        batch
    }

    #[test]
    fn factorize_solve_roundtrip() {
        let sizes = [3usize, 7, 12, 1, 24];
        let batch = random_batch(&sizes, 42);
        let plan = BatchPlan::auto::<f64>(&sizes);
        let mut stats = ExecStats::new();
        let fact = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
        assert_eq!(fact.fallback_count(), 0);

        // rhs = A * ones → solution ≈ ones
        let ones = VectorBatch::from_flat(&sizes, &vec![1.0; sizes.iter().sum()]);
        let mut rhs = VectorBatch::zeros(&sizes);
        CpuSequential.apply_gemv(&batch, &ones, &mut rhs, &mut stats);
        CpuSequential.solve(&fact, &mut rhs, &mut stats);
        for v in rhs.as_slice() {
            assert!((v - 1.0).abs() < 1e-9, "got {v}");
        }
        assert!(stats.flops > 0.0);
        assert!(!stats.histogram_compact().is_empty());
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let sizes = [5usize, 5, 18, 30, 2, 9];
        let batch = random_batch(&sizes, 7);
        for method in [
            PlanMethod::Auto,
            PlanMethod::SmallLu,
            PlanMethod::GaussHuard,
            PlanMethod::GaussHuardT,
            PlanMethod::GjeInvert,
        ] {
            let plan = BatchPlan::for_method::<f64>(&sizes, method);
            let mut s1 = ExecStats::new();
            let mut s2 = ExecStats::new();
            let f1 = CpuSequential.factorize(batch.clone(), &plan, &mut s1);
            let f2 = CpuRayon.factorize(batch.clone(), &plan, &mut s2);
            let total: usize = sizes.iter().sum();
            let flat: Vec<f64> = (0..total).map(|i| (i % 13) as f64 - 6.0).collect();
            let mut r1 = VectorBatch::from_flat(&sizes, &flat);
            let mut r2 = VectorBatch::from_flat(&sizes, &flat);
            CpuSequential.solve(&f1, &mut r1, &mut s1);
            CpuRayon.solve(&f2, &mut r2, &mut s2);
            // same kernels on the same data: bitwise identical
            assert_eq!(r1.as_slice(), r2.as_slice(), "{method:?}");
        }
    }

    #[test]
    fn singular_block_degrades_not_aborts() {
        let sizes = [4usize, 3, 5];
        let mut batch = random_batch(&sizes, 11);
        // make the middle block exactly singular (two equal rows)
        {
            let n = 3;
            let block = batch.block_mut(1);
            for c in 0..n {
                block[c * n + 1] = block[c * n];
            }
        }
        let plan = BatchPlan::auto::<f64>(&sizes);
        let mut stats = ExecStats::new();
        let fact = CpuSequential.factorize(batch, &plan, &mut stats);
        assert_eq!(fact.fallback_count(), 1);
        assert_eq!(stats.failures, 1);
        assert!(fact.status[1].is_fallback());
        assert!(!fact.status[0].is_fallback());
        assert!(!fact.status[2].is_fallback());
        // solving still works and leaves finite values everywhere
        let total: usize = sizes.iter().sum();
        let mut rhs = VectorBatch::from_flat(&sizes, &vec![1.0; total]);
        CpuSequential.solve(&fact, &mut rhs, &mut stats);
        assert!(rhs.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn interleaved_layout_matches_blocked_bitwise() {
        use vbatch_core::BatchLayout;
        // 12 blocks of order 6 + a ragged tail of order 9
        let mut sizes = vec![6usize; 12];
        sizes.push(9);
        let mut batch = random_batch(&sizes, 23);
        // one singular block inside the interleaved class
        {
            let n = 6;
            let block = batch.block_mut(4);
            for c in 0..n {
                block[c * n + 2] = block[c * n + 1];
            }
        }
        let blocked_plan = BatchPlan::auto_with_layout::<f64>(&sizes, BatchLayout::Blocked);
        let il_plan = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved { class_capacity: 2 },
        );
        assert_eq!(il_plan.layout_for(0), ClassLayout::Interleaved);
        assert_eq!(il_plan.layout_for(12), ClassLayout::Blocked);

        let total: usize = sizes.iter().sum();
        let flat: Vec<f64> = (0..total).map(|i| (i % 11) as f64 / 2.0 - 2.0).collect();
        for backend in [&CpuSequential as &dyn Backend<f64>, &CpuRayon] {
            let mut sb = ExecStats::new();
            let mut si = ExecStats::new();
            let fb = backend.factorize(batch.clone(), &blocked_plan, &mut sb);
            let fi = backend.factorize(batch.clone(), &il_plan, &mut si);
            assert!(fi.interleaved.iter().map(|c| c.count()).sum::<usize>() >= 12);
            assert_eq!(fb.fallback_count(), 1);
            assert_eq!(fi.fallback_count(), 1);
            assert_eq!(si.layout_histogram()["interleaved"], 12);
            assert_eq!(si.layout_histogram()["blocked"], 1);
            // bitwise-identical pivots for every LU block
            for blk in 0..sizes.len() {
                assert_eq!(fb.row_of_step(blk), fi.row_of_step(blk), "block {blk}");
                assert_eq!(fb.status[blk].is_fallback(), fi.status[blk].is_fallback());
            }
            // bitwise-identical solutions
            let mut rb = VectorBatch::from_flat(&sizes, &flat);
            let mut ri = VectorBatch::from_flat(&sizes, &flat);
            backend.solve(&fb, &mut rb, &mut sb);
            backend.solve(&fi, &mut ri, &mut si);
            assert_eq!(rb.as_slice(), ri.as_slice(), "{}", backend.name());
            assert!(ri.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn invert_matches_solve() {
        let sizes = [6usize, 11];
        let batch = random_batch(&sizes, 3);
        let mut stats = ExecStats::new();
        let (inv, status) = CpuRayon.invert(&batch, &mut stats);
        assert!(status.iter().all(|s| !s.is_fallback()));
        let total: usize = sizes.iter().sum();
        let flat: Vec<f64> = (0..total).map(|i| 1.0 + i as f64).collect();
        let x = VectorBatch::from_flat(&sizes, &flat);
        let mut via_inv = VectorBatch::zeros(&sizes);
        CpuRayon.apply_gemv(&inv, &x, &mut via_inv, &mut stats);

        let plan = BatchPlan::auto::<f64>(&sizes);
        let fact = CpuSequential.factorize(batch, &plan, &mut stats);
        let mut via_solve = VectorBatch::from_flat(&sizes, &flat);
        CpuSequential.solve(&fact, &mut via_solve, &mut stats);
        for (a, b) in via_inv.as_slice().iter().zip(via_solve.as_slice()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}
