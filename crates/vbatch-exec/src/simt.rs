//! The SIMT-simulator backend: routes every planned kernel to the
//! warp-lockstep functional kernels of `vbatch-simt`, accumulating the
//! device cost counters into [`ExecStats::device_cost`]. Work the
//! simulator has no kernel for (orders above 64, GJE inversion,
//! Cholesky) runs on the host through the same per-block fallback
//! machinery as the CPU backends.

use crate::backend::Backend;
use crate::cpu::{factor_block, invert_cpu, record_statuses};
use crate::factors::{
    block_diag, scalar_jacobi_from_diag, BlockFactor, BlockStatus, FactorizedBatch,
};
use crate::plan::{BatchPlan, ClassLayout, KernelChoice};
use crate::stats::{ExecStats, Phase};
use std::collections::BTreeMap;
use std::time::Instant;
use vbatch_core::{batched_gemv, Exec, FactorError, GhLayout, MatrixBatch, Scalar, VectorBatch};
use vbatch_simt::kernels::multi::problems_per_warp;
use vbatch_simt::{
    DeviceModel, ExtractBatch, ExtractStrategy, GemvBatch, GetrfLarge, GetrfMultiPerWarp,
    GetrfSmallSize, GhBatch, GhSolveBatch, GhStorage, GlobalMem, GlobalMemU32, LuTrsvBatch,
    WARP_SIZE,
};
use vbatch_sparse::{extract_diag_blocks, BlockPartition, CsrMatrix};

/// Largest order the two-rows-per-lane blocked LU covers.
const LARGE_MAX: usize = vbatch_simt::kernels::large::MAX_N;

/// Backend executing every batched routine on the warp-lockstep SIMT
/// simulator (and charging its cost model).
pub struct SimtSim {
    /// Device whose cost tables the simulated kernels charge.
    pub device: DeviceModel,
}

impl SimtSim {
    /// Simulator configured with the paper's P100 device model.
    pub fn new() -> Self {
        SimtSim {
            device: DeviceModel::p100(),
        }
    }
}

impl Default for SimtSim {
    fn default() -> Self {
        Self::new()
    }
}

/// Gather the listed blocks of `blocks` into a dense sub-batch.
fn sub_batch<T: Scalar>(blocks: &MatrixBatch<T>, idx: &[usize]) -> MatrixBatch<T> {
    let sizes: Vec<usize> = idx.iter().map(|&i| blocks.sizes()[i]).collect();
    let mut sub = MatrixBatch::zeros(&sizes);
    for (j, &i) in idx.iter().enumerate() {
        sub.block_mut(j).copy_from_slice(blocks.block(i));
    }
    sub
}

fn fallback_entry<T: Scalar>(
    blocks: &MatrixBatch<T>,
    i: usize,
    kernel: KernelChoice,
    error: FactorError,
) -> (BlockFactor<T>, BlockStatus) {
    let n = blocks.sizes()[i];
    // The simulated device kernels have no dedicated non-finite check:
    // a NaN/Inf block surfaces as a pivot failure there. Re-diagnose on
    // the host so the reported error (and triaged health) matches the
    // CPU backends exactly.
    let error = match vbatch_core::check_finite(n, blocks.block(i)) {
        Err(nf) => nf,
        Ok(()) => error,
    };
    let (factor, sanitized) = scalar_jacobi_from_diag(&block_diag(n, blocks.block(i)));
    (factor, BlockStatus::fallback(kernel, error, sanitized, n))
}

/// Canonical row-major copy of a GH working matrix:
/// `out[k*n + j] = M(k, j)`.
fn gh_canonical<T: Scalar>(f: &vbatch_core::GhFactors<T>) -> Vec<T> {
    let n = f.m.rows();
    let m = f.m.as_slice();
    match f.layout {
        // m = M^T column-major, which is exactly M row-major
        GhLayout::Transposed => m.to_vec(),
        GhLayout::Normal => (0..n * n).map(|i| m[(i % n) * n + i / n]).collect(),
    }
}

/// Column-major copy of the same matrix: `out[k*n + i] = M(i, k)`.
fn gh_colmajor<T: Scalar>(f: &vbatch_core::GhFactors<T>) -> Vec<T> {
    let n = f.m.rows();
    let m = f.m.as_slice();
    match f.layout {
        GhLayout::Normal => m.to_vec(),
        GhLayout::Transposed => (0..n * n).map(|i| m[(i % n) * n + i / n]).collect(),
    }
}

impl<T: Scalar> Backend<T> for SimtSim {
    fn name(&self) -> &'static str {
        "simt-sim"
    }

    fn extract_blocks(
        &self,
        a: &CsrMatrix<T>,
        part: &BlockPartition,
        stats: &mut ExecStats,
    ) -> MatrixBatch<T> {
        let t0 = Instant::now();
        let batch = if part.max_size() <= WARP_SIZE {
            let rp: Vec<u32> = a.row_ptr().iter().map(|&v| v as u32).collect();
            let ci: Vec<u32> = a.col_idx().iter().map(|&v| v as u32).collect();
            let mut dev = ExtractBatch::upload(&rp, &ci, a.values(), part.as_ptr());
            let cost = dev.run_all(ExtractStrategy::SharedMem);
            stats.add_device_cost(&cost);
            let sizes = part.sizes();
            let mut out = MatrixBatch::zeros(&sizes);
            for b in 0..part.len() {
                out.block_mut(b).copy_from_slice(&dev.block_host(b));
            }
            out
        } else {
            // blocks wider than a warp: host extraction
            extract_diag_blocks(a, part)
        };
        stats.add_phase(Phase::Extract, t0.elapsed());
        batch
    }

    fn factorize(
        &self,
        blocks: MatrixBatch<T>,
        plan: &BatchPlan,
        stats: &mut ExecStats,
    ) -> FactorizedBatch<T> {
        assert_eq!(plan.len(), blocks.len(), "plan does not match batch");
        // The simulator has no lowered-precision device kernels; under a
        // lowered policy the whole batch takes the host mixed path (the
        // same one the CPU backends run), keeping policy semantics —
        // promotion, refinement, stats — identical across backends.
        if plan.precision().lowers_storage() && T::HAS_LOWER {
            return crate::cpu::factorize_cpu(blocks, plan, false, false, stats);
        }
        let t0 = Instant::now();
        stats.add_flops(blocks.getrf_flops());
        // The simulated device reads the batch coalesced regardless of
        // host layout: every block executes the blocked path here.
        stats.record_layout(ClassLayout::Blocked, blocks.len() as u64);
        let sizes = blocks.sizes().to_vec();
        let mut results: Vec<Option<(BlockFactor<T>, BlockStatus)>> = vec![None; blocks.len()];

        let mut small_idx = Vec::new();
        let mut large_idx = Vec::new();
        let mut gh_idx = Vec::new();
        let mut ght_idx = Vec::new();
        let mut packed: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut host_idx = Vec::new();
        for i in 0..blocks.len() {
            match plan.kernel_for(i) {
                KernelChoice::SmallLu => small_idx.push(i),
                KernelChoice::BlockedLu if sizes[i] <= LARGE_MAX => large_idx.push(i),
                KernelChoice::GaussHuard => gh_idx.push(i),
                KernelChoice::GaussHuardT => ght_idx.push(i),
                KernelChoice::PackedLu => packed.entry(sizes[i]).or_default().push(i),
                // no simulator kernel: blocked LU above 64, GJE, Cholesky
                _ => host_idx.push(i),
            }
        }

        // --- small-size LU: one warp per block ---------------------------
        if !small_idx.is_empty() {
            let sub = sub_batch(&blocks, &small_idx);
            let mut dev = GetrfSmallSize::upload(&sub);
            for (j, &i) in small_idx.iter().enumerate() {
                results[i] = Some(match dev.run_warp(j) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        (
                            BlockFactor::Lu {
                                n: sizes[i],
                                lu: dev.factors_host(j),
                                perm: dev.perm_host(j),
                            },
                            BlockStatus::factorized(KernelChoice::SmallLu),
                        )
                    }
                    Err(e) => fallback_entry(&blocks, i, KernelChoice::SmallLu, e),
                });
            }
        }

        // --- blocked LU (two rows per lane), orders 33..=64 --------------
        if !large_idx.is_empty() {
            let sub = sub_batch(&blocks, &large_idx);
            match GetrfLarge::upload(&sub) {
                Ok(mut dev) => {
                    for (j, &i) in large_idx.iter().enumerate() {
                        results[i] = Some(match dev.run_warp(j) {
                            Ok(cost) => {
                                stats.add_device_cost(&cost);
                                (
                                    BlockFactor::Lu {
                                        n: sizes[i],
                                        lu: dev.factors_host(j),
                                        perm: dev.perm_host(j),
                                    },
                                    BlockStatus::factorized(KernelChoice::BlockedLu),
                                )
                            }
                            Err(e) => fallback_entry(&blocks, i, KernelChoice::BlockedLu, e),
                        });
                    }
                }
                Err(_) => host_idx.extend_from_slice(&large_idx),
            }
        }

        // --- Gauss-Huard / Gauss-Huard-T ---------------------------------
        for (idx, storage, kernel) in [
            (&gh_idx, GhStorage::RowMajor, KernelChoice::GaussHuard),
            (&ght_idx, GhStorage::Dual, KernelChoice::GaussHuardT),
        ] {
            if idx.is_empty() {
                continue;
            }
            let sub = sub_batch(&blocks, idx);
            let mut dev = GhBatch::upload(&sub, storage);
            for (j, &i) in idx.iter().enumerate() {
                results[i] = Some(match dev.run_warp(j) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        (
                            BlockFactor::Gh(dev.factors_host(j)),
                            BlockStatus::factorized(kernel),
                        )
                    }
                    Err(e) => fallback_entry(&blocks, i, kernel, e),
                });
            }
        }

        // --- multi-problem-per-warp packing (uniform n ≤ 16) -------------
        for (&n, idx) in &packed {
            let sub = sub_batch(&blocks, idx);
            let uploaded = GetrfMultiPerWarp::upload(&sub);
            match uploaded {
                Ok(mut dev) => {
                    let k = problems_per_warp(n).max(1);
                    for w in 0..dev.warps() {
                        let first = w * k;
                        let here: Vec<usize> = (first..(first + k).min(idx.len())).collect();
                        match dev.run_warp(first) {
                            Ok(cost) => {
                                stats.add_device_cost(&cost);
                                for &j in &here {
                                    results[idx[j]] = Some((
                                        BlockFactor::Lu {
                                            n,
                                            lu: dev.factors_host(j),
                                            perm: dev.perm_host(j),
                                        },
                                        BlockStatus::factorized(KernelChoice::PackedLu),
                                    ));
                                }
                            }
                            Err(_) => {
                                // the packed warp fails collectively; redo
                                // its blocks one by one for per-block status
                                for &j in &here {
                                    let i = idx[j];
                                    results[i] = Some(factor_block(
                                        n,
                                        blocks.block(i).to_vec(),
                                        KernelChoice::PackedLu,
                                    ));
                                }
                            }
                        }
                    }
                }
                Err(_) => host_idx.extend_from_slice(idx),
            }
        }

        // --- host paths ---------------------------------------------------
        for &i in &host_idx {
            results[i] = Some(factor_block(
                sizes[i],
                blocks.block(i).to_vec(),
                plan.kernel_for(i),
            ));
        }

        // Every block was routed to exactly one kernel family above.
        let (factors, status): (Vec<_>, Vec<_>) = results
            .into_iter()
            .map(|r| r.expect("block not routed to any kernel family"))
            .unzip();
        let mut batch = FactorizedBatch {
            sizes,
            factors,
            status,
            interleaved: Vec::new(),
            interleaved_lower: Vec::new(),
            retained: None,
        };
        crate::health::triage_batch(&blocks, &mut batch, plan.health());
        record_statuses(&batch.status, stats);
        stats.add_phase(Phase::Factorize, t0.elapsed());
        batch
    }

    fn solve(&self, factors: &FactorizedBatch<T>, rhs: &mut VectorBatch<T>, stats: &mut ExecStats) {
        assert_eq!(factors.sizes, rhs.sizes(), "factors do not match rhs");
        let t0 = Instant::now();

        let mut lu_idx = Vec::new();
        let mut gh_row_idx = Vec::new();
        let mut gh_dual_idx = Vec::new();
        let mut inv_idx = Vec::new();
        let mut host_idx = Vec::new();
        for i in 0..factors.len() {
            let n = factors.sizes[i];
            match &factors.factors[i] {
                BlockFactor::Lu { .. } if n <= WARP_SIZE => lu_idx.push(i),
                BlockFactor::Gh(_) if n <= WARP_SIZE => {
                    // the factorization kernel decides the factor layout
                    // the solve kernel streams
                    if factors.status[i].kernel == KernelChoice::GaussHuardT {
                        gh_dual_idx.push(i)
                    } else {
                        gh_row_idx.push(i)
                    }
                }
                BlockFactor::Inv { .. } if n <= WARP_SIZE => inv_idx.push(i),
                _ => host_idx.push(i),
            }
        }

        // --- LU triangular solves (permuted eager sweeps) ----------------
        if !lu_idx.is_empty() {
            let mut values = Vec::new();
            let mut offsets = vec![0usize];
            let mut sizes_v = Vec::new();
            let mut piv = Vec::new();
            let mut rhs_flat: Vec<T> = Vec::new();
            let mut vec_offsets = vec![0usize];
            for &i in &lu_idx {
                if let BlockFactor::Lu { n, lu, perm } = &factors.factors[i] {
                    values.extend_from_slice(lu);
                    offsets.push(values.len());
                    sizes_v.push(*n);
                    piv.extend(perm.as_slice().iter().map(|&p| p as u32));
                    rhs_flat.extend_from_slice(rhs.seg(i));
                    vec_offsets.push(rhs_flat.len());
                }
            }
            let mut dev = LuTrsvBatch {
                values: GlobalMem::from_slice(&values),
                offsets,
                sizes: sizes_v,
                piv: GlobalMemU32::from_slice(&piv),
                rhs: GlobalMem::from_slice(&rhs_flat),
                vec_offsets,
            };
            for (j, &i) in lu_idx.iter().enumerate() {
                match dev.run_warp(j) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        rhs.seg_mut(i).copy_from_slice(&dev.solution_host(j));
                    }
                    Err(_) => factors.solve_block_inplace(i, rhs.seg_mut(i)),
                }
            }
        }

        // --- Gauss-Huard replay solves -----------------------------------
        for (idx, storage) in [
            (&gh_row_idx, GhStorage::RowMajor),
            (&gh_dual_idx, GhStorage::Dual),
        ] {
            if idx.is_empty() {
                continue;
            }
            let mut canonical: Vec<T> = Vec::new();
            let mut offsets = vec![0usize];
            let mut sizes_v = Vec::new();
            let mut piv = Vec::new();
            let mut rhs_flat: Vec<T> = Vec::new();
            let mut vec_offsets = vec![0usize];
            let mut dual: Vec<T> = Vec::new();
            for &i in idx {
                if let BlockFactor::Gh(f) = &factors.factors[i] {
                    canonical.extend(gh_canonical(f));
                    if storage == GhStorage::Dual {
                        dual.extend(gh_colmajor(f));
                    }
                    offsets.push(canonical.len());
                    sizes_v.push(factors.sizes[i]);
                    piv.extend(f.q.as_slice().iter().map(|&p| p as u32));
                    rhs_flat.extend_from_slice(rhs.seg(i));
                    vec_offsets.push(rhs_flat.len());
                }
            }
            let dual_base = canonical.len();
            canonical.extend(dual);
            let mut dev = GhSolveBatch {
                values: GlobalMem::from_slice(&canonical),
                offsets,
                sizes: sizes_v,
                piv: GlobalMemU32::from_slice(&piv),
                rhs: GlobalMem::from_slice(&rhs_flat),
                vec_offsets,
                storage,
                dual_base,
            };
            for (j, &i) in idx.iter().enumerate() {
                match dev.run_warp(j) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        rhs.seg_mut(i).copy_from_slice(&dev.solution_host(j));
                    }
                    Err(_) => factors.solve_block_inplace(i, rhs.seg_mut(i)),
                }
            }
        }

        // --- explicit inverses: batched GEMV -----------------------------
        if !inv_idx.is_empty() {
            let sizes_v: Vec<usize> = inv_idx.iter().map(|&i| factors.sizes[i]).collect();
            let mut inv_batch = MatrixBatch::zeros(&sizes_v);
            let mut x_flat: Vec<T> = Vec::new();
            for (j, &i) in inv_idx.iter().enumerate() {
                if let BlockFactor::Inv { inv, .. } = &factors.factors[i] {
                    inv_batch.block_mut(j).copy_from_slice(inv);
                }
                x_flat.extend_from_slice(rhs.seg(i));
            }
            let mut dev = GemvBatch::upload(&inv_batch, &x_flat);
            for (j, &i) in inv_idx.iter().enumerate() {
                match dev.run_warp(j) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        rhs.seg_mut(i).copy_from_slice(&dev.result_host(j));
                    }
                    Err(_) => factors.solve_block_inplace(i, rhs.seg_mut(i)),
                }
            }
        }

        // --- host paths: Cholesky, scalar Jacobi, orders > 32 ------------
        for &i in &host_idx {
            factors.solve_block_inplace(i, rhs.seg_mut(i));
        }

        stats.add_flops(factors.sizes.iter().map(|&n| 2.0 * (n * n) as f64).sum());
        stats.add_phase(Phase::Solve, t0.elapsed());
    }

    fn sweep_triangular(
        &self,
        tri: &crate::tri::BlockTriangular<T>,
        sched: &vbatch_sparse::LevelSchedule,
        v: &mut [T],
        stats: &mut ExecStats,
    ) {
        // Host numerics in level order (bitwise identical to the CPU
        // backends) plus the modeled device charge: one warp barrier
        // per level, and per stored block an FMA per element, the
        // block + operand loads, and the partial-sum store.
        let t0 = Instant::now();
        let mut cost = vbatch_simt::CostCounter::new();
        use vbatch_simt::InstrClass;
        for l in 0..sched.num_levels() {
            cost.count(InstrClass::Sync, 1);
            for &i in sched.level(l) {
                let m = tri.block_size(i);
                for e in tri.row_entries(i) {
                    let k = tri.block_size(tri.col_of(e));
                    cost.count(InstrClass::FFma, (m * k) as u64);
                    cost.count(InstrClass::GMemLd, (m * k + k + m) as u64);
                    cost.count(InstrClass::GMemSt, m as u64);
                    cost.flops(2 * (m * k) as u64);
                }
                tri.sweep_row(i, v);
            }
        }
        stats.add_device_cost(&cost);
        stats.add_flops(tri.sweep_flops());
        stats.add_phase(Phase::Sweep, t0.elapsed());
        stats.record_levels(sched);
    }

    fn invert(
        &self,
        blocks: &MatrixBatch<T>,
        stats: &mut ExecStats,
    ) -> (MatrixBatch<T>, Vec<BlockStatus>) {
        // no simulator GJE kernel: deterministic host inversion
        invert_cpu(blocks, false, stats)
    }

    fn apply_gemv(
        &self,
        blocks: &MatrixBatch<T>,
        x: &VectorBatch<T>,
        y: &mut VectorBatch<T>,
        stats: &mut ExecStats,
    ) {
        let t0 = Instant::now();
        if blocks.max_size() <= WARP_SIZE {
            let mut dev = GemvBatch::upload(blocks, x.as_slice());
            for b in 0..blocks.len() {
                match dev.run_warp(b) {
                    Ok(cost) => {
                        stats.add_device_cost(&cost);
                        y.seg_mut(b).copy_from_slice(&dev.result_host(b));
                    }
                    Err(_) => {
                        let xb = x.seg(b);
                        let m = blocks.block_as_mat(b);
                        y.seg_mut(b).copy_from_slice(&m.matvec(xb));
                    }
                }
            }
        } else {
            batched_gemv(blocks, x, y, Exec::Sequential);
        }
        stats.add_flops(blocks.sizes().iter().map(|&n| 2.0 * (n * n) as f64).sum());
        stats.add_phase(Phase::Gemv, t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSequential;
    use crate::plan::{BatchPlan, PlanMethod};
    use vbatch_rt::SmallRng;

    fn random_batch(sizes: &[usize], seed: u64) -> MatrixBatch<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut batch = MatrixBatch::zeros(sizes);
        for i in 0..batch.len() {
            let n = sizes[i];
            let block = batch.block_mut(i);
            for c in 0..n {
                for r in 0..n {
                    let v = rng.gen_range(-1.0..1.0);
                    block[c * n + r] = if r == c { v + n as f64 } else { v };
                }
            }
        }
        batch
    }

    fn solve_with<B: Backend<f64>>(
        backend: &B,
        batch: &MatrixBatch<f64>,
        plan: &BatchPlan,
        flat: &[f64],
    ) -> Vec<f64> {
        let mut stats = ExecStats::new();
        let fact = backend.factorize(batch.clone(), plan, &mut stats);
        assert_eq!(fact.fallback_count(), 0);
        let mut rhs = VectorBatch::from_flat(batch.sizes(), flat);
        backend.solve(&fact, &mut rhs, &mut stats);
        rhs.as_slice().to_vec()
    }

    #[test]
    fn simt_matches_cpu_across_methods() {
        let sizes = [4usize, 4, 4, 13, 24, 24, 32, 40, 64];
        let batch = random_batch(&sizes, 19);
        let total: usize = sizes.iter().sum();
        let flat: Vec<f64> = (0..total).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        for method in [
            PlanMethod::Auto,
            PlanMethod::SmallLu,
            PlanMethod::GaussHuard,
            PlanMethod::GaussHuardT,
            PlanMethod::GjeInvert,
        ] {
            let plan = BatchPlan::for_method::<f64>(&sizes, method);
            let cpu = solve_with(&CpuSequential, &batch, &plan, &flat);
            let simt = solve_with(&SimtSim::new(), &batch, &plan, &flat);
            for (a, b) in cpu.iter().zip(&simt) {
                assert!((a - b).abs() < 1e-8, "{method:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn simt_records_device_cost() {
        let sizes = [8usize, 8, 16, 30];
        let batch = random_batch(&sizes, 5);
        let plan = BatchPlan::auto::<f64>(&sizes);
        let mut stats = ExecStats::new();
        let fact = SimtSim::new().factorize(batch, &plan, &mut stats);
        assert_eq!(fact.fallback_count(), 0);
        let cost = stats.device_cost.clone().expect("device cost recorded");
        assert!(cost.lane_flops > 0);
        assert!(!stats.histogram_compact().is_empty());
    }

    #[test]
    fn simt_extracts_blocks_on_device() {
        use vbatch_sparse::gen::fem::{fem_block_matrix, MeshGraph};
        use vbatch_sparse::supervariable_blocking;
        let mesh = MeshGraph::grid2d(4, 3);
        let a = fem_block_matrix::<f64>(&mesh, 3, 0.4, 0.1, 7);
        let part = supervariable_blocking(&a, 12);
        let mut stats = ExecStats::new();
        let dev = SimtSim::new().extract_blocks(&a, &part, &mut stats);
        let host = extract_diag_blocks(&a, &part);
        assert_eq!(dev.as_slice(), host.as_slice());
        assert!(stats.device_cost.is_some());
    }

    #[test]
    fn simt_singular_block_has_per_block_status() {
        let sizes = [6usize, 6, 6];
        let mut batch = random_batch(&sizes, 23);
        {
            let block = batch.block_mut(1);
            for c in 0..6 {
                block[c * 6 + 2] = block[c * 6 + 4];
            }
        }
        let plan = BatchPlan::auto::<f64>(&sizes);
        let mut stats = ExecStats::new();
        let fact = SimtSim::new().factorize(batch, &plan, &mut stats);
        assert_eq!(fact.fallback_count(), 1);
        assert!(fact.status[1].is_fallback());
        assert!(!fact.status[0].is_fallback() && !fact.status[2].is_fallback());
    }
}
