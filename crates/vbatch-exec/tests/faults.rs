//! Differential fault suite: deterministic fault injection pushed
//! through every (backend × layout) combination and up the full
//! preconditioned-solve stack.
//!
//! Contracts locked down here:
//!
//! * under guarded triage, the per-block health reported after
//!   factorization matches the injected fault map **exactly** on every
//!   backend and layout — NaN/Inf blocks report `NonFinite`, zeroed
//!   rows report `Singular`, eps-scaled columns report
//!   `IllConditioned`, untouched blocks report `Healthy`;
//! * non-finite and singular victims degrade through the scalar-Jacobi
//!   escalation chain while eps-column victims are equilibrated and
//!   refactorized (not degraded);
//! * with 10% of blocks corrupted (mixed classes), block-Jacobi +
//!   IDR(4) still converges to the paper's `1e-6` on every backend;
//! * a corrupted right-hand side ends the solve with
//!   `StopReason::NonFinite` immediately — never by burning the
//!   10,000-iteration budget.

use std::sync::Arc;
use vbatch_core::{BatchLayout, MatrixBatch, VectorBatch};
use vbatch_exec::{
    apply_fault, expected_health, inject_batch, inject_rhs, Backend, BatchPlan, BlockHealth,
    CpuRayon, CpuSequential, CpuSimd, ExecStats, FaultClass, FaultPlan, HealthPolicy, PlanMethod,
    RecoveryStep, SimtSim,
};
use vbatch_precond::{BjMethod, BjOptions, BlockJacobi};
use vbatch_solver::{idr, idr_block_jacobi_robust, RobustPolicy, SolveParams, StopReason};
use vbatch_sparse::gen::laplace::laplace_2d;
use vbatch_sparse::BlockPartition;

const LAYOUTS: [BatchLayout; 2] = [
    BatchLayout::Blocked,
    BatchLayout::Interleaved { class_capacity: 2 },
];

fn backends() -> Vec<Arc<dyn Backend<f64>>> {
    vec![
        Arc::new(CpuSequential),
        Arc::new(CpuRayon),
        Arc::new(CpuSimd),
        Arc::new(SimtSim::new()),
    ]
}

/// A uniform batch of well-conditioned diagonally dominant blocks
/// (deterministic: seeded from the batch shape).
fn healthy_batch(count: usize, n: usize) -> MatrixBatch<f64> {
    let mut rng = vbatch_rt::SmallRng::seed_from_u64((count * 131 + n) as u64);
    let raw = vbatch_rt::testgen::uniform_dd_batch(&mut rng, n, count);
    let mut batch = MatrixBatch::zeros(&raw.sizes);
    for i in 0..count {
        batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
    }
    batch
}

#[test]
fn statuses_match_injected_fault_map_exactly() {
    let classes = [
        FaultClass::NanEntry,
        FaultClass::InfEntry,
        FaultClass::ZeroRow,
        FaultClass::EpsColumn,
    ];
    for (ci, &class) in classes.iter().enumerate() {
        let plan = FaultPlan::new(90 + ci as u64).with(class, 0.2);
        for backend in backends() {
            for layout in LAYOUTS {
                let mut blocks = healthy_batch(20, 6);
                let map = inject_batch(&mut blocks, &plan);
                assert_eq!(map.iter().filter(|f| f.is_some()).count(), 4);
                let bplan = BatchPlan::for_method_with_layout::<f64>(
                    blocks.sizes(),
                    PlanMethod::SmallLu,
                    layout,
                )
                .with_health(HealthPolicy::guarded::<f64>());
                let mut stats = ExecStats::new();
                let factors = backend.factorize(blocks, &bplan, &mut stats);
                for (i, fault) in map.iter().enumerate() {
                    let status = &factors.status[i];
                    let ctx = format!(
                        "{:?} on {}/{}, block {i}",
                        class,
                        backend.name(),
                        layout.label()
                    );
                    assert_eq!(status.health, expected_health(*fault), "{ctx}");
                    match expected_health(*fault) {
                        BlockHealth::Healthy => {
                            assert!(!status.is_fallback(), "{ctx}: healthy block degraded")
                        }
                        BlockHealth::NonFinite | BlockHealth::Singular => {
                            assert!(status.is_fallback(), "{ctx}: victim must degrade");
                            assert!(status.error.is_some(), "{ctx}: error must be recorded");
                        }
                        BlockHealth::IllConditioned => {
                            assert!(
                                !status.is_fallback(),
                                "{ctx}: eps-column victim must be recovered, not degraded"
                            );
                            assert!(
                                status.recovery.contains(&RecoveryStep::Equilibrated),
                                "{ctx}: recovery chain {:?}",
                                status.recovery
                            );
                        }
                    }
                }
                // the health histogram mirrors the per-block statuses
                let hist = stats.health_histogram();
                let healthy = map.iter().filter(|f| f.is_none()).count() as u64;
                assert_eq!(hist.get("healthy").copied().unwrap_or(0), healthy);
            }
        }
    }
}

/// 10% mixed faults (one victim per class over 40 blocks): the guarded
/// preconditioner degrades gracefully and IDR(4) still reaches `1e-6`.
#[test]
fn mixed_faults_still_converge_through_block_jacobi_idr() {
    let a = laplace_2d::<f64>(16, 10);
    let part = BlockPartition::uniform(160, 4); // 40 blocks
    let b = vec![1.0; 160];
    let plan = FaultPlan::new(7)
        .with(FaultClass::NanEntry, 0.025)
        .with(FaultClass::InfEntry, 0.025)
        .with(FaultClass::ZeroRow, 0.025)
        .with(FaultClass::EpsColumn, 0.025);
    for backend in backends() {
        let name = backend.name();
        for layout in LAYOUTS {
            let m = BlockJacobi::setup_with_options(
                &a,
                &part,
                BjMethod::SmallLu,
                backend.clone(),
                BjOptions::guarded::<f64>()
                    .with_layout(layout)
                    .with_fault(plan.clone()),
            )
            .unwrap();
            let victims = m.fault_map().iter().filter(|f| f.is_some()).count();
            assert_eq!(victims, 4, "10% of 40 blocks");
            for (i, fault) in m.fault_map().to_vec().iter().enumerate() {
                assert_eq!(
                    m.statuses()[i].health,
                    expected_health(*fault),
                    "{name}/{} block {i}",
                    layout.label()
                );
            }
            let r = idr(&a, &b, 4, &m, &SolveParams::default());
            assert_eq!(
                r.reason,
                StopReason::Converged,
                "{name}/{}: {:?} relres {}",
                layout.label(),
                r.reason,
                r.final_relres
            );
            assert!(r.final_relres < 1e-6, "{name}: {}", r.final_relres);
        }
    }
}

/// Faults injected *inside a SIMD lane group* poison only their own
/// slot: on `CpuSimd`, the whole group runs through the wide-lane
/// elimination together, so a NaN/Inf/singular victim shares vector
/// registers with up to `MAX_LANE_WIDTH − 1` healthy lane-mates. Those
/// mates must come out **bitwise identical** to a fault-free run —
/// factors, pivots, and solve outputs alike — and the reported status
/// map must match `expected_health` exactly.
#[test]
fn lane_group_faults_poison_only_their_own_slot() {
    // one interleaved class of 20 slots at n = 6: lane groups
    // [0..8), [8..16) and a remainder tail [16..20) at width 8
    // (narrower widths just re-chunk; the victim slots below land
    // inside a multi-lane group at every supported width >= 2)
    const COUNT: usize = 20;
    const N: usize = 6;
    let victims: [(usize, FaultClass); 4] = [
        (3, FaultClass::NanEntry), // group 0, mates 0..8
        (4, FaultClass::InfEntry), // group 0: two victims in one group
        (9, FaultClass::ZeroRow),  // group 1
        (17, FaultClass::ZeroRow), // remainder tail
    ];
    let flat_rhs: Vec<f64> = (0..COUNT * N).map(|i| 0.5 + (i % 7) as f64).collect();
    let bplan = BatchPlan::for_method_with_layout::<f64>(
        &[N; COUNT],
        PlanMethod::SmallLu,
        BatchLayout::Interleaved { class_capacity: 2 },
    )
    .with_health(HealthPolicy::guarded::<f64>());

    let clean = healthy_batch(COUNT, N);
    let mut faulty = clean.clone();
    let mut map: Vec<Option<FaultClass>> = vec![None; COUNT];
    for &(slot, class) in &victims {
        apply_fault(N, faulty.block_mut(slot), class);
        map[slot] = Some(class);
    }

    let backend = CpuSimd;
    let mut s_clean = ExecStats::new();
    let f_clean = backend.factorize(clean, &bplan, &mut s_clean);
    let mut r_clean = VectorBatch::from_flat(&[N; COUNT], &flat_rhs);
    backend.solve(&f_clean, &mut r_clean, &mut s_clean);

    let mut s_faulty = ExecStats::new();
    let f_faulty = backend.factorize(faulty, &bplan, &mut s_faulty);
    let mut r_faulty = VectorBatch::from_flat(&[N; COUNT], &flat_rhs);
    backend.solve(&f_faulty, &mut r_faulty, &mut s_faulty);

    for blk in 0..COUNT {
        let want = expected_health(map[blk]);
        assert_eq!(f_faulty.status[blk].health, want, "block {blk}");
        if map[blk].is_some() {
            assert!(
                f_faulty.status[blk].is_fallback(),
                "victim {blk} must degrade"
            );
            assert!(
                r_faulty.seg(blk).iter().all(|v| v.is_finite()),
                "victim {blk}: fallback output must stay finite"
            );
        } else {
            // healthy lane-mates: pivots and solve bits untouched by
            // the poisoned slots sharing their vector registers
            assert!(!f_faulty.status[blk].is_fallback(), "block {blk}");
            assert_eq!(
                f_faulty.row_of_step(blk),
                f_clean.row_of_step(blk),
                "block {blk}: pivot sequence perturbed by a lane-mate fault"
            );
            let got = r_faulty.seg(blk);
            let want = r_clean.seg(blk);
            for (i, (a, b)) in got.iter().zip(want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "block {blk} row {i}: solve bits perturbed by a lane-mate fault"
                );
            }
        }
    }
}

/// A NaN right-hand side must end the solve as `NonFinite` without
/// touching the iteration budget — never as `MaxIterations`.
#[test]
fn rhs_faults_are_reported_not_iterated_on() {
    let a = laplace_2d::<f64>(8, 8);
    let part = BlockPartition::uniform(64, 4);
    let sizes = part.sizes();
    let mut rhs = VectorBatch::<f64>::from_flat(&sizes, &[1.0; 64]);
    let mut assignment = vec![None; part.len()];
    assignment[3] = Some(FaultClass::RhsNan);
    inject_rhs(&mut rhs, &assignment);
    assert!(rhs.seg(3)[0].is_nan());

    let m = BlockJacobi::setup_with_options(
        &a,
        &part,
        BjMethod::SmallLu,
        Arc::new(CpuSequential) as Arc<dyn Backend<f64>>,
        BjOptions::guarded::<f64>(),
    )
    .unwrap();
    // the matrix faults are absent: every block is healthy
    assert!(m
        .statuses()
        .iter()
        .all(|s| s.health == BlockHealth::Healthy));

    let r = idr(&a, rhs.as_slice(), 4, &m, &SolveParams::default());
    assert_eq!(r.reason, StopReason::NonFinite);
    assert_ne!(r.reason, StopReason::MaxIterations);
    assert_eq!(r.iterations, 0, "no budget burned on a NaN RHS");
}

/// The robust fallback chain in **single precision** (the rest of this
/// suite is f64-only): a NaN right-hand side is reported as `NonFinite`
/// with zero restarts — corrupted data cannot be repaired by solving
/// the (equally corrupted) residual system — and the policy still
/// exhausts the GMRES fallback before giving up.
#[test]
fn robust_policy_f32_nan_rhs_exhausts_fallback_without_restarting() {
    let a = laplace_2d::<f32>(6, 6);
    let mut b = vec![1.0f32; 36];
    b[0] = f32::NAN;
    let part = BlockPartition::uniform(36, 4);
    let r = idr_block_jacobi_robust(
        &a,
        &b,
        4,
        &part,
        BjMethod::SmallLu,
        Arc::new(CpuSequential) as Arc<dyn Backend<f32>>,
        &SolveParams::default(),
        &RobustPolicy::default(),
    )
    .unwrap();
    assert_eq!(r.solve.result.reason, StopReason::NonFinite);
    assert_eq!(r.restarts, 0, "a NaN RHS cannot be restarted");
    assert!(r.used_gmres, "policy exhausts the fallback chain");
}

/// Single-precision stagnation drives the full escalation chain. The
/// system is an *indefinite* shifted Laplacian (`L − 2I`, the shift
/// inside the spectrum): block-Jacobi IDR(4) cannot make steady
/// progress on it in f32, so the stagnation guard trips, the policy
/// restarts IDR from the current iterate, and when the restart
/// stagnates too it hands the system to GMRES. The final iterate must
/// stay finite and carry f32-achievable accuracy even though the
/// formal `1e-12` target was never met.
#[test]
fn robust_policy_f32_stagnation_forces_restart_then_gmres() {
    let mut a = laplace_2d::<f32>(10, 10);
    let n = a.nrows();
    for row in 0..n {
        let (lo, hi) = (a.row_ptr()[row], a.row_ptr()[row + 1]);
        for k in lo..hi {
            if a.col_idx()[k] == row {
                a.values_mut()[k] -= 2.0;
            }
        }
    }
    let b = vec![1.0f32; n];
    let part = BlockPartition::uniform(n, 4);
    let mut params = SolveParams::default()
        .with_tol(1e-12)
        .with_stagnation_window(15)
        .with_max_iters(2000);
    // on the indefinite system the residual wanders; only a >=1%
    // improvement of the best norm counts as progress
    params.stagnation_rtol = 1e-2;
    let policy = RobustPolicy::default();
    let r = idr_block_jacobi_robust(
        &a,
        &b,
        4,
        &part,
        BjMethod::SmallLu,
        Arc::new(CpuSequential) as Arc<dyn Backend<f32>>,
        &params,
        &policy,
    )
    .unwrap();
    assert_eq!(
        r.restarts, policy.max_restarts,
        "restart budget spent (reason {}, iters {}, relres {})",
        r.solve.result.reason, r.solve.result.iterations, r.solve.result.final_relres
    );
    assert!(r.used_gmres, "restarts alone cannot beat the f32 floor");
    assert!(
        r.solve.result.x.iter().all(|v| v.is_finite()),
        "escalation must never corrupt the iterate"
    );
    assert!(
        r.solve.result.final_relres < 1e-4,
        "f32-achievable accuracy retained: relres {}",
        r.solve.result.final_relres
    );
    assert_ne!(
        r.solve.result.reason,
        StopReason::Converged,
        "1e-12 is not reachable in single precision"
    );
}
