//! Deterministic regression tests of the `ExecStats` / trace-registry
//! invariants:
//!
//! * per-phase wall-clock entries are non-negative and their sum never
//!   exceeds the wall time of the run that produced them;
//! * for a batch with no fallbacks, the kernel histogram totals exactly
//!   the block count (and `failures` accounts for the rest otherwise);
//! * when tracing is compiled in and enabled, the number of ring events
//!   emitted by one prepared apply matches the spans and counters the
//!   instrumented path is documented to emit — no hidden event sources,
//!   no lost records.

use std::time::Instant;
use vbatch_core::{BatchLayout, MatrixBatch, VectorBatch};
use vbatch_exec::{Backend, BatchPlan, CpuSequential, ExecStats, Phase, PlanMethod};
use vbatch_rt::{testgen, SmallRng};

fn uniform_batch(count: usize, n: usize, seed: u64) -> MatrixBatch<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let raw = testgen::uniform_dd_batch(&mut rng, n, count);
    let mut batch = MatrixBatch::zeros(&raw.sizes);
    for i in 0..count {
        batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
    }
    batch
}

#[test]
fn phase_times_are_nonnegative_and_bounded_by_wall_time() {
    let batch = uniform_batch(64, 8, 11);
    let sizes = batch.sizes().to_vec();
    let plan = BatchPlan::auto::<f64>(&sizes);
    let mut stats = ExecStats::new();

    let wall0 = Instant::now();
    let factors = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
    let mut rhs = VectorBatch::from_flat(&sizes, &vec![1.0; 64 * 8]);
    CpuSequential.solve(&factors, &mut rhs, &mut stats);
    let prep = CpuSequential.prepare_apply(&factors);
    let mut v = vec![1.0f64; 64 * 8];
    CpuSequential.solve_prepared(&factors, &prep, &mut v, &mut stats);
    CpuSequential.solve_prepared(&factors, &prep, &mut v, &mut stats);
    let wall = wall0.elapsed();

    let phases = [
        Phase::Extract,
        Phase::Factorize,
        Phase::Solve,
        Phase::Invert,
        Phase::Gemv,
        Phase::Apply,
    ];
    let mut sum = std::time::Duration::ZERO;
    for p in phases {
        let t = stats.phase_time(p);
        sum += t; // Duration is unsigned: non-negativity is structural
    }
    assert!(stats.phase_time(Phase::Factorize).as_nanos() > 0);
    assert!(stats.phase_time(Phase::Apply).as_nanos() > 0);
    assert!(
        sum <= wall,
        "phase sum {sum:?} exceeds wall time {wall:?} of the run"
    );
    assert_eq!(stats.applies, 2);
    assert_eq!(stats.workspace_hwm_elems, prep.workspace_hwm_elems());
}

#[test]
fn kernel_histogram_totals_the_block_count() {
    for layout in [
        BatchLayout::Blocked,
        BatchLayout::Interleaved { class_capacity: 2 },
    ] {
        let batch = uniform_batch(48, 6, 23);
        let plan =
            BatchPlan::for_method_with_layout::<f64>(batch.sizes(), PlanMethod::SmallLu, layout);
        let mut stats = ExecStats::new();
        let factors = CpuSequential.factorize(batch, &plan, &mut stats);
        assert_eq!(factors.fallback_count(), 0);
        let total: u64 = stats.kernel_histogram().values().sum();
        assert_eq!(
            total + stats.failures as u64,
            48,
            "kernel histogram + failures must cover every block ({layout:?})"
        );
        // the layout histogram covers every block too
        let layout_total: u64 = stats.layout_histogram().values().sum();
        assert_eq!(layout_total, 48, "{layout:?}");
    }
}

#[test]
fn failures_complete_the_kernel_histogram() {
    let mut batch = uniform_batch(8, 4, 31);
    // make one block exactly singular (two equal rows)
    {
        let b = batch.block_mut(3);
        for c in 0..4 {
            b[c * 4 + 1] = b[c * 4];
        }
    }
    let plan = BatchPlan::for_method::<f64>(batch.sizes(), PlanMethod::SmallLu);
    let mut stats = ExecStats::new();
    let factors = CpuSequential.factorize(batch, &plan, &mut stats);
    assert_eq!(factors.fallback_count(), 1);
    let total: u64 = stats.kernel_histogram().values().sum();
    assert_eq!(total + stats.failures as u64, 8);
    assert_eq!(stats.failures, 1);
}

/// One prepared apply on `CpuSequential` emits a documented set of ring
/// events: begin/end of the `exec.apply` span, begin/end per apply
/// unit, plus one counter event from `ExecStats::record_apply`. The
/// delta of this thread's event counter must match exactly — the test
/// is a canary for silently added (or dropped) hot-loop events.
#[test]
fn trace_event_count_matches_spans_emitted() {
    let batch = uniform_batch(32, 8, 47);
    let sizes = batch.sizes().to_vec();
    let plan = BatchPlan::auto::<f64>(&sizes);
    let mut stats = ExecStats::new();
    let factors = CpuSequential.factorize(batch, &plan, &mut stats);
    let prep = CpuSequential.prepare_apply(&factors);
    let mut v = vec![1.0f64; 32 * 8];
    // warm-up creates this thread's ring (if the feature is on)
    CpuSequential.solve_prepared(&factors, &prep, &mut v, &mut stats);

    if !vbatch_trace::enabled() {
        // feature off: the counter must stay identically zero
        assert_eq!(vbatch_trace::thread_events_written(), 0);
        return;
    }
    let before = vbatch_trace::thread_events_written();
    CpuSequential.solve_prepared(&factors, &prep, &mut v, &mut stats);
    let emitted = vbatch_trace::thread_events_written() - before;
    let expected = 2 * (1 + prep.unit_count() as u64) + 1;
    assert_eq!(
        emitted,
        expected,
        "one sequential prepared apply with {} units must emit exactly \
         2*(1+units)+1 events",
        prep.unit_count()
    );
}
