//! Precision-policy differential suite: the same batches run under
//! every (backend × layout × precision policy) combination.
//!
//! Contracts locked down here:
//!
//! * **promotion is metamorphic** — switching a batch from `FullDp` to
//!   `MixedPromote` never moves any block's solution beyond a
//!   refinement-level tolerance, on every backend and layout, including
//!   blocks the condest gate promoted back to working precision;
//! * **`ForceSp` ≡ `MixedPromote` bitwise** on a well-conditioned batch:
//!   the gate examines every lowered block and promotes none, so the
//!   factors (and therefore the solutions) are identical bits;
//! * the triage condest is computed once by the promotion pass and
//!   reused by health triage (satellite of PR 9);
//! * the SIMT simulator delegates lowered-storage policies to the host
//!   path bitwise;
//! * at the `f32` precision floor the lowered policies degenerate to
//!   the unchanged native path, bitwise.

use vbatch_core::{BatchLayout, MatrixBatch, StoragePrecision, VectorBatch};
use vbatch_exec::{
    Backend, BatchPlan, CpuRayon, CpuSequential, CpuSimd, ExecStats, HealthPolicy, PlanMethod,
    PrecisionPolicy, SimtSim,
};
use vbatch_rt::{run_cases, testgen, SmallRng};

/// Agreement bound between a mixed-storage solve and the full-DP solve
/// of the same well-conditioned block: one widened refinement step
/// against the retained DP block recovers working-precision accuracy,
/// so the gap is refinement-level, far below single-precision roundoff.
const MIXED_TOL: f64 = 1e-9;

const LAYOUTS: [BatchLayout; 2] = [
    BatchLayout::Blocked,
    BatchLayout::Interleaved { class_capacity: 2 },
];

const POLICIES: [PrecisionPolicy; 2] = [
    PrecisionPolicy::MixedPromote {
        condest_threshold: 724.0,
    },
    PrecisionPolicy::ForceSp,
];

fn random_batch(rng: &mut SmallRng, sizes: &[usize]) -> MatrixBatch<f64> {
    let raw = testgen::dd_batch_of(rng, sizes);
    let mut batch = MatrixBatch::zeros(sizes);
    for i in 0..batch.len() {
        batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
    }
    batch
}

fn rhs_for(rng: &mut SmallRng, sizes: &[usize]) -> VectorBatch<f64> {
    let mut rhs = VectorBatch::zeros(sizes);
    for v in rhs.as_mut_slice().iter_mut() {
        *v = rng.gen_range(-4.0..4.0);
    }
    rhs
}

/// Scale rows of block `i` so its condition estimate lands far above
/// any promotion threshold while staying representable in `f32`.
fn poison_conditioning(batch: &mut MatrixBatch<f64>, i: usize) {
    let n = batch.size(i);
    let b = batch.block_mut(i);
    for c in 0..n {
        b[c * n] *= 1e6;
        b[c * n + n - 1] *= 1e-6;
    }
}

fn solve_under(
    backend: &dyn Backend<f64>,
    batch: &MatrixBatch<f64>,
    rhs: &VectorBatch<f64>,
    layout: BatchLayout,
    precision: PrecisionPolicy,
) -> (Vec<f64>, vbatch_exec::FactorizedBatch<f64>, ExecStats) {
    let plan = BatchPlan::for_method_with_layout::<f64>(batch.sizes(), PlanMethod::Auto, layout)
        .with_precision(precision);
    let mut stats = ExecStats::new();
    let factors = backend.factorize(batch.clone(), &plan, &mut stats);
    let mut x = rhs.clone();
    backend.solve(&factors, &mut x, &mut stats);
    // the prepared (warm-workspace) apply must agree bitwise with the
    // one-shot solve under every precision policy
    let prep = backend.prepare_apply(&factors);
    let mut p = rhs.as_slice().to_vec();
    backend.solve_prepared(&factors, &prep, &mut p, &mut stats);
    assert_eq!(
        x.as_slice(),
        p.as_slice(),
        "{}/{}/{}: prepared apply diverged from one-shot solve",
        backend.name(),
        layout.label(),
        precision.label()
    );
    (x.as_slice().to_vec(), factors, stats)
}

#[test]
fn promotion_never_moves_solutions_beyond_tolerance() {
    // sizes spanning the packed/GH/small-LU/blocked kernels, with one
    // ill-conditioned member the gate must promote
    let sizes = vec![4usize, 4, 4, 4, 12, 20, 20, 34];
    run_cases("precision_metamorphic", 6, |rng, _case| {
        let mut batch = random_batch(rng, &sizes);
        poison_conditioning(&mut batch, 4);
        let rhs = rhs_for(rng, &sizes);
        let backends: [&dyn Backend<f64>; 4] =
            [&CpuSequential, &CpuRayon, &CpuSimd, &SimtSim::new()];
        for layout in LAYOUTS {
            for backend in backends {
                let (dp, _, _) =
                    solve_under(backend, &batch, &rhs, layout, PrecisionPolicy::FullDp);
                for policy in POLICIES {
                    let (mixed, factors, stats) =
                        solve_under(backend, &batch, &rhs, layout, policy);
                    let promoting = matches!(policy, PrecisionPolicy::MixedPromote { .. });
                    if promoting {
                        assert_eq!(
                            stats.promotions,
                            1,
                            "{}/{}: exactly the poisoned block promotes",
                            backend.name(),
                            layout.label()
                        );
                        assert!(factors.status[4].promoted);
                        assert_eq!(factors.status[4].precision, StoragePrecision::Native);
                        assert!(factors.status[4].condest.unwrap() > 724.0);
                    }
                    let mut off = 0usize;
                    for blk in 0..batch.len() {
                        // ForceSp keeps the poisoned block's factors in
                        // storage precision by design; only the
                        // promoting policy owes DP-level agreement there
                        if blk == 4 && !promoting {
                            continue;
                        }
                        let n = batch.size(blk);
                        let scale = rhs.seg(blk).iter().fold(1.0f64, |m, v| m.max(v.abs()));
                        let tol = MIXED_TOL * n as f64 * scale;
                        let s = sizes[..blk].iter().sum::<usize>();
                        for r in 0..n {
                            if (dp[s + r] - mixed[s + r]).abs() > tol {
                                off += 1;
                            }
                        }
                    }
                    assert_eq!(
                        off,
                        0,
                        "{}/{}/{}: {off} rows drifted past tolerance",
                        backend.name(),
                        layout.label(),
                        policy.label()
                    );
                }
            }
        }
    });
}

#[test]
fn force_sp_matches_mixed_promote_bitwise_when_nothing_promotes() {
    let sizes = vec![3usize, 3, 3, 7, 18, 28];
    run_cases("force_sp_vs_mixed_bitwise", 8, |rng, _case| {
        let batch = random_batch(rng, &sizes);
        let rhs = rhs_for(rng, &sizes);
        for layout in LAYOUTS {
            let (sp, sp_f, _) = solve_under(
                &CpuSequential,
                &batch,
                &rhs,
                layout,
                PrecisionPolicy::ForceSp,
            );
            let (mx, mx_f, stats) = solve_under(
                &CpuSequential,
                &batch,
                &rhs,
                layout,
                PrecisionPolicy::mixed::<f64>(),
            );
            assert_eq!(stats.promotions, 0, "diagonally dominant: no promotions");
            for (a, b) in sp.iter().zip(&mx) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}: sp vs mixed", layout.label());
            }
            for (s, m) in sp_f.status.iter().zip(&mx_f.status) {
                assert_eq!(s.precision, StoragePrecision::Lower);
                assert_eq!(m.precision, StoragePrecision::Lower);
                assert!(!s.promoted && !m.promoted);
            }
        }
    });
}

#[test]
fn promotion_condest_is_cached_and_reused_by_triage() {
    let sizes = vec![5usize, 5, 5];
    let mut rng = SmallRng::seed_from_u64(0x9_e11);
    let mut batch = random_batch(&mut rng, &sizes);
    poison_conditioning(&mut batch, 1);
    let plan =
        BatchPlan::for_method_with_layout::<f64>(&sizes, PlanMethod::SmallLu, BatchLayout::Blocked)
            .with_health(HealthPolicy::guarded::<f64>())
            .with_precision(PrecisionPolicy::mixed::<f64>());
    let mut stats = ExecStats::new();
    let factors = CpuSequential.factorize(batch, &plan, &mut stats);
    // the promotion pass estimated every lowered block and cached the
    // estimate; triage consumed the cache, so each status carries one
    assert!(factors.status.iter().all(|s| s.condest.is_some()));
    assert_eq!(stats.promotions, 1);
    assert!(factors.status[1].promoted);
    // the promoted block then failed DP triage too and was recovered in
    // native precision; the well-conditioned neighbours stayed lowered
    assert_eq!(factors.status[1].precision, StoragePrecision::Native);
    for i in [0usize, 2] {
        assert_eq!(factors.status[i].precision, StoragePrecision::Lower);
        assert!(!factors.status[i].promoted);
    }
    assert_eq!(stats.precision_histogram()["lower"], 2);
    assert_eq!(stats.precision_histogram()["native"], 1);
}

#[test]
fn simt_delegates_lowered_policies_to_host_bitwise() {
    let sizes = vec![4usize, 4, 9, 17, 26];
    run_cases("simt_mixed_delegation", 6, |rng, _case| {
        let batch = random_batch(rng, &sizes);
        let rhs = rhs_for(rng, &sizes);
        for layout in LAYOUTS {
            for policy in POLICIES {
                let (host, hf, _) = solve_under(&CpuSequential, &batch, &rhs, layout, policy);
                let (simt, sf, _) = solve_under(&SimtSim::new(), &batch, &rhs, layout, policy);
                for (a, b) in host.iter().zip(&simt) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{}/{}: simt diverged from host",
                        layout.label(),
                        policy.label()
                    );
                }
                for (h, s) in hf.status.iter().zip(&sf.status) {
                    assert_eq!(h.precision, s.precision);
                    assert_eq!(h.promoted, s.promoted);
                }
            }
        }
    });
}

#[test]
fn f32_floor_policies_are_bitwise_noops() {
    // f32 has no lower storage tier: sp/mixed must run the native path
    let n = 6usize;
    let sizes = vec![n; 4];
    let mut batch = MatrixBatch::<f32>::zeros(&sizes);
    for i in 0..4 {
        let b = batch.block_mut(i);
        for c in 0..n {
            for r in 0..n {
                let h = (r * 131 + c * 37 + i * 17 + 3) % 64;
                b[c * n + r] = h as f32 / 32.0 + if r == c { (n + 2) as f32 } else { 0.0 };
            }
        }
    }
    let mut rhs = VectorBatch::<f32>::zeros(&sizes);
    for (i, v) in rhs.as_mut_slice().iter_mut().enumerate() {
        *v = 1.0 + (i % 5) as f32;
    }
    let reference = {
        let plan = BatchPlan::for_method::<f32>(&sizes, PlanMethod::SmallLu);
        let mut stats = ExecStats::new();
        let f = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
        let mut x = rhs.clone();
        CpuSequential.solve(&f, &mut x, &mut stats);
        x.as_slice().to_vec()
    };
    for policy in [PrecisionPolicy::mixed::<f32>(), PrecisionPolicy::ForceSp] {
        let plan = BatchPlan::for_method::<f32>(&sizes, PlanMethod::SmallLu).with_precision(policy);
        let mut stats = ExecStats::new();
        let f = CpuSequential.factorize(batch.clone(), &plan, &mut stats);
        let mut x = rhs.clone();
        CpuSequential.solve(&f, &mut x, &mut stats);
        for (a, b) in x.as_slice().iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: f32 floor", policy.label());
        }
        // everything reports native storage; nothing promotes
        assert!(f
            .status
            .iter()
            .all(|s| s.precision == StoragePrecision::Native && !s.promoted));
        assert_eq!(stats.promotions, 0);
    }
}
