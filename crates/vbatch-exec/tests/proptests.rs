//! Property-based tests of the execution layer: the three backends
//! (`CpuSequential`, `CpuRayon`, `SimtSim`) must produce identical (to
//! roundoff) solutions on random variable-size batches under every plan
//! method, and the planner must honor the paper's kernel-selection
//! rules (blocked LU above order 32, warp packing for uniform n ≤ 16).

use vbatch_core::{BatchLayout, DenseMat, MatrixBatch, Scalar, VectorBatch};
use vbatch_exec::{
    Backend, BatchPlan, ClassLayout, CpuRayon, CpuSequential, ExecStats, KernelChoice, PlanMethod,
    SimtSim,
};
use vbatch_rt::{run_cases, testgen, SmallRng};

fn random_batch(rng: &mut SmallRng, max_n: usize) -> (Vec<usize>, MatrixBatch<f64>) {
    let sizes = testgen::ragged_sizes(rng, max_n, 9);
    let seed = rng.next_u64();
    let mats: Vec<DenseMat<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(s, &n)| {
            DenseMat::from_col_major(n, n, &testgen::hashed_dense(n, seed.wrapping_add(s as u64)))
        })
        .collect();
    (sizes, MatrixBatch::from_matrices(&mats))
}

fn rhs_for(sizes: &[usize]) -> VectorBatch<f64> {
    let mut rhs = VectorBatch::zeros(sizes);
    for (i, x) in rhs.as_mut_slice().iter_mut().enumerate() {
        *x = (i % 13) as f64 / 3.0 - 2.0;
    }
    rhs
}

fn solve_on(
    backend: &dyn Backend<f64>,
    batch: &MatrixBatch<f64>,
    plan: &BatchPlan,
    rhs: &VectorBatch<f64>,
) -> (Vec<f64>, usize) {
    let mut stats = ExecStats::new();
    let f = backend.factorize(batch.clone(), plan, &mut stats);
    let mut x = rhs.clone();
    backend.solve(&f, &mut x, &mut stats);
    (x.as_slice().to_vec(), f.fallback_count())
}

#[test]
fn backends_agree_on_random_variable_size_batches() {
    run_cases(
        "backends_agree_on_random_variable_size_batches",
        32,
        |rng, _case| {
            // up to order 40 so the blocked-LU path is exercised too
            let (sizes, batch) = random_batch(rng, 40);
            let rhs = rhs_for(&sizes);
            let plan = BatchPlan::auto::<f64>(&sizes);
            let backends: [&dyn Backend<f64>; 3] = [&CpuSequential, &CpuRayon, &SimtSim::new()];
            let results: Vec<(Vec<f64>, usize)> = backends
                .iter()
                .map(|b| solve_on(*b, &batch, &plan, &rhs))
                .collect();
            for (b, r) in backends.iter().zip(&results).skip(1) {
                assert_eq!(r.1, results[0].1, "{} fallback count", b.name());
                for (p, q) in r.0.iter().zip(&results[0].0) {
                    assert!(
                        (p - q).abs() < 1e-8,
                        "{}: {p} vs {q} (sizes {sizes:?})",
                        b.name()
                    );
                }
            }
        },
    );
}

#[test]
fn backends_agree_under_every_plan_method() {
    run_cases(
        "backends_agree_under_every_plan_method",
        24,
        |rng, _case| {
            let (sizes, batch) = random_batch(rng, 32);
            let rhs = rhs_for(&sizes);
            for method in [
                PlanMethod::Auto,
                PlanMethod::SmallLu,
                PlanMethod::GaussHuard,
                PlanMethod::GaussHuardT,
                PlanMethod::GjeInvert,
            ] {
                let plan = BatchPlan::for_method::<f64>(&sizes, method);
                let (seq, _) = solve_on(&CpuSequential, &batch, &plan, &rhs);
                let (par, _) = solve_on(&CpuRayon, &batch, &plan, &rhs);
                let (simt, _) = solve_on(&SimtSim::new(), &batch, &plan, &rhs);
                for ((p, q), r) in seq.iter().zip(&par).zip(&simt) {
                    // the two CPU backends run the same scalar code
                    assert_eq!(p, q, "{method:?}");
                    assert!((p - r).abs() < 1e-8, "{method:?}: {p} vs {r}");
                }
            }
        },
    );
}

#[test]
fn plan_selects_blocked_lu_above_32() {
    run_cases("plan_selects_blocked_lu_above_32", 64, |rng, _case| {
        let count = rng.gen_range(1usize..20);
        let sizes: Vec<usize> = (0..count).map(|_| rng.gen_range(1usize..80)).collect();
        let plan = BatchPlan::auto::<f64>(&sizes);
        for (i, &n) in sizes.iter().enumerate() {
            if n > 32 {
                assert_eq!(
                    plan.kernel_for(i),
                    KernelChoice::BlockedLu,
                    "block {i} of order {n}"
                );
            } else {
                assert_ne!(plan.kernel_for(i), KernelChoice::BlockedLu);
            }
        }
    });
}

#[test]
fn plan_packs_uniform_small_batches() {
    run_cases("plan_packs_uniform_small_batches", 64, |rng, _case| {
        let n = rng.gen_range(1usize..17);
        let count = rng.gen_range(2usize..50);
        let plan = BatchPlan::auto::<f64>(&vec![n; count]);
        for i in 0..count {
            assert_eq!(plan.kernel_for(i), KernelChoice::PackedLu, "n={n}");
        }
    });
}

#[test]
fn plan_layout_follows_capacity_and_kernel_family() {
    run_cases("plan_layout_follows_capacity", 48, |rng, _case| {
        let count = rng.gen_range(1usize..60);
        let n = rng.gen_range(1usize..50);
        let cap = rng.gen_range(1usize..40);
        let sizes = vec![n; count];
        let plan = BatchPlan::auto_with_layout::<f64>(
            &sizes,
            BatchLayout::Interleaved {
                class_capacity: cap,
            },
        );
        let lu_family = matches!(
            plan.kernel_for(0),
            KernelChoice::PackedLu | KernelChoice::SmallLu
        );
        let expected = if lu_family && count >= cap {
            ClassLayout::Interleaved
        } else {
            ClassLayout::Blocked
        };
        for b in 0..count {
            assert_eq!(
                plan.layout_for(b),
                expected,
                "n={n} count={count} cap={cap}"
            );
        }
        // a Blocked policy never interleaves anything
        let blocked = BatchPlan::auto_with_layout::<f64>(&sizes, BatchLayout::Blocked);
        for b in 0..count {
            assert_eq!(blocked.layout_for(b), ClassLayout::Blocked);
        }
        // layout histogram covers every block exactly once
        let total: usize = plan.layout_histogram().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, count);
    });
}

#[test]
fn crossover_depends_on_precision() {
    // order 20 sits between the SP (~16) and DP (~23) crossovers: the
    // planner must keep GH in double precision but switch to the
    // small-size LU in single precision (paper Fig. 6)
    let sizes = vec![20usize; 1];
    let dp = BatchPlan::auto::<f64>(&sizes);
    let sp = BatchPlan::auto::<f32>(&sizes);
    assert_eq!(dp.kernel_for(0), KernelChoice::GaussHuard);
    assert_eq!(sp.kernel_for(0), KernelChoice::SmallLu);
    assert_eq!(f32::BYTES, 4);
    assert_eq!(f64::BYTES, 8);
}
