//! Golden differential suite: the same randomized variable-size batches
//! run through every (backend × layout) combination, and the results
//! are pinned against each other and against the naive dense LU
//! reference of `vbatch-core`.
//!
//! Contracts locked down here:
//!
//! * the three CPU backends — sequential, parallel, and the explicit
//!   wide-lane `CpuSimd` — agree **bitwise** across both layouts:
//!   identical pivot sequences and identical solution bits, because the
//!   interleaved sweeps (scalar and SIMD-chunked alike) execute the
//!   exact per-slot operation order of the blocked kernels;
//! * every combination stays within `c · n · eps` of the dense
//!   reference solve (`vbatch_core::solve_system`);
//! * the SIMT simulator agrees with the CPU combinations to roundoff;
//! * singular blocks degrade to the scalar-Jacobi fallback identically
//!   in every combination, with finite outputs everywhere.

use vbatch_core::{BatchLayout, MatrixBatch, Scalar, VectorBatch};
use vbatch_exec::{
    Backend, BatchPlan, CpuRayon, CpuSequential, CpuSimd, ExecStats, FactorizedBatch, HealthPolicy,
    PlanMethod, SimtSim,
};
use vbatch_rt::{run_cases, testgen, SmallRng};

/// Residual agreement bound: `GOLDEN_C · n · eps` relative to the
/// reference solution's magnitude.
const GOLDEN_C: f64 = 256.0;

fn random_batch(rng: &mut SmallRng, max_n: usize, max_count: usize) -> MatrixBatch<f64> {
    // at least two blocks so cross-block effects are always present
    let count = rng.gen_range(2usize..max_count + 1);
    let sizes: Vec<usize> = (0..count)
        .map(|_| rng.gen_range(1usize..max_n + 1))
        .collect();
    let raw = testgen::dd_batch_of(rng, &sizes);
    let mut batch = MatrixBatch::zeros(&sizes);
    for i in 0..batch.len() {
        batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
    }
    batch
}

fn rhs_for(rng: &mut SmallRng, sizes: &[usize]) -> VectorBatch<f64> {
    let mut rhs = VectorBatch::zeros(sizes);
    for v in rhs.as_mut_slice().iter_mut() {
        *v = rng.gen_range(-4.0..4.0);
    }
    rhs
}

/// The layouts every batch is pushed through. `class_capacity: 2` makes
/// even small random classes take the interleaved path.
const LAYOUTS: [BatchLayout; 2] = [
    BatchLayout::Blocked,
    BatchLayout::Interleaved { class_capacity: 2 },
];

struct Combo {
    label: String,
    factors: FactorizedBatch<f64>,
    solution: Vec<f64>,
    /// The same solve through the prepared (workspace-reuse) apply
    /// path, second pass through the same workspace — must be bitwise
    /// identical to `solution` on every backend.
    prepared: Vec<f64>,
    /// `true` for combinations whose results must agree bitwise with
    /// each other (the host CPU paths).
    bitwise: bool,
}

fn run_all_combos(
    batch: &MatrixBatch<f64>,
    rhs: &VectorBatch<f64>,
    method: PlanMethod,
    health: HealthPolicy,
) -> Vec<Combo> {
    let mut combos = Vec::new();
    let backends: [(&dyn Backend<f64>, bool); 4] = [
        (&CpuSequential, true),
        (&CpuRayon, true),
        (&CpuSimd, true),
        (&SimtSim::new(), false),
    ];
    for layout in LAYOUTS {
        let plan = BatchPlan::for_method_with_layout::<f64>(batch.sizes(), method, layout)
            .with_health(health);
        for (backend, bitwise) in backends {
            let mut stats = ExecStats::new();
            let factors = backend.factorize(batch.clone(), &plan, &mut stats);
            let label = format!("{}/{}", backend.name(), layout.label());
            let mut x = rhs.clone();
            backend.solve(&factors, &mut x, &mut stats);
            // prepared apply: run twice through one workspace so the
            // second pass exercises dirty recycled scratch
            let prep = backend.prepare_apply(&factors);
            let mut p1 = rhs.as_slice().to_vec();
            backend.solve_prepared(&factors, &prep, &mut p1, &mut stats);
            let mut p2 = rhs.as_slice().to_vec();
            backend.solve_prepared(&factors, &prep, &mut p2, &mut stats);
            assert_eq!(
                p1, p2,
                "{label}: workspace reuse must be bitwise reproducible"
            );
            combos.push(Combo {
                label,
                factors,
                solution: x.as_slice().to_vec(),
                prepared: p1,
                bitwise,
            });
        }
    }
    combos
}

fn assert_matches_dense_reference(batch: &MatrixBatch<f64>, rhs: &VectorBatch<f64>, combo: &Combo) {
    let solved = VectorBatch::from_flat(batch.sizes(), &combo.solution);
    for blk in 0..batch.len() {
        if combo.factors.status[blk].is_fallback() {
            continue;
        }
        let n = batch.size(blk);
        let a = batch.block_as_mat(blk);
        let x_ref = vbatch_core::solve_system(&a, rhs.seg(blk)).expect("reference solve");
        let scale = x_ref.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let tol = GOLDEN_C * n as f64 * f64::epsilon() * scale;
        for (i, (&got, &want)) in solved.seg(blk).iter().zip(&x_ref).enumerate() {
            assert!(
                (got - want).abs() <= tol,
                "{}: block {blk} row {i}: {got} vs reference {want} (tol {tol:.3e})",
                combo.label
            );
        }
    }
}

#[test]
fn all_backend_layout_combos_agree_on_random_batches() {
    run_cases("golden_backend_layout_agreement", 24, |rng, _case| {
        let batch = random_batch(rng, 12, 24);
        let rhs = rhs_for(rng, batch.sizes());
        for method in [PlanMethod::SmallLu, PlanMethod::Auto] {
            let combos = run_all_combos(&batch, &rhs, method, HealthPolicy::Off);
            let baseline = &combos[0];

            for combo in &combos {
                // every combination within c·n·eps of the dense reference
                assert_matches_dense_reference(&batch, &rhs, combo);
                // prepared apply == one-shot solve, bitwise, per combo
                assert_eq!(
                    combo.prepared, combo.solution,
                    "{}: prepared apply must match solve bitwise",
                    combo.label
                );
                assert_eq!(
                    combo.factors.fallback_count(),
                    baseline.factors.fallback_count(),
                    "{}",
                    combo.label
                );
                for (p, q) in combo.solution.iter().zip(&baseline.solution) {
                    assert!(
                        (p - q).abs() < 1e-8,
                        "{} vs {}: {p} vs {q}",
                        combo.label,
                        baseline.label
                    );
                }
            }

            // CPU combinations: bitwise-identical pivots and solutions
            let cpu: Vec<&Combo> = combos.iter().filter(|c| c.bitwise).collect();
            for combo in &cpu[1..] {
                assert_eq!(
                    combo.solution, cpu[0].solution,
                    "{} vs {} must agree bitwise",
                    combo.label, cpu[0].label
                );
                for blk in 0..batch.len() {
                    assert_eq!(
                        combo.factors.row_of_step(blk),
                        cpu[0].factors.row_of_step(blk),
                        "{} block {blk} pivots",
                        combo.label
                    );
                }
            }
        }
    });
}

#[test]
fn singular_blocks_fall_back_identically_in_every_combo() {
    run_cases("golden_singular_fallback", 16, |rng, _case| {
        let mut batch = random_batch(rng, 8, 16);
        let rhs = rhs_for(rng, batch.sizes());
        // make one block with n >= 2 exactly singular (two equal rows)
        let victim = (0..batch.len()).find(|&i| batch.size(i) >= 2);
        let Some(victim) = victim else { return };
        {
            let n = batch.size(victim);
            let block = batch.block_mut(victim);
            for c in 0..n {
                block[c * n + 1] = block[c * n];
            }
        }
        let combos = run_all_combos(&batch, &rhs, PlanMethod::SmallLu, HealthPolicy::Off);
        let expected_fallbacks = combos[0].factors.fallback_count();
        assert!(expected_fallbacks >= 1);
        for combo in &combos {
            assert_eq!(
                combo.factors.fallback_count(),
                expected_fallbacks,
                "{}",
                combo.label
            );
            assert_eq!(
                combo.prepared, combo.solution,
                "{}: prepared apply must match solve bitwise with fallbacks present",
                combo.label
            );
            assert!(
                combo.factors.status[victim].is_fallback(),
                "{}: victim block must degrade",
                combo.label
            );
            assert!(
                combo.solution.iter().all(|v| v.is_finite()),
                "{}: fallback must keep outputs finite",
                combo.label
            );
            // healthy blocks still match the dense reference
            assert_matches_dense_reference(&batch, &rhs, combo);
        }
        // identical per-block fallback maps in every combination
        for combo in &combos {
            for blk in 0..batch.len() {
                assert_eq!(
                    combo.factors.status[blk].is_fallback(),
                    combos[0].factors.status[blk].is_fallback(),
                    "{} block {blk} fallback map",
                    combo.label
                );
            }
        }
        // CPU paths stay bitwise-identical even with fallbacks present
        let cpu: Vec<&Combo> = combos.iter().filter(|c| c.bitwise).collect();
        for combo in &cpu[1..] {
            assert_eq!(combo.solution, cpu[0].solution, "{}", combo.label);
        }
    });
}

#[test]
fn prepared_apply_is_bitwise_across_health_policies() {
    run_cases("golden_prepared_health_policies", 12, |rng, _case| {
        let mut batch = random_batch(rng, 10, 16);
        let rhs = rhs_for(rng, batch.sizes());
        // push one block toward ill-conditioning so Guarded triage has
        // something to equilibrate (rows of wildly different scale)
        if let Some(victim) = (0..batch.len()).find(|&i| batch.size(i) >= 3) {
            let n = batch.size(victim);
            let block = batch.block_mut(victim);
            for c in 0..n {
                block[c * n] *= 1e12;
                block[c * n + 1] *= 1e-9;
            }
        }
        for health in [HealthPolicy::Off, HealthPolicy::guarded::<f64>()] {
            let combos = run_all_combos(&batch, &rhs, PlanMethod::Auto, health);
            for combo in &combos {
                assert_eq!(
                    combo.prepared, combo.solution,
                    "{} (health {health:?}): prepared apply must match solve bitwise",
                    combo.label
                );
                assert!(
                    combo.prepared.iter().all(|v| v.is_finite()),
                    "{} (health {health:?}): outputs must stay finite",
                    combo.label
                );
            }
            // the CPU paths agree bitwise with each other under either
            // policy (equilibrated solves included)
            let cpu: Vec<&Combo> = combos.iter().filter(|c| c.bitwise).collect();
            for combo in &cpu[1..] {
                assert_eq!(
                    combo.solution, cpu[0].solution,
                    "{} vs {} (health {health:?})",
                    combo.label, cpu[0].label
                );
            }
        }
    });
}
