//! Property-based tests for the dense kernel layer: factorization
//! identities, solver agreement across algorithms, permutation algebra
//! and batch container invariants, over randomly generated inputs
//! (seeded, reproducible cases via `vbatch_rt::run_cases`).

use vbatch_core::{
    batched_getrf, getrf, gh_factorize, gje_invert, lu_solve_inplace, make_spd, potrf,
    trsv_lower_unit, trsv_upper, DenseMat, Exec, GhLayout, MatrixBatch, Permutation, PivotStrategy,
    Scalar, TrsvVariant, VectorBatch,
};
use vbatch_rt::{run_cases, testgen, SmallRng};

/// A well-conditioned random square matrix
/// ([`testgen::well_conditioned_dense`] wrapped into a `DenseMat`).
fn well_conditioned(n: usize, rng: &mut SmallRng) -> DenseMat<f64> {
    DenseMat::from_col_major(n, n, &testgen::well_conditioned_dense(rng, n))
}

/// An arbitrary small dimension.
fn dim(rng: &mut SmallRng) -> usize {
    rng.gen_range(1usize..25)
}

#[test]
fn lu_reconstructs_pa() {
    run_cases("lu_reconstructs_pa", 64, |rng, _case| {
        let n = dim(rng);
        let seed = rng.next_u64();
        let a = DenseMat::from_col_major(n, n, &testgen::hashed_dense(n, seed));
        for strat in [PivotStrategy::Explicit, PivotStrategy::Implicit] {
            let f = getrf(&a, strat).unwrap();
            assert!(f.residual(&a).to_f64() < 1e-10 * (n as f64 + 1.0));
        }
    });
}

#[test]
fn implicit_and_explicit_agree() {
    run_cases("implicit_and_explicit_agree", 64, |rng, _case| {
        let n = dim(rng);
        let a = well_conditioned(n, rng);
        let fi = getrf(&a, PivotStrategy::Implicit).unwrap();
        let fe = getrf(&a, PivotStrategy::Explicit).unwrap();
        // ties in pivot selection can reorder, so compare behaviour:
        // both must solve the same system to the same answer
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let xi = fi.solve(&b);
        let xe = fe.solve(&b);
        for (p, q) in xi.iter().zip(&xe) {
            assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    });
}

#[test]
fn gh_solves_like_lu() {
    run_cases("gh_solves_like_lu", 64, |rng, _case| {
        let n = dim(rng);
        let a = well_conditioned(n, rng);
        let b: Vec<f64> = (0..n).map(|i| 1.0 - (i % 3) as f64).collect();
        let lu = getrf(&a, PivotStrategy::Implicit).unwrap();
        let x_lu = lu.solve(&b);
        for layout in [GhLayout::Normal, GhLayout::Transposed] {
            let gh = gh_factorize(&a, layout).unwrap();
            let x_gh = gh.solve(&b);
            for (p, q) in x_lu.iter().zip(&x_gh) {
                assert!((p - q).abs() < 1e-8);
            }
        }
    });
}

#[test]
fn gje_inverse_is_two_sided() {
    run_cases("gje_inverse_is_two_sided", 64, |rng, _case| {
        let n = dim(rng);
        let a = well_conditioned(n, rng);
        let inv = gje_invert(&a).unwrap();
        let id = DenseMat::identity(n);
        assert!(a.matmul(&inv).sub(&id).norm_max() < 1e-9);
        assert!(inv.matmul(&a).sub(&id).norm_max() < 1e-9);
    });
}

#[test]
fn cholesky_solves_spd() {
    run_cases("cholesky_solves_spd", 64, |rng, _case| {
        let n = rng.gen_range(1usize..17);
        let a = well_conditioned(n, rng);
        let spd = make_spd(&a);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 2.0) / 3.0).collect();
        let b = spd.matvec(&x_true);
        let f = potrf(&spd).unwrap();
        let x = f.solve(&b);
        for (p, q) in x.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-7);
        }
        assert!(f.residual(&spd).to_f64() < 1e-8 * (n as f64 + 1.0));
    });
}

#[test]
fn trsv_variants_agree() {
    run_cases("trsv_variants_agree", 64, |rng, _case| {
        let n = dim(rng);
        let a = well_conditioned(n, rng);
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i * i % 7) as f64 - 3.0).collect();
        let mut lazy = b.clone();
        let mut eager = b;
        lu_solve_inplace(
            TrsvVariant::Lazy,
            n,
            f.lu.as_slice(),
            f.perm.as_slice(),
            &mut lazy,
        );
        lu_solve_inplace(
            TrsvVariant::Eager,
            n,
            f.lu.as_slice(),
            f.perm.as_slice(),
            &mut eager,
        );
        for (p, q) in lazy.iter().zip(&eager) {
            assert!((p - q).abs() < 1e-8);
        }
    });
}

#[test]
fn lower_then_upper_inverts_matvec() {
    run_cases("lower_then_upper_inverts_matvec", 64, |rng, _case| {
        // y = L (U x) then the two sweeps must return x
        let n = dim(rng);
        let a = well_conditioned(n, rng);
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ux = f.lu.upper().matvec(&x);
        let mut y = f.lu.unit_lower().matvec(&ux);
        trsv_lower_unit(TrsvVariant::Eager, n, f.lu.as_slice(), &mut y);
        trsv_upper(TrsvVariant::Eager, n, f.lu.as_slice(), &mut y);
        for (p, q) in y.iter().zip(&x) {
            assert!((p - q).abs() < 1e-7);
        }
    });
}

#[test]
fn permutation_roundtrip() {
    run_cases("permutation_roundtrip", 64, |rng, _case| {
        // build a permutation by sorting indices of random keys
        let n = rng.gen_range(1usize..40);
        let keys: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..100)).collect();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (keys[i], i));
        let p = Permutation::from_row_of_step(idx);
        let v: Vec<i64> = (0..n as i64).collect();
        let w = p.apply(&v);
        let back = p.apply_inverse(&w);
        assert_eq!(back, v);
        let inv = p.inverse();
        let double_inv = inv.inverse();
        assert_eq!(double_inv.as_slice(), p.as_slice());
        assert_eq!(p.is_odd(), inv.is_odd());
    });
}

#[test]
fn batched_solve_matches_per_block() {
    run_cases("batched_solve_matches_per_block", 48, |rng, _case| {
        let count = rng.gen_range(1usize..12);
        let sizes: Vec<usize> = (0..count).map(|_| rng.gen_range(1usize..13)).collect();
        let seed = rng.next_u64();
        let mats: Vec<DenseMat<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                DenseMat::from_col_major(
                    n,
                    n,
                    &testgen::hashed_dense(n, seed.wrapping_add(s as u64)),
                )
            })
            .collect();
        let batch = MatrixBatch::from_matrices(&mats);
        let mut rhs = VectorBatch::zeros(&sizes);
        for (i, m) in mats.iter().enumerate() {
            let n = m.rows();
            let xt: Vec<f64> = (0..n).map(|k| k as f64 * 0.3 - 0.7).collect();
            rhs.seg_mut(i).copy_from_slice(&m.matvec(&xt));
        }
        let f = batched_getrf(batch, PivotStrategy::Implicit, Exec::Parallel).unwrap();
        let mut x = rhs.clone();
        f.solve(&mut x, TrsvVariant::Eager, Exec::Parallel);
        // compare against solving each block on its own
        for (i, m) in mats.iter().enumerate() {
            let xi = vbatch_core::solve_system(m, rhs.seg(i)).unwrap();
            for (p, q) in x.seg(i).iter().zip(&xi) {
                assert!((p - q).abs() < 1e-9);
            }
        }
    });
}

#[test]
fn batch_container_roundtrip() {
    run_cases("batch_container_roundtrip", 64, |rng, _case| {
        let count = rng.gen_range(0usize..16);
        let sizes: Vec<usize> = (0..count).map(|_| rng.gen_range(1usize..11)).collect();
        let batch = MatrixBatch::<f64>::zeros(&sizes);
        assert_eq!(batch.len(), sizes.len());
        let total: usize = sizes.iter().map(|&n| n * n).sum();
        assert_eq!(batch.total_elements(), total);
        for (i, &n) in sizes.iter().enumerate() {
            assert_eq!(batch.size(i), n);
            assert_eq!(batch.block(i).len(), n * n);
        }
        // offsets are a prefix sum
        for i in 0..sizes.len() {
            assert_eq!(
                batch.offsets()[i + 1] - batch.offsets()[i],
                sizes[i] * sizes[i]
            );
        }
    });
}

#[test]
fn determinant_multiplies_for_diagonal_scaling() {
    run_cases(
        "determinant_multiplies_for_diagonal_scaling",
        64,
        |rng, _case| {
            let n = rng.gen_range(2usize..11);
            let a = well_conditioned(n, rng);
            let alpha = rng.gen_range(0.5f64..2.0);
            let f = getrf(&a, PivotStrategy::Implicit).unwrap();
            // scale the first row by alpha => det scales by alpha
            let mut b = a.clone();
            for j in 0..n {
                let v = b[(0, j)];
                b[(0, j)] = v * alpha;
            }
            let fb = getrf(&b, PivotStrategy::Implicit).unwrap();
            let ratio = fb.det() / f.det();
            assert!(
                (ratio - alpha).abs() < 1e-6 * alpha.max(1.0),
                "ratio {ratio} vs {alpha}"
            );
        },
    );
}
