//! Property-based tests for the dense kernel layer: factorization
//! identities, solver agreement across algorithms, permutation algebra
//! and batch container invariants, over randomly generated inputs.

use proptest::prelude::*;
use vbatch_core::{
    batched_getrf, getrf, gh_factorize, gje_invert, lu_solve_inplace, make_spd, potrf,
    trsv_lower_unit, trsv_upper, DenseMat, Exec, GhLayout, MatrixBatch, Permutation,
    PivotStrategy, Scalar, TrsvVariant, VectorBatch,
};

/// A well-conditioned random square matrix: random entries in [-1, 1]
/// with a diagonal shift keeping it invertible.
fn well_conditioned(n: usize) -> impl Strategy<Value = DenseMat<f64>> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = DenseMat::from_col_major(n, n, &data);
        for i in 0..n {
            let d = m[(i, i)];
            m[(i, i)] = d + if d >= 0.0 { n as f64 } else { -(n as f64) };
        }
        m
    })
}

/// An arbitrary small dimension.
fn dim() -> impl Strategy<Value = usize> {
    1usize..=24
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_reconstructs_pa((n, seed) in dim().prop_flat_map(|n| (Just(n), any::<u64>()))) {
        // deterministic matrix from the seed (cheaper than a vec strategy
        // at every size)
        let a = DenseMat::from_fn(n, n, |i, j| {
            let h = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503) ^ seed as usize) % 1024;
            h as f64 / 512.0 - 1.0 + if i == j { 3.0 } else { 0.0 }
        });
        for strat in [PivotStrategy::Explicit, PivotStrategy::Implicit] {
            let f = getrf(&a, strat).unwrap();
            prop_assert!(f.residual(&a).to_f64() < 1e-10 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn implicit_and_explicit_agree(a in dim().prop_flat_map(well_conditioned)) {
        let fi = getrf(&a, PivotStrategy::Implicit).unwrap();
        let fe = getrf(&a, PivotStrategy::Explicit).unwrap();
        // ties in pivot selection can reorder, so compare behaviour:
        // both must solve the same system to the same answer
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let xi = fi.solve(&b);
        let xe = fe.solve(&b);
        for (p, q) in xi.iter().zip(&xe) {
            prop_assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    #[test]
    fn gh_solves_like_lu(a in dim().prop_flat_map(well_conditioned)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 - (i % 3) as f64).collect();
        let lu = getrf(&a, PivotStrategy::Implicit).unwrap();
        let x_lu = lu.solve(&b);
        for layout in [GhLayout::Normal, GhLayout::Transposed] {
            let gh = gh_factorize(&a, layout).unwrap();
            let x_gh = gh.solve(&b);
            for (p, q) in x_lu.iter().zip(&x_gh) {
                prop_assert!((p - q).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gje_inverse_is_two_sided(a in dim().prop_flat_map(well_conditioned)) {
        let n = a.rows();
        let inv = gje_invert(&a).unwrap();
        let id = DenseMat::identity(n);
        prop_assert!(a.matmul(&inv).sub(&id).norm_max() < 1e-9);
        prop_assert!(inv.matmul(&a).sub(&id).norm_max() < 1e-9);
    }

    #[test]
    fn cholesky_solves_spd(a in (1usize..=16).prop_flat_map(well_conditioned)) {
        let spd = make_spd(&a);
        let n = spd.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 2.0) / 3.0).collect();
        let b = spd.matvec(&x_true);
        let f = potrf(&spd).unwrap();
        let x = f.solve(&b);
        for (p, q) in x.iter().zip(&x_true) {
            prop_assert!((p - q).abs() < 1e-7);
        }
        prop_assert!(f.residual(&spd).to_f64() < 1e-8 * (n as f64 + 1.0));
    }

    #[test]
    fn trsv_variants_agree(a in dim().prop_flat_map(well_conditioned)) {
        let n = a.rows();
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i * i % 7) as f64 - 3.0).collect();
        let mut lazy = b.clone();
        let mut eager = b.clone();
        lu_solve_inplace(TrsvVariant::Lazy, n, f.lu.as_slice(), f.perm.as_slice(), &mut lazy);
        lu_solve_inplace(TrsvVariant::Eager, n, f.lu.as_slice(), f.perm.as_slice(), &mut eager);
        for (p, q) in lazy.iter().zip(&eager) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn lower_then_upper_inverts_matvec(a in dim().prop_flat_map(well_conditioned)) {
        // y = L (U x) then the two sweeps must return x
        let n = a.rows();
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ux = f.lu.upper().matvec(&x);
        let mut y = f.lu.unit_lower().matvec(&ux);
        trsv_lower_unit(TrsvVariant::Eager, n, f.lu.as_slice(), &mut y);
        trsv_upper(TrsvVariant::Eager, n, f.lu.as_slice(), &mut y);
        for (p, q) in y.iter().zip(&x) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn permutation_roundtrip(perm in prop::collection::vec(0usize..100, 1..40)) {
        // build a permutation by sorting indices of random keys
        let n = perm.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (perm[i], i));
        let p = Permutation::from_row_of_step(idx);
        let v: Vec<i64> = (0..n as i64).collect();
        let w = p.apply(&v);
        let back = p.apply_inverse(&w);
        prop_assert_eq!(back, v);
        let inv = p.inverse();
        let double_inv = inv.inverse();
        prop_assert_eq!(double_inv.as_slice(), p.as_slice());
        prop_assert_eq!(p.is_odd(), inv.is_odd());
    }

    #[test]
    fn batched_solve_matches_per_block(sizes in prop::collection::vec(1usize..=12, 1..12), seed in any::<u64>()) {
        let mats: Vec<DenseMat<f64>> = sizes.iter().enumerate().map(|(s, &n)| {
            DenseMat::from_fn(n, n, |i, j| {
                let h = (i * 97 + j * 31 + s * 7 + seed as usize) % 256;
                h as f64 / 128.0 - 1.0 + if i == j { 4.0 } else { 0.0 }
            })
        }).collect();
        let batch = MatrixBatch::from_matrices(&mats);
        let mut rhs = VectorBatch::zeros(&sizes);
        for (i, m) in mats.iter().enumerate() {
            let n = m.rows();
            let xt: Vec<f64> = (0..n).map(|k| k as f64 * 0.3 - 0.7).collect();
            rhs.seg_mut(i).copy_from_slice(&m.matvec(&xt));
        }
        let f = batched_getrf(batch, PivotStrategy::Implicit, Exec::Parallel).unwrap();
        let mut x = rhs.clone();
        f.solve(&mut x, TrsvVariant::Eager, Exec::Parallel);
        // compare against solving each block on its own
        for (i, m) in mats.iter().enumerate() {
            let xi = vbatch_core::solve_system(m, rhs.seg(i)).unwrap();
            for (p, q) in x.seg(i).iter().zip(&xi) {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn batch_container_roundtrip(sizes in prop::collection::vec(1usize..=10, 0..16)) {
        let batch = MatrixBatch::<f64>::zeros(&sizes);
        prop_assert_eq!(batch.len(), sizes.len());
        let total: usize = sizes.iter().map(|&n| n * n).sum();
        prop_assert_eq!(batch.total_elements(), total);
        for (i, &n) in sizes.iter().enumerate() {
            prop_assert_eq!(batch.size(i), n);
            prop_assert_eq!(batch.block(i).len(), n * n);
        }
        // offsets are a prefix sum
        for i in 0..sizes.len() {
            prop_assert_eq!(batch.offsets()[i + 1] - batch.offsets()[i], sizes[i] * sizes[i]);
        }
    }

    #[test]
    fn determinant_multiplies_for_diagonal_scaling(a in (2usize..=10).prop_flat_map(well_conditioned), alpha in 0.5f64..2.0) {
        let n = a.rows();
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        // scale the first row by alpha => det scales by alpha
        let mut b = a.clone();
        for j in 0..n {
            let v = b[(0, j)];
            b[(0, j)] = v * alpha;
        }
        let fb = getrf(&b, PivotStrategy::Implicit).unwrap();
        let ratio = fb.det() / f.det();
        prop_assert!((ratio - alpha).abs() < 1e-6 * alpha.max(1.0), "ratio {ratio} vs {alpha}");
    }
}
