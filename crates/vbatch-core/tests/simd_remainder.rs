//! Remainder-handling property suite for the wide-lane interleaved
//! kernels: batch (class) sizes that are **not** multiples of the lane
//! width must produce results identical to the full-width path — the
//! trailing slots go down the scalar (W = 1) remainder path, and per
//! slot that path executes the same operation sequence, so everything
//! is bitwise.
//!
//! For every width in {2, 4, 8}, both precisions, and randomized
//! testgen batches, the counts exercised are the ISSUE's boundary set
//! {1, W−1, W+1, 2W−1} plus a random count — each compared slot-by-slot
//! against (a) the scalar interleaved kernel and (b) the same slots
//! factorized inside a *larger* class, proving chunk boundaries are
//! invisible.

use vbatch_core::{
    getrf_interleaved_class, getrf_interleaved_class_simd_width,
    lu_solve_interleaved_class_scratch, lu_solve_interleaved_class_scratch_simd_width,
};
use vbatch_rt::{run_cases, testgen, SmallRng};

/// Pack `count` dense n×n blocks (column-major) into interleaved lanes.
fn pack(blocks: &[Vec<f64>], n: usize) -> Vec<f64> {
    let count = blocks.len();
    let mut data = vec![0.0; n * n * count];
    for (s, b) in blocks.iter().enumerate() {
        for e in 0..n * n {
            data[e * count + s] = b[e];
        }
    }
    data
}

fn gen_blocks(rng: &mut SmallRng, n: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count).map(|_| testgen::dd_dense(rng, n)).collect()
}

fn rhs(rng: &mut SmallRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-4.0..4.0)).collect()
}

/// Factor + solve one class at `width`, returning (factors, pivots, x).
fn run_simd(
    width: usize,
    n: usize,
    count: usize,
    data: &[f64],
    x0: &[f64],
) -> (Vec<f64>, Vec<usize>, Vec<f64>) {
    let mut d = data.to_vec();
    let mut piv = vec![0usize; n * count];
    let errs = getrf_interleaved_class_simd_width(width, n, count, &mut d, &mut piv);
    assert!(errs.iter().all(|e| e.is_none()), "dd batch must factorize");
    let mut x = x0.to_vec();
    let mut scratch = vec![0.0; n * count];
    lu_solve_interleaved_class_scratch_simd_width(width, n, count, &d, &piv, &mut x, &mut scratch);
    (d, piv, x)
}

#[test]
fn non_multiple_counts_match_scalar_kernel_bitwise_f64() {
    run_cases("simd_remainder_f64", 12, |rng, _case| {
        for width in [2usize, 4, 8] {
            let n = rng.gen_range(1usize..13);
            for count in [
                1,
                width - 1,
                width + 1,
                2 * width - 1,
                rng.gen_range(1usize..40),
            ] {
                let count = count.max(1);
                let blocks = gen_blocks(rng, n, count);
                let data = pack(&blocks, n);
                let x0 = rhs(rng, n * count);

                // scalar reference
                let mut ref_d = data.clone();
                let mut ref_piv = vec![0usize; n * count];
                let errs = getrf_interleaved_class(n, count, &mut ref_d, &mut ref_piv);
                assert!(errs.iter().all(|e| e.is_none()));
                let mut ref_x = x0.clone();
                let mut scratch = vec![0.0; n * count];
                lu_solve_interleaved_class_scratch(
                    n,
                    count,
                    &ref_d,
                    &ref_piv,
                    &mut ref_x,
                    &mut scratch,
                );

                let (d, piv, x) = run_simd(width, n, count, &data, &x0);
                assert_eq!(piv, ref_piv, "pivots n={n} count={count} w={width}");
                for (i, (a, b)) in d.iter().zip(&ref_d).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "factor elem {i} n={n} count={count} w={width}"
                    );
                }
                for (i, (a, b)) in x.iter().zip(&ref_x).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "solve elem {i} n={n} count={count} w={width}"
                    );
                }
            }
        }
    });
}

/// The trailing remainder slots of a class must carry the same bits as
/// the same blocks factorized in a class where they fill complete lane
/// groups — i.e. the full-width and remainder paths are the same
/// function of a slot's data.
#[test]
fn remainder_slots_are_identical_to_the_full_width_path() {
    run_cases("simd_remainder_vs_full_width", 10, |rng, _case| {
        for width in [2usize, 4, 8] {
            let n = rng.gen_range(2usize..10);
            // 2W+r slots: the final r ride the remainder path
            let r = rng.gen_range(1usize..width.max(2));
            let count = 2 * width + r;
            let blocks = gen_blocks(rng, n, count);
            let x0 = rhs(rng, n * count);

            let data = pack(&blocks, n);
            let (d, piv, x) = run_simd(width, n, count, &data, &x0);

            // same blocks, padded with clones of themselves so every
            // original slot sits inside a full lane group
            let mut padded = blocks.clone();
            while padded.len() % width != 0 {
                padded.push(blocks[padded.len() % blocks.len()].clone());
            }
            let pcount = padded.len();
            let pdata = pack(&padded, n);
            let mut px0 = vec![0.0; n * pcount];
            for s in 0..count {
                for i in 0..n {
                    px0[i * pcount + s] = x0[i * count + s];
                }
            }
            let (pd, ppiv, px) = run_simd(width, n, pcount, &pdata, &px0);

            for s in 0..count {
                for e in 0..n * n {
                    assert_eq!(
                        d[e * count + s].to_bits(),
                        pd[e * pcount + s].to_bits(),
                        "slot {s} elem {e} n={n} w={width}"
                    );
                }
                for k in 0..n {
                    assert_eq!(piv[k * count + s], ppiv[k * pcount + s]);
                }
                for i in 0..n {
                    assert_eq!(
                        x[i * count + s].to_bits(),
                        px[i * pcount + s].to_bits(),
                        "slot {s} row {i} n={n} w={width}"
                    );
                }
            }
        }
    });
}

#[test]
fn non_multiple_counts_match_scalar_kernel_bitwise_f32() {
    run_cases("simd_remainder_f32", 8, |rng, _case| {
        for width in [2usize, 4, 8] {
            let n = rng.gen_range(1usize..11);
            for count in [1, width - 1, width + 1, 2 * width - 1] {
                let count = count.max(1);
                let blocks: Vec<Vec<f32>> = (0..count)
                    .map(|_| {
                        testgen::dd_dense(rng, n)
                            .into_iter()
                            .map(|v| v as f32)
                            .collect()
                    })
                    .collect();
                let mut data = vec![0.0f32; n * n * count];
                for (s, b) in blocks.iter().enumerate() {
                    for e in 0..n * n {
                        data[e * count + s] = b[e];
                    }
                }
                let x0: Vec<f32> = (0..n * count)
                    .map(|_| rng.gen_range(-4.0..4.0) as f32)
                    .collect();

                let mut ref_d = data.clone();
                let mut ref_piv = vec![0usize; n * count];
                let errs = getrf_interleaved_class(n, count, &mut ref_d, &mut ref_piv);
                assert!(errs.iter().all(|e| e.is_none()));
                let mut ref_x = x0.clone();
                let mut scratch = vec![0.0f32; n * count];
                lu_solve_interleaved_class_scratch(
                    n,
                    count,
                    &ref_d,
                    &ref_piv,
                    &mut ref_x,
                    &mut scratch,
                );

                let mut d = data.clone();
                let mut piv = vec![0usize; n * count];
                let errs = getrf_interleaved_class_simd_width(width, n, count, &mut d, &mut piv);
                assert!(errs.iter().all(|e| e.is_none()));
                let mut x = x0.clone();
                lu_solve_interleaved_class_scratch_simd_width(
                    width,
                    n,
                    count,
                    &d,
                    &piv,
                    &mut x,
                    &mut scratch,
                );

                assert_eq!(piv, ref_piv, "n={n} count={count} w={width}");
                for (a, b) in d.iter().zip(&ref_d) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} count={count} w={width}");
                }
                for (a, b) in x.iter().zip(&ref_x) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} count={count} w={width}");
                }
            }
        }
    });
}
