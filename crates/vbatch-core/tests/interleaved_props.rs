//! Property tests of the interleaved (structure-of-arrays) batch
//! container: pack→unpack round-trip identity, slot-permutation
//! consistency, size-class partitioning, and bitwise agreement of the
//! class-wide sweep kernels with the per-block reference kernels.

use std::collections::BTreeMap;

use vbatch_core::interleaved::{getrf_interleaved_class, lu_solve_interleaved_class};
use vbatch_core::lu::implicit::getrf_implicit_inplace;
use vbatch_core::{lu_solve_inplace, InterleavedBatch, MatrixBatch, TrsvVariant};
use vbatch_rt::testgen::{self, RawBatch};
use vbatch_rt::{run_cases, SmallRng};

fn to_matrix_batch(raw: &RawBatch) -> MatrixBatch<f64> {
    let mut batch = MatrixBatch::zeros(&raw.sizes);
    for i in 0..raw.len() {
        batch.block_mut(i).copy_from_slice(&raw.blocks[i]);
    }
    batch
}

fn random_batch(rng: &mut SmallRng, max_n: usize, max_count: usize) -> MatrixBatch<f64> {
    to_matrix_batch(&testgen::dd_batch(rng, max_n, max_count))
}

#[test]
fn pack_unpack_roundtrip_is_identity() {
    run_cases("interleaved_pack_unpack_roundtrip", 48, |rng, _case| {
        let batch = random_batch(rng, 9, 40);
        let il = InterleavedBatch::pack(&batch);
        let back = il.unpack();
        assert_eq!(back.sizes(), batch.sizes());
        // bitwise identity: packing must not touch the values
        assert_eq!(back.as_slice(), batch.as_slice());
    });
}

#[test]
fn slot_permutation_is_a_consistent_bijection() {
    run_cases("interleaved_slot_permutation", 48, |rng, _case| {
        let batch = random_batch(rng, 7, 30);
        let il = InterleavedBatch::pack(&batch);
        let mut seen = vec![false; batch.len()];
        for blk in 0..batch.len() {
            let (c, slot) = il.slot_of_block(blk);
            let class = &il.classes()[c];
            // the mapping and its inverse agree
            assert_eq!(class.blocks()[slot], blk);
            assert!(!seen[blk], "block {blk} mapped twice");
            seen[blk] = true;
            // slot values match the source block element-for-element
            let n = class.n();
            assert_eq!(n, batch.size(blk));
            for j in 0..n {
                for i in 0..n {
                    assert_eq!(class.get(slot, i, j), batch.block(blk)[j * n + i]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "mapping must cover every block");
    });
}

#[test]
fn size_classes_partition_exactly_the_input_sizes() {
    run_cases("interleaved_size_class_partition", 48, |rng, _case| {
        let batch = random_batch(rng, 10, 40);
        let il = InterleavedBatch::pack(&batch);
        let mut histogram = BTreeMap::<usize, usize>::new();
        for &n in batch.sizes() {
            *histogram.entry(n).or_insert(0) += 1;
        }
        let classes = il.classes();
        assert_eq!(classes.len(), histogram.len());
        // ascending by order, one class per distinct order, populations
        // matching the size histogram exactly
        for (class, (&n, &count)) in classes.iter().zip(histogram.iter()) {
            assert_eq!(class.n(), n);
            assert_eq!(class.count(), count);
        }
        let total: usize = classes.iter().map(|c| c.count()).sum();
        assert_eq!(total, batch.len());
    });
}

#[test]
fn class_sweeps_match_per_block_kernels_bitwise() {
    run_cases("interleaved_sweeps_match_blocked", 32, |rng, _case| {
        let n = rng.gen_range(1usize..9);
        let count = rng.gen_range(1usize..24);
        let batch = random_batch_uniform(rng, n, count);
        let il = InterleavedBatch::pack(&batch);
        let mut class = il.classes()[0].clone();
        let mut piv = vec![0usize; n * count];
        let errs = getrf_interleaved_class(n, count, class.data_mut(), &mut piv);
        assert!(errs.iter().all(|e| e.is_none()), "regular batch");

        // right-hand sides, one lane per slot
        let mut lanes = vec![0.0f64; n * count];
        for v in lanes.iter_mut() {
            *v = rng.gen_range(-3.0..3.0);
        }
        let mut x = lanes.clone();
        lu_solve_interleaved_class(n, count, class.data(), &piv, &mut x);

        for slot in 0..count {
            let mut lu = batch.block(slot).to_vec();
            let perm = getrf_implicit_inplace(n, &mut lu).unwrap();
            // bitwise-identical factors
            let mut unpacked = vec![0.0; n * n];
            class.unpack_slot(slot, &mut unpacked);
            assert_eq!(unpacked, lu, "slot {slot} factors");
            // bitwise-identical pivot lanes
            let lane: Vec<usize> = (0..n).map(|k| piv[k * count + slot]).collect();
            assert_eq!(lane, perm.as_slice(), "slot {slot} pivots");
            // bitwise-identical solves
            let mut rhs: Vec<f64> = (0..n).map(|i| lanes[i * count + slot]).collect();
            lu_solve_inplace(TrsvVariant::Eager, n, &lu, perm.as_slice(), &mut rhs);
            for i in 0..n {
                assert_eq!(x[i * count + slot], rhs[i], "slot {slot} row {i}");
            }
        }
    });
}

fn random_batch_uniform(rng: &mut SmallRng, n: usize, count: usize) -> MatrixBatch<f64> {
    to_matrix_batch(&testgen::uniform_dd_batch(rng, n, count))
}
