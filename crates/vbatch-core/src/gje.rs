//! Gauss-Jordan elimination (GJE) with implicit partial pivoting,
//! producing the explicit inverse of a small block.
//!
//! This is the *inversion-based* block-Jacobi alternative the paper
//! discusses in §II-C (and the authors' earlier PMAM'17 work, ref.\[4\]):
//! invert every diagonal block once during setup (`2 n^3` flops instead
//! of `2/3 n^3`) so that every preconditioner application becomes a
//! dense matrix-vector product instead of two triangular solves. The
//! trade-off — more setup work and potentially worse numerical behaviour
//! versus a faster, GEMV-shaped application — is exactly the comparison
//! the factorization-based approach of the paper is measured against.

use crate::dense::DenseMat;
use crate::error::{check_finite, FactorError, FactorResult};
use crate::scalar::Scalar;

/// Invert the square matrix `a` by in-place Gauss-Jordan elimination with
/// partial (row) pivoting.
///
/// The implementation uses the classic in-place GJE that replaces the
/// pivot column by the corresponding column of the growing inverse, and
/// undoes the row pivoting by the matching *column* swaps at the end —
/// the same "combine the swaps into one permutation pass" idea the paper
/// applies to LU.
pub fn gje_invert<T: Scalar>(a: &DenseMat<T>) -> FactorResult<DenseMat<T>> {
    if !a.is_square() {
        return Err(FactorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    check_finite(n, a.as_slice())?;
    let mut m = a.clone();
    // pivot_row[k] = row chosen at step k (rows are swapped explicitly
    // here; the SIMT kernel variant uses the implicit form)
    let mut pivot_row = vec![0usize; n];

    for k in 0..n {
        // select pivot in column k among rows k..n
        let mut ipiv = k;
        let mut best = m[(k, k)].abs();
        for i in k + 1..n {
            let av = m[(i, k)].abs();
            if av > best {
                best = av;
                ipiv = i;
            }
        }
        if best == T::ZERO || !best.is_finite() {
            return Err(FactorError::SingularPivot { step: k });
        }
        pivot_row[k] = ipiv;
        m.swap_rows(k, ipiv);

        // Gauss-Jordan step: normalize the pivot row and eliminate the
        // pivot column everywhere else, replacing the pivot column by the
        // corresponding inverse column.
        let d = m[(k, k)];
        let dinv = T::ONE / d;
        for j in 0..n {
            if j != k {
                m[(k, j)] *= dinv;
            }
        }
        for i in 0..n {
            if i == k {
                continue;
            }
            let mik = m[(i, k)];
            if mik == T::ZERO {
                continue;
            }
            for j in 0..n {
                if j != k {
                    m[(i, j)] = (-mik).mul_add(m[(k, j)], m[(i, j)]);
                }
            }
            m[(i, k)] = -mik * dinv;
        }
        m[(k, k)] = dinv;
    }

    // undo row pivoting with column swaps, in reverse order
    for k in (0..n).rev() {
        if pivot_row[k] != k {
            m.swap_cols(k, pivot_row[k]);
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 271 + j * 89 + seed * 6131 + 11) % 4096;
            let v = h as f64 / 2048.0 - 1.0;
            if i == j {
                v + 0.09
            } else {
                v
            }
        })
    }

    #[test]
    fn inverse_of_identity() {
        let i = DenseMat::<f64>::identity(5);
        let inv = gje_invert(&i).unwrap();
        assert!(inv.sub(&i).norm_max() < 1e-15);
    }

    #[test]
    fn two_by_two_closed_form() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let inv = gje_invert(&a).unwrap();
        // A^{-1} = 1/det [d -b; -c a], det = -2
        assert!((inv[(0, 0)] + 2.0).abs() < 1e-14);
        assert!((inv[(0, 1)] - 1.0).abs() < 1e-14);
        assert!((inv[(1, 0)] - 1.5).abs() < 1e-14);
        assert!((inv[(1, 1)] + 0.5).abs() < 1e-14);
    }

    #[test]
    fn a_times_inverse_is_identity() {
        for n in [1usize, 2, 3, 6, 11, 20, 32] {
            let a = pseudo_random(n, n * 3 + 1);
            let inv = gje_invert(&a).unwrap();
            let prod = a.matmul(&inv);
            let resid = prod.sub(&DenseMat::identity(n)).norm_max().to_f64();
            assert!(resid < 1e-8, "n={n}: residual {resid}");
            let prod2 = inv.matmul(&a);
            let resid2 = prod2.sub(&DenseMat::identity(n)).norm_max().to_f64();
            assert!(resid2 < 1e-8, "n={n}: left residual {resid2}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMat::from_row_major(3, 3, &[0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let inv = gje_invert(&a).unwrap();
        let resid = a
            .matmul(&inv)
            .sub(&DenseMat::identity(3))
            .norm_max()
            .to_f64();
        assert!(resid < 1e-13);
    }

    #[test]
    fn matches_lu_inverse() {
        use crate::lu::{getrf, PivotStrategy};
        let a = pseudo_random(10, 77);
        let gje = gje_invert(&a).unwrap();
        let lu = getrf(&a, PivotStrategy::Implicit).unwrap().inverse();
        assert!(gje.sub(&lu).norm_max() < 1e-9);
    }

    #[test]
    fn singular_rejected() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(matches!(
            gje_invert(&a),
            Err(FactorError::SingularPivot { .. })
        ));
    }

    #[test]
    fn not_square_rejected() {
        let a = DenseMat::<f64>::zeros(2, 4);
        assert!(matches!(gje_invert(&a), Err(FactorError::NotSquare { .. })));
    }
}
