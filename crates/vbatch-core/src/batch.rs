//! Variable-size batch containers.
//!
//! A batch is a large collection (thousands to tens of thousands) of
//! independent small problems of *different* sizes — the scenario
//! block-Jacobi preconditioning produces when supervariable blocking
//! decides the diagonal block sizes. Storage follows the CSR idea: one
//! contiguous value array plus an offsets array, so the whole batch can
//! live in (simulated) device memory as a single allocation and block
//! `i` is the column-major `n_i x n_i` slice at `offsets[i]`.

use crate::dense::DenseMat;
use crate::scalar::Scalar;

/// A batch of square column-major matrices of (possibly) different order.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixBatch<T> {
    sizes: Vec<usize>,
    offsets: Vec<usize>, // len = sizes.len() + 1, offsets[i+1]-offsets[i] = n_i^2
    data: Vec<T>,
}

impl<T: Scalar> MatrixBatch<T> {
    /// Empty batch.
    pub fn new() -> Self {
        Self {
            sizes: Vec::new(),
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// Batch with the given block sizes, zero-initialized.
    ///
    /// # Panics
    /// Panics with a clear message when the element count (`Σ n_i²`)
    /// overflows `usize` — pathological size lists must not wrap around
    /// into a silently undersized allocation.
    pub fn zeros(sizes: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &n in sizes {
            let sq = n.checked_mul(n).unwrap_or_else(|| {
                panic!("MatrixBatch::zeros: block order {n} squared overflows usize")
            });
            total = total.checked_add(sq).unwrap_or_else(|| {
                panic!("MatrixBatch::zeros: total element count overflows usize (block order {n})")
            });
            offsets.push(total);
        }
        Self {
            sizes: sizes.to_vec(),
            offsets,
            data: vec![T::ZERO; total],
        }
    }

    /// Uniform batch: `count` blocks of order `n`, filled by `f(block, i, j)`.
    pub fn uniform_from_fn(
        count: usize,
        n: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut b = Self::zeros(&vec![n; count]);
        for blk in 0..count {
            let data = b.block_mut(blk);
            for j in 0..n {
                for i in 0..n {
                    data[j * n + i] = f(blk, i, j);
                }
            }
        }
        b
    }

    /// Reshape in place into a zeroed uniform batch of `count` blocks
    /// of order `n`, reusing the existing allocations when they are
    /// large enough — the recycling entry point of the batched-solve
    /// service's per-flush staging buffers.
    pub fn reset_uniform(&mut self, count: usize, n: usize) {
        let sq = n
            .checked_mul(n)
            .unwrap_or_else(|| panic!("reset_uniform: block order {n} squared overflows usize"));
        let total = sq.checked_mul(count).unwrap_or_else(|| {
            panic!("reset_uniform: total element count overflows usize ({count} blocks of {n})")
        });
        self.sizes.clear();
        self.sizes.resize(count, n);
        self.offsets.clear();
        self.offsets.extend((0..=count).map(|i| i * sq));
        self.data.clear();
        self.data.resize(total, T::ZERO);
    }

    /// Build from a slice of dense matrices (all must be square).
    pub fn from_matrices(mats: &[DenseMat<T>]) -> Self {
        let sizes: Vec<usize> = mats
            .iter()
            .map(|m| {
                assert!(m.is_square(), "batch blocks must be square");
                m.rows()
            })
            .collect();
        let mut b = Self::zeros(&sizes);
        for (i, m) in mats.iter().enumerate() {
            b.block_mut(i).copy_from_slice(m.as_slice());
        }
        b
    }

    /// Append one block, copying its column-major data.
    pub fn push(&mut self, m: &DenseMat<T>) {
        assert!(m.is_square());
        self.sizes.push(m.rows());
        self.data.extend_from_slice(m.as_slice());
        self.offsets.push(self.data.len());
    }

    /// Number of blocks in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when the batch holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Order of block `i`.
    #[inline]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// All block orders.
    #[inline]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Offsets into the value array (CSR-style, length `len() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Largest block order in the batch (0 for an empty batch).
    pub fn max_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total number of stored elements.
    #[inline]
    pub fn total_elements(&self) -> usize {
        self.data.len()
    }

    /// The whole value array (device-memory view for the simulator).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable value array.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Column-major data of block `i`.
    #[inline]
    pub fn block(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Mutable column-major data of block `i`.
    #[inline]
    pub fn block_mut(&mut self, i: usize) -> &mut [T] {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        &mut self.data[s..e]
    }

    /// Copy block `i` out as a [`DenseMat`].
    pub fn block_as_mat(&self, i: usize) -> DenseMat<T> {
        DenseMat::from_col_major(self.sizes[i], self.sizes[i], self.block(i))
    }

    /// Split the value array into per-block mutable slices (disjoint by
    /// construction) so the batch can be processed in parallel.
    pub fn blocks_mut(&mut self) -> Vec<(usize, &mut [T])> {
        let mut out = Vec::with_capacity(self.sizes.len());
        let mut rest: &mut [T] = &mut self.data;
        for i in 0..self.sizes.len() {
            let len = self.offsets[i + 1] - self.offsets[i];
            let (head, tail) = rest.split_at_mut(len);
            out.push((self.sizes[i], head));
            rest = tail;
        }
        out
    }

    /// Immutable per-block slices.
    pub fn blocks(&self) -> Vec<(usize, &[T])> {
        (0..self.len())
            .map(|i| (self.sizes[i], self.block(i)))
            .collect()
    }

    /// Total useful flops of an LU factorization of the whole batch,
    /// using the paper's `2/3 n^3` leading term per block.
    pub fn getrf_flops(&self) -> f64 {
        self.sizes
            .iter()
            .map(|&n| 2.0 / 3.0 * (n as f64).powi(3))
            .sum()
    }

    /// Total useful flops of one pair of triangular solves per block
    /// (`2 n^2` per block, §II-B).
    pub fn trsv_flops(&self) -> f64 {
        self.sizes.iter().map(|&n| 2.0 * (n as f64).powi(2)).sum()
    }
}

impl<T: Scalar> Default for MatrixBatch<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A batch of vectors with the same variable sizes as a matrix batch
/// (the right-hand sides / solutions of the block systems).
#[derive(Clone, Debug, PartialEq)]
pub struct VectorBatch<T> {
    sizes: Vec<usize>,
    offsets: Vec<usize>,
    data: Vec<T>,
}

impl<T: Scalar> VectorBatch<T> {
    /// Zero-initialized batch with the given segment sizes.
    pub fn zeros(sizes: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0);
        let mut total = 0;
        for &n in sizes {
            total += n;
            offsets.push(total);
        }
        Self {
            sizes: sizes.to_vec(),
            offsets,
            data: vec![T::ZERO; total],
        }
    }

    /// Build by chopping a flat vector into segments matching `sizes`.
    pub fn from_flat(sizes: &[usize], flat: &[T]) -> Self {
        let mut v = Self::zeros(sizes);
        assert_eq!(flat.len(), v.data.len(), "flat vector length mismatch");
        v.data.copy_from_slice(flat);
        v
    }

    /// Sizes matching a [`MatrixBatch`].
    pub fn zeros_like<M: Scalar>(mats: &MatrixBatch<M>) -> Self {
        Self::zeros(mats.sizes())
    }

    /// Reshape in place into a zeroed uniform batch of `count` segments
    /// of length `n`, reusing the existing allocations when they are
    /// large enough (see [`MatrixBatch::reset_uniform`]).
    pub fn reset_uniform(&mut self, count: usize, n: usize) {
        self.sizes.clear();
        self.sizes.resize(count, n);
        self.offsets.clear();
        self.offsets.extend((0..=count).map(|i| i * n));
        self.data.clear();
        self.data.resize(count * n, T::ZERO);
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when there are no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Length of segment `i`.
    #[inline]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Segment sizes.
    #[inline]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Flat storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Segment `i`.
    #[inline]
    pub fn seg(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Mutable segment `i`.
    #[inline]
    pub fn seg_mut(&mut self, i: usize) -> &mut [T] {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        &mut self.data[s..e]
    }

    /// Disjoint mutable segments for parallel processing.
    pub fn segs_mut(&mut self) -> Vec<&mut [T]> {
        let mut out = Vec::with_capacity(self.sizes.len());
        let mut rest: &mut [T] = &mut self.data;
        for i in 0..self.sizes.len() {
            let (head, tail) = rest.split_at_mut(self.sizes[i]);
            out.push(head);
            rest = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_layout() {
        let b = MatrixBatch::<f64>::zeros(&[2, 3, 1]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.offsets(), &[0, 4, 13, 14]);
        assert_eq!(b.total_elements(), 14);
        assert_eq!(b.max_size(), 3);
        assert_eq!(b.size(1), 3);
    }

    #[test]
    #[should_panic(expected = "squared overflows usize")]
    fn zeros_rejects_order_whose_square_overflows() {
        let _ = MatrixBatch::<f64>::zeros(&[usize::MAX]);
    }

    #[test]
    #[should_panic(expected = "total element count overflows usize")]
    fn zeros_rejects_total_overflow() {
        // each n^2 fits in usize, but their sum wraps
        let n = 1usize << (usize::BITS / 2 - 1);
        let _ = MatrixBatch::<f64>::zeros(&[n, n, n, n, n]);
    }

    #[test]
    fn push_and_read_back() {
        let mut b = MatrixBatch::<f64>::new();
        assert!(b.is_empty());
        let m1 = DenseMat::from_row_major(2, 2, &[1., 2., 3., 4.]);
        let m2 = DenseMat::from_row_major(3, 3, &[1., 0., 0., 0., 2., 0., 0., 0., 3.]);
        b.push(&m1);
        b.push(&m2);
        assert_eq!(b.block_as_mat(0), m1);
        assert_eq!(b.block_as_mat(1), m2);
    }

    #[test]
    fn from_matrices_roundtrip() {
        let mats = vec![
            DenseMat::from_row_major(1, 1, &[7.0]),
            DenseMat::from_row_major(2, 2, &[1., 2., 3., 4.]),
        ];
        let b = MatrixBatch::from_matrices(&mats);
        for (i, m) in mats.iter().enumerate() {
            assert_eq!(&b.block_as_mat(i), m);
        }
    }

    #[test]
    fn blocks_mut_are_disjoint_and_complete() {
        let mut b = MatrixBatch::<f64>::zeros(&[2, 1, 3]);
        {
            let blocks = b.blocks_mut();
            assert_eq!(blocks.len(), 3);
            assert_eq!(blocks[0].1.len(), 4);
            assert_eq!(blocks[1].1.len(), 1);
            assert_eq!(blocks[2].1.len(), 9);
            for (k, (_, s)) in blocks.into_iter().enumerate() {
                s.iter_mut().for_each(|v| *v = k as f64 + 1.0);
            }
        }
        assert!(b.block(0).iter().all(|&v| v == 1.0));
        assert!(b.block(1).iter().all(|&v| v == 2.0));
        assert!(b.block(2).iter().all(|&v| v == 3.0));
    }

    #[test]
    fn flop_counts() {
        let b = MatrixBatch::<f64>::zeros(&[4, 4]);
        assert!((b.getrf_flops() - 2.0 * 2.0 / 3.0 * 64.0).abs() < 1e-12);
        assert!((b.trsv_flops() - 2.0 * 2.0 * 16.0).abs() < 1e-12);
    }

    #[test]
    fn vector_batch_segments() {
        let mut v = VectorBatch::<f64>::zeros(&[2, 3]);
        v.seg_mut(1).copy_from_slice(&[1., 2., 3.]);
        assert_eq!(v.seg(0), &[0., 0.]);
        assert_eq!(v.seg(1), &[1., 2., 3.]);
        assert_eq!(v.as_slice(), &[0., 0., 1., 2., 3.]);
        let segs = v.segs_mut();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1][2], 3.0);
    }

    #[test]
    fn vector_batch_from_flat() {
        let v = VectorBatch::from_flat(&[1, 2], &[9.0, 8.0, 7.0]);
        assert_eq!(v.seg(0), &[9.0]);
        assert_eq!(v.seg(1), &[8.0, 7.0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn reset_uniform_reuses_storage_and_zeroes() {
        let mut b = MatrixBatch::<f64>::uniform_from_fn(4, 3, |_, _, _| 5.0);
        let cap = b.data.capacity();
        b.reset_uniform(2, 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.sizes(), &[3, 3]);
        assert_eq!(b.offsets(), &[0, 9, 18]);
        assert!(b.as_slice().iter().all(|&v| v == 0.0), "stale data cleared");
        assert_eq!(b.data.capacity(), cap, "shrinking keeps the allocation");
        // growing within capacity also keeps it
        b.reset_uniform(4, 3);
        assert_eq!(b.data.capacity(), cap);
        assert_eq!(b.total_elements(), 36);

        let mut v = VectorBatch::<f64>::from_flat(&[2, 2], &[1., 2., 3., 4.]);
        let vcap = v.data.capacity();
        v.reset_uniform(1, 3);
        assert_eq!(v.sizes(), &[3]);
        assert_eq!(v.as_slice(), &[0., 0., 0.]);
        assert!(v.data.capacity() >= vcap.min(3));
    }

    #[test]
    fn uniform_from_fn_builds_expected_blocks() {
        let b =
            MatrixBatch::<f64>::uniform_from_fn(3, 2, |blk, i, j| (blk * 100 + i * 10 + j) as f64);
        assert_eq!(b.block_as_mat(2)[(1, 0)], 210.0);
        assert_eq!(b.block_as_mat(0)[(0, 1)], 1.0);
    }
}
