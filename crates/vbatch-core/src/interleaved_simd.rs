//! Explicit wide-lane kernels over the interleaved (SoA) layout.
//!
//! Same algorithms as [`crate::interleaved`] — branchless implicit-pivot
//! GETRF and permuted eager TRSV over a size class — but the slot loop
//! is re-blocked into `W`-wide [`vbatch_rt::simd::Chunk`] groups that
//! run through the *entire* factorization before the next group starts:
//!
//! ```text
//! scalar class kernel            SIMD class kernel (W = 4)
//! step 0: slots 0 1 2 ... c-1    slots 0..4: steps 0 1 ... n-1   <- chunk
//! step 1: slots 0 1 2 ... c-1    slots 4..8: steps 0 1 ... n-1   <- chunk
//! ...                            ... remainder slots at W = 1
//! ```
//!
//! Two consequences:
//!
//! * **bitwise identity** — slots never interact, every lane op is the
//!   exact scalar IEEE op (true divide, single-rounding `mul_add`,
//!   compare-and-blend selects), and per slot the operation order is
//!   byte-for-byte the scalar kernel's; so the factors, pivot lanes,
//!   error maps and solves agree bitwise with
//!   [`crate::interleaved::getrf_interleaved_class`] /
//!   [`crate::interleaved::lu_solve_interleaved_class_scratch`] at
//!   *every* width, including the W = 1 remainder path;
//! * **locality** — one chunk's working set is `n*n*W` elements
//!   (16 KiB at n = 16, W = 8, f64), so the whole elimination runs out
//!   of L1 instead of re-streaming the full class slab once per step.
//!
//! The row-pivoted flags are kept as `0.0`/`1.0` lanes of `T` (not the
//! `usize` step lanes the scalar kernel compares against) so the hot
//! selects compile to vector compare+blend instead of scalar control
//! flow.
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::error::FactorError;
use crate::scalar::Scalar;
use vbatch_rt::simd::{lane_width, Chunk, MAX_LANE_WIDTH};

const UNPIVOTED: usize = usize::MAX;

/// Widths the dispatcher instantiates; 1 is the scalar remainder path.
pub const SUPPORTED_WIDTHS: [usize; 4] = [1, 2, 4, 8];

#[inline]
fn assert_width(width: usize) {
    assert!(
        SUPPORTED_WIDTHS.contains(&width),
        "unsupported lane width {width} (supported: {SUPPORTED_WIDTHS:?})"
    );
}

/// [`getrf_interleaved_class_simd_width`] at the host-selected lane
/// width (see [`vbatch_rt::simd::lane_width`]).
pub fn getrf_interleaved_class_simd<T: Scalar>(
    n: usize,
    count: usize,
    data: &mut [T],
    row_of_step: &mut [usize],
) -> Vec<Option<FactorError>> {
    getrf_interleaved_class_simd_width(lane_width(T::BYTES), n, count, data, row_of_step)
}

/// Lane-wide implicit-pivot GETRF over an interleaved class at an
/// explicit lane width (1, 2, 4 or 8).
///
/// Contract: bitwise-identical `data` / `row_of_step` / error map to
/// [`crate::interleaved::getrf_interleaved_class`] for every slot, at
/// every width. Slots beyond the last full `width`-chunk run through
/// the same code at W = 1 (the scalar remainder path).
// Setup-time path: scratch allocation is fine here (the zero-alloc
// contract covers the solve below, not factorization).
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
pub fn getrf_interleaved_class_simd_width<T: Scalar>(
    width: usize,
    n: usize,
    count: usize,
    data: &mut [T],
    row_of_step: &mut [usize],
) -> Vec<Option<FactorError>> {
    assert_width(width);
    assert_eq!(data.len(), n * n * count);
    assert_eq!(row_of_step.len(), n * count);
    let mut failed: Vec<Option<FactorError>> = vec![None; count];
    if count == 0 {
        return failed;
    }
    let w = width.min(MAX_LANE_WIDTH);
    // chunk-local scratch, reused across chunks: step lanes, pivoted
    // flags (as T so selects vectorize), row-swap column buffer, and the
    // shared unpivoted-row list driving the uniform-pivot fast path
    let mut step = vec![UNPIVOTED; n * w];
    let mut pflag = vec![T::ZERO; n * w];
    let mut colbuf = vec![T::ZERO; n * w];
    let mut unpiv = vec![0usize; n];
    // packed chunk workspace: the class slab strides lane groups
    // `count` elements apart, which degenerates to a handful of L1
    // sets for large batches; the elimination runs on this contiguous
    // n*n*W copy instead (pack/unpack is an element-exact copy, so
    // bitwise parity is unaffected)
    let mut ws = vec![T::ZERO; (n + 1) * n * w];

    let full = count / w * w;
    let mut s0 = 0;
    macro_rules! run_full {
        ($w:literal) => {
            while s0 < full {
                getrf_chunk::<T, $w>(
                    n,
                    count,
                    s0,
                    data,
                    row_of_step,
                    &mut step[..n * $w],
                    &mut pflag[..n * $w],
                    &mut colbuf[..n * $w],
                    &mut unpiv,
                    &mut ws[..(n + 1) * n * $w],
                    &mut failed[s0..s0 + $w],
                );
                s0 += $w;
            }
        };
    }
    match w {
        8 => run_full!(8),
        4 => run_full!(4),
        2 => run_full!(2),
        _ => {}
    }
    // scalar remainder path (the whole class when width == 1)
    while s0 < count {
        getrf_chunk::<T, 1>(
            n,
            count,
            s0,
            data,
            row_of_step,
            &mut step[..n],
            &mut pflag[..n],
            &mut colbuf[..n],
            &mut unpiv,
            &mut ws[..(n + 1) * n],
            &mut failed[s0..s0 + 1],
        );
        s0 += 1;
    }
    failed
}

/// Factorize the `W` slots `[s0, s0+W)` of the class in place.
///
/// Per slot this performs exactly the scalar class kernel's operation
/// sequence (finite pre-scan, n steps of pivot-select / SCAL / GER,
/// combined row swap, pivot lanes, failed-slot sanitation).
///
/// Two formulations of each step coexist, chosen at runtime:
///
/// * **uniform fast path** — while every live lane keeps electing the
///   *same* pivot row (always true for diagonally-dominant batches),
///   the chunk shares one unpivoted-row list: pivot selection is a
///   `W`-wide compare sweep, and SCAL/GER simply *skip* the pivoted
///   rows instead of computing-then-blending them. Skipping a row is
///   bit-identical to a blend that keeps its old value, so this is not
///   an approximation — it removes the ~1.5x wasted lane arithmetic
///   and the per-element flag loads of the blended form.
/// * **blended fallback** — on the first step where live lanes
///   disagree (or a lane has a non-diagonal pivot history), the chunk
///   permanently falls back to per-lane bookkeeping with
///   compare-and-blend selects, which handles any divergence.
///
/// Both forms execute the exact scalar IEEE op sequence per lane, so
/// factors/pivots/errors stay bitwise identical to the scalar kernel
/// whichever path runs. Lanes dead from a fault may see garbage
/// arithmetic in the fast path (the scalar kernel freezes them with
/// `x/1` no-ops instead); their bits are rewritten by the final
/// identity sanitation either way, so outputs agree.
///
/// The elimination itself runs on `ws`, a packed contiguous copy of
/// the chunk (`n*n*W` elements): in the class slab the chunk's lane
/// groups sit `count` elements apart, and for large batches that
/// stride folds the whole working set onto a few L1 cache sets —
/// every GER re-sweep then thrashes. The packed copy is dense
/// (16 KiB at n = 16, W = 8, f64), L1-resident, and unit-stride for
/// the inner loops; pack and unpack are element-exact copies, so the
/// slab bits are identical to factorizing in place.
#[allow(clippy::too_many_arguments)]
fn getrf_chunk<T: Scalar, const W: usize>(
    n: usize,
    count: usize,
    s0: usize,
    data: &mut [T],
    row_of_step: &mut [usize],
    step: &mut [usize],
    pflag: &mut [T],
    colbuf: &mut [T],
    unpiv: &mut [usize],
    ws: &mut [T],
    failed: &mut [Option<FactorError>],
) {
    debug_assert_eq!(step.len(), n * W);
    debug_assert_eq!(pflag.len(), n * W);
    debug_assert_eq!(unpiv.len(), n);
    debug_assert_eq!(ws.len(), (n + 1) * n * W);
    debug_assert_eq!(failed.len(), W);
    step.fill(UNPIVOTED);
    pflag.fill(T::ZERO);
    let mut alive = [true; W];

    // --- pack the chunk into the contiguous workspace -------------------
    // columns are padded by one extra lane group: at n = 16, W = 8, f64
    // an unpadded column stride is exactly 1 KiB, so updated columns
    // alias the multiplier column mod 4 KiB and every GER load falsely
    // depends on the preceding store (4K aliasing); the pad breaks the
    // power-of-two stride
    let npad = n + 1;
    // while packing, early-touch the NEXT chunk's lane group for each
    // element position: the slab stride between positions is
    // `count * 8` bytes (tens of KiB), one cache line per position, a
    // pattern the hardware prefetcher cannot track. Touching the next
    // group now lets its DRAM misses overlap with this chunk's whole
    // factorization instead of stalling the next pack. black_box keeps
    // the dead load alive; the value itself is never used.
    let touch_next = s0 + W < count;
    // the finite pre-scan rides the pack loads: x - x is +0.0 for every
    // finite x and NaN for Inf/NaN, and NaN poisons the running sum;
    // the scalar per-element diagnosis (same column-major-first order
    // as the scalar kernel) reruns only when a lane actually flags, so
    // the probe's own accumulation order does not matter.
    let mut probe = Chunk::<T, W>::zero();
    for j in 0..n {
        for i in 0..n {
            let base = (j * n + i) * count + s0;
            let wbase = (j * npad + i) * W;
            let v = Chunk::<T, W>::load(&data[base..base + W]);
            v.store(&mut ws[wbase..wbase + W]);
            probe = probe.add(v.sub(v));
            if touch_next {
                std::hint::black_box(data[base + W]);
            }
        }
    }
    if probe.ne_zero().any() {
        for col in 0..n {
            for row in 0..n {
                let lane = &ws[(col * npad + row) * W..(col * npad + row + 1) * W];
                for w in 0..W {
                    if alive[w] && !lane[w].is_finite() {
                        failed[w] = Some(FactorError::NonFinite { row, col });
                        alive[w] = false;
                    }
                }
            }
        }
    }

    // shared unpivoted-row list for the uniform fast path, ascending so
    // the W-wide sweep visits candidates in the scalar kernel's order
    for (r, u) in unpiv.iter_mut().enumerate() {
        *u = r;
    }
    let mut nun = n;
    let mut uniform = true;
    // true while every pivot so far was the diagonal row (rpiv == k);
    // then the unpivoted set is the contiguous tail k..n and the hot
    // loops can run over plain subslices with no index indirection
    let mut inorder = true;

    for k in 0..n {
        if !alive.contains(&true) {
            // every lane dead: the scalar kernel's remaining steps are
            // all no-ops on dead lanes (divide by 1, zero pivot value)
            break;
        }

        // --- implicit pivot selection per lane over unpivoted rows ----
        let mut ipiv = [UNPIVOTED; W];
        let mut best = [T::ZERO; W];
        let mut rpiv = UNPIVOTED; // the shared pivot row, if uniform
        if uniform {
            // Every live lane shares the same unpivoted set, so select
            // all W pivots with wide compares over the shared list.
            // This reproduces the scalar rule exactly: the first
            // unpivoted row is adopted unconditionally (even a NaN
            // |value|), later rows only win a strict IEEE `>` — and
            // `gt` is false on NaN, like the scalar compare.
            let mut bestv;
            let mut rowv;
            if inorder {
                // candidates are the contiguous rows k..n of column k
                let col = &ws[(k * npad + k) * W..(k * npad + n) * W];
                let mut it = col.chunks_exact(W);
                bestv = Chunk::<T, W>::load(it.next().unwrap()).abs();
                rowv = Chunk::<T, W>::splat(T::from_f64(k as f64));
                let onev = Chunk::<T, W>::splat(T::ONE);
                let mut rcand = rowv;
                for c in it {
                    rcand = rcand.add(onev);
                    let av = Chunk::<T, W>::load(c).abs();
                    let take = av.gt(bestv);
                    bestv = Chunk::select(take, av, bestv);
                    rowv = Chunk::select(take, rcand, rowv);
                }
            } else {
                let r0 = unpiv[0];
                let base0 = (k * npad + r0) * W;
                bestv = Chunk::<T, W>::load(&ws[base0..base0 + W]).abs();
                rowv = Chunk::<T, W>::splat(T::from_f64(r0 as f64));
                for &r in &unpiv[1..nun] {
                    let base = (k * npad + r) * W;
                    let av = Chunk::<T, W>::load(&ws[base..base + W]).abs();
                    let take = av.gt(bestv);
                    bestv = Chunk::select(take, av, bestv);
                    rowv = Chunk::select(take, Chunk::splat(T::from_f64(r as f64)), rowv);
                }
            }
            // happy path: one lane-0 extract plus three wide checks
            // replace the per-lane scalar unpacking of rowv/bestv. The
            // checks are exact: row indices are small exact integers so
            // sub/ne_zero detects any disagreement, and x - x is
            // nonzero (NaN) exactly for non-finite x. Any anomaly --
            // a dead lane, disagreeing pivots, a zero or non-finite
            // best -- falls through to the per-lane code below, which
            // is the authoritative scalar-order logic.
            let r0 = rowv.0[0].to_f64() as usize;
            let happy = alive == [true; W]
                && !rowv.sub(Chunk::splat(rowv.0[0])).ne_zero().any()
                && !bestv.eq_zero().any()
                && !bestv.sub(bestv).ne_zero().any();
            if happy {
                rpiv = r0;
                for w in 0..W {
                    ipiv[w] = r0;
                    step[r0 * W + w] = k;
                    pflag[r0 * W + w] = T::ONE;
                }
            } else {
                for w in 0..W {
                    if !alive[w] {
                        continue;
                    }
                    ipiv[w] = rowv.0[w].to_f64() as usize;
                    best[w] = bestv.0[w];
                    if rpiv == UNPIVOTED {
                        rpiv = ipiv[w];
                    } else if ipiv[w] != rpiv {
                        uniform = false; // lanes disagree: blended now on
                    }
                }
                for w in 0..W {
                    if !alive[w] {
                        continue;
                    }
                    if ipiv[w] == UNPIVOTED || best[w] == T::ZERO || !best[w].is_finite() {
                        failed[w] = Some(FactorError::SingularPivot { step: k });
                        alive[w] = false;
                    } else {
                        step[ipiv[w] * W + w] = k;
                        pflag[ipiv[w] * W + w] = T::ONE;
                    }
                }
            }
        } else {
            for r in 0..n {
                let base = (k * npad + r) * W;
                let lane = &ws[base..base + W];
                let steps = &step[r * W..r * W + W];
                for w in 0..W {
                    if !alive[w] || steps[w] != UNPIVOTED {
                        continue;
                    }
                    let av = lane[w].abs();
                    if ipiv[w] == UNPIVOTED || av > best[w] {
                        best[w] = av;
                        ipiv[w] = r;
                    }
                }
            }
            for w in 0..W {
                if !alive[w] {
                    continue;
                }
                if ipiv[w] == UNPIVOTED || best[w] == T::ZERO || !best[w].is_finite() {
                    failed[w] = Some(FactorError::SingularPivot { step: k });
                    alive[w] = false;
                } else {
                    step[ipiv[w] * W + w] = k;
                    pflag[ipiv[w] * W + w] = T::ONE;
                }
            }
        }

        if uniform {
            if inorder {
                // the list is implicitly the contiguous tail k..n; it
                // only needs materializing when the pivot first leaves
                // the diagonal
                if rpiv != k && rpiv != UNPIVOTED {
                    nun = 0;
                    for r in k..n {
                        if r != rpiv {
                            unpiv[nun] = r;
                            nun += 1;
                        }
                    }
                    inorder = false;
                }
            } else {
                // retire the shared pivot row (keeps the list ascending)
                if let Some(pos) = unpiv[..nun].iter().position(|&r| r == rpiv) {
                    unpiv.copy_within(pos + 1..nun, pos);
                    nun -= 1;
                }
            }
            if !alive.contains(&true) {
                continue;
            }

            if inorder {
                // --- SCAL/GER, in-order fast path ---------------------
                // the unpivoted rows are the contiguous tail k+1..n, so
                // both sweeps run over plain subslices: no row-index
                // indirection and bounds checks the optimizer can hoist
                let dbase = (k * npad + k) * W;
                let dv = Chunk::<T, W>::load(&ws[dbase..dbase + W]);
                for c in ws[(k * npad + k + 1) * W..(k * npad + n) * W].chunks_exact_mut(W) {
                    Chunk::<T, W>::load(c).div(dv).store(c);
                }

                // split the slab after column k: the multiplier rows
                // k+1..n of column k end the low half, the updated
                // columns k+1..n are the high half
                let (lo, hi) = ws.split_at_mut((k + 1) * npad * W);
                let mults = &lo[(k * npad + k + 1) * W..(k * npad + n) * W];
                for colj in hi.chunks_exact_mut(npad * W) {
                    let pvv = Chunk::<T, W>::load(&colj[k * W..k * W + W]);
                    let pz = pvv.eq_zero();
                    let upd = &mut colj[(k + 1) * W..n * W];
                    if !pz.any() {
                        for (m, u) in mults.chunks_exact(W).zip(upd.chunks_exact_mut(W)) {
                            let mult = Chunk::<T, W>::load(m);
                            let old = Chunk::<T, W>::load(u);
                            mult.neg().mul_add(pvv, old).store(u);
                        }
                    } else {
                        // a lane's pivot value is exactly 0: that lane
                        // must keep its old bits (the scalar zero-column
                        // skip — 0*mult+old is NOT bit-exact for
                        // -0.0/Inf lanes)
                        for (m, u) in mults.chunks_exact(W).zip(upd.chunks_exact_mut(W)) {
                            let mult = Chunk::<T, W>::load(m);
                            let old = Chunk::<T, W>::load(u);
                            let new = mult.neg().mul_add(pvv, old);
                            Chunk::select(pz, old, new).store(u);
                        }
                    }
                }
                continue;
            }

            // --- SCAL, fast path: divide only the unpivoted rows ------
            // (skipping a pivoted row == the blend that keeps its old
            // bits; dead lanes divide by garbage instead of the scalar
            // kernel's 1, and are rewritten by the final sanitation)
            let dbase = (k * npad + rpiv) * W;
            let dv = Chunk::<T, W>::load(&ws[dbase..dbase + W]);
            for &r in &unpiv[..nun] {
                let base = (k * npad + r) * W;
                let old = Chunk::<T, W>::load(&ws[base..base + W]);
                old.div(dv).store(&mut ws[base..base + W]);
            }

            // --- GER, fast path: update only the unpivoted rows -------
            for j in k + 1..n {
                let pbase = (j * npad + rpiv) * W;
                let pvv = Chunk::<T, W>::load(&ws[pbase..pbase + W]);
                let pz = pvv.eq_zero();
                if !pz.any() {
                    for &r in &unpiv[..nun] {
                        let mbase = (k * npad + r) * W;
                        let mult = Chunk::<T, W>::load(&ws[mbase..mbase + W]);
                        let base = (j * npad + r) * W;
                        let old = Chunk::<T, W>::load(&ws[base..base + W]);
                        mult.neg().mul_add(pvv, old).store(&mut ws[base..base + W]);
                    }
                } else {
                    // a lane's pivot value is exactly 0: that lane must
                    // keep its old bits (the scalar zero-column skip —
                    // 0*mult+old is NOT bit-exact for -0.0/Inf lanes)
                    for &r in &unpiv[..nun] {
                        let mbase = (k * npad + r) * W;
                        let mult = Chunk::<T, W>::load(&ws[mbase..mbase + W]);
                        let base = (j * npad + r) * W;
                        let old = Chunk::<T, W>::load(&ws[base..base + W]);
                        let new = mult.neg().mul_add(pvv, old);
                        Chunk::select(pz, old, new).store(&mut ws[base..base + W]);
                    }
                }
            }
            continue;
        }

        // --- SCAL, blended fallback: column k of the unpivoted rows ---
        // failed lanes keep d = 1 (x/1 is bit-exact), like the scalar
        // kernel; the select keeps already-pivoted rows' old bits
        let mut d = [T::ONE; W];
        for w in 0..W {
            if alive[w] {
                d[w] = ws[(k * npad + ipiv[w]) * W + w];
            }
        }
        let dv = Chunk::<T, W>::from(d);
        for r in 0..n {
            let base = (k * npad + r) * W;
            let old = Chunk::<T, W>::load(&ws[base..base + W]);
            let scaled = old.div(dv);
            let pivoted = Chunk::<T, W>::load(&pflag[r * W..r * W + W]).ne_zero();
            Chunk::select(pivoted, old, scaled).store(&mut ws[base..base + W]);
        }

        // --- GER, blended fallback: trailing update -------------------
        for j in k + 1..n {
            let mut pv = [T::ZERO; W];
            for w in 0..W {
                if alive[w] {
                    pv[w] = ws[(j * npad + ipiv[w]) * W + w];
                }
            }
            let pvv = Chunk::<T, W>::from(pv);
            let pv_zero = pvv.eq_zero();
            for r in 0..n {
                let mult = {
                    let base = (k * npad + r) * W;
                    Chunk::<T, W>::load(&ws[base..base + W])
                };
                let base = (j * npad + r) * W;
                let old = Chunk::<T, W>::load(&ws[base..base + W]);
                let new = mult.neg().mul_add(pvv, old);
                let skip = pv_zero.or(Chunk::<T, W>::load(&pflag[r * W..r * W + W]).ne_zero());
                Chunk::select(skip, old, new).store(&mut ws[base..base + W]);
            }
        }
    }

    // --- combined row swap: row r moves to position step[r] per lane --
    // (skipped outright when every surviving lane carries the identity
    // permutation — the common diagonally-dominant case)
    let identity = (0..n).all(|r| (0..W).all(|w| failed[w].is_some() || step[r * W + w] == r));
    if !identity {
        for j in 0..n {
            let col = &mut ws[j * npad * W..(j * npad + n) * W];
            colbuf.copy_from_slice(col);
            for r in 0..n {
                for w in 0..W {
                    if failed[w].is_none() {
                        col[step[r * W + w] * W + w] = colbuf[r * W + w];
                    }
                }
            }
        }
    }

    // --- pivot lanes ---------------------------------------------------
    for k in 0..n {
        for w in 0..W {
            row_of_step[k * count + s0 + w] = k; // identity default
        }
    }
    for r in 0..n {
        for w in 0..W {
            if failed[w].is_none() {
                row_of_step[step[r * W + w] * count + s0 + w] = r;
            }
        }
    }

    // --- sanitize failed lanes to the identity -------------------------
    for w in 0..W {
        if failed[w].is_some() {
            for j in 0..n {
                for i in 0..n {
                    ws[(j * npad + i) * W + w] = if i == j { T::ONE } else { T::ZERO };
                }
            }
        }
    }

    // --- unpack the workspace back into the class slab -----------------
    for j in 0..n {
        for i in 0..n {
            let base = (j * n + i) * count + s0;
            let wbase = (j * npad + i) * W;
            data[base..base + W].copy_from_slice(&ws[wbase..wbase + W]);
        }
    }
}

/// [`lu_solve_interleaved_class_scratch_simd_width`] at the
/// host-selected lane width.
pub fn lu_solve_interleaved_class_scratch_simd<T: Scalar>(
    n: usize,
    count: usize,
    data: &[T],
    row_of_step: &[usize],
    x: &mut [T],
    scratch: &mut [T],
) {
    lu_solve_interleaved_class_scratch_simd_width(
        lane_width(T::BYTES),
        n,
        count,
        data,
        row_of_step,
        x,
        scratch,
    );
}

/// Lane-wide permuted eager TRSV over a factorized interleaved class at
/// an explicit width, with caller-provided scratch
/// (`scratch.len() >= n * count`) so the warm apply stays allocation
/// free. Bitwise identical to
/// [`crate::interleaved::lu_solve_interleaved_class_scratch`] per slot.
pub fn lu_solve_interleaved_class_scratch_simd_width<T: Scalar>(
    width: usize,
    n: usize,
    count: usize,
    data: &[T],
    row_of_step: &[usize],
    x: &mut [T],
    scratch: &mut [T],
) {
    assert_width(width);
    assert_eq!(data.len(), n * n * count);
    assert_eq!(row_of_step.len(), n * count);
    assert_eq!(x.len(), n * count);
    assert!(scratch.len() >= n * count);
    if count == 0 {
        return;
    }
    let w = width.min(MAX_LANE_WIDTH);
    let full = count / w * w;
    let mut s0 = 0;
    macro_rules! run_full {
        ($w:literal) => {
            while s0 < full {
                solve_chunk::<T, $w>(n, count, s0, data, row_of_step, x, &mut scratch[..n * $w]);
                s0 += $w;
            }
        };
    }
    match w {
        8 => run_full!(8),
        4 => run_full!(4),
        2 => run_full!(2),
        _ => {}
    }
    while s0 < count {
        solve_chunk::<T, 1>(n, count, s0, data, row_of_step, x, &mut scratch[..n]);
        s0 += 1;
    }
}

/// Permute + two eager triangular sweeps for the `W` slots `[s0, s0+W)`.
fn solve_chunk<T: Scalar, const W: usize>(
    n: usize,
    count: usize,
    s0: usize,
    data: &[T],
    row_of_step: &[usize],
    x: &mut [T],
    perm: &mut [T],
) {
    debug_assert_eq!(perm.len(), n * W);
    // b := P b (gather through the pivot lanes, then write back)
    for k in 0..n {
        for w in 0..W {
            perm[k * W + w] = x[row_of_step[k * count + s0 + w] * count + s0 + w];
        }
    }
    for k in 0..n {
        let base = k * count + s0;
        x[base..base + W].copy_from_slice(&perm[k * W..k * W + W]);
    }

    // unit-lower eager sweep: b(k+1..n) -= L(k+1..n, k) * b(k)
    for k in 0..n.saturating_sub(1) {
        let bk = {
            let base = k * count + s0;
            Chunk::<T, W>::load(&x[base..base + W])
        };
        for i in k + 1..n {
            let lbase = (k * n + i) * count + s0;
            let l = Chunk::<T, W>::load(&data[lbase..lbase + W]);
            let base = i * count + s0;
            let xi = Chunk::<T, W>::load(&x[base..base + W]);
            l.neg().mul_add(bk, xi).store(&mut x[base..base + W]);
        }
    }

    // upper eager sweep: b(k) /= U(k,k); b(0..k) -= U(0..k, k) * b(k)
    for k in (0..n).rev() {
        let dbase = (k * n + k) * count + s0;
        let diag = Chunk::<T, W>::load(&data[dbase..dbase + W]);
        let base = k * count + s0;
        let bk = Chunk::<T, W>::load(&x[base..base + W]).div(diag);
        bk.store(&mut x[base..base + W]);
        for i in 0..k {
            let ubase = (k * n + i) * count + s0;
            let u = Chunk::<T, W>::load(&data[ubase..ubase + W]);
            let xb = i * count + s0;
            let xi = Chunk::<T, W>::load(&x[xb..xb + W]);
            u.neg().mul_add(bk, xi).store(&mut x[xb..xb + W]);
        }
    }
}

#[cfg(test)]
// test scaffolding allocates freely; the tripwire guards the kernels
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::interleaved::{getrf_interleaved_class, lu_solve_interleaved_class_scratch};

    /// Deterministic diagonally-dominant class data (same recipe as the
    /// bench generator): data[(j*n+i)*count + s].
    fn dd_class(n: usize, count: usize, seed: u64) -> Vec<f64> {
        let mut data = vec![0.0f64; n * n * count];
        for s in 0..count {
            for j in 0..n {
                for i in 0..n {
                    let h = (i as u64 * 131 + j as u64 * 37 + s as u64 * 17 + seed) % 1024;
                    let mut v = (h as f64) / 1024.0 - 0.5;
                    if i == j {
                        v += n as f64 + 2.0;
                    }
                    data[(j * n + i) * count + s] = v;
                }
            }
        }
        data
    }

    fn rhs(n: usize, count: usize) -> Vec<f64> {
        (0..n * count).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect()
    }

    #[test]
    fn simd_getrf_and_solve_match_scalar_bitwise_at_every_width() {
        for (n, count) in [(1, 1), (4, 7), (8, 16), (16, 13), (6, 33)] {
            let base = dd_class(n, count, 3);
            let mut ref_data = base.clone();
            let mut ref_piv = vec![0usize; n * count];
            let ref_errs = getrf_interleaved_class(n, count, &mut ref_data, &mut ref_piv);
            let mut ref_x = rhs(n, count);
            let mut scratch = vec![0.0; n * count];
            lu_solve_interleaved_class_scratch(
                n,
                count,
                &ref_data,
                &ref_piv,
                &mut ref_x,
                &mut scratch,
            );

            for width in SUPPORTED_WIDTHS {
                let mut d = base.clone();
                let mut piv = vec![0usize; n * count];
                let errs = getrf_interleaved_class_simd_width(width, n, count, &mut d, &mut piv);
                assert_eq!(errs, ref_errs, "error map n={n} count={count} w={width}");
                assert_eq!(piv, ref_piv, "pivot lanes n={n} count={count} w={width}");
                for (i, (a, b)) in d.iter().zip(&ref_data).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "factor elem {i} n={n} count={count} w={width}"
                    );
                }
                let mut x = rhs(n, count);
                lu_solve_interleaved_class_scratch_simd_width(
                    width,
                    n,
                    count,
                    &d,
                    &piv,
                    &mut x,
                    &mut scratch,
                );
                for (i, (a, b)) in x.iter().zip(&ref_x).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "solve elem {i} n={n} count={count} w={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_slots_fail_identically_and_mates_are_untouched() {
        let n = 6;
        let count = 19; // 2 full AVX-512 chunks + remainder 3
        let mut base = dd_class(n, count, 11);
        // poison three slots inside the same prospective lane group:
        // NaN, Inf, exact singularity (zero column)
        base[(2 * n + 3) * count + 4] = f64::NAN;
        base[(5 * n + 1) * count + 5] = f64::INFINITY;
        for i in 0..n {
            base[(3 * n + i) * count + 6] = 0.0;
        }
        let mut ref_data = base.clone();
        let mut ref_piv = vec![0usize; n * count];
        let ref_errs = getrf_interleaved_class(n, count, &mut ref_data, &mut ref_piv);
        assert!(ref_errs[4].is_some() && ref_errs[5].is_some() && ref_errs[6].is_some());

        for width in SUPPORTED_WIDTHS {
            let mut d = base.clone();
            let mut piv = vec![0usize; n * count];
            let errs = getrf_interleaved_class_simd_width(width, n, count, &mut d, &mut piv);
            assert_eq!(errs, ref_errs, "w={width}");
            for (i, (a, b)) in d.iter().zip(&ref_data).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "elem {i} w={width}");
            }
            assert_eq!(piv, ref_piv, "w={width}");
        }
    }

    #[test]
    fn f32_class_matches_scalar_bitwise() {
        let (n, count) = (8, 21);
        let mut base = vec![0.0f32; n * n * count];
        for (i, v) in dd_class(n, count, 7).iter().enumerate() {
            base[i] = *v as f32;
        }
        let mut ref_data = base.clone();
        let mut ref_piv = vec![0usize; n * count];
        let ref_errs = getrf_interleaved_class(n, count, &mut ref_data, &mut ref_piv);
        for width in SUPPORTED_WIDTHS {
            let mut d = base.clone();
            let mut piv = vec![0usize; n * count];
            let errs = getrf_interleaved_class_simd_width(width, n, count, &mut d, &mut piv);
            assert_eq!(errs, ref_errs);
            assert_eq!(piv, ref_piv);
            for (a, b) in d.iter().zip(&ref_data) {
                assert_eq!(a.to_bits(), b.to_bits(), "w={width}");
            }
        }
    }
}
