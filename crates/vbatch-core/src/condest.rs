//! Condition estimation and equilibration for small blocks.
//!
//! Block-Jacobi quality depends on how well-conditioned the diagonal
//! blocks are; these diagnostics let the preconditioner layer (and the
//! experiment harness) quantify that. The estimator is the classic
//! Hager/Higham 1-norm power iteration on `A^{-1}`, reusing an existing
//! LU factorization, so it costs only a handful of triangular solves.

use crate::dense::DenseMat;
use crate::lu::LuFactors;
use crate::scalar::Scalar;
use crate::trsv::TrsvVariant;

/// 1-norm of a matrix (max column sum).
pub fn norm1<T: Scalar>(a: &DenseMat<T>) -> T {
    let mut best = T::ZERO;
    for j in 0..a.cols() {
        let s = a.col(j).iter().fold(T::ZERO, |acc, &v| acc + v.abs());
        best = Scalar::max(best, s);
    }
    best
}

/// Estimate `||A^{-1}||_1` from an LU factorization (Hager's method).
pub fn inverse_norm1_est<T: Scalar>(f: &LuFactors<T>) -> T {
    let n = f.order();
    if n == 0 {
        return T::ZERO;
    }
    // transposed solves reuse the factorization: A^T = (P^T L U)^T
    // => A^T x = b  solved via  U^T y = b, L^T z = y, x = P^T z
    let solve_t = |b: &[T]| -> Vec<T> {
        let lu = &f.lu;
        let mut y = b.to_vec();
        // U^T is lower triangular with U's diagonal
        for k in 0..n {
            let mut acc = y[k];
            for j in 0..k {
                acc -= lu[(j, k)] * y[j];
            }
            y[k] = acc / lu[(k, k)];
        }
        // L^T is unit upper triangular
        for k in (0..n).rev() {
            let mut acc = y[k];
            for j in k + 1..n {
                acc -= lu[(j, k)] * y[j];
            }
            y[k] = acc;
        }
        // x = P^T z: position row_of_step(k) receives z_k
        let mut x = vec![T::ZERO; n];
        for k in 0..n {
            x[f.perm.row_of_step(k)] = y[k];
        }
        x
    };

    let inv_n = T::ONE / T::from_f64(n as f64);
    let mut x = vec![inv_n; n];
    let mut est = T::ZERO;
    for _ in 0..5 {
        // y = A^{-1} x
        let mut y = x.clone();
        f.solve_inplace(TrsvVariant::Eager, &mut y);
        let new_est = y.iter().fold(T::ZERO, |acc, &v| acc + v.abs());
        // xi = sign(y)
        let xi: Vec<T> = y
            .iter()
            .map(|&v| if v >= T::ZERO { T::ONE } else { -T::ONE })
            .collect();
        // z = A^{-T} xi
        let z = solve_t(&xi);
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, T::ZERO), |(bj, bv), (j, &v)| {
                if v.abs() > bv {
                    (j, v.abs())
                } else {
                    (bj, bv)
                }
            });
        let zx = z.iter().zip(&x).fold(T::ZERO, |acc, (&a, &b)| acc + a * b);
        if new_est <= est || zmax <= zx.abs() {
            est = Scalar::max(est, new_est);
            break;
        }
        est = new_est;
        x = vec![T::ZERO; n];
        x[jmax] = T::ONE;
    }
    est
}

/// Estimated 1-norm condition number `||A||_1 * ||A^{-1}||_1`.
pub fn condest1<T: Scalar>(a: &DenseMat<T>, f: &LuFactors<T>) -> T {
    norm1(a) * inverse_norm1_est(f)
}

/// Row/column equilibration scalings (LAPACK `geequ`-style): returns
/// `(r, c)` such that `diag(r) * A * diag(c)` has rows and columns with
/// max-magnitude close to one. Returns `None` if a row or column is
/// entirely zero.
pub fn equilibrate<T: Scalar>(a: &DenseMat<T>) -> Option<(Vec<T>, Vec<T>)> {
    let (m, n) = (a.rows(), a.cols());
    let mut r = vec![T::ZERO; m];
    for i in 0..m {
        let mut mx = T::ZERO;
        for j in 0..n {
            mx = Scalar::max(mx, a[(i, j)].abs());
        }
        if mx == T::ZERO {
            return None;
        }
        r[i] = T::ONE / mx;
    }
    let mut c = vec![T::ZERO; n];
    for j in 0..n {
        let mut mx = T::ZERO;
        for i in 0..m {
            mx = Scalar::max(mx, r[i] * a[(i, j)].abs());
        }
        if mx == T::ZERO {
            return None;
        }
        c[j] = T::ONE / mx;
    }
    Some((r, c))
}

/// Apply equilibration scalings: `diag(r) * A * diag(c)`.
pub fn apply_equilibration<T: Scalar>(a: &DenseMat<T>, r: &[T], c: &[T]) -> DenseMat<T> {
    DenseMat::from_fn(a.rows(), a.cols(), |i, j| r[i] * a[(i, j)] * c[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{getrf, PivotStrategy};

    #[test]
    fn norm1_is_max_column_sum() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, -4.0, 2.0, 3.0]);
        assert_eq!(norm1(&a), 7.0);
    }

    #[test]
    fn condest_of_identity_is_one() {
        let a = DenseMat::<f64>::identity(6);
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let k = condest1(&a, &f);
        assert!((k - 1.0).abs() < 1e-12, "kappa = {k}");
    }

    #[test]
    fn condest_of_diagonal_matrix_is_exact() {
        // diag(1, 1e-3): kappa_1 = 1e3
        let mut a = DenseMat::<f64>::identity(2);
        a[(1, 1)] = 1e-3;
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let k = condest1(&a, &f).to_f64();
        assert!((k - 1e3).abs() / 1e3 < 1e-10, "kappa = {k}");
    }

    #[test]
    fn condest_detects_ill_conditioning() {
        // nearly dependent rows
        let eps = 1e-8;
        let a = DenseMat::from_row_major(2, 2, &[1.0, 1.0, 1.0, 1.0 + eps]);
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let k = condest1(&a, &f).to_f64();
        assert!(k > 1e7, "kappa = {k}");
    }

    #[test]
    fn transposed_solve_inside_estimator_is_consistent() {
        // condest must never be below 1 and must be a lower bound scale
        // of the true inverse norm; sanity-check on random-ish blocks
        for n in [2usize, 5, 9, 16] {
            let a = DenseMat::from_fn(n, n, |i, j| {
                ((i * 23 + j * 7 + 3) % 17) as f64 / 8.0 - 1.0 + if i == j { 2.5 } else { 0.0 }
            });
            let f = getrf(&a, PivotStrategy::Implicit).unwrap();
            let k = condest1(&a, &f).to_f64();
            assert!(k >= 1.0 - 1e-12, "n={n}: kappa {k}");
            // compare against the exact inverse norm
            let exact = norm1(&a).to_f64() * norm1(&f.inverse()).to_f64();
            assert!(
                k <= exact * 1.0001,
                "estimate {k} exceeds exact {exact} (n={n})"
            );
            assert!(
                k >= exact / 15.0,
                "estimate {k} far below exact {exact} (n={n})"
            );
        }
    }

    #[test]
    fn equilibration_normalizes_rows_and_cols() {
        let a = DenseMat::from_row_major(2, 2, &[1e6, 2e6, 3e-6, 1e-6]);
        let (r, c) = equilibrate(&a).unwrap();
        let e = apply_equilibration(&a, &r, &c);
        for i in 0..2 {
            let mx = (0..2).map(|j| e[(i, j)].abs()).fold(0.0, f64::max);
            assert!((0.1..=1.0 + 1e-12).contains(&mx), "row {i}: {mx}");
        }
        // equilibration dramatically improves the condition estimate
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let fe = getrf(&e, PivotStrategy::Implicit).unwrap();
        assert!(condest1(&e, &fe) < condest1(&a, &f));
    }

    #[test]
    fn zero_row_rejected() {
        let a = DenseMat::from_row_major(2, 2, &[0.0, 0.0, 1.0, 2.0]);
        assert!(equilibrate(&a).is_none());
    }

    #[test]
    fn zero_column_rejected() {
        // rows all have a nonzero entry, column 1 is entirely zero: the
        // second (column) pass of the geequ scan must return None
        let a = DenseMat::from_row_major(2, 2, &[1.0, 0.0, 2.0, 0.0]);
        assert!(equilibrate(&a).is_none());
    }

    /// The `n x n` Hilbert matrix `H[i][j] = 1 / (i + j + 1)`.
    fn hilbert(n: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64)
    }

    #[test]
    fn condest_tracks_exact_hilbert_condition_numbers() {
        // Exact 1-norm condition numbers of the Hilbert matrices
        // (kappa_1(H_3) = 748 etc.); the explicit inverse computed from
        // the LU factors reproduces them to full precision at these
        // orders, and Hager's estimate must stay within [exact/10, exact].
        let known_h3 = 748.0;
        for n in [3usize, 4, 5, 6] {
            let a = hilbert(n);
            let f = getrf(&a, PivotStrategy::Implicit).unwrap();
            let exact = norm1(&a).to_f64() * norm1(&f.inverse()).to_f64();
            if n == 3 {
                assert!(
                    (exact - known_h3).abs() / known_h3 < 1e-9,
                    "exact kappa_1(H_3) = {exact}"
                );
            }
            let k = condest1(&a, &f).to_f64();
            assert!(k <= exact * 1.0001, "n={n}: estimate {k} > exact {exact}");
            assert!(k >= exact / 10.0, "n={n}: estimate {k} << exact {exact}");
        }
    }

    #[test]
    fn condest_exact_on_scaled_identity() {
        // diag(s): kappa_1 = max|s| / min|s| exactly, and the estimator
        // attains it (the power iteration finds the extremal column)
        let s = [2.0f64, 0.5, 8.0, 1.0];
        let a = DenseMat::from_fn(4, 4, |i, j| if i == j { s[i] } else { 0.0 });
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let k = condest1(&a, &f).to_f64();
        assert!((k - 16.0).abs() < 1e-12, "kappa = {k}");

        // pure scaled identity alpha*I: kappa_1 = 1 for any alpha
        for alpha in [1e-8f64, 1.0, 4096.0] {
            let a = DenseMat::from_fn(5, 5, |i, j| if i == j { alpha } else { 0.0 });
            let f = getrf(&a, PivotStrategy::Implicit).unwrap();
            let k = condest1(&a, &f).to_f64();
            assert!((k - 1.0).abs() < 1e-12, "alpha={alpha}: kappa = {k}");
        }
    }
}
