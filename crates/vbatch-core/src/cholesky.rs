//! Batched Cholesky factorization for symmetric positive definite
//! blocks — the paper's announced *future work* (§V), implemented here
//! as an extension.
//!
//! For SPD diagonal blocks no pivoting is needed, the factorization
//! costs half of LU (`1/3 n^3` flops) and the preconditioner application
//! becomes `L L^T x = b` (two triangular sweeps with the same factor).

use crate::dense::DenseMat;
use crate::error::{check_finite, FactorError, FactorResult};
use crate::scalar::Scalar;
use crate::trsv::TrsvVariant;

/// Lower Cholesky factor of one SPD block.
#[derive(Clone, Debug)]
pub struct CholeskyFactors<T: Scalar> {
    /// Lower-triangular factor `L` (upper triangle is zeroed).
    pub l: DenseMat<T>,
}

/// Factorize `a = L L^T` (right-looking, column-by-column).
pub fn potrf<T: Scalar>(a: &DenseMat<T>) -> FactorResult<CholeskyFactors<T>> {
    if !a.is_square() {
        return Err(FactorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    check_finite(n, a.as_slice())?;
    let mut l = a.clone();
    for k in 0..n {
        let dkk = l[(k, k)];
        if !(dkk > T::ZERO) || !dkk.is_finite() {
            return Err(FactorError::NotPositiveDefinite { step: k });
        }
        let d = dkk.sqrt();
        l[(k, k)] = d;
        for i in k + 1..n {
            l[(i, k)] /= d;
        }
        for j in k + 1..n {
            let ljk = l[(j, k)];
            if ljk == T::ZERO {
                continue;
            }
            for i in j..n {
                let lik = l[(i, k)];
                l[(i, j)] = (-lik).mul_add(ljk, l[(i, j)]);
            }
        }
    }
    // zero the upper triangle so `l` is a clean factor
    for j in 1..n {
        for i in 0..j {
            l[(i, j)] = T::ZERO;
        }
    }
    Ok(CholeskyFactors { l })
}

impl<T: Scalar> CholeskyFactors<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` in place via `L y = b`, `L^T x = y`.
    pub fn solve_inplace(&self, variant: TrsvVariant, b: &mut [T]) {
        let n = self.order();
        debug_assert_eq!(b.len(), n);
        // forward sweep with non-unit lower factor
        match variant {
            TrsvVariant::Lazy => {
                for k in 0..n {
                    let mut acc = b[k];
                    for j in 0..k {
                        acc = (-self.l[(k, j)]).mul_add(b[j], acc);
                    }
                    b[k] = acc / self.l[(k, k)];
                }
            }
            TrsvVariant::Eager => {
                for k in 0..n {
                    let bk = b[k] / self.l[(k, k)];
                    b[k] = bk;
                    for i in k + 1..n {
                        b[i] = (-self.l[(i, k)]).mul_add(bk, b[i]);
                    }
                }
            }
        }
        // backward sweep with L^T: U = L^T so U(i,j) = L(j,i)
        match variant {
            TrsvVariant::Lazy => {
                for k in (0..n).rev() {
                    let mut acc = b[k];
                    for j in k + 1..n {
                        acc = (-self.l[(j, k)]).mul_add(b[j], acc);
                    }
                    b[k] = acc / self.l[(k, k)];
                }
            }
            TrsvVariant::Eager => {
                for k in (0..n).rev() {
                    let bk = b[k] / self.l[(k, k)];
                    b[k] = bk;
                    for i in 0..k {
                        b[i] = (-self.l[(k, i)]).mul_add(bk, b[i]);
                    }
                }
            }
        }
    }

    /// Solve into a fresh vector with the eager variant.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_inplace(TrsvVariant::Eager, &mut x);
        x
    }

    /// Residual `max |A - L L^T|`.
    pub fn residual(&self, a: &DenseMat<T>) -> T {
        let rec = self.l.matmul(&self.l.transpose());
        a.sub(&rec).norm_max()
    }
}

/// Generate an SPD matrix `B^T B + n I` from an arbitrary seed block
/// (test/bench helper used across the workspace).
pub fn make_spd<T: Scalar>(b: &DenseMat<T>) -> DenseMat<T> {
    assert!(b.is_square());
    let n = b.rows();
    let mut a = b.transpose().matmul(b);
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: usize) -> DenseMat<f64> {
        let b = DenseMat::from_fn(n, n, |i, j| {
            ((i * 193 + j * 71 + seed * 1543 + 7) % 512) as f64 / 256.0 - 1.0
        });
        make_spd(&b)
    }

    #[test]
    fn factorization_residual_small() {
        for n in [1usize, 2, 5, 12, 24, 32] {
            let a = spd(n, n);
            let f = potrf(&a).unwrap();
            let r = f.residual(&a).to_f64();
            assert!(r < 1e-10 * (n as f64 + 1.0), "n={n}: residual {r}");
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = spd(6, 3);
        let f = potrf(&a).unwrap();
        for j in 1..6 {
            for i in 0..j {
                assert_eq!(f.l[(i, j)], 0.0);
            }
        }
        for k in 0..6 {
            assert!(f.l[(k, k)] > 0.0);
        }
    }

    #[test]
    fn solve_recovers_solution_both_variants() {
        let a = spd(10, 9);
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64 - 4.0) / 2.0).collect();
        let b = a.matvec(&x_true);
        let f = potrf(&a).unwrap();
        for v in TrsvVariant::ALL {
            let mut x = b.clone();
            f.solve_inplace(v, &mut x);
            for i in 0..10 {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "{v:?} x[{i}]={}", x[i]);
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert_eq!(potrf(&a), Err(FactorError::NotPositiveDefinite { step: 1 }));
    }

    #[test]
    fn negative_leading_entry_rejected() {
        let a = DenseMat::from_row_major(2, 2, &[-1.0, 0.0, 0.0, 1.0]);
        assert_eq!(potrf(&a), Err(FactorError::NotPositiveDefinite { step: 0 }));
    }

    #[test]
    fn matches_lu_solution() {
        use crate::lu::{getrf, PivotStrategy};
        let a = spd(14, 5);
        let b: Vec<f64> = (0..14).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let x_chol = potrf(&a).unwrap().solve(&b);
        let x_lu = getrf(&a, PivotStrategy::Implicit).unwrap().solve(&b);
        for i in 0..14 {
            assert!((x_chol[i] - x_lu[i]).abs() < 1e-9);
        }
    }

    impl PartialEq for CholeskyFactors<f64> {
        fn eq(&self, other: &Self) -> bool {
            self.l == other.l
        }
    }
}
