//! In-place dense block operations for the block-ILU(0) sweep.
//!
//! The sweep works on variable-size column-major blocks in place:
//! `A_ik := A_ik · A_kk^{-1}` (a TRSM against the combined `L\U`
//! factors of the finished diagonal block, applied through the
//! transposed solve below) and `A_ij := A_ij − A_ik · A_kj` (a negated
//! GEMM accumulation). The triangular apply additionally needs the
//! negated GEMV accumulation `y := y − A x`. All kernels are
//! allocation-free; scratch, where needed, is caller-provided.

use crate::scalar::Scalar;

/// `C := C − A · B` with `A` (`m×k`), `B` (`k×n`) and `C` (`m×n`) all
/// column-major. Allocation-free.
pub fn gemm_neg_acc<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for j in 0..n {
        let cj = &mut c[j * m..j * m + m];
        for l in 0..k {
            let blj = b[j * k + l];
            if blj == T::ZERO {
                continue;
            }
            let al = &a[l * m..l * m + m];
            for i in 0..m {
                cj[i] = (-al[i]).mul_add(blj, cj[i]);
            }
        }
    }
}

/// `y := y − A · x` with `A` (`m×n`) column-major. The AXPY-per-column
/// form matches the eager triangular sweeps: one coalesced column read
/// per step. Allocation-free.
pub fn gemv_neg_acc<T: Scalar>(m: usize, n: usize, a: &[T], x: &[T], y: &mut [T]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    for (j, &xj) in x.iter().enumerate() {
        let col = &a[j * m..j * m + m];
        for i in 0..m {
            y[i] = (-col[i]).mul_add(xj, y[i]);
        }
    }
}

/// Solve `A^T x = b` in place given the combined `L\U` factors of `A`
/// with `P A = L U` (`row_of_step` in the pivot convention of
/// [`crate::perm::Permutation`]).
///
/// `A^T = U^T L^T P`, so the solve runs a forward sweep with `U^T`
/// (lower triangular, diagonal of `U`), a backward sweep with `L^T`
/// (unit upper triangular), and finally scatters through the
/// permutation: `x[row_of_step[k]] = y[k]`. The scatter lands in
/// `scratch` (`scratch.len() >= n`); no heap allocation.
pub fn lu_solve_transposed_inplace_scratch<T: Scalar>(
    n: usize,
    lu: &[T],
    row_of_step: &[usize],
    b: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(lu.len(), n * n);
    debug_assert_eq!(row_of_step.len(), n);
    debug_assert_eq!(b.len(), n);
    debug_assert!(scratch.len() >= n);
    // forward: U^T z = b, row k of U^T is column k of U
    for k in 0..n {
        let col = &lu[k * n..k * n + n];
        let mut acc = b[k];
        for j in 0..k {
            acc = (-col[j]).mul_add(b[j], acc);
        }
        b[k] = acc / col[k];
    }
    // backward: L^T y = z, row k of L^T is column k of L (unit diagonal)
    for k in (0..n).rev() {
        let col = &lu[k * n..k * n + n];
        let mut acc = b[k];
        for i in k + 1..n {
            acc = (-col[i]).mul_add(b[i], acc);
        }
        b[k] = acc;
    }
    // x = P^T y: x[row_of_step[k]] = y[k]
    let out = &mut scratch[..n];
    for (k, &r) in row_of_step.iter().enumerate() {
        out[r] = b[k];
    }
    b.copy_from_slice(out);
}

/// `B := B · A^{-1}` with `B` (`m×n`) column-major and `A` (`n×n`)
/// given by its combined `L\U` factors: the right-division of the
/// block-ILU(0) sweep, `A_ik := A_ik · A_kk^{-1}`.
///
/// Row `i` of the result satisfies `A^T · row_i^T = old_row_i^T`, so
/// each row is gathered (strided) into `scratch[..n]`, solved through
/// [`lu_solve_transposed_inplace_scratch`] (which uses
/// `scratch[n..2n]`), and scattered back. `scratch.len() >= 2 n`; no
/// heap allocation.
pub fn trsm_right_lu_inplace<T: Scalar>(
    m: usize,
    n: usize,
    lu: &[T],
    row_of_step: &[usize],
    bmat: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(bmat.len(), m * n);
    debug_assert!(scratch.len() >= 2 * n);
    let (row, solve_scratch) = scratch.split_at_mut(n);
    for i in 0..m {
        for (j, r) in row.iter_mut().enumerate() {
            *r = bmat[j * m + i];
        }
        lu_solve_transposed_inplace_scratch(n, lu, row_of_step, row, solve_scratch);
        for (j, r) in row.iter().enumerate() {
            bmat[j * m + i] = *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;
    use crate::lu::implicit::getrf_implicit_inplace;

    #[test]
    fn gemm_neg_acc_matches_dense() {
        let a = DenseMat::from_row_major(2, 3, &[1.0, 2.0, -1.0, 0.5, -2.0, 3.0]);
        let b = DenseMat::from_row_major(3, 2, &[2.0, 1.0, 0.0, -1.0, 1.5, 4.0]);
        let c0 = DenseMat::from_row_major(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        let mut c = c0.as_slice().to_vec();
        gemm_neg_acc(2, 3, 2, a.as_slice(), b.as_slice(), &mut c);
        let prod = a.matmul(&b);
        for j in 0..2 {
            for i in 0..2 {
                let expect = c0[(i, j)] - prod[(i, j)];
                assert!((c[j * 2 + i] - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn gemv_neg_acc_matches_dense() {
        let a = DenseMat::from_row_major(3, 2, &[1.0, -2.0, 0.5, 4.0, -1.0, 2.0]);
        let x = vec![2.0, -1.0];
        let mut y = vec![1.0, 1.0, 1.0];
        gemv_neg_acc(3, 2, a.as_slice(), &x, &mut y);
        let ax = a.matvec(&x);
        for i in 0..3 {
            assert!((y[i] - (1.0 - ax[i])).abs() < 1e-13);
        }
    }

    #[test]
    fn transposed_solve_inverts_a_transpose() {
        let a = DenseMat::from_row_major(3, 3, &[4.0, 1.0, -2.0, 2.0, 5.0, 1.0, -1.0, 2.0, 6.0]);
        let mut lu = a.as_slice().to_vec();
        let perm = getrf_implicit_inplace(3, &mut lu).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        // b = A^T x
        let at = a.transpose();
        let mut b = at.matvec(&x_true);
        let mut scratch = vec![0.0; 3];
        lu_solve_transposed_inplace_scratch(3, &lu, perm.as_slice(), &mut b, &mut scratch);
        for i in 0..3 {
            assert!((b[i] - x_true[i]).abs() < 1e-12, "x[{i}] = {}", b[i]);
        }
    }

    #[test]
    fn trsm_right_matches_per_row_solves() {
        let a = DenseMat::from_row_major(3, 3, &[5.0, 1.0, 0.0, -1.0, 4.0, 2.0, 0.5, -1.0, 6.0]);
        let mut lu = a.as_slice().to_vec();
        let perm = getrf_implicit_inplace(3, &mut lu).unwrap();
        // B: 2x3
        let b = DenseMat::from_row_major(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.5, 2.0]);
        let mut bdata = b.as_slice().to_vec();
        let mut scratch = vec![0.0; 6];
        trsm_right_lu_inplace(2, 3, &lu, perm.as_slice(), &mut bdata, &mut scratch);
        // check B_new * A == B elementwise
        let bnew = DenseMat::from_col_major(2, 3, &bdata);
        let back = bnew.matmul(&a);
        for i in 0..2 {
            for j in 0..3 {
                assert!((back[(i, j)] - b[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn trsm_right_identity_factors_are_noop_rows() {
        // A = I: right-division must leave B unchanged
        let lu = DenseMat::<f64>::identity(4).as_slice().to_vec();
        let perm = [0usize, 1, 2, 3];
        let mut b: Vec<f64> = (0..12).map(|i| i as f64 - 5.0).collect();
        let orig = b.clone();
        let mut scratch = vec![0.0; 8];
        trsm_right_lu_inplace(3, 4, &lu, &perm, &mut b, &mut scratch);
        assert_eq!(b, orig);
    }
}
