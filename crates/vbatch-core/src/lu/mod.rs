//! LU factorization with partial pivoting for small dense blocks
//! (paper §II-B / §III-A).
//!
//! Two pivoting strategies are provided, mirroring Fig. 1 of the paper:
//!
//! * [`explicit`] — textbook right-looking LU: select the pivot in the
//!   current column, *swap the rows in memory*, then apply the Gauss
//!   transformation (Fig. 1 top). On a GPU the swap serializes two lanes
//!   while the rest idle, which is what motivates…
//! * [`implicit`] — the paper's implicit pivoting (Fig. 1 bottom): no row
//!   is ever moved during the elimination; each row remembers the step at
//!   which it was chosen as pivot, rows that are still unpivoted keep
//!   being updated in place, and the combined permutation is applied in
//!   one pass at the very end (on the GPU: folded into the off-load of
//!   `L`/`U` to memory).
//!
//! Both produce the same `P A = L U` decomposition (identical up to
//! pivot-tie ordering) stored in *combined* form: `L` strictly below the
//! diagonal (unit diagonal implied), `U` on and above it.

pub mod blocked;
pub mod explicit;
pub mod implicit;

use crate::dense::DenseMat;
use crate::error::{FactorError, FactorResult};
use crate::perm::Permutation;
use crate::scalar::Scalar;
use crate::trsv::{lu_solve_inplace, TrsvVariant};

/// Pivoting strategy selector for the LU drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PivotStrategy {
    /// Row swaps performed in memory at every step (Fig. 1 top).
    Explicit,
    /// The paper's swap-free implicit pivoting (Fig. 1 bottom).
    Implicit,
    /// No pivoting at all. Fast but unstable; provided for the ablation
    /// benchmarks and for matrices known to be diagonally dominant.
    None,
}

impl PivotStrategy {
    /// All strategies, for exhaustive tests.
    pub const ALL: [PivotStrategy; 3] = [
        PivotStrategy::Explicit,
        PivotStrategy::Implicit,
        PivotStrategy::None,
    ];
}

/// The result of an LU factorization of one small block: the combined
/// `L`/`U` storage plus the row permutation (`row_of_step` form).
#[derive(Clone, Debug)]
pub struct LuFactors<T: Scalar> {
    /// Combined factors, column-major `n x n`.
    pub lu: DenseMat<T>,
    /// Row permutation: `perm.row_of_step(k)` is the original row used as
    /// the pivot of step `k` (so `b_permuted[k] = b[perm.row_of_step(k)]`).
    pub perm: Permutation,
}

impl<T: Scalar> LuFactors<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`, overwriting `b` with `x`.
    pub fn solve_inplace(&self, variant: TrsvVariant, b: &mut [T]) {
        lu_solve_inplace(
            variant,
            self.order(),
            self.lu.as_slice(),
            self.perm.as_slice(),
            b,
        );
    }

    /// Solve `A x = b` into a fresh vector, using the eager variant the
    /// paper selects for its GPU kernels.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_inplace(TrsvVariant::Eager, &mut x);
        x
    }

    /// Determinant of `A`, computed as `det(P) * prod(diag(U))`.
    pub fn det(&self) -> T {
        let mut d = if self.perm.is_odd() { -T::ONE } else { T::ONE };
        for k in 0..self.order() {
            d *= self.lu[(k, k)];
        }
        d
    }

    /// Residual `max |P A - L U|` against the original matrix.
    pub fn residual(&self, a: &DenseMat<T>) -> T {
        crate::dense::lu_residual(a, &self.lu, self.perm.as_slice())
    }

    /// Explicitly reconstruct `A^{-1}` by solving against the identity
    /// columns (used by the inversion-based preconditioner comparisons).
    pub fn inverse(&self) -> DenseMat<T> {
        let n = self.order();
        let mut inv = DenseMat::zeros(n, n);
        let mut e = vec![T::ZERO; n];
        for j in 0..n {
            e.iter_mut().for_each(|v| *v = T::ZERO);
            e[j] = T::ONE;
            self.solve_inplace(TrsvVariant::Eager, &mut e);
            inv.col_mut(j).copy_from_slice(&e);
        }
        inv
    }
}

/// Factorize a square block with the chosen pivoting strategy.
pub fn getrf<T: Scalar>(a: &DenseMat<T>, strategy: PivotStrategy) -> FactorResult<LuFactors<T>> {
    if !a.is_square() {
        return Err(FactorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut lu = a.clone();
    let perm = match strategy {
        PivotStrategy::Explicit => explicit::getrf_explicit_inplace(n, lu.as_mut_slice())?,
        PivotStrategy::Implicit => implicit::getrf_implicit_inplace(n, lu.as_mut_slice())?,
        PivotStrategy::None => explicit::getrf_nopivot_inplace(n, lu.as_mut_slice())?,
    };
    Ok(LuFactors { lu, perm })
}

/// Convenience wrapper: factorize and solve a single system.
pub fn solve_system<T: Scalar>(a: &DenseMat<T>, b: &[T]) -> FactorResult<Vec<T>> {
    let f = getrf(a, PivotStrategy::Implicit)?;
    Ok(f.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wilkinson_like() -> DenseMat<f64> {
        // needs pivoting: leading entry is tiny
        DenseMat::from_row_major(
            3,
            3,
            &[
                1e-12, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 10.0,
            ],
        )
    }

    #[test]
    fn getrf_all_strategies_small_residual() {
        let a = wilkinson_like();
        for strat in [PivotStrategy::Explicit, PivotStrategy::Implicit] {
            let f = getrf(&a, strat).unwrap();
            assert!(
                f.residual(&a).to_f64() < 1e-12,
                "strategy {strat:?} residual too large"
            );
        }
    }

    #[test]
    fn nopivot_matches_on_dominant_matrix() {
        let a = DenseMat::from_row_major(3, 3, &[10., 1., 2., 1., 12., 3., 2., 3., 14.]);
        let f = getrf(&a, PivotStrategy::None).unwrap();
        assert!(f.perm.is_identity());
        assert!(f.residual(&a).to_f64() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = wilkinson_like();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve_system(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]={}", x[i]);
        }
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // det = -2 (requires a swap with partial pivoting)
        let a = DenseMat::from_row_major(2, 2, &[0.0, 1.0, 2.0, 4.0]);
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        assert!((f.det() + 2.0).abs() < 1e-14);
        let f = getrf(&a, PivotStrategy::Explicit).unwrap();
        assert!((f.det() + 2.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = wilkinson_like();
        let f = getrf(&a, PivotStrategy::Implicit).unwrap();
        let inv = f.inverse();
        let prod = inv.matmul(&a);
        let id = DenseMat::identity(3);
        assert!(prod.sub(&id).norm_max() < 1e-9);
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMat::<f64>::zeros(2, 3);
        assert_eq!(
            getrf(&a, PivotStrategy::Implicit),
            Err(FactorError::NotSquare { rows: 2, cols: 3 })
        );
    }

    #[test]
    fn non_finite_input_detected_by_all_strategies() {
        let mut a = wilkinson_like();
        a[(1, 2)] = f64::NAN;
        for strat in PivotStrategy::ALL {
            assert_eq!(
                getrf(&a, strat),
                Err(FactorError::NonFinite { row: 1, col: 2 }),
                "{strat:?} should diagnose the NaN input"
            );
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        for strat in PivotStrategy::ALL {
            let r = getrf(&a, strat);
            assert!(
                matches!(r, Err(FactorError::SingularPivot { .. })),
                "{strat:?} should detect singularity"
            );
        }
    }

    impl PartialEq for LuFactors<f64> {
        fn eq(&self, other: &Self) -> bool {
            self.lu == other.lu && self.perm == other.perm
        }
    }
}
