//! Blocked right-looking LU for blocks *larger* than the warp-size
//! limit — the "optimization of the batched kernels for any problem
//! size" the paper lists as future work (§V).
//!
//! The matrix is processed in panels of width `nb` (default 32, the
//! size the register kernels handle):
//!
//! 1. factorize the current panel (tall-skinny) with partially pivoted
//!    unblocked LU;
//! 2. apply the panel's row swaps to the left and right of the panel;
//! 3. triangular-solve the block row `U_{12} = L_{11}^{-1} A_{12}`;
//! 4. rank-`nb` update of the trailing submatrix
//!    `A_{22} -= L_{21} U_{12}`.
//!
//! Numerically identical (up to rounding) to the unblocked kernels, so
//! the tests compare against [`crate::lu::getrf`] directly.

use crate::dense::DenseMat;
use crate::error::{check_finite, FactorError, FactorResult};
use crate::lu::LuFactors;
use crate::perm::Permutation;
use crate::scalar::Scalar;

/// Default panel width (matches the register kernels' 32-row warps).
pub const DEFAULT_PANEL: usize = 32;

/// Factorize a square matrix of *any* order with panel width `nb`,
/// producing the same combined-factor representation as
/// [`crate::lu::getrf`].
pub fn getrf_blocked<T: Scalar>(a: &DenseMat<T>, nb: usize) -> FactorResult<LuFactors<T>> {
    if !a.is_square() {
        return Err(FactorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    assert!(nb > 0, "panel width must be positive");
    let n = a.rows();
    check_finite(n, a.as_slice())?;
    let mut lu = a.clone();
    // ipiv[k] = row swapped with row k at step k (LAPACK convention)
    let mut ipiv = vec![0usize; n];

    let mut k0 = 0usize;
    while k0 < n {
        let w = nb.min(n - k0);
        // --- 1. panel factorization on columns k0..k0+w, rows k0..n ----
        for k in k0..k0 + w {
            // pivot search in column k, rows k..n
            let mut piv = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best == T::ZERO || !best.is_finite() {
                return Err(FactorError::SingularPivot { step: k });
            }
            ipiv[k] = piv;
            if piv != k {
                // --- 2. swap full rows (panel + both wings) ------------
                lu.swap_rows(k, piv);
            }
            let d = lu[(k, k)];
            for i in k + 1..n {
                let v = lu[(i, k)] / d;
                lu[(i, k)] = v;
            }
            // update the rest of the *panel* only
            for j in k + 1..k0 + w {
                let akj = lu[(k, j)];
                if akj == T::ZERO {
                    continue;
                }
                for i in k + 1..n {
                    let lik = lu[(i, k)];
                    lu[(i, j)] = (-lik).mul_add(akj, lu[(i, j)]);
                }
            }
        }
        let k1 = k0 + w;
        if k1 < n {
            // --- 3. U12 = L11^{-1} A12 (unit lower solve per column) ----
            for j in k1..n {
                for k in k0..k1 {
                    let ukj = lu[(k, j)];
                    if ukj == T::ZERO {
                        continue;
                    }
                    for i in k + 1..k1 {
                        let lik = lu[(i, k)];
                        lu[(i, j)] = (-lik).mul_add(ukj, lu[(i, j)]);
                    }
                }
            }
            // --- 4. A22 -= L21 * U12 (rank-w update) --------------------
            for j in k1..n {
                for k in k0..k1 {
                    let ukj = lu[(k, j)];
                    if ukj == T::ZERO {
                        continue;
                    }
                    for i in k1..n {
                        let lik = lu[(i, k)];
                        lu[(i, j)] = (-lik).mul_add(ukj, lu[(i, j)]);
                    }
                }
            }
        }
        k0 = k1;
    }

    // convert the LAPACK-style swap sequence into row_of_step form
    let mut order: Vec<usize> = (0..n).collect();
    for (k, &p) in ipiv.iter().enumerate() {
        order.swap(k, p);
    }
    Ok(LuFactors {
        lu,
        perm: Permutation::from_row_of_step(order),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{getrf, PivotStrategy};

    fn pseudo_random(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 733 + j * 191 + seed * 6011 + 23) % 4096;
            let v = h as f64 / 2048.0 - 1.0;
            if i == j {
                v + 0.08
            } else {
                v
            }
        })
    }

    #[test]
    fn matches_unblocked_exactly() {
        for n in [1usize, 5, 31, 32, 33, 48, 64, 75] {
            let a = pseudo_random(n, n);
            let blocked = getrf_blocked(&a, 32).unwrap();
            let reference = getrf(&a, PivotStrategy::Explicit).unwrap();
            assert_eq!(
                blocked.perm.as_slice(),
                reference.perm.as_slice(),
                "n={n}: permutation"
            );
            for (x, y) in blocked.lu.as_slice().iter().zip(reference.lu.as_slice()) {
                assert!((x - y).abs() < 1e-10, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn panel_width_does_not_change_the_result() {
        let a = pseudo_random(50, 3);
        let f8 = getrf_blocked(&a, 8).unwrap();
        let f16 = getrf_blocked(&a, 16).unwrap();
        let f64_ = getrf_blocked(&a, 64).unwrap();
        assert_eq!(f8.perm.as_slice(), f16.perm.as_slice());
        assert_eq!(f8.perm.as_slice(), f64_.perm.as_slice());
        for ((x, y), z) in f8
            .lu
            .as_slice()
            .iter()
            .zip(f16.lu.as_slice())
            .zip(f64_.lu.as_slice())
        {
            assert!((x - y).abs() < 1e-9 && (x - z).abs() < 1e-9);
        }
    }

    #[test]
    fn residual_small_for_large_blocks() {
        for n in [40usize, 96, 130] {
            let a = pseudo_random(n, 7 * n);
            let f = getrf_blocked(&a, DEFAULT_PANEL).unwrap();
            let r = f.residual(&a).to_f64();
            assert!(r < 1e-9 * n as f64, "n={n}: residual {r}");
        }
    }

    #[test]
    fn solves_large_systems() {
        let n = 100;
        let a = pseudo_random(n, 11);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 / 10.0).sin()).collect();
        let b = a.matvec(&x_true);
        let f = getrf_blocked(&a, 32).unwrap();
        let x = f.solve(&b);
        for (p, q) in x.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = pseudo_random(40, 2);
        // make row 20 a copy of row 10
        for j in 0..40 {
            let v = a[(10, j)];
            a[(20, j)] = v;
        }
        assert!(matches!(
            getrf_blocked(&a, 16),
            Err(FactorError::SingularPivot { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMat::<f64>::zeros(3, 4);
        assert!(matches!(
            getrf_blocked(&a, 2),
            Err(FactorError::NotSquare { .. })
        ));
    }
}
