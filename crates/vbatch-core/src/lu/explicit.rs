//! Right-looking LU with *explicit* partial pivoting (Fig. 1, top).
//!
//! This is the textbook reference the implicit variant is validated
//! against: at step `k` the largest entry of column `k` (rows `k..n`) is
//! selected, rows `k` and `ipiv` are swapped in memory, the pivot column
//! is scaled (SCAL) and the trailing submatrix receives a rank-1 update
//! (GER).

use crate::error::{check_finite, FactorError, FactorResult};
use crate::perm::Permutation;
use crate::scalar::Scalar;

/// Factorize the column-major `n x n` matrix `a` in place with explicit
/// partial pivoting. Returns the row permutation in `row_of_step` form.
pub fn getrf_explicit_inplace<T: Scalar>(n: usize, a: &mut [T]) -> FactorResult<Permutation> {
    debug_assert_eq!(a.len(), n * n);
    check_finite(n, a)?;
    let mut perm = Permutation::identity(n);
    for k in 0..n {
        // --- pivot selection: argmax |a(k:n, k)| -------------------------
        let col_k = &a[k * n..k * n + n];
        let mut ipiv = k;
        let mut best = col_k[k].abs();
        for (i, &v) in col_k.iter().enumerate().skip(k + 1) {
            let av = v.abs();
            if av > best {
                best = av;
                ipiv = i;
            }
        }
        if best == T::ZERO || !best.is_finite() {
            return Err(FactorError::SingularPivot { step: k });
        }
        // --- explicit row swap (the step the paper eliminates) -----------
        if ipiv != k {
            for j in 0..n {
                a.swap(j * n + k, j * n + ipiv);
            }
            perm.swap(k, ipiv);
        }
        // --- Gauss transformation: SCAL + GER ----------------------------
        let d = a[k * n + k];
        for i in k + 1..n {
            a[k * n + i] /= d;
        }
        for j in k + 1..n {
            let akj = a[j * n + k]; // a(k, j) after the swap
            if akj == T::ZERO {
                continue;
            }
            // split column j so we can read the multipliers from column k
            for i in k + 1..n {
                let lik = a[k * n + i];
                a[j * n + i] = (-lik).mul_add(akj, a[j * n + i]);
            }
        }
    }
    Ok(perm)
}

/// LU without pivoting: the Gauss transformation alone. Returns the
/// identity permutation; fails on a zero pivot.
pub fn getrf_nopivot_inplace<T: Scalar>(n: usize, a: &mut [T]) -> FactorResult<Permutation> {
    debug_assert_eq!(a.len(), n * n);
    check_finite(n, a)?;
    for k in 0..n {
        let d = a[k * n + k];
        if d.abs() == T::ZERO || !d.is_finite() {
            return Err(FactorError::SingularPivot { step: k });
        }
        for i in k + 1..n {
            a[k * n + i] /= d;
        }
        for j in k + 1..n {
            let akj = a[j * n + k];
            if akj == T::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = a[k * n + i];
                a[j * n + i] = (-lik).mul_add(akj, a[j * n + i]);
            }
        }
    }
    Ok(Permutation::identity(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{lu_residual, DenseMat};

    #[test]
    fn two_by_two_known_factors() {
        // A = [0 2; 1 3] forces a swap: PA = [1 3; 0 2], L = I, U = PA
        let a = DenseMat::from_row_major(2, 2, &[0.0, 2.0, 1.0, 3.0]);
        let mut lu = a.clone();
        let p = getrf_explicit_inplace(2, lu.as_mut_slice()).unwrap();
        assert_eq!(p.as_slice(), &[1, 0]);
        assert_eq!(lu[(0, 0)], 1.0);
        assert_eq!(lu[(0, 1)], 3.0);
        assert_eq!(lu[(1, 0)], 0.0);
        assert_eq!(lu[(1, 1)], 2.0);
    }

    #[test]
    fn residual_small_for_random_like_matrix() {
        let a = DenseMat::from_fn(8, 8, |i, j| {
            // deterministic pseudo-random entries in [-1, 1]
            let v = ((i * 37 + j * 101 + 13) % 1000) as f64 / 500.0 - 1.0;
            if i == j {
                v + 0.1
            } else {
                v
            }
        });
        let mut lu = a.clone();
        let p = getrf_explicit_inplace(8, lu.as_mut_slice()).unwrap();
        assert!(lu_residual(&a, &lu, p.as_slice()).to_f64() < 1e-13);
    }

    #[test]
    fn multipliers_bounded_by_one() {
        // partial pivoting guarantees |L(i,j)| <= 1
        let a = DenseMat::from_fn(16, 16, |i, j| {
            ((i * 7 + j * 3) % 11) as f64 - 5.0 + if i == j { 0.5 } else { 0.0 }
        });
        let mut lu = a.clone();
        let _ = getrf_explicit_inplace(16, lu.as_mut_slice()).unwrap();
        for j in 0..16 {
            for i in j + 1..16 {
                assert!(
                    lu[(i, j)].abs() <= 1.0 + 1e-15,
                    "L({i},{j}) = {}",
                    lu[(i, j)]
                );
            }
        }
    }

    #[test]
    fn nopivot_zero_pivot_fails() {
        let a = DenseMat::from_row_major(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let mut lu = a.clone();
        assert_eq!(
            getrf_nopivot_inplace(2, lu.as_mut_slice()),
            Err(FactorError::SingularPivot { step: 0 })
        );
    }

    #[test]
    fn size_one() {
        let mut a = [3.0f64];
        let p = getrf_explicit_inplace(1, &mut a).unwrap();
        assert!(p.is_identity());
        assert_eq!(a[0], 3.0);
    }
}
