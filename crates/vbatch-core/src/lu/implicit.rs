//! LU with the paper's *implicit* partial pivoting (Fig. 1, bottom).
//!
//! Key observations from §III-A that make this swap-free scheme work:
//!
//! * the Gauss transformation applied to a row at step `k` depends only
//!   on that row and on the pivot row — not on the row's position;
//! * whether a row must be updated at all is knowable locally: rows that
//!   have already served as a pivot are done, every other row gets a
//!   SCAL of its `k`-th element and an AXPY of its trailing part.
//!
//! So instead of swapping, each row carries a flag `p[r]` — the
//! elimination step at which the row was chosen — and the accumulated
//! permutation is applied in a single pass after the main loop (on the
//! GPU this pass is free: it is folded into the off-load of `L`/`U` from
//! registers to memory). This removes *all* inter-thread communication
//! caused by row swaps, and unlike the Gauss-Huard analogue the per-row
//! work does not depend on the history of pivot choices, so no pivot
//! list must be replicated per thread.

use crate::error::{check_finite, FactorError, FactorResult};
use crate::perm::Permutation;
use crate::scalar::Scalar;

/// Sentinel marking a row that has not yet been selected as a pivot.
const UNPIVOTED: usize = usize::MAX;

/// Factorize the column-major `n x n` matrix `a` in place with implicit
/// partial pivoting. On return `a` holds the combined `L\U` factors *in
/// pivot order* (the final combined row swap has been applied, mirroring
/// the GPU kernel's permuted off-load) and the returned permutation maps
/// elimination steps to original rows.
pub fn getrf_implicit_inplace<T: Scalar>(n: usize, a: &mut [T]) -> FactorResult<Permutation> {
    debug_assert_eq!(a.len(), n * n);
    check_finite(n, a)?;
    // p[r] = elimination step at which original row r became the pivot
    let mut step_of_row = vec![UNPIVOTED; n];

    for k in 0..n {
        // --- implicit pivot selection over the not-yet-pivoted rows ------
        let col_k = &a[k * n..k * n + n];
        let mut ipiv = UNPIVOTED;
        let mut best = T::ZERO;
        for r in 0..n {
            if step_of_row[r] != UNPIVOTED {
                continue; // "abs_vals(p>0) = -1" — exclude pivoted rows
            }
            let av = col_k[r].abs();
            if ipiv == UNPIVOTED || av > best {
                best = av;
                ipiv = r;
            }
        }
        if ipiv == UNPIVOTED || best == T::ZERO || !best.is_finite() {
            return Err(FactorError::SingularPivot { step: k });
        }
        step_of_row[ipiv] = k;

        // --- Gauss transformation on the rows still unpivoted -------------
        let d = a[k * n + ipiv];
        // SCAL: Di(p==0, k) /= d
        for r in 0..n {
            if step_of_row[r] == UNPIVOTED {
                a[k * n + r] /= d;
            }
        }
        // GER: Di(p==0, k+1:n) -= Di(p==0, k) * Di(ipiv, k+1:n)
        for j in k + 1..n {
            let pivot_val = a[j * n + ipiv];
            if pivot_val == T::ZERO {
                continue;
            }
            for r in 0..n {
                if step_of_row[r] == UNPIVOTED {
                    let mult = a[k * n + r];
                    a[j * n + r] = (-mult).mul_add(pivot_val, a[j * n + r]);
                }
            }
        }
    }

    // --- combined row swap: row r moves to position step_of_row[r] -------
    // (the "p(p) = 1:m; Di = Di(p,:)" tail of Fig. 1 bottom)
    let mut scratch = vec![T::ZERO; n];
    for j in 0..n {
        let col = &mut a[j * n..j * n + n];
        scratch.copy_from_slice(col);
        for r in 0..n {
            col[step_of_row[r]] = scratch[r];
        }
    }
    Ok(Permutation::from_step_of_row(&step_of_row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{lu_residual, DenseMat};
    use crate::lu::explicit::getrf_explicit_inplace;

    fn pseudo_random(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 131 + j * 37 + seed * 7919 + 17) % 4096;
            let v = h as f64 / 2048.0 - 1.0;
            if i == j {
                v + 0.05
            } else {
                v
            }
        })
    }

    #[test]
    fn matches_explicit_pivoting_exactly() {
        // With distinct pivot magnitudes both strategies must choose the
        // same pivot sequence, hence identical factors and permutation.
        for n in [1usize, 2, 3, 5, 8, 16, 32] {
            for seed in 0..4 {
                let a = pseudo_random(n, seed);
                let mut lu_e = a.clone();
                let p_e = getrf_explicit_inplace(n, lu_e.as_mut_slice()).unwrap();
                let mut lu_i = a.clone();
                let p_i = getrf_implicit_inplace(n, lu_i.as_mut_slice()).unwrap();
                assert_eq!(p_e.as_slice(), p_i.as_slice(), "n={n} seed={seed}");
                for (x, y) in lu_e.as_slice().iter().zip(lu_i.as_slice()) {
                    assert!(
                        (x - y).abs() < 1e-12,
                        "factor mismatch n={n} seed={seed}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_small() {
        for n in [2usize, 4, 7, 13, 24, 32] {
            let a = pseudo_random(n, n);
            let mut lu = a.clone();
            let p = getrf_implicit_inplace(n, lu.as_mut_slice()).unwrap();
            let r = lu_residual(&a, &lu, p.as_slice()).to_f64();
            assert!(r < 1e-12, "n={n}: residual {r}");
        }
    }

    #[test]
    fn needs_pivoting_case() {
        let a = DenseMat::from_row_major(3, 3, &[0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 4.0, 5.0, 6.0]);
        let mut lu = a.clone();
        let p = getrf_implicit_inplace(3, lu.as_mut_slice()).unwrap();
        assert!(lu_residual(&a, &lu, p.as_slice()).to_f64() < 1e-14);
        // the first pivot must be row 2 (value 4.0, the column max)
        assert_eq!(p.row_of_step(0), 2);
    }

    #[test]
    fn singular_detected_midway() {
        // rows 0 and 1 are proportional: rank 2, so the last Schur
        // complement entry collapses to zero
        let a = DenseMat::from_row_major(3, 3, &[1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 1.0, 1.0, 1.0]);
        let mut lu = a.clone();
        let e = getrf_implicit_inplace(3, lu.as_mut_slice());
        assert_eq!(e, Err(FactorError::SingularPivot { step: 2 }));
    }

    #[test]
    fn non_finite_input_diagnosed_as_such() {
        let mut a = pseudo_random(4, 1);
        a[(2, 1)] = f64::NAN;
        let mut lu = a.clone();
        assert_eq!(
            getrf_implicit_inplace(4, lu.as_mut_slice()),
            Err(FactorError::NonFinite { row: 2, col: 1 })
        );
        a[(2, 1)] = f64::INFINITY;
        let mut lu = a.clone();
        assert_eq!(
            getrf_implicit_inplace(4, lu.as_mut_slice()),
            Err(FactorError::NonFinite { row: 2, col: 1 })
        );
    }

    #[test]
    fn multipliers_bounded_by_one() {
        for seed in 0..6 {
            let n = 16;
            let a = pseudo_random(n, seed + 100);
            let mut lu = a.clone();
            let _ = getrf_implicit_inplace(n, lu.as_mut_slice()).unwrap();
            for j in 0..n {
                for i in j + 1..n {
                    assert!(lu[(i, j)].abs() <= 1.0 + 1e-14);
                }
            }
        }
    }

    #[test]
    fn f32_path_works() {
        let a = DenseMat::<f32>::from_fn(8, 8, |i, j| {
            ((i * 31 + j * 17 + 3) % 64) as f32 / 32.0 - 1.0 + if i == j { 2.0 } else { 0.0 }
        });
        let mut lu = a.clone();
        let p = getrf_implicit_inplace(8, lu.as_mut_slice()).unwrap();
        assert!(lu_residual(&a, &lu, p.as_slice()) < 1e-5);
    }
}
