//! Triangular solves for combined LU storage (paper §III-B, Fig. 2).
//!
//! Two algorithmic variants exist for each triangle:
//!
//! * **lazy** — step `k` finishes `y_k` with a DOT product against the
//!   already-computed prefix (reads one *row* of the factor per step);
//! * **eager** — step `k` retires `y_k` and immediately updates the
//!   trailing vector with an AXPY (reads one *column* per step).
//!
//! The paper selects the eager variant for the GPU kernels because the
//! AXPY parallelizes trivially across the warp and, with column-major
//! storage, the column read is coalesced. Numerically the two variants
//! compute the same recurrence (up to rounding-order differences), which
//! the tests exploit.
//!
//! All functions operate on the *combined* LU matrix produced by the
//! `lu` module: the unit lower factor is the strict lower triangle (unit
//! diagonal implied) and the upper factor is the upper triangle including
//! the diagonal.

use crate::scalar::Scalar;

/// Which algorithmic variant of the triangular sweep to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsvVariant {
    /// DOT-based: finish one entry per step (Fig. 2 top).
    Lazy,
    /// AXPY-based: update the trailing vector per step (Fig. 2 bottom).
    Eager,
}

impl TrsvVariant {
    /// All variants, for exhaustive tests and benches.
    pub const ALL: [TrsvVariant; 2] = [TrsvVariant::Lazy, TrsvVariant::Eager];
}

#[inline]
fn at<T: Copy>(a: &[T], n: usize, i: usize, j: usize) -> T {
    debug_assert!(i < n && j < n);
    a[j * n + i]
}

/// Solve `L y = b` in place with `L` unit lower triangular, stored in the
/// strict lower triangle of the column-major `n x n` matrix `a`.
pub fn trsv_lower_unit<T: Scalar>(variant: TrsvVariant, n: usize, a: &[T], b: &mut [T]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    match variant {
        TrsvVariant::Lazy => {
            // b(k) -= L(k, 0..k) . b(0..k)
            for k in 1..n {
                let mut acc = b[k];
                for j in 0..k {
                    acc = (-at(a, n, k, j)).mul_add(b[j], acc);
                }
                b[k] = acc;
            }
        }
        TrsvVariant::Eager => {
            // b(k+1..n) -= L(k+1..n, k) * b(k)
            for k in 0..n.saturating_sub(1) {
                let bk = b[k];
                let col = &a[k * n..k * n + n];
                for i in k + 1..n {
                    b[i] = (-col[i]).mul_add(bk, b[i]);
                }
            }
        }
    }
}

/// Solve `U x = b` in place with `U` upper triangular (diagonal included)
/// stored in the upper triangle of the column-major `n x n` matrix `a`.
pub fn trsv_upper<T: Scalar>(variant: TrsvVariant, n: usize, a: &[T], b: &mut [T]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    match variant {
        TrsvVariant::Lazy => {
            for k in (0..n).rev() {
                let mut acc = b[k];
                for j in k + 1..n {
                    acc = (-at(a, n, k, j)).mul_add(b[j], acc);
                }
                b[k] = acc / at(a, n, k, k);
            }
        }
        TrsvVariant::Eager => {
            for k in (0..n).rev() {
                let bk = b[k] / at(a, n, k, k);
                b[k] = bk;
                let col = &a[k * n..k * n + n];
                for i in 0..k {
                    b[i] = (-col[i]).mul_add(bk, b[i]);
                }
            }
        }
    }
}

/// Full `getrs`-style solve: permute the right-hand side (`b := P b`),
/// then the unit-lower and upper sweeps, in place.
///
/// `row_of_step[k]` is the original row index selected as pivot of step
/// `k` (see [`crate::perm::Permutation`]); the permutation is applied
/// while "reading `b` into the registers", exactly as in §III-B.
pub fn lu_solve_inplace<T: Scalar>(
    variant: TrsvVariant,
    n: usize,
    lu: &[T],
    row_of_step: &[usize],
    b: &mut [T],
) {
    let mut scratch = vec![T::ZERO; n];
    lu_solve_inplace_scratch(variant, n, lu, row_of_step, b, &mut scratch);
}

/// [`lu_solve_inplace`] with caller-provided scratch (`scratch.len() >=
/// n`): the permutation gather lands in `scratch` instead of a fresh
/// vector, so the steady-state apply path performs no heap allocation.
/// Element-exact copies only — results are bitwise identical to the
/// allocating form.
pub fn lu_solve_inplace_scratch<T: Scalar>(
    variant: TrsvVariant,
    n: usize,
    lu: &[T],
    row_of_step: &[usize],
    b: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(row_of_step.len(), n);
    debug_assert!(scratch.len() >= n);
    // b := P b, performed out of place like the register gather on the GPU
    let permuted = &mut scratch[..n];
    for (k, &r) in row_of_step.iter().enumerate() {
        permuted[k] = b[r];
    }
    b.copy_from_slice(permuted);
    trsv_lower_unit(variant, n, lu, b);
    trsv_upper(variant, n, lu, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;

    /// Column-major data for a 3x3 combined LU with L strictly lower.
    fn sample_lu() -> (usize, Vec<f64>) {
        // L = [1 0 0; 0.5 1 0; -0.25 2 1], U = [4 2 -1; 0 3 5; 0 0 2]
        let lu = DenseMat::from_row_major(
            3,
            3,
            &[
                4.0, 2.0, -1.0, //
                0.5, 3.0, 5.0, //
                -0.25, 2.0, 2.0,
            ],
        );
        (3, lu.as_slice().to_vec())
    }

    #[test]
    fn lower_unit_lazy_eager_agree() {
        let (n, a) = sample_lu();
        let b0 = vec![1.0, 2.0, 3.0];
        let mut b_lazy = b0.clone();
        let mut b_eager = b0.clone();
        trsv_lower_unit(TrsvVariant::Lazy, n, &a, &mut b_lazy);
        trsv_lower_unit(TrsvVariant::Eager, n, &a, &mut b_eager);
        for i in 0..n {
            assert!((b_lazy[i] - b_eager[i]).abs() < 1e-14);
        }
        // verify against L y = b directly
        let l = DenseMat::from_col_major(3, 3, &a).unit_lower();
        let ly = l.matvec(&b_lazy);
        for i in 0..n {
            assert!((ly[i] - b0[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn upper_lazy_eager_agree() {
        let (n, a) = sample_lu();
        let b0 = vec![3.0, -1.0, 4.0];
        let mut b_lazy = b0.clone();
        let mut b_eager = b0.clone();
        trsv_upper(TrsvVariant::Lazy, n, &a, &mut b_lazy);
        trsv_upper(TrsvVariant::Eager, n, &a, &mut b_eager);
        for i in 0..n {
            assert!((b_lazy[i] - b_eager[i]).abs() < 1e-14);
        }
        let u = DenseMat::from_col_major(3, 3, &a).upper();
        let ux = u.matvec(&b_lazy);
        for i in 0..n {
            assert!((ux[i] - b0[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn size_one_system() {
        let a = vec![5.0f64];
        let mut b = vec![10.0];
        trsv_lower_unit(TrsvVariant::Eager, 1, &a, &mut b);
        assert_eq!(b[0], 10.0); // unit diagonal: nothing to do
        trsv_upper(TrsvVariant::Eager, 1, &a, &mut b);
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn empty_system_is_noop() {
        let a: Vec<f64> = vec![];
        let mut b: Vec<f64> = vec![];
        trsv_lower_unit(TrsvVariant::Lazy, 0, &a, &mut b);
        trsv_upper(TrsvVariant::Eager, 0, &a, &mut b);
    }

    #[test]
    fn full_solve_with_permutation() {
        // A = P^T L U with P = [row1, row0, row2]
        let (n, lu) = sample_lu();
        let perm = vec![1usize, 0, 2];
        // Build A explicitly: PA = LU => A[perm[k], :] = (LU)[k, :]
        let lum = DenseMat::from_col_major(3, 3, &lu);
        let prod = lum.unit_lower().matmul(&lum.upper());
        let mut a = DenseMat::zeros(3, 3);
        for k in 0..3 {
            for j in 0..3 {
                a[(perm[k], j)] = prod[(k, j)];
            }
        }
        let x_true = vec![1.0, -2.0, 0.5];
        let mut b = a.matvec(&x_true);
        lu_solve_inplace(TrsvVariant::Eager, n, &lu, &perm, &mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-12, "x[{i}] = {}", b[i]);
        }
    }

    #[test]
    fn f32_precision_path() {
        let lu = DenseMat::<f32>::from_row_major(2, 2, &[2.0, 1.0, 0.5, 3.0]);
        let a = lu.unit_lower().matmul(&lu.upper());
        let x_true = vec![2.0f32, -1.0];
        let mut b = a.matvec(&x_true);
        lu_solve_inplace(TrsvVariant::Eager, 2, lu.as_slice(), &[0, 1], &mut b);
        for i in 0..2 {
            assert!((b[i] - x_true[i]).abs() < 1e-5);
        }
    }
}
