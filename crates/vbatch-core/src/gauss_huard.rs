//! Gauss-Huard factorization with column pivoting (paper §II-C, baseline
//! from the authors' companion ICCS'17 work, refs \[7\]/\[8\]).
//!
//! Huard's method ("la méthode simplex sans inverse explicite") reduces
//! `A` to the identity with the same `2/3 n^3` flop count as LU, but
//! organizes the elimination so that step `k` touches only rows `0..=k`:
//!
//! 1. *row update* (lazy): `M(k, k..n) -= M(k, 0..k) · M(0..k, k..n)` —
//!    the left part `M(k, 0..k)` is left in place; because rows `0..k`
//!    already carry an implicit identity in their leading columns, those
//!    entries are exactly the multipliers the solve phase must replay;
//! 2. *column pivoting*: the largest entry of `M(k, k..n)` is brought to
//!    the diagonal by a column swap (exchanging unknowns, recorded in a
//!    permutation — numerically as stable as partial row pivoting, see
//!    Dekker/Hoffmann/Potma 1997);
//! 3. *scale*: `M(k, k+1..n) /= M(k,k)` (the pivot stays stored);
//! 4. *eliminate above*: `M(0..k, k+1..n) -= M(0..k, k) · M(k, k+1..n)`,
//!    with the column of multipliers `M(0..k, k)` again left in place for
//!    the solve.
//!
//! The solve replays steps 1/3/4 on the right-hand side and un-permutes
//! the unknowns at the end.
//!
//! **Gauss-Huard-T** stores the working matrix transposed so that the
//! factor accesses of the *solve* become contiguous (on the GPU:
//! coalesced); the price is paid once, at factorization time, through
//! strided writes. Numerically both layouts are identical; the layout
//! only changes which loops stride — which is exactly what the SIMT cost
//! model measures.

use crate::dense::DenseMat;
use crate::error::{check_finite, FactorError, FactorResult};
use crate::perm::Permutation;
use crate::scalar::Scalar;

/// Storage layout of the Gauss-Huard working matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhLayout {
    /// Column-major working matrix (plain Gauss-Huard).
    Normal,
    /// Transposed working matrix ("Gauss-Huard-T"): solve-friendly.
    Transposed,
}

/// The Gauss-Huard decomposition of one small block.
#[derive(Clone, Debug)]
pub struct GhFactors<T: Scalar> {
    /// Working matrix after the reduction, holding pivots, scaled rows
    /// and all multipliers. Stored in the layout given by `layout` (for
    /// `Transposed` this is `M^T`).
    pub m: DenseMat<T>,
    /// Column permutation in `col_of_step` form: the unknown eliminated
    /// at step `k` is the original variable `q.row_of_step(k)`.
    pub q: Permutation,
    /// Storage layout of `m`.
    pub layout: GhLayout,
}

#[inline]
fn get<T: Scalar>(m: &DenseMat<T>, layout: GhLayout, i: usize, j: usize) -> T {
    match layout {
        GhLayout::Normal => m[(i, j)],
        GhLayout::Transposed => m[(j, i)],
    }
}

#[inline]
fn set<T: Scalar>(m: &mut DenseMat<T>, layout: GhLayout, i: usize, j: usize, v: T) {
    match layout {
        GhLayout::Normal => m[(i, j)] = v,
        GhLayout::Transposed => m[(j, i)] = v,
    }
}

/// Factorize `a` with the Gauss-Huard method and column pivoting.
pub fn gh_factorize<T: Scalar>(a: &DenseMat<T>, layout: GhLayout) -> FactorResult<GhFactors<T>> {
    if !a.is_square() {
        return Err(FactorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    check_finite(n, a.as_slice())?;
    let mut m = match layout {
        GhLayout::Normal => a.clone(),
        GhLayout::Transposed => a.transpose(),
    };
    let mut q = Permutation::identity(n);

    for k in 0..n {
        // (1) lazy row update of row k, columns k..n
        for j in 0..k {
            let mkj = get(&m, layout, k, j);
            if mkj == T::ZERO {
                continue;
            }
            for c in k..n {
                let v = get(&m, layout, k, c) - mkj * get(&m, layout, j, c);
                set(&mut m, layout, k, c, v);
            }
        }
        // (2) column pivot: argmax |M(k, k..n)|
        let mut cpiv = k;
        let mut best = get(&m, layout, k, k).abs();
        for c in k + 1..n {
            let av = get(&m, layout, k, c).abs();
            if av > best {
                best = av;
                cpiv = c;
            }
        }
        if best == T::ZERO || !best.is_finite() {
            return Err(FactorError::SingularPivot { step: k });
        }
        if cpiv != k {
            match layout {
                GhLayout::Normal => m.swap_cols(k, cpiv),
                GhLayout::Transposed => m.swap_rows(k, cpiv),
            }
            q.swap(k, cpiv);
        }
        // (3) scale the trailing part of row k
        let d = get(&m, layout, k, k);
        for c in k + 1..n {
            let v = get(&m, layout, k, c) / d;
            set(&mut m, layout, k, c, v);
        }
        // (4) eliminate above the diagonal in columns k+1..n
        for i in 0..k {
            let mik = get(&m, layout, i, k);
            if mik == T::ZERO {
                continue;
            }
            for c in k + 1..n {
                let v = get(&m, layout, i, c) - mik * get(&m, layout, k, c);
                set(&mut m, layout, i, c, v);
            }
        }
    }
    Ok(GhFactors { m, q, layout })
}

impl<T: Scalar> GhFactors<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.m.rows()
    }

    /// Solve `A x = b` in place by replaying the recorded transformations
    /// on `b` and un-permuting the unknowns.
    pub fn solve_inplace(&self, b: &mut [T]) {
        let mut scratch = vec![T::ZERO; self.order()];
        self.solve_inplace_scratch(b, &mut scratch);
    }

    /// [`GhFactors::solve_inplace`] with caller-provided scratch
    /// (`scratch.len() >= n`) for the un-permute copy, so the
    /// steady-state apply performs no heap allocation. Bitwise
    /// identical to the allocating form.
    pub fn solve_inplace_scratch(&self, b: &mut [T], scratch: &mut [T]) {
        let n = self.order();
        debug_assert_eq!(b.len(), n);
        debug_assert!(scratch.len() >= n);
        for k in 0..n {
            // replay (1): subtract the multipliers of the lazy row update
            let mut acc = b[k];
            for j in 0..k {
                acc = (-get(&self.m, self.layout, k, j)).mul_add(b[j], acc);
            }
            // replay (3): the pivot division
            acc /= get(&self.m, self.layout, k, k);
            b[k] = acc;
            // replay (4): eliminate above
            for i in 0..k {
                b[i] = (-get(&self.m, self.layout, i, k)).mul_add(acc, b[i]);
            }
        }
        // un-permute: the value computed at position k belongs to the
        // original unknown q(k)
        let y = &mut scratch[..n];
        y.copy_from_slice(b);
        for k in 0..n {
            b[self.q.row_of_step(k)] = y[k];
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_inplace(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{getrf, PivotStrategy};

    fn pseudo_random(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 449 + j * 61 + seed * 7907 + 5) % 4096;
            let v = h as f64 / 2048.0 - 1.0;
            if i == j {
                v + 0.07
            } else {
                v
            }
        })
    }

    #[test]
    fn gh_solves_known_system() {
        let a = DenseMat::from_row_major(3, 3, &[2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.5]);
        let x_true = vec![1.0, 2.0, -1.0];
        let b = a.matvec(&x_true);
        let f = gh_factorize(&a, GhLayout::Normal).unwrap();
        let x = f.solve(&b);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn gh_matches_lu_solution() {
        for n in [1usize, 2, 3, 4, 8, 16, 24, 32] {
            let a = pseudo_random(n, n + 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 1.5) / 3.0).collect();
            let b = a.matvec(&x_true);
            let lu = getrf(&a, PivotStrategy::Implicit).unwrap();
            let gh = gh_factorize(&a, GhLayout::Normal).unwrap();
            let x_lu = lu.solve(&b);
            let x_gh = gh.solve(&b);
            for i in 0..n {
                assert!(
                    (x_lu[i] - x_gh[i]).abs() < 1e-8,
                    "n={n} i={i}: LU {} vs GH {}",
                    x_lu[i],
                    x_gh[i]
                );
            }
        }
    }

    #[test]
    fn transposed_layout_identical_numerics() {
        for n in [2usize, 5, 9, 17, 32] {
            let a = pseudo_random(n, 3 * n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
            let f_n = gh_factorize(&a, GhLayout::Normal).unwrap();
            let f_t = gh_factorize(&a, GhLayout::Transposed).unwrap();
            assert_eq!(f_n.q.as_slice(), f_t.q.as_slice(), "n={n}");
            // stored matrices must be exact transposes of one another
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(f_n.m[(i, j)], f_t.m[(j, i)], "n={n} ({i},{j})");
                }
            }
            let x_n = f_n.solve(&b);
            let x_t = f_t.solve(&b);
            assert_eq!(x_n, x_t);
        }
    }

    #[test]
    fn column_pivot_selected() {
        // row 0 is [1e-14, 1]: GH must pivot on column 1
        let a = DenseMat::from_row_major(2, 2, &[1e-14, 1.0, 1.0, 1.0]);
        let f = gh_factorize(&a, GhLayout::Normal).unwrap();
        assert_eq!(f.q.row_of_step(0), 1);
        let b = a.matvec(&[3.0, 4.0]);
        let x = f.solve(&b);
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn singular_rejected() {
        let a = DenseMat::from_row_major(2, 2, &[1.0, 2.0, 0.5, 1.0]);
        for layout in [GhLayout::Normal, GhLayout::Transposed] {
            assert!(matches!(
                gh_factorize(&a, layout),
                Err(FactorError::SingularPivot { .. })
            ));
        }
    }

    #[test]
    fn not_square_rejected() {
        let a = DenseMat::<f64>::zeros(3, 2);
        assert!(matches!(
            gh_factorize(&a, GhLayout::Normal),
            Err(FactorError::NotSquare { .. })
        ));
    }

    #[test]
    fn f32_solve() {
        let a = DenseMat::<f32>::from_fn(12, 12, |i, j| {
            ((i * 13 + j * 29 + 1) % 32) as f32 / 16.0 - 1.0 + if i == j { 3.0 } else { 0.0 }
        });
        let x_true: Vec<f32> = (0..12).map(|i| i as f32 / 6.0 - 1.0).collect();
        let b = a.matvec(&x_true);
        let f = gh_factorize(&a, GhLayout::Transposed).unwrap();
        let x = f.solve(&b);
        for i in 0..12 {
            assert!((x[i] - x_true[i]).abs() < 1e-3);
        }
    }
}
