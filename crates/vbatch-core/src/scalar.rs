//! Floating-point scalar abstraction.
//!
//! All kernels in this workspace are generic over [`Scalar`], which is
//! implemented for `f32` ("single precision" in the paper's plots) and
//! `f64` ("double precision"). The trait deliberately exposes only the
//! operations the batched kernels need, plus a few constants used by the
//! SIMT cost model (register width, element size).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real floating-point scalar usable in every kernel of the workspace.
///
/// [`vbatch_rt::simd::SimdElem`] is a supertrait so every `Scalar` can
/// ride in a [`vbatch_rt::simd::Chunk`] lane — that is what lets the
/// SIMD interleaved kernels stay generic over the same `T` as the rest
/// of the stack. (`SimdElem` uses `lane_`-prefixed method names, so no
/// resolution ambiguity arises with the methods below.)
pub trait Scalar:
    vbatch_rt::simd::SimdElem
    + Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes (4 for `f32`, 8 for `f64`); used by
    /// the SIMT memory-transaction model.
    const BYTES: usize;
    /// Short human-readable precision label used in benchmark output.
    const PRECISION: &'static str;

    /// The next-narrower storage format of this precision (`f32` for
    /// `f64`; `f32` is its own floor). Mixed-precision factor storage
    /// keeps SP factors of type `Self::Lower` and widens each element
    /// back through [`Scalar::promote`] on read, so working precision
    /// stays `Self` throughout the solve.
    type Lower: Scalar;
    /// `true` when [`Scalar::Lower`] is actually narrower than `Self`
    /// (`false` at the `f32` floor, where demotion is the identity).
    const HAS_LOWER: bool;

    /// Narrowing conversion into the storage format (round-to-nearest).
    fn demote(self) -> Self::Lower;
    /// Widening conversion back to working precision (exact).
    fn promote(x: Self::Lower) -> Self;

    /// Machine epsilon of the format.
    fn epsilon() -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (single rounding).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Lossy conversion from `f64` (used for literals and tolerances).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used for norms and reporting).
    fn to_f64(self) -> f64;
    /// `true` if the value is finite (not NaN/±inf).
    fn is_finite(self) -> bool;
    /// Largest finite value.
    fn max_value() -> Self;

    /// Maximum of two values, propagating the larger (NaN-unsafe; the
    /// kernels only call this on finite data).
    #[inline]
    fn max(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }

    /// Minimum of two values (NaN-unsafe).
    #[inline]
    fn min(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const PRECISION: &'static str = "single";

    type Lower = f32;
    const HAS_LOWER: bool = false;

    #[inline]
    fn demote(self) -> f32 {
        self
    }
    #[inline]
    fn promote(x: f32) -> f32 {
        x
    }

    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn max_value() -> Self {
        f32::MAX
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const PRECISION: &'static str = "double";

    type Lower = f32;
    const HAS_LOWER: bool = true;

    #[inline]
    fn demote(self) -> f32 {
        self as f32
    }
    #[inline]
    fn promote(x: f32) -> f64 {
        x as f64
    }

    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn max_value() -> Self {
        f64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert!(T::from_f64(-3.0).abs().to_f64() == 3.0);
        assert!(T::from_f64(4.0).sqrt().to_f64() == 2.0);
        assert!(T::epsilon().to_f64() > 0.0);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    #[test]
    fn f32_roundtrip() {
        generic_roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::PRECISION, "single");
    }

    #[test]
    fn f64_roundtrip() {
        generic_roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::PRECISION, "double");
    }

    #[test]
    fn mul_add_matches_expanded() {
        let r = 2.0f64.mul_add(3.0, 4.0);
        assert_eq!(r, 10.0);
        let r = 2.0f32.mul_add(3.0, 4.0);
        assert_eq!(r, 10.0);
    }

    #[test]
    fn demote_promote_roundtrip() {
        fn has_lower<T: Scalar>() -> bool {
            T::HAS_LOWER
        }
        assert!(!has_lower::<f32>());
        assert!(has_lower::<f64>());
        // demotion rounds, promotion is exact
        let x = 1.0f64 + f64::EPSILON;
        assert_eq!(f64::promote(x.demote()), 1.0);
        let y = 0.5f64;
        assert_eq!(f64::promote(y.demote()), y);
        // the f32 floor is the identity
        assert_eq!(0.25f32.demote(), 0.25f32);
        assert_eq!(f32::promote(0.25f32), 0.25f32);
    }

    #[test]
    fn min_max() {
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
        assert_eq!(Scalar::max(-1.0f32, -2.0), -1.0);
    }
}
