//! Small column-pivoted Householder QR (`geqp3`-style) — the
//! rank-revealing escalation tier above equilibrated LU.
//!
//! When health triage finds a block too ill-conditioned for its LU
//! factors and equilibration cannot recover it (a zero row/column, or a
//! refactorization that still fails), the triage chain previously fell
//! straight to the scalar-Jacobi approximation. Column-pivoted QR fills
//! that gap: the Householder reduction with greedy column pivoting is
//! rank-revealing in practice (the pivoted diagonal of `R` decays), so
//! numerically rank-deficient blocks get a *truncated* basic solution —
//! the contributions of negligible pivots are dropped instead of
//! amplified — while full-rank blocks get the exact, backward-stable
//! orthogonal solve. Batched QR at this block scale follows Boukaram et
//! al., *Batched QR and SVD Algorithms on GPUs* (see PAPERS.md); here it
//! runs on the host, per escalated block, since escalation is rare by
//! construction.

use crate::dense::DenseMat;
use crate::error::{check_finite, FactorResult};
use crate::scalar::Scalar;

/// The column-pivoted Householder factorization `A P = Q R` of one
/// small square block.
#[derive(Clone, Debug)]
pub struct QrFactors<T: Scalar> {
    n: usize,
    /// Column-major packed factor: `R` in the upper triangle (diagonal
    /// included), the essential parts of the Householder vectors below
    /// it (`v[k] = 1` implied).
    qr: Vec<T>,
    /// Householder coefficients, one per reflection.
    tau: Vec<T>,
    /// Column permutation: position `k` of the factor holds original
    /// column `jpvt[k]`.
    jpvt: Vec<usize>,
}

/// Factorize the column-major `n x n` block `a` with Householder
/// reflections and greedy column pivoting (the column of largest
/// remaining norm is eliminated at each step). Unlike LU, a (near-)rank
/// deficient block does not fail: the deficiency surfaces as trailing
/// negligible diagonal entries of `R`, which the solve truncates.
pub fn geqp3<T: Scalar>(n: usize, a: &[T]) -> FactorResult<QrFactors<T>> {
    assert_eq!(a.len(), n * n, "geqp3 expects a square column-major block");
    check_finite(n, a)?;
    let mut qr = a.to_vec();
    let mut tau = vec![T::ZERO; n];
    let mut jpvt: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // greedy pivot: argmax of the remaining trailing column norms,
        // recomputed exactly (n <= 32 and escalation is rare — the
        // downdating recurrence's cancellation risk buys nothing here)
        let mut cpiv = k;
        let mut best = T::ZERO;
        for j in k..n {
            let mut s = T::ZERO;
            for i in k..n {
                let v = qr[j * n + i];
                s = v.mul_add(v, s);
            }
            if s > best {
                best = s;
                cpiv = j;
            }
        }
        if cpiv != k {
            for i in 0..n {
                qr.swap(k * n + i, cpiv * n + i);
            }
            jpvt.swap(k, cpiv);
        }
        // Householder vector of column k below the diagonal
        let alpha = qr[k * n + k];
        let mut normx2 = T::ZERO;
        for i in k..n {
            let v = qr[k * n + i];
            normx2 = v.mul_add(v, normx2);
        }
        let normx = normx2.sqrt();
        if normx == T::ZERO {
            // exactly rank-deficient from here on: zero reflection,
            // R(k,k) = 0, the solve truncates this and later pivots
            tau[k] = T::ZERO;
            continue;
        }
        let beta = if alpha >= T::ZERO { -normx } else { normx };
        let v0 = alpha - beta;
        tau[k] = (beta - alpha) / beta;
        // store the essential vector normalized to v[k] = 1
        for i in k + 1..n {
            qr[k * n + i] /= v0;
        }
        qr[k * n + k] = beta;
        // apply H_k = I - tau v v^T to the trailing columns
        for j in k + 1..n {
            let mut w = qr[j * n + k];
            for i in k + 1..n {
                w = qr[k * n + i].mul_add(qr[j * n + i], w);
            }
            w *= tau[k];
            qr[j * n + k] -= w;
            for i in k + 1..n {
                let vi = qr[k * n + i];
                qr[j * n + i] = (-vi).mul_add(w, qr[j * n + i]);
            }
        }
    }
    Ok(QrFactors { n, qr, tau, jpvt })
}

impl<T: Scalar> QrFactors<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Truncation threshold: diagonal entries of `R` at or below
    /// `n * eps * |R(0,0)|` are treated as zero by the solve (the
    /// rank-revealing cut).
    fn diag_floor(&self) -> T {
        let r00 = if self.n > 0 {
            self.qr[0].abs()
        } else {
            T::ZERO
        };
        T::from_f64(self.n as f64) * T::epsilon() * r00
    }

    /// Numerical rank under the truncation threshold of the solve.
    pub fn rank(&self) -> usize {
        let floor = self.diag_floor();
        (0..self.n)
            .filter(|&k| self.qr[k * self.n + k].abs() > floor)
            .count()
    }

    /// Solve `A x = b` in place: apply `Q^T`, back-substitute through
    /// `R` (truncating negligible pivots to a basic solution), and
    /// un-permute the unknowns. `scratch.len() >= n` for the un-permute
    /// copy; no heap allocation.
    pub fn solve_inplace_scratch(&self, b: &mut [T], scratch: &mut [T]) {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        debug_assert!(scratch.len() >= n);
        // Q^T b: apply the reflections in factorization order
        for k in 0..n {
            if self.tau[k] == T::ZERO {
                continue;
            }
            let mut w = b[k];
            for i in k + 1..n {
                w = self.qr[k * n + i].mul_add(b[i], w);
            }
            w *= self.tau[k];
            b[k] -= w;
            for i in k + 1..n {
                let vi = self.qr[k * n + i];
                b[i] = (-vi).mul_add(w, b[i]);
            }
        }
        // R y = Q^T b with rank truncation
        let floor = self.diag_floor();
        for k in (0..n).rev() {
            let rkk = self.qr[k * n + k];
            if rkk.abs() <= floor {
                b[k] = T::ZERO;
                continue;
            }
            let mut acc = b[k];
            for j in k + 1..n {
                acc = (-self.qr[j * n + k]).mul_add(b[j], acc);
            }
            b[k] = acc / rkk;
        }
        // un-permute: position k of y is original unknown jpvt[k]
        let y = &mut scratch[..n];
        y.copy_from_slice(b);
        for k in 0..n {
            b[self.jpvt[k]] = y[k];
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        let mut scratch = vec![T::ZERO; self.n];
        self.solve_inplace_scratch(&mut x, &mut scratch);
        x
    }

    /// Reconstruct `A` from the factors (tests and diagnostics).
    pub fn reconstruct(&self) -> DenseMat<T> {
        let n = self.n;
        // start from R, apply H_n-1 .. H_0 on the left, un-permute cols
        let mut m = DenseMat::<T>::from_fn(
            n,
            n,
            |i, j| {
                if i <= j {
                    self.qr[j * n + i]
                } else {
                    T::ZERO
                }
            },
        );
        for k in (0..n).rev() {
            if self.tau[k] == T::ZERO {
                continue;
            }
            for j in 0..n {
                let mut w = m[(k, j)];
                for i in k + 1..n {
                    w = self.qr[k * n + i].mul_add(m[(i, j)], w);
                }
                w *= self.tau[k];
                m[(k, j)] -= w;
                for i in k + 1..n {
                    let vi = self.qr[k * n + i];
                    m[(i, j)] = (-vi).mul_add(w, m[(i, j)]);
                }
            }
        }
        DenseMat::from_fn(n, n, |i, k| {
            let mut v = T::ZERO;
            for (col, &orig) in self.jpvt.iter().enumerate() {
                if orig == k {
                    v = m[(i, col)];
                }
            }
            v
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd_mat(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 131 + j * 37 + seed * 17 + 3) % 1024;
            h as f64 / 512.0 - 1.0 + if i == j { (n + 2) as f64 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs_the_block() {
        for n in [1usize, 2, 5, 9, 16] {
            let a = dd_mat(n, 7);
            let f = geqp3(n, a.as_slice()).unwrap();
            assert_eq!(f.rank(), n);
            let back = f.reconstruct();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (back[(i, j)] - a[(i, j)]).abs() < 1e-12 * (1.0 + a[(i, j)].abs()),
                        "n={n} ({i},{j}): {} vs {}",
                        back[(i, j)],
                        a[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn qr_solves_full_rank_systems() {
        for n in [2usize, 6, 12, 24] {
            let a = dd_mat(n, 11);
            let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.25 * (i % 7) as f64).collect();
            let b = a.matvec(&x_true);
            let f = geqp3(n, a.as_slice()).unwrap();
            let x = f.solve(&b);
            for (got, want) in x.iter().zip(&x_true) {
                assert!(
                    (got - want).abs() < 1e-10 * (1.0 + want.abs()),
                    "n={n}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn rank_deficient_block_solves_without_nan() {
        // rank-1 block: LU fails, QR truncates and stays finite
        let n = 4;
        let a = DenseMat::from_fn(n, n, |i, j| ((i + 1) * (j + 1)) as f64);
        let f = geqp3(n, a.as_slice()).unwrap();
        assert_eq!(f.rank(), 1);
        let b = vec![1.0; n];
        let x = f.solve(&b);
        assert!(x.iter().all(|v| v.is_finite()));
        // the basic solution still reproduces the consistent part: for
        // b in range(A) the truncated solve is exact
        let b_range = a.matvec(&[1.0, 0.0, 0.0, 0.0]);
        let x = f.solve(&b_range);
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b_range) {
            assert!((got - want).abs() < 1e-10 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn zero_block_yields_zero_solution() {
        let n = 3;
        let a = vec![0.0f64; n * n];
        let f = geqp3(n, &a).unwrap();
        assert_eq!(f.rank(), 0);
        assert_eq!(f.solve(&[1.0, 2.0, 3.0]), vec![0.0; n]);
    }

    #[test]
    fn non_finite_block_is_rejected() {
        let n = 2;
        let a = vec![1.0, f64::NAN, 0.0, 1.0];
        assert!(geqp3(n, &a).is_err());
    }

    #[test]
    fn near_singular_block_truncates_the_tiny_pivot() {
        // two nearly dependent columns: the last pivoted diagonal entry
        // collapses and the solve must not amplify it
        let n = 3;
        let a =
            DenseMat::from_row_major(3, 3, &[1.0, 1.0, 2.0, 1.0, 1.0 + 1e-15, 2.0, 0.0, 0.0, 1.0]);
        let f = geqp3(n, a.as_slice()).unwrap();
        assert!(f.rank() < 3);
        let x = f.solve(&[1.0, 1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite() && v.abs() < 1e6));
    }

    #[test]
    fn f32_path_solves() {
        let n = 5;
        let a = DenseMat::<f32>::from_fn(n, n, |i, j| dd_mat(n, 2)[(i, j)] as f32);
        let x_true: Vec<f32> = (0..n).map(|i| 1.0 + (i % 3) as f32).collect();
        let b = a.matvec(&x_true);
        let f = geqp3(n, a.as_slice()).unwrap();
        let x = f.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }
}
