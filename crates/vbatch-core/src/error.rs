//! Error type shared by the dense factorization kernels.

use std::fmt;

/// Failures of the small dense factorization kernels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactorError {
    /// A zero (or non-finite) pivot was encountered at the given
    /// elimination step; the block is numerically singular.
    SingularPivot { step: usize },
    /// The matrix is not square.
    NotSquare { rows: usize, cols: usize },
    /// The matrix order exceeds what this kernel supports (the SIMT
    /// register kernels handle at most one warp = 32 rows).
    TooLarge { n: usize, max: usize },
    /// A Cholesky pivot was not positive; the block is not positive
    /// definite.
    NotPositiveDefinite { step: usize },
    /// The input matrix contains a NaN or infinity at the given
    /// position. Distinguished from [`FactorError::SingularPivot`] so
    /// corrupted data is diagnosed as such rather than as a rank
    /// deficiency.
    NonFinite { row: usize, col: usize },
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::SingularPivot { step } => {
                write!(f, "singular pivot at elimination step {step}")
            }
            FactorError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            FactorError::TooLarge { n, max } => {
                write!(f, "matrix order {n} exceeds kernel maximum {max}")
            }
            FactorError::NotPositiveDefinite { step } => {
                write!(f, "non-positive Cholesky pivot at step {step}")
            }
            FactorError::NonFinite { row, col } => {
                write!(f, "non-finite entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Result alias for factorization kernels.
pub type FactorResult<V> = Result<V, FactorError>;

/// Scan a column-major `n x n` block for NaN/Inf entries before
/// factorization, so corrupted inputs surface as
/// [`FactorError::NonFinite`] rather than as a misleading
/// `SingularPivot` partway through the elimination.
pub fn check_finite<T: crate::scalar::Scalar>(n: usize, a: &[T]) -> FactorResult<()> {
    for col in 0..n {
        for row in 0..n {
            if !a[col * n + row].is_finite() {
                return Err(FactorError::NonFinite { row, col });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FactorError::SingularPivot { step: 3 }
            .to_string()
            .contains("step 3"));
        assert!(FactorError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(FactorError::TooLarge { n: 40, max: 32 }
            .to_string()
            .contains("40"));
        assert!(FactorError::NotPositiveDefinite { step: 0 }
            .to_string()
            .contains("Cholesky"));
        assert!(FactorError::NonFinite { row: 1, col: 2 }
            .to_string()
            .contains("(1, 2)"));
    }
}
