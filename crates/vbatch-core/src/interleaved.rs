//! Interleaved (structure-of-arrays) batch storage and the class-wide
//! sweep kernels that run on it.
//!
//! The blocked [`crate::MatrixBatch`] stores each block as an isolated
//! column-major slice, so a batched kernel strides through memory one
//! tiny matrix at a time. On the GPU the paper solves the analogous
//! problem with coalescing: every lane of a warp reads a *different*
//! system's element at the *same* matrix position in one transaction.
//! The CPU analogue (Gloster et al., arXiv:1909.04539) is to interleave
//! same-size systems: element `(i, j)` of all blocks of one size class
//! is stored adjacently, so the hot factorize/solve loops become
//! unit-stride sweeps over the batch dimension that the compiler can
//! vectorize.
//!
//! Storage convention for a class of `count` blocks of order `n`:
//!
//! ```text
//! data[(j * n + i) * count + slot]   // element (i, j) of slot `slot`
//! ```
//!
//! i.e. the column-major element index of the blocked layout, scaled by
//! the class population. A *slot* is a block's position within its size
//! class; [`InterleavedBatch`] keeps the slot ↔ original-index
//! permutation so results map back to batch order.
//!
//! The factorization kernel [`getrf_interleaved_class`] performs the
//! paper's implicit partial pivoting with *per-slot pivot lanes*: each
//! slot carries its own `step_of_row` flags, laid out `[r * count +
//! slot]` so the inner loops stay unit-stride. Per slot, the operation
//! sequence is exactly that of
//! [`crate::lu::implicit::getrf_implicit_inplace`], so factors, pivots
//! and solve results agree *bitwise* with the blocked path — the golden
//! differential suite in `vbatch-exec` locks this down.

use crate::batch::MatrixBatch;
use crate::error::FactorError;
use crate::scalar::Scalar;

/// How a batch (or one of its size classes) is laid out in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchLayout {
    /// One contiguous column-major slice per block (the historical
    /// layout of [`MatrixBatch`]).
    Blocked,
    /// Size classes with at least `class_capacity` blocks are stored
    /// interleaved (structure-of-arrays); smaller / ragged classes fall
    /// back to the blocked layout.
    Interleaved {
        /// Minimum class population for interleaving to pay for the
        /// pack/unpack copies.
        class_capacity: usize,
    },
}

/// Default minimum class population for interleaving: below this the
/// pack/unpack traffic costs more than the unit-stride sweeps save.
pub const DEFAULT_CLASS_CAPACITY: usize = 32;

impl BatchLayout {
    /// The default interleaved policy
    /// (`class_capacity = `[`DEFAULT_CLASS_CAPACITY`]).
    pub const fn interleaved() -> Self {
        BatchLayout::Interleaved {
            class_capacity: DEFAULT_CLASS_CAPACITY,
        }
    }

    /// Stable label used in stats and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            BatchLayout::Blocked => "blocked",
            BatchLayout::Interleaved { .. } => "interleaved",
        }
    }
}

/// One size class of an interleaved batch: `blocks.len()` systems of
/// order `n`, stored element-interleaved.
#[derive(Clone, Debug)]
pub struct InterleavedClass<T> {
    n: usize,
    /// Slot → original block index in the source batch.
    blocks: Vec<usize>,
    /// Interleaved values, `data[(j*n + i) * count + slot]`.
    data: Vec<T>,
}

impl<T: Scalar> InterleavedClass<T> {
    /// Pack the listed blocks of `batch` (all of one order) into an
    /// interleaved class.
    pub fn pack_from(batch: &MatrixBatch<T>, members: &[usize]) -> Self {
        assert!(!members.is_empty(), "interleaved class must be non-empty");
        let n = batch.size(members[0]);
        let count = members.len();
        let elems = n
            .checked_mul(n)
            .and_then(|sq| sq.checked_mul(count))
            .expect("interleaved class element count overflows usize");
        let blocks: Vec<&[T]> = members
            .iter()
            .map(|&b| {
                assert_eq!(batch.size(b), n, "class members must share one order");
                batch.block(b)
            })
            .collect();
        // transpose with contiguous writes: lane `e` gathers element `e`
        // of every member block
        let mut data = vec![T::ZERO; elems];
        for (e, lane) in data.chunks_exact_mut(count).enumerate() {
            for (dst, blk) in lane.iter_mut().zip(&blocks) {
                *dst = blk[e];
            }
        }
        InterleavedClass {
            n,
            blocks: members.to_vec(),
            data,
        }
    }

    /// Block order of the class.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of slots (blocks) in the class.
    #[inline]
    pub fn count(&self) -> usize {
        self.blocks.len()
    }

    /// Slot → original block index mapping.
    #[inline]
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// Interleaved value storage.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable interleaved value storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element `(i, j)` of slot `slot`.
    #[inline]
    pub fn get(&self, slot: usize, i: usize, j: usize) -> T {
        let count = self.count();
        self.data[(j * self.n + i) * count + slot]
    }

    /// Decompose into `(n, slot → block mapping, interleaved data)` so
    /// callers can own the storage (e.g. to keep factors resident).
    pub fn into_parts(self) -> (usize, Vec<usize>, Vec<T>) {
        (self.n, self.blocks, self.data)
    }

    /// Copy slot `slot` out as a contiguous column-major block.
    pub fn unpack_slot(&self, slot: usize, out: &mut [T]) {
        let count = self.count();
        debug_assert_eq!(out.len(), self.n * self.n);
        for (e, o) in out.iter_mut().enumerate() {
            *o = self.data[e * count + slot];
        }
    }
}

/// A whole batch in interleaved layout: one [`InterleavedClass`] per
/// distinct block order, plus the permutation mapping interleaved slots
/// back to original block indices.
#[derive(Clone, Debug)]
pub struct InterleavedBatch<T> {
    classes: Vec<InterleavedClass<T>>,
    /// Block index → (class, slot).
    slot_of_block: Vec<(usize, usize)>,
    sizes: Vec<usize>,
}

impl<T: Scalar> InterleavedBatch<T> {
    /// Pack a blocked batch: blocks are grouped into size classes
    /// (ascending by order, original order preserved within a class)
    /// and every class is stored interleaved.
    pub fn pack(batch: &MatrixBatch<T>) -> Self {
        let sizes = batch.sizes().to_vec();
        let mut members = std::collections::BTreeMap::<usize, Vec<usize>>::new();
        for (i, &n) in sizes.iter().enumerate() {
            members.entry(n).or_default().push(i);
        }
        let mut classes = Vec::with_capacity(members.len());
        let mut slot_of_block = vec![(0usize, 0usize); sizes.len()];
        for (c, (_, idx)) in members.into_iter().enumerate() {
            for (slot, &b) in idx.iter().enumerate() {
                slot_of_block[b] = (c, slot);
            }
            classes.push(InterleavedClass::pack_from(batch, &idx));
        }
        InterleavedBatch {
            classes,
            slot_of_block,
            sizes,
        }
    }

    /// Reconstruct the blocked batch, restoring the original block
    /// order. `unpack(pack(b)) == b` bitwise.
    pub fn unpack(&self) -> MatrixBatch<T> {
        let mut out = MatrixBatch::zeros(&self.sizes);
        for (b, &(c, slot)) in self.slot_of_block.iter().enumerate() {
            self.classes[c].unpack_slot(slot, out.block_mut(b));
        }
        out
    }

    /// The size classes, ascending by block order.
    #[inline]
    pub fn classes(&self) -> &[InterleavedClass<T>] {
        &self.classes
    }

    /// `(class, slot)` of block `b`.
    #[inline]
    pub fn slot_of_block(&self, b: usize) -> (usize, usize) {
        self.slot_of_block[b]
    }

    /// Number of blocks across all classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when the batch holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Original block orders, in batch order.
    #[inline]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }
}

/// Sentinel marking a row not yet selected as pivot (mirrors the
/// blocked implicit kernel).
const UNPIVOTED: usize = usize::MAX;

/// Factorize every slot of an interleaved class in place with implicit
/// partial pivoting, sweeping the batch dimension in the inner loops.
///
/// * `data` — interleaved class values (`n*n*count`), overwritten with
///   the combined `L\U` factors *in pivot order* per slot;
/// * `row_of_step` — `n*count` pivot lanes, filled with
///   `row_of_step[k*count + slot]` = original row chosen at step `k`.
///
/// Per slot the arithmetic (operation order, `mul_add` use, the final
/// combined row swap) is identical to
/// [`crate::lu::implicit::getrf_implicit_inplace`], so results agree
/// bitwise with the blocked kernel.
///
/// Never aborts on a singular slot: the offending slot is reported in
/// the returned vector (`Some(error)`), its factors are sanitized to
/// the identity and its pivot lane to the identity permutation, so
/// class-wide sweeps over the remaining slots stay well-defined.
pub fn getrf_interleaved_class<T: Scalar>(
    n: usize,
    count: usize,
    data: &mut [T],
    row_of_step: &mut [usize],
) -> Vec<Option<FactorError>> {
    assert_eq!(data.len(), n * n * count);
    assert_eq!(row_of_step.len(), n * count);
    // step_of_row lanes: step[r*count + slot]
    let mut step = vec![UNPIVOTED; n * count];
    let mut failed: Vec<Option<FactorError>> = vec![None; count];
    // bool shadow of `failed`: the hot loops read this contiguous mask
    // instead of striding over `Option` discriminants
    let mut alive = vec![true; count];

    // per-slot finite pre-scan, mirroring the blocked kernel's
    // `check_finite`: corrupted slots are diagnosed as `NonFinite` (at
    // the same column-major-first position) instead of failing later
    // with a misleading `SingularPivot`
    for col in 0..n {
        for row in 0..n {
            let lane = &data[(col * n + row) * count..(col * n + row + 1) * count];
            for s in 0..count {
                if alive[s] && !lane[s].is_finite() {
                    failed[s] = Some(FactorError::NonFinite { row, col });
                    alive[s] = false;
                }
            }
        }
    }

    for k in 0..n {
        // --- implicit pivot selection per slot over unpivoted rows ----
        let mut ipiv = vec![UNPIVOTED; count];
        let mut best = vec![T::ZERO; count];
        let col_k = &data[k * n * count..(k * n + n) * count];
        for r in 0..n {
            let lane = &col_k[r * count..r * count + count];
            let steps = &step[r * count..r * count + count];
            for s in 0..count {
                if !alive[s] || steps[s] != UNPIVOTED {
                    continue;
                }
                let av = lane[s].abs();
                if ipiv[s] == UNPIVOTED || av > best[s] {
                    best[s] = av;
                    ipiv[s] = r;
                }
            }
        }
        for s in 0..count {
            if !alive[s] {
                continue;
            }
            if ipiv[s] == UNPIVOTED || best[s] == T::ZERO || !best[s].is_finite() {
                failed[s] = Some(FactorError::SingularPivot { step: k });
                alive[s] = false;
            } else {
                step[ipiv[s] * count + s] = k;
            }
        }

        // --- SCAL: column k of the still-unpivoted rows -----------------
        // d[s] = pivot element of slot s at this step; failed slots keep
        // d = 1 so the unconditional divide below leaves their bits
        // unchanged (x/1 is exact) — they are sanitized at the end anyway
        let mut d = vec![T::ONE; count];
        for s in 0..count {
            if alive[s] {
                d[s] = data[(k * n + ipiv[s]) * count + s];
            }
        }
        // branchless select keeps the slot loop vectorizable: skipped
        // lanes retain their exact old bits, so results are unchanged
        for r in 0..n {
            let lane = &mut data[(k * n + r) * count..(k * n + r + 1) * count];
            let steps = &step[r * count..r * count + count];
            for s in 0..count {
                let old = lane[s];
                let scaled = old / d[s];
                lane[s] = if steps[s] != UNPIVOTED { old } else { scaled };
            }
        }

        // --- GER: trailing update of the unpivoted rows -----------------
        let mut pivot_val = vec![T::ZERO; count];
        for j in k + 1..n {
            // split_at_mut proves the multiplier column (k) and the
            // updated column (j > k) are disjoint, so the lane loop can
            // vectorize without runtime alias checks
            let (lo, hi) = data.split_at_mut(j * n * count);
            let col_k = &lo[k * n * count..(k * n + n) * count];
            let col_j = &mut hi[..n * count];
            for s in 0..count {
                pivot_val[s] = if alive[s] {
                    col_j[ipiv[s] * count + s]
                } else {
                    T::ZERO
                };
            }
            // branchless: the update is computed for every lane and a
            // select keeps the old bits where the blocked kernel would
            // have skipped — `pivot_val == 0` also covers failed slots,
            // matching the blocked kernel's zero-column skip
            for r in 0..n {
                let mult = &col_k[r * count..r * count + count];
                let upd = &mut col_j[r * count..(r + 1) * count];
                let steps = &step[r * count..r * count + count];
                for s in 0..count {
                    let old = upd[s];
                    let new = (-mult[s]).mul_add(pivot_val[s], old);
                    let skip = pivot_val[s] == T::ZERO || steps[s] != UNPIVOTED;
                    upd[s] = if skip { old } else { new };
                }
            }
        }
    }

    // --- combined row swap: row r moves to position step[r] per slot ----
    let mut scratch = vec![T::ZERO; n * count];
    for j in 0..n {
        let col = &mut data[j * n * count..(j * n + n) * count];
        scratch.copy_from_slice(col);
        for r in 0..n {
            for s in 0..count {
                if failed[s].is_none() {
                    col[step[r * count + s] * count + s] = scratch[r * count + s];
                }
            }
        }
    }

    // --- pivot lanes: row_of_step[k] = r with step[r] == k --------------
    for k in 0..n {
        for s in 0..count {
            row_of_step[k * count + s] = k; // identity default (failed slots)
        }
    }
    for r in 0..n {
        for s in 0..count {
            if failed[s].is_none() {
                row_of_step[step[r * count + s] * count + s] = r;
            }
        }
    }

    // --- sanitize failed slots to the identity so class-wide solves
    //     remain finite no-ops for them -----------------------------------
    for s in 0..count {
        if failed[s].is_some() {
            for j in 0..n {
                for i in 0..n {
                    data[(j * n + i) * count + s] = if i == j { T::ONE } else { T::ZERO };
                }
            }
        }
    }
    failed
}

/// Permuted eager TRSV sweeps over every slot of a factorized
/// interleaved class, in place on right-hand-side lanes
/// `x[i*count + slot]`.
///
/// Per slot this performs exactly [`crate::trsv::lu_solve_inplace`]
/// with the eager (AXPY) variant: permute `b := P b`, unit-lower sweep,
/// upper sweep — so results agree bitwise with the blocked solve. The
/// inner loops run over the batch dimension (unit stride).
pub fn lu_solve_interleaved_class<T: Scalar>(
    n: usize,
    count: usize,
    data: &[T],
    row_of_step: &[usize],
    x: &mut [T],
) {
    let mut scratch = vec![T::ZERO; n * count];
    lu_solve_interleaved_class_scratch(n, count, data, row_of_step, x, &mut scratch);
}

/// [`lu_solve_interleaved_class`] with caller-provided scratch
/// (`scratch.len() >= n * count`) for the permutation gather, so the
/// steady-state apply performs no heap allocation. Bitwise identical to
/// the allocating form (the gather is an element-exact copy).
pub fn lu_solve_interleaved_class_scratch<T: Scalar>(
    n: usize,
    count: usize,
    data: &[T],
    row_of_step: &[usize],
    x: &mut [T],
    scratch: &mut [T],
) {
    assert_eq!(data.len(), n * n * count);
    assert_eq!(row_of_step.len(), n * count);
    assert_eq!(x.len(), n * count);
    assert!(scratch.len() >= n * count);

    // b := P b (out of place, like the register gather on the GPU)
    let permuted = &mut scratch[..n * count];
    for k in 0..n {
        for s in 0..count {
            permuted[k * count + s] = x[row_of_step[k * count + s] * count + s];
        }
    }
    x.copy_from_slice(permuted);

    // unit-lower eager sweep: b(k+1..n) -= L(k+1..n, k) * b(k)
    for k in 0..n.saturating_sub(1) {
        let (head, tail) = x.split_at_mut((k + 1) * count);
        let bk = &head[k * count..];
        for i in k + 1..n {
            let l = &data[(k * n + i) * count..(k * n + i + 1) * count];
            let xi = &mut tail[(i - k - 1) * count..(i - k) * count];
            for s in 0..count {
                xi[s] = (-l[s]).mul_add(bk[s], xi[s]);
            }
        }
    }

    // upper eager sweep: b(k) /= U(k,k); b(0..k) -= U(0..k, k) * b(k)
    for k in (0..n).rev() {
        let (head, tail) = x.split_at_mut(k * count);
        let bk = &mut tail[..count];
        let diag = &data[(k * n + k) * count..(k * n + k + 1) * count];
        for s in 0..count {
            bk[s] /= diag[s];
        }
        for i in 0..k {
            let u = &data[(k * n + i) * count..(k * n + i + 1) * count];
            let xi = &mut head[i * count..(i + 1) * count];
            for s in 0..count {
                xi[s] = (-u[s]).mul_add(bk[s], xi[s]);
            }
        }
    }
}

/// Solve one slot of a factorized interleaved class in place, reading
/// the factors with stride `count` (for per-block host paths). Same
/// operation order as the class-wide sweep, hence bitwise-identical
/// results.
pub fn lu_solve_interleaved_slot<T: Scalar>(
    n: usize,
    count: usize,
    slot: usize,
    data: &[T],
    row_of_step: &[usize],
    b: &mut [T],
) {
    let mut scratch = vec![T::ZERO; n];
    lu_solve_interleaved_slot_scratch(n, count, slot, data, row_of_step, b, &mut scratch);
}

/// [`lu_solve_interleaved_slot`] with caller-provided scratch
/// (`scratch.len() >= n`) for the permutation gather. Bitwise identical
/// to the allocating form.
#[allow(clippy::too_many_arguments)] // mirrors the slot solve plus scratch
pub fn lu_solve_interleaved_slot_scratch<T: Scalar>(
    n: usize,
    count: usize,
    slot: usize,
    data: &[T],
    row_of_step: &[usize],
    b: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(b.len(), n);
    debug_assert!(scratch.len() >= n);
    let at = |i: usize, j: usize| data[(j * n + i) * count + slot];
    let permuted = &mut scratch[..n];
    for (k, p) in permuted.iter_mut().enumerate() {
        *p = b[row_of_step[k * count + slot]];
    }
    b.copy_from_slice(permuted);
    for k in 0..n.saturating_sub(1) {
        let bk = b[k];
        for i in k + 1..n {
            b[i] = (-at(i, k)).mul_add(bk, b[i]);
        }
    }
    for k in (0..n).rev() {
        let bk = b[k] / at(k, k);
        b[k] = bk;
        for i in 0..k {
            b[i] = (-at(i, k)).mul_add(bk, b[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;
    use crate::lu::implicit::getrf_implicit_inplace;
    use crate::trsv::{lu_solve_inplace, TrsvVariant};

    fn mixed_batch() -> MatrixBatch<f64> {
        let mats: Vec<DenseMat<f64>> = [2usize, 3, 2, 3, 3, 1]
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                DenseMat::from_fn(n, n, |i, j| {
                    let h = (i * 131 + j * 37 + s * 7919 + 11) % 512;
                    h as f64 / 256.0 - 1.0 + if i == j { 3.0 } else { 0.0 }
                })
            })
            .collect();
        MatrixBatch::from_matrices(&mats)
    }

    #[test]
    fn pack_unpack_roundtrip_bitwise() {
        let b = mixed_batch();
        let il = InterleavedBatch::pack(&b);
        assert_eq!(il.len(), b.len());
        assert_eq!(il.classes().len(), 3); // orders 1, 2, 3
        let back = il.unpack();
        assert_eq!(back.sizes(), b.sizes());
        assert_eq!(back.as_slice(), b.as_slice());
    }

    #[test]
    fn slot_mapping_is_consistent() {
        let b = mixed_batch();
        let il = InterleavedBatch::pack(&b);
        for blk in 0..b.len() {
            let (c, slot) = il.slot_of_block(blk);
            let cls = &il.classes()[c];
            assert_eq!(cls.blocks()[slot], blk);
            assert_eq!(cls.n(), b.size(blk));
            let n = cls.n();
            for j in 0..n {
                for i in 0..n {
                    assert_eq!(cls.get(slot, i, j), b.block(blk)[j * n + i]);
                }
            }
        }
    }

    #[test]
    fn interleaved_getrf_matches_blocked_bitwise() {
        let n = 5;
        let count = 7;
        let b = MatrixBatch::<f64>::uniform_from_fn(count, n, |s, i, j| {
            let h = (i * 193 + j * 61 + s * 977 + 5) % 1024;
            h as f64 / 512.0 - 1.0 + if i == j { 2.5 } else { 0.0 }
        });
        let il = InterleavedBatch::pack(&b);
        let mut cls = il.classes()[0].clone();
        let mut piv = vec![0usize; n * count];
        let errs = getrf_interleaved_class(n, count, cls.data_mut(), &mut piv);
        assert!(errs.iter().all(|e| e.is_none()));
        for slot in 0..count {
            let mut blocked = b.block(slot).to_vec();
            let perm = getrf_implicit_inplace(n, &mut blocked).unwrap();
            let mut unpacked = vec![0.0; n * n];
            cls.unpack_slot(slot, &mut unpacked);
            assert_eq!(unpacked, blocked, "slot {slot} factors");
            let lane: Vec<usize> = (0..n).map(|k| piv[k * count + slot]).collect();
            assert_eq!(lane, perm.as_slice(), "slot {slot} pivots");
        }
    }

    #[test]
    fn interleaved_solve_matches_blocked_bitwise() {
        let n = 6;
        let count = 5;
        let b = MatrixBatch::<f64>::uniform_from_fn(count, n, |s, i, j| {
            let h = (i * 89 + j * 211 + s * 433 + 1) % 512;
            h as f64 / 256.0 - 1.0 + if i == j { 4.0 } else { 0.0 }
        });
        let il = InterleavedBatch::pack(&b);
        let mut cls = il.classes()[0].clone();
        let mut piv = vec![0usize; n * count];
        let errs = getrf_interleaved_class(n, count, cls.data_mut(), &mut piv);
        assert!(errs.iter().all(|e| e.is_none()));

        // class-wide sweep
        let mut lanes = vec![0.0f64; n * count];
        for s in 0..count {
            for i in 0..n {
                lanes[i * count + s] = ((i * 3 + s) % 7) as f64 - 3.0;
            }
        }
        let mut class_x = lanes.clone();
        lu_solve_interleaved_class(n, count, cls.data(), &piv, &mut class_x);

        for slot in 0..count {
            // blocked reference
            let mut blocked = b.block(slot).to_vec();
            let perm = getrf_implicit_inplace(n, &mut blocked).unwrap();
            let mut rhs: Vec<f64> = (0..n).map(|i| lanes[i * count + slot]).collect();
            lu_solve_inplace(TrsvVariant::Eager, n, &blocked, perm.as_slice(), &mut rhs);
            // strided single-slot solve
            let mut slot_x: Vec<f64> = (0..n).map(|i| lanes[i * count + slot]).collect();
            lu_solve_interleaved_slot(n, count, slot, cls.data(), &piv, &mut slot_x);
            for i in 0..n {
                assert_eq!(class_x[i * count + slot], rhs[i], "slot {slot} row {i}");
                assert_eq!(slot_x[i], rhs[i], "slot {slot} row {i} (strided)");
            }
        }
    }

    #[test]
    fn singular_slot_is_reported_and_sanitized() {
        let n = 3;
        let count = 4;
        let mut b = MatrixBatch::<f64>::uniform_from_fn(count, n, |s, i, j| {
            ((i * 7 + j * 13 + s * 3 + 1) % 16) as f64 / 8.0 + if i == j { 2.0 } else { 0.0 }
        });
        // make slot 2 exactly singular (two equal rows)
        {
            let blk = b.block_mut(2);
            for c in 0..n {
                blk[c * n + 1] = blk[c * n];
            }
        }
        let il = InterleavedBatch::pack(&b);
        let mut cls = il.classes()[0].clone();
        let mut piv = vec![0usize; n * count];
        let errs = getrf_interleaved_class(n, count, cls.data_mut(), &mut piv);
        assert!(errs[2].is_some());
        assert_eq!(errs.iter().filter(|e| e.is_some()).count(), 1);
        // failed slot sanitized to identity factors + identity pivots
        for j in 0..n {
            for i in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert_eq!(cls.get(2, i, j), want);
            }
        }
        for k in 0..n {
            assert_eq!(piv[k * count + 2], k);
        }
        // healthy slots still match the blocked kernel bitwise
        for slot in [0usize, 1, 3] {
            let mut blocked = b.block(slot).to_vec();
            let perm = getrf_implicit_inplace(n, &mut blocked).unwrap();
            let mut unpacked = vec![0.0; n * n];
            cls.unpack_slot(slot, &mut unpacked);
            assert_eq!(unpacked, blocked, "slot {slot}");
            let lane: Vec<usize> = (0..n).map(|k| piv[k * count + slot]).collect();
            assert_eq!(lane, perm.as_slice());
        }
    }

    #[test]
    fn non_finite_slot_reported_per_slot_and_sanitized() {
        let n = 3;
        let count = 4;
        let mut b = MatrixBatch::<f64>::uniform_from_fn(count, n, |s, i, j| {
            ((i * 7 + j * 13 + s * 3 + 1) % 16) as f64 / 8.0 + if i == j { 2.0 } else { 0.0 }
        });
        b.block_mut(1)[2 * n] = f64::NAN; // element (0, 2) of slot 1
        b.block_mut(3)[n + 1] = f64::INFINITY; // element (1, 1) of slot 3
        let il = InterleavedBatch::pack(&b);
        let mut cls = il.classes()[0].clone();
        let mut piv = vec![0usize; n * count];
        let errs = getrf_interleaved_class(n, count, cls.data_mut(), &mut piv);
        assert_eq!(errs[1], Some(FactorError::NonFinite { row: 0, col: 2 }));
        assert_eq!(errs[3], Some(FactorError::NonFinite { row: 1, col: 1 }));
        assert!(errs[0].is_none() && errs[2].is_none());
        // corrupted slots sanitized to identity factors + identity pivots
        for slot in [1usize, 3] {
            for j in 0..n {
                for i in 0..n {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert_eq!(cls.get(slot, i, j), want, "slot {slot}");
                }
            }
            for k in 0..n {
                assert_eq!(piv[k * count + slot], k);
            }
        }
        // healthy slots still match the blocked kernel bitwise
        for slot in [0usize, 2] {
            let mut blocked = b.block(slot).to_vec();
            let perm = getrf_implicit_inplace(n, &mut blocked).unwrap();
            let mut unpacked = vec![0.0; n * n];
            cls.unpack_slot(slot, &mut unpacked);
            assert_eq!(unpacked, blocked, "slot {slot}");
            let lane: Vec<usize> = (0..n).map(|k| piv[k * count + slot]).collect();
            assert_eq!(lane, perm.as_slice());
        }
    }

    #[test]
    fn layout_labels() {
        assert_eq!(BatchLayout::Blocked.label(), "blocked");
        assert_eq!(BatchLayout::interleaved().label(), "interleaved");
        assert_eq!(
            BatchLayout::interleaved(),
            BatchLayout::Interleaved {
                class_capacity: DEFAULT_CLASS_CAPACITY
            }
        );
    }
}
