//! # vbatch-core
//!
//! Variable-size batched dense kernels for small matrices (order ≤ 32 in
//! the paper's target scenario, arbitrary order here), reproducing the
//! numerical layer of
//!
//! > Anzt, Dongarra, Flegar, Quintana-Ortí — *"Variable-Size Batched LU
//! > for Small Matrices and Its Integration into Block-Jacobi
//! > Preconditioning"*, ICPP 2017.
//!
//! The crate provides:
//!
//! * [`lu`] — LU factorization with **explicit** (Fig. 1 top) and the
//!   paper's **implicit** partial pivoting (Fig. 1 bottom);
//! * [`trsv`] — "lazy" (DOT) and "eager" (AXPY) triangular solves
//!   (Fig. 2) plus the permuted `getrs`-style combined solve;
//! * [`gauss_huard`] — the Gauss-Huard baseline with column pivoting and
//!   its transposed-storage variant (GH-T);
//! * [`gje`] — Gauss-Jordan explicit inversion (the inversion-based
//!   block-Jacobi alternative of ref.\[4\]);
//! * [`cholesky`] — the paper's announced future-work extension for SPD
//!   blocks;
//! * [`batch`]/[`batched`] — variable-size batch containers and
//!   sequential/parallel batched drivers.
//!
//! All kernels are generic over [`scalar::Scalar`] (`f32`/`f64`), the
//! two precisions evaluated in the paper.

pub mod batch;
pub mod batched;
pub mod blockops;
pub mod cholesky;
pub mod condest;
pub mod dense;
pub mod error;
pub mod gauss_huard;
pub mod gje;
pub mod interleaved;
pub mod interleaved_simd;
pub mod lu;
pub mod perm;
pub mod qr;
pub mod scalar;
pub mod trsv;
pub mod widen;

pub use batch::{MatrixBatch, VectorBatch};
pub use batched::{
    batched_gemv, batched_getrf, batched_getrf_status, batched_gh, batched_gje_invert, BatchedGh,
    BatchedLu, Exec,
};
pub use blockops::{
    gemm_neg_acc, gemv_neg_acc, lu_solve_transposed_inplace_scratch, trsm_right_lu_inplace,
};
pub use cholesky::{make_spd, potrf, CholeskyFactors};
pub use condest::{apply_equilibration, condest1, equilibrate, inverse_norm1_est, norm1};
pub use dense::DenseMat;
pub use error::{check_finite, FactorError, FactorResult};
pub use gauss_huard::{gh_factorize, GhFactors, GhLayout};
pub use gje::gje_invert;
pub use interleaved::{
    getrf_interleaved_class, lu_solve_interleaved_class, lu_solve_interleaved_class_scratch,
    lu_solve_interleaved_slot, lu_solve_interleaved_slot_scratch, BatchLayout, InterleavedBatch,
    InterleavedClass, DEFAULT_CLASS_CAPACITY,
};
pub use interleaved_simd::{
    getrf_interleaved_class_simd, getrf_interleaved_class_simd_width,
    lu_solve_interleaved_class_scratch_simd, lu_solve_interleaved_class_scratch_simd_width,
    SUPPORTED_WIDTHS,
};
pub use lu::blocked::getrf_blocked;
pub use lu::{getrf, solve_system, LuFactors, PivotStrategy};
pub use perm::Permutation;
pub use qr::{geqp3, QrFactors};
pub use scalar::Scalar;
pub use trsv::{
    lu_solve_inplace, lu_solve_inplace_scratch, trsv_lower_unit, trsv_upper, TrsvVariant,
};
pub use widen::{
    demote_slice, gh_solve_widened_scratch, lu_solve_interleaved_slot_widened_scratch,
    lu_solve_widened_scratch, residual_into, trsv_lower_unit_widened, trsv_upper_widened,
    StoragePrecision,
};
