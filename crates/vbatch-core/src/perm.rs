//! Permutation bookkeeping for explicit and implicit pivoting.
//!
//! The paper's implicit pivoting (Fig. 1, bottom) never swaps rows during
//! the factorization; instead it records, for every original row `r`, the
//! elimination step `p[r]` at which that row was selected as the pivot.
//! At the end, the combined row swaps are applied in a single pass (on
//! the GPU: folded into the register→memory off-load). Two permutation
//! representations therefore show up:
//!
//! * **step-of-row** (`p` in the paper): `step_of_row[r] = k` means row
//!   `r` became the pivot of step `k`;
//! * **row-of-step** (`ipiv`-style, what the triangular solve needs):
//!   `row_of_step[k] = r` means step `k` used original row `r`, i.e. the
//!   permuted right-hand side is `b_permuted[k] = b[row_of_step[k]]`.
//!
//! They are inverses of each other.

/// A permutation of `0..n`, stored in "row-of-step" form: `perm[k]` is
/// the original index that lands at position `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
        }
    }

    /// Build from a row-of-step vector. Panics if it is not a valid
    /// permutation of `0..n`.
    pub fn from_row_of_step(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n, "permutation entry {p} out of range 0..{n}");
            assert!(!seen[p], "duplicate permutation entry {p}");
            seen[p] = true;
        }
        Self { perm }
    }

    /// Build from the paper's step-of-row (`p`) vector produced by
    /// implicit pivoting: `step_of_row[r] = k`.
    pub fn from_step_of_row(step_of_row: &[usize]) -> Self {
        let n = step_of_row.len();
        let mut perm = vec![usize::MAX; n];
        for (row, &step) in step_of_row.iter().enumerate() {
            assert!(step < n, "step {step} out of range 0..{n}");
            assert!(
                perm[step] == usize::MAX,
                "two rows claim elimination step {step}"
            );
            perm[step] = row;
        }
        Self { perm }
    }

    /// Length of the permutation.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Original index mapped to position `k`.
    #[inline]
    pub fn row_of_step(&self, k: usize) -> usize {
        self.perm[k]
    }

    /// Row-of-step view of the whole permutation.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Inverse permutation (step-of-row form as a new `Permutation`).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0usize; self.perm.len()];
        for (k, &r) in self.perm.iter().enumerate() {
            inv[r] = k;
        }
        Self { perm: inv }
    }

    /// Record an explicit swap of positions `a` and `b` (used by the
    /// explicitly-pivoted LU, Fig. 1 top, line 9).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.perm.swap(a, b);
    }

    /// Apply to a vector: `out[k] = v[perm[k]]` (the paper's `b := P b`).
    pub fn apply<T: Copy>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.perm.len());
        self.perm.iter().map(|&r| v[r]).collect()
    }

    /// Apply the inverse to a vector: `out[perm[k]] = v[k]`. This undoes
    /// [`Permutation::apply`] and is what column-pivoted methods (Gauss-
    /// Huard) need to un-permute the solution.
    pub fn apply_inverse<T: Copy + Default>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.perm.len());
        let mut out = vec![T::default(); v.len()];
        for (k, &r) in self.perm.iter().enumerate() {
            out[r] = v[k];
        }
        out
    }

    /// `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Number of transpositions mod 2 (`false` = even ⇒ det(P) = +1).
    pub fn is_odd(&self) -> bool {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        let mut odd = false;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.perm[cur];
                len += 1;
            }
            if len % 2 == 0 {
                odd = !odd;
            }
        }
        odd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert!(!p.is_odd());
        assert_eq!(p.apply(&[10, 20, 30, 40]), vec![10, 20, 30, 40]);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn step_of_row_roundtrip() {
        // rows 0,1,2 were pivots of steps 2,0,1 respectively
        let p = Permutation::from_step_of_row(&[2, 0, 1]);
        // step 0 used row 1, step 1 used row 2, step 2 used row 0
        assert_eq!(p.as_slice(), &[1, 2, 0]);
        assert_eq!(p.inverse().as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let p = Permutation::from_row_of_step(vec![3, 1, 0, 2]);
        let v = [5, 6, 7, 8];
        let w = p.apply(&v);
        assert_eq!(w, vec![8, 6, 5, 7]);
        assert_eq!(p.apply_inverse(&w), v.to_vec());
    }

    #[test]
    fn swap_tracks_transpositions() {
        let mut p = Permutation::identity(3);
        p.swap(0, 2);
        assert!(p.is_odd());
        assert_eq!(p.apply(&[1, 2, 3]), vec![3, 2, 1]);
        p.swap(0, 1);
        assert!(!p.is_odd());
    }

    #[test]
    #[should_panic]
    fn duplicate_entries_rejected() {
        let _ = Permutation::from_row_of_step(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn duplicate_steps_rejected() {
        let _ = Permutation::from_step_of_row(&[1, 1, 0]);
    }

    #[test]
    fn parity_of_cycles() {
        // single 3-cycle = even
        let p = Permutation::from_row_of_step(vec![1, 2, 0]);
        assert!(!p.is_odd());
        // one 2-cycle = odd
        let p = Permutation::from_row_of_step(vec![1, 0, 2]);
        assert!(p.is_odd());
    }
}
