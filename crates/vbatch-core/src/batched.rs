//! Batched drivers: apply the small-block kernels to every block of a
//! variable-size batch, sequentially or in parallel.
//!
//! On the GPU each block is handled by one warp; on the CPU the natural
//! analogue is a Rayon parallel iterator over the (pairwise independent)
//! blocks — the embarrassingly-parallel structure is identical, only the
//! meaning of "processing element" changes.

use vbatch_rt::prelude::*;

use crate::batch::{MatrixBatch, VectorBatch};
use crate::error::FactorResult;
use crate::gauss_huard::{gh_factorize, GhFactors, GhLayout};
use crate::gje::gje_invert;
use crate::lu::explicit::{getrf_explicit_inplace, getrf_nopivot_inplace};
use crate::lu::implicit::getrf_implicit_inplace;
use crate::lu::PivotStrategy;
use crate::perm::Permutation;
use crate::scalar::Scalar;
use crate::trsv::{lu_solve_inplace, TrsvVariant};

/// Execution policy for the batched drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exec {
    /// One block after another (reference; deterministic profiling).
    Sequential,
    /// Rayon work-stealing across blocks.
    Parallel,
}

/// Factorization results for a whole batch: the combined `L\U` storage
/// (in place of the inputs) plus one permutation per block.
#[derive(Clone, Debug)]
pub struct BatchedLu<T: Scalar> {
    /// Combined factors, block `i` in pivot order.
    pub factors: MatrixBatch<T>,
    /// Per-block row permutations (`row_of_step` form).
    pub perms: Vec<Permutation>,
}

/// Batched LU factorization (GETRF) of every block.
///
/// Returns an error for the *first* failing block; callers that need
/// per-block status (e.g. to skip singular Jacobi blocks) should use
/// [`batched_getrf_status`].
pub fn batched_getrf<T: Scalar>(
    mut batch: MatrixBatch<T>,
    strategy: PivotStrategy,
    exec: Exec,
) -> FactorResult<BatchedLu<T>> {
    let results = run_factor(&mut batch, strategy, exec);
    let mut perms = Vec::with_capacity(results.len());
    for r in results {
        perms.push(r?);
    }
    Ok(BatchedLu {
        factors: batch,
        perms,
    })
}

/// Batched LU keeping per-block results (singular blocks reported
/// individually, others factorized normally).
pub fn batched_getrf_status<T: Scalar>(
    batch: &mut MatrixBatch<T>,
    strategy: PivotStrategy,
    exec: Exec,
) -> Vec<FactorResult<Permutation>> {
    run_factor(batch, strategy, exec)
}

fn run_factor<T: Scalar>(
    batch: &mut MatrixBatch<T>,
    strategy: PivotStrategy,
    exec: Exec,
) -> Vec<FactorResult<Permutation>> {
    let kernel = move |n: usize, data: &mut [T]| match strategy {
        PivotStrategy::Explicit => getrf_explicit_inplace(n, data),
        PivotStrategy::Implicit => getrf_implicit_inplace(n, data),
        PivotStrategy::None => getrf_nopivot_inplace(n, data),
    };
    let blocks = batch.blocks_mut();
    match exec {
        Exec::Sequential => blocks
            .into_iter()
            .map(|(n, data)| kernel(n, data))
            .collect(),
        Exec::Parallel => blocks
            .into_par_iter()
            .map(|(n, data)| kernel(n, data))
            .collect(),
    }
}

impl<T: Scalar> BatchedLu<T> {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// Batched GETRS: solve every block system in place on the matching
    /// right-hand-side batch.
    pub fn solve(&self, rhs: &mut VectorBatch<T>, variant: TrsvVariant, exec: Exec) {
        assert_eq!(rhs.sizes(), self.factors.sizes(), "rhs sizes mismatch");
        let perms = &self.perms;
        let factors = &self.factors;
        let work = |i: usize, seg: &mut [T]| {
            let n = factors.size(i);
            lu_solve_inplace(variant, n, factors.block(i), perms[i].as_slice(), seg);
        };
        match exec {
            Exec::Sequential => {
                for (i, seg) in rhs.segs_mut().into_iter().enumerate() {
                    work(i, seg);
                }
            }
            Exec::Parallel => {
                rhs.segs_mut()
                    .into_par_iter()
                    .enumerate()
                    .for_each(|(i, seg)| work(i, seg));
            }
        }
    }
}

/// Gauss-Huard factorization results for a whole batch.
#[derive(Clone, Debug)]
pub struct BatchedGh<T: Scalar> {
    /// Per-block Gauss-Huard factors.
    pub factors: Vec<GhFactors<T>>,
}

/// Batched Gauss-Huard factorization of every block.
pub fn batched_gh<T: Scalar>(
    batch: &MatrixBatch<T>,
    layout: GhLayout,
    exec: Exec,
) -> FactorResult<BatchedGh<T>> {
    let work = |i: usize| gh_factorize(&batch.block_as_mat(i), layout);
    let results: Vec<_> = match exec {
        Exec::Sequential => (0..batch.len()).map(work).collect(),
        Exec::Parallel => (0..batch.len()).into_par_iter().map(work).collect(),
    };
    let mut factors = Vec::with_capacity(results.len());
    for r in results {
        factors.push(r?);
    }
    Ok(BatchedGh { factors })
}

impl<T: Scalar> BatchedGh<T> {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Solve every block system in place.
    pub fn solve(&self, rhs: &mut VectorBatch<T>, exec: Exec) {
        assert_eq!(rhs.len(), self.factors.len());
        let factors = &self.factors;
        match exec {
            Exec::Sequential => {
                for (i, seg) in rhs.segs_mut().into_iter().enumerate() {
                    factors[i].solve_inplace(seg);
                }
            }
            Exec::Parallel => {
                rhs.segs_mut()
                    .into_par_iter()
                    .enumerate()
                    .for_each(|(i, seg)| factors[i].solve_inplace(seg));
            }
        }
    }
}

/// Batched explicit inversion via Gauss-Jordan elimination: the
/// inversion-based block-Jacobi setup of ref.\[4\]. Returns a batch of
/// inverse blocks.
pub fn batched_gje_invert<T: Scalar>(
    batch: &MatrixBatch<T>,
    exec: Exec,
) -> FactorResult<MatrixBatch<T>> {
    let work = |i: usize| gje_invert(&batch.block_as_mat(i));
    let results: Vec<_> = match exec {
        Exec::Sequential => (0..batch.len()).map(work).collect(),
        Exec::Parallel => (0..batch.len()).into_par_iter().map(work).collect(),
    };
    let mut out = MatrixBatch::new();
    for r in results {
        out.push(&r?);
    }
    Ok(out)
}

/// Apply a batch of (inverse) blocks to a vector batch: `y_i = A_i x_i`
/// — the GEMV-shaped preconditioner application of the inversion-based
/// approach.
pub fn batched_gemv<T: Scalar>(
    blocks: &MatrixBatch<T>,
    x: &VectorBatch<T>,
    y: &mut VectorBatch<T>,
    exec: Exec,
) {
    assert_eq!(blocks.sizes(), x.sizes());
    assert_eq!(blocks.sizes(), y.sizes());
    let work = |i: usize, out: &mut [T]| {
        let n = blocks.size(i);
        let a = blocks.block(i);
        let xi = x.seg(i);
        for v in out.iter_mut() {
            *v = T::ZERO;
        }
        for j in 0..n {
            let xj = xi[j];
            if xj == T::ZERO {
                continue;
            }
            let col = &a[j * n..j * n + n];
            for (o, &aij) in out.iter_mut().zip(col) {
                *o = aij.mul_add(xj, *o);
            }
        }
    };
    match exec {
        Exec::Sequential => {
            for (i, seg) in y.segs_mut().into_iter().enumerate() {
                work(i, seg);
            }
        }
        Exec::Parallel => {
            y.segs_mut()
                .into_par_iter()
                .enumerate()
                .for_each(|(i, seg)| work(i, seg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;

    fn test_batch(seeds: usize) -> (MatrixBatch<f64>, VectorBatch<f64>, VectorBatch<f64>) {
        // blocks of varying size 1..=9 with known solutions
        let sizes: Vec<usize> = (0..seeds).map(|i| 1 + (i * 5 + 3) % 9).collect();
        let mats: Vec<DenseMat<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                DenseMat::from_fn(n, n, |i, j| {
                    let h = (i * 383 + j * 59 + s * 6007 + 29) % 2048;
                    let v = h as f64 / 1024.0 - 1.0;
                    if i == j {
                        v + 4.0
                    } else {
                        v
                    }
                })
            })
            .collect();
        let batch = MatrixBatch::from_matrices(&mats);
        let mut x_true = VectorBatch::zeros(&sizes);
        let mut rhs = VectorBatch::zeros(&sizes);
        for (i, m) in mats.iter().enumerate() {
            let n = m.rows();
            let xt: Vec<f64> = (0..n).map(|k| (k as f64 + i as f64) / 3.0 - 1.0).collect();
            x_true.seg_mut(i).copy_from_slice(&xt);
            rhs.seg_mut(i).copy_from_slice(&m.matvec(&xt));
        }
        (batch, rhs, x_true)
    }

    #[test]
    fn batched_lu_solve_recovers_solutions() {
        for exec in [Exec::Sequential, Exec::Parallel] {
            for strategy in [PivotStrategy::Explicit, PivotStrategy::Implicit] {
                let (batch, rhs, x_true) = test_batch(17);
                let f = batched_getrf(batch, strategy, exec).unwrap();
                let mut x = rhs;
                f.solve(&mut x, TrsvVariant::Eager, exec);
                for (a, b) in x.as_slice().iter().zip(x_true.as_slice()) {
                    assert!((a - b).abs() < 1e-10, "{exec:?} {strategy:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_identical() {
        let (batch, rhs, _) = test_batch(33);
        let f_seq =
            batched_getrf(batch.clone(), PivotStrategy::Implicit, Exec::Sequential).unwrap();
        let f_par = batched_getrf(batch, PivotStrategy::Implicit, Exec::Parallel).unwrap();
        assert_eq!(f_seq.factors.as_slice(), f_par.factors.as_slice());
        let mut xs = rhs.clone();
        let mut xp = rhs;
        f_seq.solve(&mut xs, TrsvVariant::Eager, Exec::Sequential);
        f_par.solve(&mut xp, TrsvVariant::Eager, Exec::Parallel);
        assert_eq!(xs, xp);
    }

    #[test]
    fn batched_gh_matches_lu() {
        let (batch, rhs, x_true) = test_batch(11);
        for layout in [GhLayout::Normal, GhLayout::Transposed] {
            let f = batched_gh(&batch, layout, Exec::Parallel).unwrap();
            assert_eq!(f.len(), 11);
            let mut x = rhs.clone();
            f.solve(&mut x, Exec::Parallel);
            for (a, b) in x.as_slice().iter().zip(x_true.as_slice()) {
                assert!((a - b).abs() < 1e-9, "{layout:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_inversion_and_gemv_solve() {
        let (batch, rhs, x_true) = test_batch(9);
        let inv = batched_gje_invert(&batch, Exec::Parallel).unwrap();
        let mut x = VectorBatch::zeros(batch.sizes());
        batched_gemv(&inv, &rhs, &mut x, Exec::Parallel);
        for (a, b) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn status_api_reports_singular_blocks() {
        let good = DenseMat::from_row_major(2, 2, &[4.0, 1.0, 1.0, 3.0]);
        let bad = DenseMat::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let mut batch = MatrixBatch::from_matrices(&[good, bad]);
        let status = batched_getrf_status(&mut batch, PivotStrategy::Implicit, Exec::Sequential);
        assert!(status[0].is_ok());
        assert!(status[1].is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = MatrixBatch::<f64>::new();
        let f = batched_getrf(batch, PivotStrategy::Implicit, Exec::Parallel).unwrap();
        assert!(f.is_empty());
        let mut rhs = VectorBatch::zeros(&[]);
        f.solve(&mut rhs, TrsvVariant::Eager, Exec::Parallel);
    }
}
