//! Widening solve paths for mixed-precision factor storage.
//!
//! The paper's Fig. 4/5 show the SP batched factorization running at
//! roughly twice the DP flop rate with half the memory traffic; the
//! block-Jacobi *apply*, however, must stay accurate in the working
//! precision of the Krylov solver. These kernels close that gap: the
//! factors are stored in [`Scalar::Lower`] (SP when `T = f64`) and every
//! element is widened back through [`Scalar::promote`] as it is read, so
//! the right-hand side and every accumulation stay in `T`. Combined with
//! one step of iterative refinement against the retained full-precision
//! block (the same correction the `EquilibratedLu` recovery path runs),
//! a well-conditioned block solved through the widened path converges to
//! working accuracy — the storage-vs-working precision split of the
//! mixed block-Jacobi literature.
//!
//! Each widened solve mirrors its native counterpart operation for
//! operation ([`crate::trsv::lu_solve_inplace_scratch`],
//! [`crate::gauss_huard::GhFactors::solve_inplace_scratch`],
//! [`crate::interleaved::lu_solve_interleaved_slot_scratch`]); the only
//! difference is the promotion on each factor read.

use crate::gauss_huard::{GhFactors, GhLayout};
use crate::scalar::Scalar;
use crate::trsv::TrsvVariant;

/// Which storage format a factor actually occupies, relative to the
/// working precision of the batch it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoragePrecision {
    /// Stored in the working precision `T` (the historical layout).
    Native,
    /// Stored demoted to [`Scalar::Lower`]; applied through the
    /// widening solves of this module.
    Lower,
}

impl StoragePrecision {
    /// All storage precisions, for exhaustive tests and histograms.
    pub const ALL: [StoragePrecision; 2] = [StoragePrecision::Native, StoragePrecision::Lower];

    /// Stable label used by the `ExecStats` precision histogram and the
    /// benchmark CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            StoragePrecision::Native => "native",
            StoragePrecision::Lower => "lower",
        }
    }
}

/// Demote a full-precision block into fresh lower-precision storage.
pub fn demote_slice<T: Scalar>(a: &[T]) -> Vec<T::Lower> {
    a.iter().map(|&v| v.demote()).collect()
}

#[inline]
fn at_widened<T: Scalar>(a: &[T::Lower], n: usize, i: usize, j: usize) -> T {
    debug_assert!(i < n && j < n);
    T::promote(a[j * n + i])
}

/// Widened [`crate::trsv::trsv_lower_unit`]: `L` is stored in
/// `T::Lower`, `b` and all arithmetic stay in `T`.
pub fn trsv_lower_unit_widened<T: Scalar>(
    variant: TrsvVariant,
    n: usize,
    a: &[T::Lower],
    b: &mut [T],
) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    match variant {
        TrsvVariant::Lazy => {
            for k in 1..n {
                let mut acc = b[k];
                for j in 0..k {
                    acc = (-at_widened::<T>(a, n, k, j)).mul_add(b[j], acc);
                }
                b[k] = acc;
            }
        }
        TrsvVariant::Eager => {
            for k in 0..n.saturating_sub(1) {
                let bk = b[k];
                let col = &a[k * n..k * n + n];
                for i in k + 1..n {
                    b[i] = (-T::promote(col[i])).mul_add(bk, b[i]);
                }
            }
        }
    }
}

/// Widened [`crate::trsv::trsv_upper`]: `U` is stored in `T::Lower`,
/// `b` and all arithmetic stay in `T`.
pub fn trsv_upper_widened<T: Scalar>(variant: TrsvVariant, n: usize, a: &[T::Lower], b: &mut [T]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    match variant {
        TrsvVariant::Lazy => {
            for k in (0..n).rev() {
                let mut acc = b[k];
                for j in k + 1..n {
                    acc = (-at_widened::<T>(a, n, k, j)).mul_add(b[j], acc);
                }
                b[k] = acc / at_widened::<T>(a, n, k, k);
            }
        }
        TrsvVariant::Eager => {
            for k in (0..n).rev() {
                let bk = b[k] / at_widened::<T>(a, n, k, k);
                b[k] = bk;
                let col = &a[k * n..k * n + n];
                for i in 0..k {
                    b[i] = (-T::promote(col[i])).mul_add(bk, b[i]);
                }
            }
        }
    }
}

/// Widened [`crate::trsv::lu_solve_inplace_scratch`]: full
/// `getrs`-style solve against a combined LU factor stored in
/// `T::Lower`. `scratch.len() >= n` for the permutation gather.
pub fn lu_solve_widened_scratch<T: Scalar>(
    variant: TrsvVariant,
    n: usize,
    lu: &[T::Lower],
    row_of_step: &[usize],
    b: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(row_of_step.len(), n);
    debug_assert!(scratch.len() >= n);
    let permuted = &mut scratch[..n];
    for (k, &r) in row_of_step.iter().enumerate() {
        permuted[k] = b[r];
    }
    b.copy_from_slice(permuted);
    trsv_lower_unit_widened(variant, n, lu, b);
    trsv_upper_widened(variant, n, lu, b);
}

#[inline]
fn gh_get<T: Scalar>(f: &GhFactors<T::Lower>, i: usize, j: usize) -> T {
    match f.layout {
        GhLayout::Normal => T::promote(f.m[(i, j)]),
        GhLayout::Transposed => T::promote(f.m[(j, i)]),
    }
}

/// Widened Gauss-Huard solve: replay the recorded transformations of a
/// `T::Lower` factor against a `T` right-hand side
/// ([`GhFactors::solve_inplace_scratch`] with promotion on every factor
/// read). `scratch.len() >= n` for the un-permute copy.
pub fn gh_solve_widened_scratch<T: Scalar>(
    f: &GhFactors<T::Lower>,
    b: &mut [T],
    scratch: &mut [T],
) {
    let n = f.order();
    debug_assert_eq!(b.len(), n);
    debug_assert!(scratch.len() >= n);
    for k in 0..n {
        let mut acc = b[k];
        for j in 0..k {
            acc = (-gh_get::<T>(f, k, j)).mul_add(b[j], acc);
        }
        acc /= gh_get::<T>(f, k, k);
        b[k] = acc;
        for i in 0..k {
            b[i] = (-gh_get::<T>(f, i, k)).mul_add(acc, b[i]);
        }
    }
    let y = &mut scratch[..n];
    y.copy_from_slice(b);
    for k in 0..n {
        b[f.q.row_of_step(k)] = y[k];
    }
}

/// Widened per-slot solve over an interleaved class whose factor data
/// is stored in `T::Lower`
/// ([`crate::interleaved::lu_solve_interleaved_slot_scratch`] with
/// promotion on every factor read). `row_of_step` uses the class-wide
/// interleaved pivot layout (`row_of_step[k * count + slot]`);
/// `scratch.len() >= n`.
pub fn lu_solve_interleaved_slot_widened_scratch<T: Scalar>(
    n: usize,
    count: usize,
    slot: usize,
    data: &[T::Lower],
    row_of_step: &[usize],
    b: &mut [T],
    scratch: &mut [T],
) {
    debug_assert_eq!(b.len(), n);
    debug_assert!(scratch.len() >= n);
    let at = |i: usize, j: usize| T::promote(data[(j * n + i) * count + slot]);
    let permuted = &mut scratch[..n];
    for (k, p) in permuted.iter_mut().enumerate() {
        *p = b[row_of_step[k * count + slot]];
    }
    b.copy_from_slice(permuted);
    for k in 0..n.saturating_sub(1) {
        let bk = b[k];
        for i in k + 1..n {
            b[i] = (-at(i, k)).mul_add(bk, b[i]);
        }
    }
    for k in (0..n).rev() {
        let bk = b[k] / at(k, k);
        b[k] = bk;
        for i in 0..k {
            b[i] = (-at(i, k)).mul_add(bk, b[i]);
        }
    }
}

/// One step of iterative refinement against the retained full-precision
/// block: `resid := saved_rhs - A x`, computed in `T` with fused
/// multiply-adds, exactly as the `EquilibratedLu` recovery apply does.
/// `a` is the column-major `n x n` block, `x` the current iterate,
/// `saved_rhs` the original right-hand side; the residual lands in
/// `resid` (length `n`).
pub fn residual_into<T: Scalar>(n: usize, a: &[T], x: &[T], saved_rhs: &[T], resid: &mut [T]) {
    debug_assert_eq!(a.len(), n * n);
    resid.copy_from_slice(saved_rhs);
    for (j, &xj) in x.iter().enumerate() {
        let col = &a[j * n..j * n + n];
        for (i, ri) in resid.iter_mut().enumerate() {
            *ri = (-col[i]).mul_add(xj, *ri);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;
    use crate::gauss_huard::gh_factorize;
    use crate::interleaved::InterleavedClass;
    use crate::lu::implicit::getrf_implicit_inplace;
    use crate::trsv::lu_solve_inplace_scratch;
    use crate::MatrixBatch;

    fn dd_mat(n: usize, seed: usize) -> DenseMat<f64> {
        DenseMat::from_fn(n, n, |i, j| {
            let h = (i * 131 + j * 37 + seed * 17 + 3) % 1024;
            h as f64 / 512.0 - 1.0 + if i == j { (n + 2) as f64 } else { 0.0 }
        })
    }

    #[test]
    fn storage_precision_labels_are_stable() {
        assert_eq!(StoragePrecision::Native.label(), "native");
        assert_eq!(StoragePrecision::Lower.label(), "lower");
        assert_eq!(StoragePrecision::ALL.len(), 2);
    }

    #[test]
    fn widened_lu_solve_at_f32_floor_matches_native_bitwise() {
        // for T = f32 the promotion is the identity, so the widened path
        // must reproduce the native solve exactly
        for n in [1usize, 3, 7, 16] {
            let a = DenseMat::<f32>::from_fn(n, n, |i, j| dd_mat(n, 5)[(i, j)] as f32);
            let mut lu = a.as_slice().to_vec();
            let perm = getrf_implicit_inplace(n, &mut lu).unwrap();
            let b0: Vec<f32> = (0..n).map(|i| 1.0 + (i % 4) as f32).collect();
            let mut scratch = vec![0.0f32; n];
            let mut native = b0.clone();
            lu_solve_inplace_scratch(
                TrsvVariant::Eager,
                n,
                &lu,
                perm.as_slice(),
                &mut native,
                &mut scratch,
            );
            let mut widened = b0.clone();
            lu_solve_widened_scratch::<f32>(
                TrsvVariant::Eager,
                n,
                &lu,
                perm.as_slice(),
                &mut widened,
                &mut scratch,
            );
            for (a, b) in native.iter().zip(&widened) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn widened_lu_solve_recovers_dp_solution_to_sp_accuracy() {
        for n in [2usize, 5, 12, 24] {
            let a = dd_mat(n, 9);
            let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.5 * (i % 3) as f64).collect();
            let b = a.matvec(&x_true);
            let mut lu_sp = demote_slice(a.as_slice());
            let perm = getrf_implicit_inplace(n, &mut lu_sp).unwrap();
            let mut x = b.clone();
            let mut scratch = vec![0.0f64; n];
            lu_solve_widened_scratch::<f64>(
                TrsvVariant::Eager,
                n,
                &lu_sp,
                perm.as_slice(),
                &mut x,
                &mut scratch,
            );
            for (got, want) in x.iter().zip(&x_true) {
                assert!(
                    (got - want).abs() < 1e-4 * (1.0 + want.abs()),
                    "n={n}: {got} vs {want}"
                );
            }
            // one refinement step against the DP block reaches far
            // beyond bare SP accuracy on these well-conditioned blocks
            let mut resid = vec![0.0f64; n];
            residual_into(n, a.as_slice(), &x, &b, &mut resid);
            let mut e = resid.clone();
            lu_solve_widened_scratch::<f64>(
                TrsvVariant::Eager,
                n,
                &lu_sp,
                perm.as_slice(),
                &mut e,
                &mut scratch,
            );
            for i in 0..n {
                x[i] += e[i];
            }
            for (got, want) in x.iter().zip(&x_true) {
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "n={n} refined: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn widened_gh_solve_recovers_solution() {
        for n in [2usize, 6, 13] {
            let a = dd_mat(n, 3);
            let x_true: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64).collect();
            let b = a.matvec(&x_true);
            let a_sp = DenseMat::<f32>::from_fn(n, n, |i, j| a[(i, j)] as f32);
            for layout in [GhLayout::Normal, GhLayout::Transposed] {
                let f = gh_factorize(&a_sp, layout).unwrap();
                let mut x = b.clone();
                let mut scratch = vec![0.0f64; n];
                gh_solve_widened_scratch::<f64>(&f, &mut x, &mut scratch);
                for (got, want) in x.iter().zip(&x_true) {
                    assert!(
                        (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                        "n={n} {layout:?}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn widened_interleaved_slot_solve_matches_widened_blocked() {
        // demote a batch, pack + factorize interleaved in SP, and check
        // each slot's widened solve against the widened blocked solve of
        // the same demoted block (identical arithmetic mod op order)
        let n = 4;
        let count = 5;
        let batch =
            MatrixBatch::<f64>::uniform_from_fn(count, n, |blk, i, j| dd_mat(n, blk)[(i, j)]);
        let members: Vec<usize> = (0..count).collect();
        let sp = MatrixBatch::<f32>::uniform_from_fn(count, n, |blk, i, j| {
            batch.block(blk)[j * n + i] as f32
        });
        let class = InterleavedClass::pack_from(&sp, &members);
        let (n2, _blocks, mut data) = class.into_parts();
        assert_eq!(n2, n);
        let mut row_of_step = vec![0usize; n * count];
        let errs =
            crate::interleaved::getrf_interleaved_class(n, count, &mut data, &mut row_of_step);
        assert!(errs.iter().all(|e| e.is_none()));
        for slot in 0..count {
            let b0: Vec<f64> = (0..n).map(|i| 1.0 + ((slot + i) % 3) as f64).collect();
            let mut x = b0.clone();
            let mut scratch = vec![0.0f64; n];
            lu_solve_interleaved_slot_widened_scratch::<f64>(
                n,
                count,
                slot,
                &data,
                &row_of_step,
                &mut x,
                &mut scratch,
            );
            let x_true = crate::lu::solve_system(&dd_mat(n, slot), &b0).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                assert!(
                    (got - want).abs() < 1e-4 * (1.0 + want.abs()),
                    "slot {slot}: {got} vs {want}"
                );
            }
        }
    }
}
