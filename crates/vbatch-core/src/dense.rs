//! Small dense matrices in column-major ("Fortran") layout.
//!
//! The paper's kernels operate on diagonal blocks of order 4–32, so the
//! owning type here is a plain `Vec`-backed column-major matrix with a
//! handful of helpers the factorization kernels need (views, norms,
//! residual checks). Column-major is the layout assumed throughout the
//! paper: the "eager" triangular solve reads one *column* per step and is
//! coalesced precisely because of this storage choice (§III-B).

use crate::scalar::Scalar;
use std::fmt;

/// Owning column-major dense matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMat<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a column-major slice. Panics if the length mismatches.
    pub fn from_col_major(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Build from a row-major slice (convenient in tests and literals).
    pub fn from_row_major(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols);
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = data[i * cols + j];
            }
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow column `j` as a slice (contiguous in column-major layout).
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Copy row `i` out into a `Vec` (rows are strided in this layout).
    pub fn row_copy(&self, i: usize) -> Vec<T> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Dense matrix–matrix product `self * other` (reference quality;
    /// only used on tiny blocks in tests and residual checks).
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other[(k, j)];
                if b == T::ZERO {
                    continue;
                }
                let col_k = self.col(k);
                let out_j = out.col_mut(j);
                for i in 0..self.rows {
                    out_j[i] = col_k[i].mul_add(b, out_j[i]);
                }
            }
        }
        out
    }

    /// Dense matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![T::ZERO; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == T::ZERO {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                *yi = aij.mul_add(xj, *yi);
            }
        }
        y
    }

    /// Elementwise subtraction `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Max-norm (largest absolute entry).
    pub fn norm_max(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |acc, &v| Scalar::max(acc, v.abs()))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |acc, &v| v.mul_add(v, acc))
            .sqrt()
    }

    /// Infinity norm (max row sum of absolute values).
    pub fn norm_inf(&self) -> T {
        let mut best = T::ZERO;
        for i in 0..self.rows {
            let mut s = T::ZERO;
            for j in 0..self.cols {
                s += self[(i, j)].abs();
            }
            best = Scalar::max(best, s);
        }
        best
    }

    /// Extract the unit-lower-triangular factor stored in a combined LU
    /// in-place factorization (ones on the diagonal, strictly lower part
    /// from `self`).
    pub fn unit_lower(&self) -> Self {
        assert!(self.is_square());
        Self::from_fn(self.rows, self.cols, |i, j| {
            if i == j {
                T::ONE
            } else if i > j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Extract the upper-triangular factor stored in a combined LU
    /// in-place factorization.
    pub fn upper(&self) -> Self {
        assert!(self.is_square());
        Self::from_fn(self.rows, self.cols, |i, j| {
            if i <= j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Row-permuted copy: row `i` of the output is row `perm[i]` of `self`.
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rows);
        Self::from_fn(self.rows, self.cols, |i, j| self[(perm[i], j)])
    }

    /// Column-permuted copy: column `j` of the output is column `perm[j]`
    /// of `self`.
    pub fn permute_cols(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.cols);
        Self::from_fn(self.rows, self.cols, |i, j| self[(i, perm[j])])
    }

    /// Swap rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let base = j * self.rows;
            self.data.swap(base + a, base + b);
        }
    }

    /// Swap columns `a` and `b` in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(a * self.rows + i, b * self.rows + i);
        }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMat<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl<T: Scalar> fmt::Debug for DenseMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Reference residual `max |P A - L U|` for a combined in-place LU
/// factorization with row permutation `perm` (row `k` of `PA` is row
/// `perm[k]` of `A`).
pub fn lu_residual<T: Scalar>(a: &DenseMat<T>, lu: &DenseMat<T>, perm: &[usize]) -> T {
    let pa = a.permute_rows(perm);
    let rec = lu.unit_lower().matmul(&lu.upper());
    pa.sub(&rec).norm_max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMat<f64> {
        DenseMat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing_is_column_major() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(0, 2)], 3.0);
        // column 0 is contiguous
        assert_eq!(m.col(0), &[1.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn from_col_major_roundtrip() {
        let m = sample();
        let m2 = DenseMat::from_col_major(2, 3, m.as_slice());
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic]
    fn from_col_major_wrong_len_panics() {
        let _ = DenseMat::<f64>::from_col_major(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = DenseMat::from_row_major(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 10.]);
        let i = DenseMat::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = DenseMat::from_row_major(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 10.]);
        let x = vec![1.0, -1.0, 2.0];
        let xm = DenseMat::from_col_major(3, 1, &x);
        let y = m.matvec(&x);
        let ym = m.matmul(&xm);
        for i in 0..3 {
            assert_eq!(y[i], ym[(i, 0)]);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn norms() {
        let m = DenseMat::from_row_major(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(m.norm_max(), 4.0);
        assert_eq!(m.norm_inf(), 7.0);
        assert!((m.norm_fro() - 30.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn row_and_col_permutations() {
        let m = DenseMat::from_row_major(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let p = m.permute_rows(&[2, 0, 1]);
        assert_eq!(p.row_copy(0), vec![7., 8., 9.]);
        assert_eq!(p.row_copy(1), vec![1., 2., 3.]);
        let q = m.permute_cols(&[1, 0, 2]);
        assert_eq!(q.col(0), m.col(1));
        assert_eq!(q.col(1), m.col(0));
    }

    #[test]
    fn swap_rows_cols() {
        let mut m = DenseMat::from_row_major(2, 2, &[1., 2., 3., 4.]);
        m.swap_rows(0, 1);
        assert_eq!(m.row_copy(0), vec![3., 4.]);
        m.swap_cols(0, 1);
        assert_eq!(m.row_copy(0), vec![4., 3.]);
        // self-swap is a no-op
        let before = m.clone();
        m.swap_rows(1, 1);
        m.swap_cols(0, 0);
        assert_eq!(m, before);
    }

    #[test]
    fn lower_upper_extraction_reconstructs() {
        // a matrix that is already in combined LU form
        let lu = DenseMat::from_row_major(2, 2, &[2.0, 4.0, 0.5, 1.0]);
        let l = lu.unit_lower();
        let u = lu.upper();
        assert_eq!(l[(0, 0)], 1.0);
        assert_eq!(l[(1, 0)], 0.5);
        assert_eq!(u[(0, 1)], 4.0);
        assert_eq!(u[(1, 0)], 0.0);
        let a = l.matmul(&u);
        assert_eq!(a[(1, 1)], 3.0); // 0.5*4 + 1*1
    }
}
