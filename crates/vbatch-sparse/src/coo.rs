//! Coordinate-format sparse matrices (assembly format; converted to CSR
//! before any computation).

use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// A sparse matrix as a list of `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of (possibly duplicate) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplets were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one triplet.
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.nrows && j < self.ncols, "({i},{j}) out of bounds");
        self.entries.push((i, j, v));
    }

    /// Append `v` at `(i,j)` and `(j,i)` (off-diagonal symmetric pair).
    pub fn push_sym(&mut self, i: usize, j: usize, v: T) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Convert to CSR, summing duplicate coordinates and dropping
    /// nothing (explicit zeros are kept — they are structurally
    /// meaningful for supervariable detection).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|&(i, j, _)| (i, j));
        // merge duplicates into a clean triplet stream
        let mut merged: Vec<(usize, usize, T)> = Vec::with_capacity(entries.len());
        for (i, j, v) in entries {
            match merged.last_mut() {
                Some((li, lj, lv)) if *li == i && *lj == j => *lv += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for &(i, _, _) in &merged {
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<usize> = merged.iter().map(|&(_, j, _)| j).collect();
        let vals: Vec<T> = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_conversion() {
        let mut c = CooMatrix::new(2, 3);
        c.push(1, 2, 5.0);
        c.push(0, 0, 1.0);
        c.push(1, 0, 2.0);
        let a = c.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(1, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 1.5);
        c.push(0, 1, 2.5);
        c.push(1, 1, 1.0);
        let a = c.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 4.0);
    }

    #[test]
    fn empty_rows_handled() {
        let mut c = CooMatrix::new(4, 4);
        c.push(0, 0, 1.0);
        c.push(3, 3, 2.0);
        let a = c.to_csr();
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.row_nnz(2), 0);
        assert_eq!(a.get(3, 3), 2.0);
    }

    #[test]
    fn symmetric_push() {
        let mut c = CooMatrix::new(3, 3);
        c.push_sym(0, 2, -1.0);
        c.push_sym(1, 1, 4.0);
        let a = c.to_csr();
        assert_eq!(a.get(0, 2), -1.0);
        assert_eq!(a.get(2, 0), -1.0);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_push() {
        let mut c = CooMatrix::<f64>::new(2, 2);
        c.push(2, 0, 1.0);
    }
}
