//! SELL-P (padded sliced ELLPACK) — the SpMV storage format of
//! MAGMA-sparse, the library the paper's kernels were integrated into.
//!
//! Rows are grouped into *slices* of a fixed height (a warp, 32, on the
//! GPU); within a slice every row is padded to the slice's longest row
//! rounded up to a multiple of the padding factor, and the slice is
//! stored column-major so that consecutive lanes read consecutive
//! addresses — a coalesced SpMV. The format trades padding zeros for
//! perfectly regular access: good for bounded row-length variance, bad
//! for power-law matrices (the padding blow-up is measurable via
//! [`SellPMatrix::padding_overhead`], which is exactly why the
//! extraction discussion of §III-C cares about nonzero distributions).

use crate::csr::CsrMatrix;
use vbatch_core::Scalar;
use vbatch_rt::prelude::*;

/// A sparse matrix in SELL-P format.
#[derive(Clone, Debug)]
pub struct SellPMatrix<T> {
    nrows: usize,
    ncols: usize,
    slice_height: usize,
    /// Offset of each slice's data block (length = #slices + 1).
    slice_ptr: Vec<usize>,
    /// Padded width of each slice.
    slice_width: Vec<usize>,
    /// Column indices, slice-local column-major, padded with 0.
    col_idx: Vec<usize>,
    /// Values, padded with zeros.
    vals: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> SellPMatrix<T> {
    /// Convert from CSR with the given slice height and padding
    /// alignment (widths are rounded up to a multiple of `pad`).
    pub fn from_csr(a: &CsrMatrix<T>, slice_height: usize, pad: usize) -> Self {
        assert!(slice_height > 0 && pad > 0);
        let nrows = a.nrows();
        let nslices = nrows.div_ceil(slice_height);
        let mut slice_ptr = Vec::with_capacity(nslices + 1);
        let mut slice_width = Vec::with_capacity(nslices);
        slice_ptr.push(0usize);
        let mut total = 0usize;
        for s in 0..nslices {
            let lo = s * slice_height;
            let hi = ((s + 1) * slice_height).min(nrows);
            let w = (lo..hi).map(|r| a.row_nnz(r)).max().unwrap_or(0);
            let w = w.div_ceil(pad) * pad;
            slice_width.push(w);
            total += w * slice_height;
            slice_ptr.push(total);
        }
        let mut col_idx = vec![0usize; total];
        let mut vals = vec![T::ZERO; total];
        for s in 0..nslices {
            let lo = s * slice_height;
            let hi = ((s + 1) * slice_height).min(nrows);
            let base = slice_ptr[s];
            for r in lo..hi {
                let lane = r - lo;
                for (k, (c, v)) in a.row_cols(r).iter().zip(a.row_vals(r)).enumerate() {
                    // column-major within the slice: element k of lane
                    // `lane` lives at base + k*slice_height + lane
                    col_idx[base + k * slice_height + lane] = *c;
                    vals[base + k * slice_height + lane] = *v;
                }
            }
        }
        SellPMatrix {
            nrows,
            ncols: a.ncols(),
            slice_height,
            slice_ptr,
            slice_width,
            col_idx,
            vals,
            nnz: a.nnz(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slice height (warp size on the GPU).
    pub fn slice_height(&self) -> usize {
        self.slice_height
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slice_width.len()
    }

    /// Total stored elements including padding.
    pub fn stored_elements(&self) -> usize {
        self.vals.len()
    }

    /// Padding overhead: stored / nnz (1.0 = no padding).
    pub fn padding_overhead(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.stored_elements() as f64 / self.nnz as f64
        }
    }

    /// `y = A x` (sequential).
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for s in 0..self.num_slices() {
            self.spmv_slice(s, x, y);
        }
    }

    /// `y = A x` with one Rayon task per slice.
    pub fn spmv_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let h = self.slice_height;
        // slices own disjoint row ranges
        y.par_chunks_mut(h).enumerate().for_each(|(s, chunk)| {
            let base = self.slice_ptr[s];
            let w = self.slice_width[s];
            for (lane, out) in chunk.iter_mut().enumerate() {
                let mut acc = T::ZERO;
                for k in 0..w {
                    let p = base + k * h + lane;
                    acc = self.vals[p].mul_add(x[self.col_idx[p]], acc);
                }
                *out = acc;
            }
        });
    }

    fn spmv_slice(&self, s: usize, x: &[T], y: &mut [T]) {
        let h = self.slice_height;
        let lo = s * h;
        let hi = (lo + h).min(self.nrows);
        let base = self.slice_ptr[s];
        let w = self.slice_width[s];
        for r in lo..hi {
            let lane = r - lo;
            let mut acc = T::ZERO;
            for k in 0..w {
                let p = base + k * h + lane;
                acc = self.vals[p].mul_add(x[self.col_idx[p]], acc);
            }
            y[r] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::circuit::circuit;
    use crate::gen::laplace::laplace_2d;
    use crate::spmv::spmv_alloc;

    #[test]
    fn matches_csr_spmv_on_laplacian() {
        let a = laplace_2d::<f64>(13, 11);
        let sp = SellPMatrix::from_csr(&a, 32, 4);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 9) as f64 / 4.0 - 1.0).collect();
        let want = spmv_alloc(&a, &x);
        let mut y = vec![0.0; a.nrows()];
        sp.spmv(&x, &mut y);
        for (p, q) in y.iter().zip(&want) {
            assert!((p - q).abs() < 1e-12);
        }
        let mut yp = vec![0.0; a.nrows()];
        sp.spmv_par(&x, &mut yp);
        assert_eq!(y, yp);
    }

    #[test]
    fn shapes_and_nnz_preserved() {
        let a = laplace_2d::<f64>(8, 8);
        let sp = SellPMatrix::from_csr(&a, 8, 2);
        assert_eq!(sp.nrows(), 64);
        assert_eq!(sp.ncols(), 64);
        assert_eq!(sp.nnz(), a.nnz());
        assert_eq!(sp.num_slices(), 8);
        assert!(sp.stored_elements() >= a.nnz());
    }

    #[test]
    fn padding_modest_on_regular_matrix() {
        let a = laplace_2d::<f64>(20, 20);
        let sp = SellPMatrix::from_csr(&a, 32, 1);
        assert!(
            sp.padding_overhead() < 1.4,
            "overhead {}",
            sp.padding_overhead()
        );
    }

    #[test]
    fn padding_blows_up_on_power_law_matrix() {
        let a = circuit::<f64>(2048, 2, 7);
        let regular = SellPMatrix::from_csr(&laplace_2d::<f64>(45, 45), 32, 1);
        let skewed = SellPMatrix::from_csr(&a, 32, 1);
        assert!(
            skewed.padding_overhead() > 1.5 * regular.padding_overhead(),
            "skewed {} vs regular {}",
            skewed.padding_overhead(),
            regular.padding_overhead()
        );
        // numerics still exact despite the padding
        let x: Vec<f64> = (0..2048).map(|i| ((i * 13) % 31) as f64 / 15.0).collect();
        let want = spmv_alloc(&a, &x);
        let mut y = vec![0.0; 2048];
        skewed.spmv(&x, &mut y);
        for (p, q) in y.iter().zip(&want) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn ragged_last_slice() {
        let a = laplace_2d::<f64>(7, 5); // 35 rows, not a multiple of 32
        let sp = SellPMatrix::from_csr(&a, 32, 4);
        assert_eq!(sp.num_slices(), 2);
        let x = vec![1.0; 35];
        let mut y = vec![0.0; 35];
        sp.spmv(&x, &mut y);
        let want = spmv_alloc(&a, &x);
        assert_eq!(y, want);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<f64>::from_raw(0, 0, vec![0], vec![], vec![]);
        let sp = SellPMatrix::from_csr(&a, 32, 4);
        assert_eq!(sp.num_slices(), 0);
        assert_eq!(sp.padding_overhead(), 1.0);
        let mut y: Vec<f64> = vec![];
        sp.spmv(&[], &mut y);
    }
}
