//! Symmetric reorderings. The paper (§II-A) notes that locality-
//! preserving orderings such as **reverse Cuthill-McKee** make
//! supervariable blocking effective, because variables that end up close
//! in the matrix ordering belong to nearby mesh elements.

use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// Compute the reverse Cuthill-McKee ordering of the symmetrized
/// pattern of `a`. Returns the permutation in row-of-step form: entry
/// `k` is the original index placed at position `k` (feed it to
/// [`CsrMatrix::permute_symmetric`]).
pub fn reverse_cuthill_mckee<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "RCM needs a square matrix");
    let n = a.nrows();
    // symmetrized adjacency (unsorted per row is fine for BFS)
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for &c in a.row_cols(r) {
            if c != r {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // process every connected component, picking the unvisited vertex
    // of minimum degree as a pseudo-peripheral start each time
    while let Some(start) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]) {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// `true` if `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::laplace::laplace_2d;

    #[test]
    fn rcm_is_a_permutation() {
        let a = laplace_2d::<f64>(7, 5);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 35);
        assert!(is_permutation(&p));
    }

    #[test]
    fn rcm_does_not_increase_bandwidth_on_shuffled_banded_matrix() {
        // take a banded matrix, scramble it, and check RCM restores a
        // bandwidth close to the original
        let a = laplace_2d::<f64>(6, 6);
        let n = a.nrows();
        // deterministic scramble
        let scramble: Vec<usize> = (0..n).map(|i| (i * 17 + 5) % n).collect();
        assert!(is_permutation(&scramble));
        let shuffled = a.permute_symmetric(&scramble);
        let rcm = reverse_cuthill_mckee(&shuffled);
        let restored = shuffled.permute_symmetric(&rcm);
        assert!(
            restored.bandwidth() <= a.bandwidth() + 2,
            "bandwidth {} vs original {}",
            restored.bandwidth(),
            a.bandwidth()
        );
        assert!(restored.bandwidth() * 2 < shuffled.bandwidth());
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        use crate::coo::CooMatrix;
        let mut c = CooMatrix::new(4, 4);
        c.push_sym(0, 1, 1.0);
        c.push_sym(2, 3, 1.0);
        for i in 0..4 {
            c.push(i, i, 4.0);
        }
        let a = c.to_csr();
        let p = reverse_cuthill_mckee(&a);
        assert!(is_permutation(&p));
    }

    #[test]
    fn rcm_of_diagonal_matrix_is_valid() {
        let a = CsrMatrix::<f64>::identity(5);
        let p = reverse_cuthill_mckee(&a);
        assert!(is_permutation(&p));
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[2, 0]));
        assert!(is_permutation(&[1, 0]));
        assert!(is_permutation(&[]));
    }
}
