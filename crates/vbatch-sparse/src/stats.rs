//! Sparse-matrix statistics: the nonzero-distribution diagnostics that
//! decide which extraction strategy wins (§III-C) and summarize the
//! test-suite problems (Table I's `n`/`nnz` columns and beyond).

use crate::blocking::BlockPartition;
use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// Summary statistics of a sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// Matrix order (rows).
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Average nonzeros per row.
    pub avg_row_nnz: f64,
    /// Maximum nonzeros in a single row.
    pub max_row_nnz: usize,
    /// Minimum nonzeros in a single row.
    pub min_row_nnz: usize,
    /// Row-imbalance factor `max / avg` — the quantity that makes the
    /// naive row-per-lane extraction collapse on circuit matrices.
    pub imbalance: f64,
    /// Standard deviation of the row lengths.
    pub row_nnz_stddev: f64,
    /// Structural bandwidth.
    pub bandwidth: usize,
    /// Fraction of rows whose diagonal entry is stored and nonzero.
    pub diag_coverage: f64,
}

/// Compute summary statistics.
pub fn matrix_stats<T: Scalar>(a: &CsrMatrix<T>) -> MatrixStats {
    let n = a.nrows();
    let nnz = a.nnz();
    let lens: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
    let avg = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
    let max = lens.iter().copied().max().unwrap_or(0);
    let min = lens.iter().copied().min().unwrap_or(0);
    let var = if n == 0 {
        0.0
    } else {
        lens.iter()
            .map(|&l| (l as f64 - avg) * (l as f64 - avg))
            .sum::<f64>()
            / n as f64
    };
    let diag_ok = (0..n).filter(|&i| a.get(i, i) != T::ZERO).count();
    MatrixStats {
        n,
        nnz,
        avg_row_nnz: avg,
        max_row_nnz: max,
        min_row_nnz: min,
        imbalance: if avg > 0.0 { max as f64 / avg } else { 0.0 },
        row_nnz_stddev: var.sqrt(),
        bandwidth: a.bandwidth(),
        diag_coverage: if n == 0 {
            1.0
        } else {
            diag_ok as f64 / n as f64
        },
    }
}

/// Histogram of row lengths in power-of-two buckets
/// (`[0], [1], [2..3], [4..7], ...`); returns `(bucket_upper, count)`.
pub fn row_length_histogram<T: Scalar>(a: &CsrMatrix<T>) -> Vec<(usize, usize)> {
    let mut buckets: Vec<(usize, usize)> = Vec::new();
    let mut upper = 0usize;
    loop {
        buckets.push((upper, 0));
        if upper >= a.nrows().max(1) {
            break;
        }
        upper = if upper == 0 { 1 } else { upper * 2 };
    }
    for r in 0..a.nrows() {
        let l = a.row_nnz(r);
        let idx = buckets
            .iter()
            .position(|&(u, _)| l <= u)
            .unwrap_or(buckets.len() - 1);
        buckets[idx].1 += 1;
    }
    buckets.retain(|&(_, c)| c > 0);
    buckets
}

/// Statistics of a block partition (the variable-size batch the
/// preconditioner will factorize).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Number of blocks.
    pub blocks: usize,
    /// Smallest block.
    pub min_size: usize,
    /// Largest block.
    pub max_size: usize,
    /// Mean block size.
    pub avg_size: f64,
    /// Total factorization flops (`2/3 n^3` per block).
    pub factor_flops: f64,
    /// Total solve flops per application (`2 n^2` per block).
    pub solve_flops: f64,
}

/// Compute partition statistics.
pub fn partition_stats(part: &BlockPartition) -> PartitionStats {
    let sizes = part.sizes();
    let blocks = sizes.len();
    let min = sizes.iter().copied().min().unwrap_or(0);
    let max = sizes.iter().copied().max().unwrap_or(0);
    let avg = if blocks == 0 {
        0.0
    } else {
        part.total() as f64 / blocks as f64
    };
    PartitionStats {
        blocks,
        min_size: min,
        max_size: max,
        avg_size: avg,
        factor_flops: sizes.iter().map(|&n| 2.0 / 3.0 * (n as f64).powi(3)).sum(),
        solve_flops: sizes.iter().map(|&n| 2.0 * (n as f64).powi(2)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::circuit::circuit;
    use crate::gen::laplace::laplace_2d;

    #[test]
    fn stats_of_laplacian() {
        let a = laplace_2d::<f64>(10, 10);
        let s = matrix_stats(&a);
        assert_eq!(s.n, 100);
        assert_eq!(s.nnz, a.nnz());
        assert_eq!(s.max_row_nnz, 5);
        assert_eq!(s.min_row_nnz, 3);
        assert!(s.imbalance < 1.3);
        assert_eq!(s.diag_coverage, 1.0);
        assert_eq!(s.bandwidth, 10);
    }

    #[test]
    fn circuit_has_high_imbalance() {
        let a = circuit::<f64>(1500, 2, 3);
        let s = matrix_stats(&a);
        assert!(
            s.imbalance > 5.0,
            "circuit should be skewed: {}",
            s.imbalance
        );
        assert!(s.row_nnz_stddev > 1.0);
    }

    #[test]
    fn histogram_counts_all_rows() {
        let a = circuit::<f64>(800, 2, 5);
        let h = row_length_histogram(&a);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 800);
        // buckets are sorted and unique
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn partition_stats_flops() {
        let part = BlockPartition::from_ptr(vec![0, 4, 6]);
        let s = partition_stats(&part);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.min_size, 2);
        assert_eq!(s.max_size, 4);
        assert!((s.avg_size - 3.0).abs() < 1e-12);
        assert!((s.factor_flops - (2.0 / 3.0) * (64.0 + 8.0)).abs() < 1e-9);
        assert!((s.solve_flops - 2.0 * (16.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_stats() {
        let a = CsrMatrix::<f64>::from_raw(0, 0, vec![0], vec![], vec![]);
        let s = matrix_stats(&a);
        assert_eq!(s.n, 0);
        assert_eq!(s.imbalance, 0.0);
        assert_eq!(s.diag_coverage, 1.0);
    }
}
