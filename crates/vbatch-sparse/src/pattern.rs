//! Block-sparsity pattern and level-set scheduling.
//!
//! [`BlockPattern`] coarsens a CSR matrix to the block level induced by
//! a [`BlockPartition`]: block `(i, j)` is present when any scalar entry
//! of `A` falls inside that block. Block-ILU(0) restricts its fill to
//! this pattern, and the global sparse triangular solves it introduces
//! are parallelized by [`LevelSchedule`] — the level-set ("topological
//! wavefront") scheduling of Ruipeng Li (*On Parallel Solution of Sparse
//! Triangular Linear Systems in CUDA*) and Chen/Liu/Yang (*Parallel
//! Triangular Solvers on GPU*): block row `i` is assigned level
//! `1 + max(level of its dependencies)`, and all rows of one level are
//! mutually independent.

use crate::blocking::BlockPartition;
use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// The block-level sparsity pattern of a matrix under a block
/// partition, stored block-CSR (sorted unique block columns per block
/// row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPattern {
    nblocks: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl BlockPattern {
    /// Coarsen `a` to the block level of `part`.
    pub fn build<T: Scalar>(a: &CsrMatrix<T>, part: &BlockPartition) -> Self {
        assert_eq!(part.total(), a.nrows(), "partition must cover the matrix");
        let nb = part.len();
        let mut row_ptr = Vec::with_capacity(nb + 1);
        let mut col_idx = Vec::new();
        // stamp[j] = block row that last saw block column j
        let mut stamp = vec![usize::MAX; nb];
        row_ptr.push(0);
        for i in 0..nb {
            let begin = col_idx.len();
            for r in part.range(i) {
                for &c in a.row_cols(r) {
                    let j = part.block_of(c);
                    if stamp[j] != i {
                        stamp[j] = i;
                        col_idx.push(j);
                    }
                }
            }
            col_idx[begin..].sort_unstable();
            row_ptr.push(col_idx.len());
        }
        BlockPattern {
            nblocks: nb,
            row_ptr,
            col_idx,
        }
    }

    /// Number of block rows (= columns; the pattern is square).
    pub fn len(&self) -> usize {
        self.nblocks
    }

    /// `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.nblocks == 0
    }

    /// Number of present blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Sorted block columns of block row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Block columns `j < i` of row `i` (the strict lower part).
    pub fn lower_cols(&self, i: usize) -> &[usize] {
        let row = self.row_cols(i);
        let split = row.partition_point(|&j| j < i);
        &row[..split]
    }

    /// Block columns `j > i` of row `i` (the strict upper part).
    pub fn upper_cols(&self, i: usize) -> &[usize] {
        let row = self.row_cols(i);
        let split = row.partition_point(|&j| j <= i);
        &row[split..]
    }

    /// `true` when block `(i, j)` is present (binary search).
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.row_cols(i).binary_search(&j).is_ok()
    }
}

/// Which triangle of a block pattern a schedule (or sweep) covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriKind {
    /// Strict lower triangle: row `i` depends on rows `j < i`.
    Lower,
    /// Strict upper triangle: row `i` depends on rows `j > i`.
    Upper,
}

/// A level-set schedule of one triangle of a [`BlockPattern`]: a
/// partition of the block rows into *levels* such that every row's
/// dependencies sit in strictly earlier levels. Rows of one level are
/// mutually independent and can be solved concurrently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSchedule {
    kind: TriKind,
    /// Level boundaries over `rows` (`ptr[l]..ptr[l+1]` is level `l`).
    ptr: Vec<usize>,
    /// Block rows grouped by level, ascending row index within a level.
    rows: Vec<usize>,
    /// Level of every block row.
    level_of: Vec<usize>,
}

impl LevelSchedule {
    /// Schedule the strict lower triangle of `pattern` (forward sweep).
    pub fn lower(pattern: &BlockPattern) -> Self {
        Self::build(pattern, TriKind::Lower)
    }

    /// Schedule the strict upper triangle of `pattern` (backward sweep).
    pub fn upper(pattern: &BlockPattern) -> Self {
        Self::build(pattern, TriKind::Upper)
    }

    fn build(pattern: &BlockPattern, kind: TriKind) -> Self {
        let nb = pattern.len();
        let mut level_of = vec![0usize; nb];
        let mut max_level = 0usize;
        // A row's dependencies all have smaller (Lower) / larger (Upper)
        // indices, so one pass in dependency order fixes every level.
        let order: Box<dyn Iterator<Item = usize>> = match kind {
            TriKind::Lower => Box::new(0..nb),
            TriKind::Upper => Box::new((0..nb).rev()),
        };
        for i in order {
            let deps = match kind {
                TriKind::Lower => pattern.lower_cols(i),
                TriKind::Upper => pattern.upper_cols(i),
            };
            let lvl = deps.iter().map(|&j| level_of[j] + 1).max().unwrap_or(0);
            level_of[i] = lvl;
            max_level = max_level.max(lvl);
        }
        let nlevels = if nb == 0 { 0 } else { max_level + 1 };
        let mut counts = vec![0usize; nlevels + 1];
        for &l in &level_of {
            counts[l + 1] += 1;
        }
        for l in 0..nlevels {
            counts[l + 1] += counts[l];
        }
        let ptr = counts.clone();
        let mut next = counts;
        let mut rows = vec![0usize; nb];
        // ascending row index within each level (stable fill)
        for (i, &l) in level_of.iter().enumerate() {
            rows[next[l]] = i;
            next[l] += 1;
        }
        LevelSchedule {
            kind,
            ptr,
            rows,
            level_of,
        }
    }

    /// The triangle this schedule covers.
    pub fn kind(&self) -> TriKind {
        self.kind
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.ptr.len().saturating_sub(1)
    }

    /// Block rows of level `l`, ascending row index.
    pub fn level(&self, l: usize) -> &[usize] {
        &self.rows[self.ptr[l]..self.ptr[l + 1]]
    }

    /// The level assigned to block row `i`.
    pub fn level_of(&self, i: usize) -> usize {
        self.level_of[i]
    }

    /// Total block rows covered (= number of block rows of the pattern).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Widest level (the available parallelism bound).
    pub fn max_width(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::gen::laplace::laplace_2d;

    fn block_tridiag(nb: usize, bs: usize) -> (CsrMatrix<f64>, BlockPartition) {
        let n = nb * bs;
        let mut c = CooMatrix::new(n, n);
        for b in 0..nb {
            for i in 0..bs {
                for j in 0..bs {
                    c.push(b * bs + i, b * bs + j, if i == j { 4.0 } else { 0.5 });
                }
                if b + 1 < nb {
                    c.push(b * bs + i, (b + 1) * bs + i, -1.0);
                    c.push((b + 1) * bs + i, b * bs + i, -1.0);
                }
            }
        }
        (c.to_csr(), BlockPartition::uniform(n, bs))
    }

    #[test]
    fn pattern_of_block_tridiagonal() {
        let (a, part) = block_tridiag(4, 3);
        let p = BlockPattern::build(&a, &part);
        assert_eq!(p.len(), 4);
        assert_eq!(p.nnz_blocks(), 10); // 4 diag + 3 sub + 3 super
        assert_eq!(p.row_cols(0), &[0, 1]);
        assert_eq!(p.row_cols(1), &[0, 1, 2]);
        assert_eq!(p.lower_cols(2), &[1]);
        assert_eq!(p.upper_cols(2), &[3]);
        assert!(p.contains(1, 2));
        assert!(!p.contains(0, 3));
    }

    #[test]
    fn tridiagonal_levels_are_a_chain() {
        let (a, part) = block_tridiag(5, 2);
        let p = BlockPattern::build(&a, &part);
        let lo = LevelSchedule::lower(&p);
        assert_eq!(lo.num_levels(), 5);
        for i in 0..5 {
            assert_eq!(lo.level_of(i), i);
        }
        let up = LevelSchedule::upper(&p);
        assert_eq!(up.num_levels(), 5);
        for i in 0..5 {
            assert_eq!(up.level_of(i), 4 - i);
        }
        assert_eq!(up.level(0), &[4]);
        assert_eq!(lo.max_width(), 1);
    }

    #[test]
    fn block_diagonal_collapses_to_one_level() {
        // no off-diagonal blocks: every row is level 0
        let n = 12;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
        }
        let a = c.to_csr();
        let part = BlockPartition::uniform(n, 3);
        let p = BlockPattern::build(&a, &part);
        let lo = LevelSchedule::lower(&p);
        assert_eq!(lo.num_levels(), 1);
        assert_eq!(lo.level(0), &[0, 1, 2, 3]);
        assert_eq!(lo.max_width(), 4);
    }

    #[test]
    fn schedules_are_topological_partitions() {
        let a = laplace_2d::<f64>(12, 12);
        let part = BlockPartition::uniform(144, 5);
        let p = BlockPattern::build(&a, &part);
        for sched in [LevelSchedule::lower(&p), LevelSchedule::upper(&p)] {
            // partition: every row appears exactly once
            let mut seen = vec![false; p.len()];
            for l in 0..sched.num_levels() {
                for &i in sched.level(l) {
                    assert!(!seen[i]);
                    seen[i] = true;
                    assert_eq!(sched.level_of(i), l);
                }
            }
            assert!(seen.iter().all(|&s| s));
            // topological: every dependency sits in a strictly earlier level
            for i in 0..p.len() {
                let deps = match sched.kind() {
                    TriKind::Lower => p.lower_cols(i),
                    TriKind::Upper => p.upper_cols(i),
                };
                for &j in deps {
                    assert!(sched.level_of(j) < sched.level_of(i), "{j} -> {i}");
                }
            }
        }
    }

    #[test]
    fn empty_matrix_schedules_cleanly() {
        let a = CsrMatrix::<f64>::from_raw(0, 0, vec![0], vec![], vec![]);
        let part = BlockPartition::from_ptr(vec![0]);
        let p = BlockPattern::build(&a, &part);
        assert!(p.is_empty());
        let s = LevelSchedule::lower(&p);
        assert_eq!(s.num_levels(), 0);
        assert_eq!(s.max_width(), 0);
    }
}
