//! The 48-problem synthetic test suite mirroring Table I of the paper.
//!
//! Every entry is a *synthetic analogue* of one SuiteSparse matrix from
//! the paper's test set: same problem class (FEM shell, stiffness,
//! waveguide, circuit, thermal, 3D mesh graph, …), inherent block
//! structure where the original has one, deterministic seed, and a size
//! scaled down (~10–100×) to CPU-experiment budgets. Names carry the
//! original's name for cross-referencing with Table I.

use super::circuit::{chem_banded, circuit, nd_graph, thermal};
use super::fem::{
    fem_block_matrix, fem_variable_block_matrix, mixed_dofs, stiffness_block_matrix, MeshGraph,
};
use super::laplace::{anisotropic_2d, laplace_2d, laplace_3d};
use super::laplace::{convection_diffusion_2d, waveguide};
use crate::csr::CsrMatrix;

/// Problem class of a suite entry (mirrors the application areas in
/// Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProblemClass {
    /// Shell / structural FEM with multi-dof supervariables.
    StructuralShell,
    /// Stiffness matrices (SPD, 3 dofs per node).
    Stiffness,
    /// Dielectric waveguide (`dw*`) / spectral problems.
    Waveguide,
    /// Circuit simulation (power-law rows).
    Circuit,
    /// Thermal / diffusion / ecology grids.
    Thermal,
    /// 3D mesh graphs (`nd*`).
    MeshGraph,
    /// Electromagnetics (CurlCurl-like irregular FEM).
    Electromagnetics,
    /// Computational fluid dynamics / convection.
    Cfd,
    /// Pressure-Poisson (2D Laplacian).
    Poisson2d,
    /// 3D thermal Laplacian.
    Poisson3d,
    /// Chemical kinetics / reservoir banded problems (`olm*`, `saylr*`).
    ChemKinetics,
    /// Strongly anisotropic diffusion grids.
    Anisotropic,
}

/// One entry of the synthetic Table-I suite.
#[derive(Clone, Debug)]
pub struct SuiteProblem {
    /// Identifier `<original-name>` (see Table I of the paper).
    pub name: &'static str,
    /// Sequential ID (the "ID" column of Table I, 1-based).
    pub id: usize,
    /// Problem class driving the generator choice.
    pub class: ProblemClass,
    /// Generator seed.
    pub seed: u64,
    /// Size knob (meaning depends on the class).
    pub scale: usize,
    /// Dofs per node for FEM-like classes (supervariable size).
    pub dof: usize,
}

impl SuiteProblem {
    /// Build the matrix for this entry.
    pub fn build(&self) -> CsrMatrix<f64> {
        let s = self.scale;
        match self.class {
            ProblemClass::StructuralShell => {
                let mesh = MeshGraph::shell2d(s, s);
                fem_block_matrix(&mesh, self.dof, 0.35, 0.05, self.seed)
            }
            ProblemClass::Stiffness => {
                let mesh = MeshGraph::grid2d(s, s);
                stiffness_block_matrix(&mesh, self.dof, 0.4, self.seed)
            }
            ProblemClass::Waveguide => waveguide(s, 4, self.seed),
            ProblemClass::Circuit => circuit(s, 2 + (self.seed % 3) as usize, self.seed),
            ProblemClass::Thermal => thermal(s, s, self.seed),
            ProblemClass::MeshGraph => nd_graph(s, s, s, self.seed),
            ProblemClass::Electromagnetics => {
                let mesh = MeshGraph::grid3d(s, s, s);
                let dofs = mixed_dofs(mesh.nodes, &[2, 3, 4], self.seed);
                fem_variable_block_matrix(&mesh, &dofs, 0.3, self.seed)
            }
            ProblemClass::Cfd => convection_diffusion_2d(s, s, 0.8),
            ProblemClass::Poisson2d => laplace_2d(s, s),
            ProblemClass::Poisson3d => laplace_3d(s, s, s),
            ProblemClass::ChemKinetics => chem_banded(s, 8 + (self.seed % 8) as usize, self.seed),
            ProblemClass::Anisotropic => anisotropic_2d(s, s, 0.02),
        }
    }

    /// Matrix order of the built problem (cheap to compute from knobs
    /// for most classes; built lazily otherwise).
    pub fn size_hint(&self) -> usize {
        let s = self.scale;
        match self.class {
            ProblemClass::StructuralShell => s * s * self.dof,
            ProblemClass::Stiffness => s * s * self.dof,
            ProblemClass::Waveguide | ProblemClass::Circuit => s,
            ProblemClass::Thermal | ProblemClass::Cfd => s * s,
            ProblemClass::MeshGraph => s * s * s,
            ProblemClass::Electromagnetics => s * s * s * 3, // average dof
            ProblemClass::Poisson2d | ProblemClass::Anisotropic => s * s,
            ProblemClass::Poisson3d => s * s * s,
            ProblemClass::ChemKinetics => s,
        }
    }
}

/// The full 48-problem suite, ordered by Table I's "ID" column.
pub fn table1_suite() -> Vec<SuiteProblem> {
    use ProblemClass::*;
    let spec: [(&'static str, ProblemClass, usize, usize); 48] = [
        // (name, class, scale, dof)
        ("ABACUS_shell_ud", StructuralShell, 28, 6),
        ("af_shell3", StructuralShell, 38, 6),
        ("bcsstk17", Stiffness, 34, 3),
        ("bcsstk18", Stiffness, 30, 3),
        ("bcsstk38", Stiffness, 24, 3),
        ("bmw3_2", StructuralShell, 34, 6),
        ("cbuckle", StructuralShell, 28, 4),
        ("Chebyshev2", Waveguide, 1200, 1),
        ("Chebyshev3", Waveguide, 2400, 1),
        ("ckt11752_dc_1", Circuit, 9000, 1),
        ("crankseg_1", Stiffness, 26, 6),
        ("CurlCurl_0", Electromagnetics, 12, 3),
        ("dc3", Circuit, 12000, 1),
        ("dw1024", Waveguide, 1024, 1),
        ("dw2048", Waveguide, 2048, 1),
        ("dw4096", Waveguide, 4096, 1),
        ("dw8192", Waveguide, 8192, 1),
        ("ecology2", Anisotropic, 90, 1),
        ("F2", Stiffness, 30, 4),
        ("FEM_3D_thermal1", Poisson3d, 18, 1),
        ("G2_circuit", Circuit, 15000, 1),
        ("G3_circuit", Circuit, 20000, 1),
        ("gas_sensor", Thermal, 70, 1),
        ("gridgena", Anisotropic, 64, 1),
        ("HOOK_1498", StructuralShell, 34, 5),
        ("ibm_matrix_2", Circuit, 8000, 1),
        ("inv-extrusion-1", Cfd, 60, 1),
        ("Kuu", Stiffness, 26, 3),
        ("matrix_9", Circuit, 7000, 1),
        ("matrix-new_3", Circuit, 6000, 1),
        ("ML_Geer", StructuralShell, 40, 6),
        ("Muu", Stiffness, 26, 3),
        ("nasa2910", Stiffness, 22, 4),
        ("nd3k", MeshGraph, 13, 1),
        ("nd6k", MeshGraph, 16, 1),
        ("nd12k", MeshGraph, 20, 1),
        ("nd24k", MeshGraph, 25, 1),
        ("olm5000", ChemKinetics, 5000, 1),
        ("Pres_Poisson", Poisson2d, 70, 1),
        ("rail_79841", StructuralShell, 36, 4),
        ("rajat31", Circuit, 18000, 1),
        ("s1rmq4m1", StructuralShell, 26, 5),
        ("s2rmq4m1", StructuralShell, 27, 5),
        ("s3rmq4m1", StructuralShell, 28, 5),
        ("s3rmt3m3", StructuralShell, 25, 5),
        ("saylr4", ChemKinetics, 3600, 1),
        ("ship_003", StructuralShell, 36, 6),
        ("sme3Db", Cfd, 75, 1),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, class, scale, dof))| SuiteProblem {
            name,
            id: i + 1,
            class,
            seed: 1000 + i as u64,
            scale,
            dof,
        })
        .collect()
}

/// Look one suite problem up by name.
pub fn by_name(name: &str) -> Option<SuiteProblem> {
    table1_suite().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::supervariable_blocking;
    use crate::extract::block_coverage;

    #[test]
    fn suite_has_48_unique_entries() {
        let s = table1_suite();
        assert_eq!(s.len(), 48);
        let mut names: Vec<&str> = s.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 48);
        for (i, p) in s.iter().enumerate() {
            assert_eq!(p.id, i + 1);
        }
    }

    #[test]
    fn every_problem_builds_square_nonempty() {
        for p in table1_suite() {
            let a = p.build();
            assert_eq!(a.nrows(), a.ncols(), "{}", p.name);
            assert!(a.nrows() >= 500, "{} too small: {}", p.name, a.nrows());
            assert!(a.nrows() <= 45_000, "{} too large: {}", p.name, a.nrows());
            assert!(a.nnz() > a.nrows(), "{}", p.name);
            // nonzero diagonal everywhere (block-Jacobi needs it)
            assert!(
                a.diagonal().iter().all(|&d| d != 0.0),
                "{} has a zero diagonal entry",
                p.name
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let p = by_name("bcsstk17").unwrap();
        assert_eq!(p.build(), p.build());
    }

    #[test]
    fn block_structured_problems_have_good_coverage() {
        for name in ["ABACUS_shell_ud", "bcsstk17", "ship_003"] {
            let p = by_name(name).unwrap();
            let a = p.build();
            let part = supervariable_blocking(&a, 32);
            let cov = block_coverage(&a, &part);
            assert!(
                cov > 0.25,
                "{name}: diagonal blocks capture only {cov:.2} of nnz"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("dw1024").is_some());
        assert!(by_name("not-a-matrix").is_none());
        assert_eq!(by_name("dw1024").unwrap().scale, 1024);
    }

    #[test]
    fn size_hints_are_close() {
        for p in table1_suite() {
            if p.class == ProblemClass::Electromagnetics {
                continue; // average-dof estimate only
            }
            let a = p.build();
            assert_eq!(a.nrows(), p.size_hint(), "{}", p.name);
        }
    }
}
