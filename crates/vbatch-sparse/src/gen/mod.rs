//! Synthetic sparse-matrix generators.
//!
//! The paper evaluates on 48 SuiteSparse matrices (Table I). Those
//! originals are not redistributable here, so this module provides
//! deterministic generators for the *classes* they represent — finite
//! element discretizations with multi-dof supervariable structure,
//! stiffness matrices, waveguide problems, circuit matrices with
//! power-law nonzero distributions, thermal/diffusion problems and 3D
//! mesh graphs — plus [`suite`], a named 48-problem test set mirroring
//! Table I (scaled to CPU-friendly sizes). See DESIGN.md for the
//! substitution rationale.

pub mod circuit;
pub mod fem;
pub mod laplace;
pub mod suite;

use vbatch_rt::SmallRng;

/// Deterministic RNG for a generator seed.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0x5eed_ba5e_0123_4567)
}

/// Uniform value in `[lo, hi)` from the generator RNG.
pub(crate) fn uni(r: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    r.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..10 {
            assert_eq!(uni(&mut a, 0.0, 1.0), uni(&mut b, 0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        let va: Vec<f64> = (0..4).map(|_| uni(&mut a, 0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..4).map(|_| uni(&mut b, 0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }
}
