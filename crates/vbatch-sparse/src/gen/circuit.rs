//! Circuit-simulation-style generators: very unbalanced (power-law)
//! nonzero distributions — the worst case the paper's shared-memory
//! extraction strategy (§III-C) is designed for — plus graph-partition
//! style matrices (`nd*`) and simple thermal/economic patterns.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// Preferential-attachment circuit matrix: node `i` connects to `m`
/// earlier nodes chosen with probability proportional to their current
/// degree, producing a handful of extremely dense rows (supply rails)
/// and many short ones. Nonsymmetric values, diagonally dominant.
pub fn circuit<T: Scalar>(n: usize, m: usize, seed: u64) -> CsrMatrix<T> {
    assert!(n > m && m > 0);
    let mut r = super::rng(seed);
    // target list grows with every endpoint: preferential attachment
    let mut targets: Vec<usize> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * m);
    for v in 0..n {
        if v == 0 {
            targets.push(0);
            continue;
        }
        let mut chosen = std::collections::BTreeSet::new();
        for _ in 0..m.min(v) {
            let pick = if targets.is_empty() {
                0
            } else {
                targets[r.gen_range(0..targets.len())]
            };
            chosen.insert(pick);
        }
        for &u in &chosen {
            edges.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    let mut entries = Vec::new();
    for &(u, v) in &edges {
        // negative conductances, mildly nonsymmetric (controlled sources)
        let a = -super::uni(&mut r, 0.1, 1.0);
        let b = a * super::uni(&mut r, 0.5, 1.0);
        entries.push((u, v, a));
        entries.push((v, u, b));
        rowsum[u] += a.abs();
        rowsum[v] += b.abs();
    }
    for (i, j, v) in entries {
        c.push(i, j, T::from_f64(v));
    }
    for i in 0..n {
        // barely dominant: dense hub rows make the system genuinely hard
        c.push(
            i,
            i,
            T::from_f64(rowsum[i].max(0.5) * (1.0 + 0.005 + super::uni(&mut r, 0.0, 0.01))),
        );
    }
    c.to_csr()
}

/// `nd*`-style 3D mesh-graph matrix: a 3D grid with a 27-point
/// neighbourhood, fairly dense rows of uniform length.
pub fn nd_graph<T: Scalar>(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrMatrix<T> {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            if di == 0 && dj == 0 && dk == 0 {
                                continue;
                            }
                            let (ni, nj, nk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ni < 0
                                || nj < 0
                                || nk < 0
                                || ni >= nx as i64
                                || nj >= ny as i64
                                || nk >= nz as i64
                            {
                                continue;
                            }
                            // emit each undirected pair once
                            if (di, dj, dk) < (0, 0, 0) {
                                continue;
                            }
                            let other = idx(ni as usize, nj as usize, nk as usize);
                            let v = super::uni(&mut r, -0.5, -0.1);
                            c.push(me, other, T::from_f64(v));
                            c.push(other, me, T::from_f64(v));
                            rowsum[me] += v.abs();
                            rowsum[other] += v.abs();
                        }
                    }
                }
            }
        }
    }
    for (me, &sum) in rowsum.iter().enumerate() {
        c.push(me, me, T::from_f64(sum.max(0.5) * 1.005));
    }
    c.to_csr()
}

/// Thermal/diffusion-style matrix with mild random heterogeneity on a
/// 2D grid (gas-sensor / ecology class).
pub fn thermal<T: Scalar>(nx: usize, ny: usize, seed: u64) -> CsrMatrix<T> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    // per-edge conductivities; the diagonal gets the row sum plus a tiny
    // reaction term — barely dominant, like a heat problem with weak losses
    let mut diag = vec![0.0f64; n];
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            if i + 1 < nx {
                let k = 1.0 + super::uni(&mut r, 0.0, 2.0);
                c.push_sym(me, idx(i + 1, j), T::from_f64(-k));
                diag[me] += k;
                diag[idx(i + 1, j)] += k;
            }
            if j + 1 < ny {
                let k = 1.0 + super::uni(&mut r, 0.0, 2.0);
                c.push_sym(me, idx(i, j + 1), T::from_f64(-k));
                diag[me] += k;
                diag[idx(i, j + 1)] += k;
            }
        }
    }
    for (me, &d) in diag.iter().enumerate() {
        c.push(me, me, T::from_f64(d.max(0.5) * 1.005));
    }
    c.to_csr()
}

/// Chemical-engineering-style lower-bandwidth nonsymmetric matrix
/// (`olm*`/`saylr*` class): tridiagonal plus a far off-diagonal.
pub fn chem_banded<T: Scalar>(n: usize, offset: usize, seed: u64) -> CsrMatrix<T> {
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    let push = |c: &mut CooMatrix<T>, rowsum: &mut Vec<f64>, i: usize, j: usize, v: f64| {
        c.push(i, j, T::from_f64(v));
        rowsum[i] += v.abs();
    };
    for i in 0..n {
        if i + 1 < n {
            push(
                &mut c,
                &mut rowsum,
                i,
                i + 1,
                -1.0 + super::uni(&mut r, -0.2, 0.2),
            );
            push(
                &mut c,
                &mut rowsum,
                i + 1,
                i,
                -1.5 + super::uni(&mut r, -0.2, 0.2),
            );
        }
        if i + offset < n {
            push(&mut c, &mut rowsum, i, i + offset, -0.3);
            push(&mut c, &mut rowsum, i + offset, i, -0.2);
        }
    }
    for (i, &sum) in rowsum.iter().enumerate() {
        c.push(
            i,
            i,
            T::from_f64(sum.max(0.5) * (1.005 + super::uni(&mut r, 0.0, 0.01))),
        );
    }
    c.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_is_power_law_ish() {
        let a = circuit::<f64>(2000, 2, 11);
        assert_eq!(a.nrows(), 2000);
        let lens: Vec<usize> = (0..2000).map(|r| a.row_nnz(r)).collect();
        let max = *lens.iter().max().unwrap();
        let mean = lens.iter().sum::<usize>() as f64 / 2000.0;
        assert!(
            max as f64 > 8.0 * mean,
            "expected a heavy hub row: max {max}, mean {mean}"
        );
    }

    #[test]
    fn circuit_is_diagonally_dominant() {
        let a = circuit::<f64>(300, 3, 5);
        for r in 0..300 {
            let diag = a.get(r, r).abs();
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(c, _)| **c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag >= off, "row {r}: {diag} < {off}");
        }
    }

    #[test]
    fn nd_graph_has_uniform_dense_rows() {
        let a = nd_graph::<f64>(5, 5, 5, 3);
        assert_eq!(a.nrows(), 125);
        // interior rows have the full 27-point stencil
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row_nnz(center), 27);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn thermal_symmetric_dominant() {
        let a = thermal::<f64>(8, 8, 2);
        assert!(a.is_symmetric(1e-12));
        for r in 0..64 {
            let diag = a.get(r, r);
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(c, _)| **c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag >= off);
        }
    }

    #[test]
    fn chem_banded_pattern() {
        let a = chem_banded::<f64>(50, 10, 4);
        assert!(!a.is_symmetric(1e-12));
        assert_eq!(a.get(0, 10), -0.3);
        assert_eq!(a.get(10, 0), -0.2);
        assert!(a.bandwidth() == 10);
    }

    #[test]
    fn determinism() {
        assert_eq!(circuit::<f64>(200, 2, 9), circuit::<f64>(200, 2, 9));
        assert_ne!(circuit::<f64>(200, 2, 9), circuit::<f64>(200, 2, 10));
    }
}
