//! Grid-based PDE discretizations: Laplacians, anisotropic diffusion,
//! convection-diffusion (nonsymmetric) and banded waveguide-like
//! operators.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// 5-point 2D Laplacian on an `nx x ny` grid (SPD, scalar variables).
pub fn laplace_2d<T: Scalar>(nx: usize, ny: usize) -> CsrMatrix<T> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut c = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            c.push(me, me, T::from_f64(4.0));
            if i + 1 < nx {
                c.push(me, idx(i + 1, j), -T::ONE);
                c.push(idx(i + 1, j), me, -T::ONE);
            }
            if j + 1 < ny {
                c.push(me, idx(i, j + 1), -T::ONE);
                c.push(idx(i, j + 1), me, -T::ONE);
            }
        }
    }
    c.to_csr()
}

/// 7-point 3D Laplacian on an `nx x ny x nz` grid (SPD).
pub fn laplace_3d<T: Scalar>(nx: usize, ny: usize, nz: usize) -> CsrMatrix<T> {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut c = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                c.push(me, me, T::from_f64(6.0));
                if i + 1 < nx {
                    c.push_sym(me, idx(i + 1, j, k), -T::ONE);
                }
                if j + 1 < ny {
                    c.push_sym(me, idx(i, j + 1, k), -T::ONE);
                }
                if k + 1 < nz {
                    c.push_sym(me, idx(i, j, k + 1), -T::ONE);
                }
            }
        }
    }
    c.to_csr()
}

/// Anisotropic 2D diffusion: x-coupling `-1`, y-coupling `-eps`.
pub fn anisotropic_2d<T: Scalar>(nx: usize, ny: usize, eps: f64) -> CsrMatrix<T> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let e = T::from_f64(eps);
    let mut c = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            c.push(me, me, T::from_f64(2.0 + 2.0 * eps));
            if i + 1 < nx {
                c.push_sym(me, idx(i + 1, j), -T::ONE);
            }
            if j + 1 < ny {
                c.push_sym(me, idx(i, j + 1), -e);
            }
        }
    }
    c.to_csr()
}

/// Upwind convection-diffusion on a 2D grid: nonsymmetric, the natural
/// target for IDR-type solvers.
pub fn convection_diffusion_2d<T: Scalar>(nx: usize, ny: usize, wind: f64) -> CsrMatrix<T> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let w = T::from_f64(wind);
    let mut c = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            c.push(me, me, T::from_f64(4.0 + wind));
            if i + 1 < nx {
                c.push(me, idx(i + 1, j), -T::ONE);
                c.push(idx(i + 1, j), me, -T::ONE - w); // upwind bias
            }
            if j + 1 < ny {
                c.push(me, idx(i, j + 1), -T::ONE);
                c.push(idx(i, j + 1), me, -T::ONE);
            }
        }
    }
    c.to_csr()
}

/// Banded, oscillatory, nonsymmetric operator mimicking the `dw*`
/// dielectric-waveguide family: a tridiagonal-block band with slowly
/// varying coefficients.
pub fn waveguide<T: Scalar>(n: usize, half_bw: usize, seed: u64) -> CsrMatrix<T> {
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    for i in 0..n {
        let phase = i as f64 * 0.37;
        for d in 1..=half_bw {
            if i + d < n {
                // negative-dominated band with oscillatory magnitude
                let v = -(0.2 + 0.8 * (phase + d as f64).cos().abs()) / d as f64;
                let w = v * 0.9 - 0.05;
                c.push(i, i + d, T::from_f64(v));
                c.push(i + d, i, T::from_f64(w));
                rowsum[i] += v.abs();
                rowsum[i + d] += w.abs();
            }
        }
    }
    for (i, &sum) in rowsum.iter().enumerate() {
        let phase = i as f64 * 0.37;
        let margin = 1.004 + 0.004 * phase.sin().abs() + super::uni(&mut r, 0.0, 0.002);
        c.push(i, i, T::from_f64(sum.max(0.4) * margin));
    }
    c.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_alloc;

    #[test]
    fn laplace_2d_shape_and_symmetry() {
        let a = laplace_2d::<f64>(4, 3);
        assert_eq!(a.nrows(), 12);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(0, 0), 4.0);
        // interior row has 5 entries
        let interior = 3 + 1;
        assert_eq!(a.row_nnz(interior), 5);
    }

    #[test]
    fn laplace_2d_annihilates_nothing_but_scales_constants() {
        // A * ones has zero interior rows except boundary contributions
        let a = laplace_2d::<f64>(5, 5);
        let ones = vec![1.0; 25];
        let y = spmv_alloc(&a, &ones);
        // interior: 4 - 4 = 0
        assert_eq!(y[12], 0.0);
        // corner: 4 - 2 = 2
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn laplace_3d_shape() {
        let a = laplace_3d::<f64>(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.row_nnz(13), 7); // center has full stencil
    }

    #[test]
    fn anisotropic_couplings() {
        let a = anisotropic_2d::<f64>(3, 3, 0.01);
        assert!((a.get(0, 3) + 1.0).abs() < 1e-15); // x-neighbor
        assert!((a.get(0, 1) + 0.01).abs() < 1e-15); // y-neighbor
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn convection_is_nonsymmetric() {
        let a = convection_diffusion_2d::<f64>(4, 4, 1.5);
        assert!(!a.is_symmetric(1e-12));
        assert_eq!(a.get(0, 4), -1.0);
        assert_eq!(a.get(4, 0), -2.5);
    }

    #[test]
    fn waveguide_banded_and_deterministic() {
        let a = waveguide::<f64>(100, 3, 9);
        let b = waveguide::<f64>(100, 3, 9);
        assert_eq!(a, b);
        assert!(a.bandwidth() <= 3);
        assert!(!a.is_symmetric(1e-12));
    }
}
