//! Finite-element-style generators with explicit *supervariable*
//! structure: every mesh node carries `dof` unknowns that share one
//! column pattern, producing exactly the block structure supervariable
//! blocking is designed to discover (§II-A).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// Mesh adjacency as an edge list over `nodes` vertices.
pub struct MeshGraph {
    /// Number of mesh nodes.
    pub nodes: usize,
    /// Undirected edges (`a < b`).
    pub edges: Vec<(usize, usize)>,
}

impl MeshGraph {
    /// Structured 2D grid mesh.
    pub fn grid2d(nx: usize, ny: usize) -> Self {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut edges = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    edges.push((idx(i, j), idx(i + 1, j)));
                }
                if j + 1 < ny {
                    edges.push((idx(i, j), idx(i, j + 1)));
                }
            }
        }
        MeshGraph {
            nodes: nx * ny,
            edges,
        }
    }

    /// Structured 3D grid mesh.
    pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Self {
        let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
        let mut edges = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    if i + 1 < nx {
                        edges.push((idx(i, j, k), idx(i + 1, j, k)));
                    }
                    if j + 1 < ny {
                        edges.push((idx(i, j, k), idx(i, j + 1, k)));
                    }
                    if k + 1 < nz {
                        edges.push((idx(i, j, k), idx(i, j, k + 1)));
                    }
                }
            }
        }
        MeshGraph {
            nodes: nx * ny * nz,
            edges,
        }
    }

    /// 2D grid with diagonal bracing (shell-like connectivity, 8
    /// neighbours in the interior).
    pub fn shell2d(nx: usize, ny: usize) -> Self {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut g = Self::grid2d(nx, ny);
        for i in 0..nx.saturating_sub(1) {
            for j in 0..ny.saturating_sub(1) {
                g.edges.push((idx(i, j), idx(i + 1, j + 1)));
                g.edges.push((idx(i, j + 1), idx(i + 1, j)));
            }
        }
        g
    }
}

/// Assemble a block-structured FEM-like matrix over a mesh: `dof`
/// unknowns per node, dense `dof x dof` coupling on the diagonal and on
/// every mesh edge. `nonsym` adds a nonsymmetric perturbation;
/// `coupling` scales the inter-node blocks relative to the node block.
///
/// The diagonal is set to the row's absolute off-diagonal sum times
/// `1 + eps` with a small `eps`: like a true stiffness assembly the matrix
/// is *barely* diagonally dominant, so Krylov iteration counts grow with
/// the mesh (hundreds of iterations, as in Table I) and the quality of
/// the preconditioner genuinely matters.
pub fn fem_block_matrix<T: Scalar>(
    mesh: &MeshGraph,
    dof: usize,
    coupling: f64,
    nonsym: f64,
    seed: u64,
) -> CsrMatrix<T> {
    fem_block_matrix_eps(mesh, dof, coupling, nonsym, 0.005, seed)
}

/// [`fem_block_matrix`] with an explicit dominance margin `eps`.
pub fn fem_block_matrix_eps<T: Scalar>(
    mesh: &MeshGraph,
    dof: usize,
    coupling: f64,
    nonsym: f64,
    eps: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(dof > 0);
    let n = mesh.nodes * dof;
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    for node in 0..mesh.nodes {
        let base = node * dof;
        for i in 0..dof {
            for j in 0..dof {
                if i == j {
                    continue;
                }
                let v = super::uni(&mut r, -0.8, 0.8) + nonsym * super::uni(&mut r, 0.0, 0.4);
                c.push(base + i, base + j, T::from_f64(v));
                rowsum[base + i] += v.abs();
            }
        }
    }
    for &(a, b) in &mesh.edges {
        let (ba, bb) = (a * dof, b * dof);
        for i in 0..dof {
            for j in 0..dof {
                // Laplacian-sign inter-node coupling: the smooth error
                // modes this produces are what makes real FEM systems
                // take hundreds of Krylov iterations
                let v = -coupling * super::uni(&mut r, 0.1, 1.0);
                let w = v + nonsym * super::uni(&mut r, -0.3, 0.3);
                c.push(ba + i, bb + j, T::from_f64(v));
                c.push(bb + j, ba + i, T::from_f64(w));
                rowsum[ba + i] += v.abs();
                rowsum[bb + j] += w.abs();
            }
        }
    }
    for (row, &sum) in rowsum.iter().enumerate() {
        c.push(row, row, T::from_f64(sum.max(0.5) * (1.0 + eps)));
    }
    c.to_csr()
}

/// A stiffness-like SPD block matrix: symmetric FEM assembly made
/// positive definite by construction (`B + B^T` plus dominance).
pub fn stiffness_block_matrix<T: Scalar>(
    mesh: &MeshGraph,
    dof: usize,
    coupling: f64,
    seed: u64,
) -> CsrMatrix<T> {
    let a = fem_block_matrix_eps::<T>(mesh, dof, coupling, 0.0, 0.0, seed);
    let t = a.transpose();
    // (A + A^T)/2, then restore a small dominance margin on the diagonal
    // so the symmetrized matrix stays positive definite but ill enough
    // to need a real preconditioner
    let mut coo = CooMatrix::new(a.nrows(), a.ncols());
    let mut rowsum = vec![0.0f64; a.nrows()];
    for rix in 0..a.nrows() {
        for (cix, v) in a.row_cols(rix).iter().zip(a.row_vals(rix)) {
            if rix == *cix {
                continue;
            }
            let sym = (*v + t.get(rix, *cix)) / T::from_f64(2.0);
            coo.push(rix, *cix, sym);
            rowsum[rix] += sym.to_f64().abs();
        }
    }
    for (rix, &sum) in rowsum.iter().enumerate() {
        coo.push(rix, rix, T::from_f64(sum.max(0.5) * 1.004));
    }
    coo.to_csr()
}

/// Draw a pseudo-random variable-dof assignment for "mixed" meshes
/// (e.g. shell models that combine translational and rotational dofs).
pub fn mixed_dofs(nodes: usize, choices: &[usize], seed: u64) -> Vec<usize> {
    let mut r = super::rng(seed);
    (0..nodes)
        .map(|_| choices[r.gen_range(0..choices.len())])
        .collect()
}

/// FEM-like assembly with *variable* dofs per node — the scenario that
/// genuinely requires variable-size batched kernels.
pub fn fem_variable_block_matrix<T: Scalar>(
    mesh: &MeshGraph,
    dofs: &[usize],
    coupling: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert_eq!(dofs.len(), mesh.nodes);
    let mut base = vec![0usize; mesh.nodes + 1];
    for (i, &d) in dofs.iter().enumerate() {
        base[i + 1] = base[i] + d;
    }
    let n = base[mesh.nodes];
    let mut r = super::rng(seed);
    let mut c = CooMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    for node in 0..mesh.nodes {
        let d = dofs[node];
        for i in 0..d {
            for j in 0..d {
                if i == j {
                    continue;
                }
                let v = super::uni(&mut r, -0.7, 0.7);
                c.push(base[node] + i, base[node] + j, T::from_f64(v));
                rowsum[base[node] + i] += v.abs();
            }
        }
    }
    for &(a, b) in &mesh.edges {
        for i in 0..dofs[a] {
            for j in 0..dofs[b] {
                let v = -coupling * super::uni(&mut r, 0.1, 1.0);
                c.push(base[a] + i, base[b] + j, T::from_f64(v));
                c.push(base[b] + j, base[a] + i, T::from_f64(v * 0.95));
                rowsum[base[a] + i] += v.abs();
                rowsum[base[b] + j] += (v * 0.95).abs();
            }
        }
    }
    for (row, &sum) in rowsum.iter().enumerate() {
        c.push(row, row, T::from_f64(sum.max(0.5) * 1.01));
    }
    c.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{find_supervariables, supervariable_blocking};

    #[test]
    fn grid_meshes() {
        let g = MeshGraph::grid2d(3, 4);
        assert_eq!(g.nodes, 12);
        assert_eq!(g.edges.len(), 2 * 12 - 3 - 4); // 17
        let g3 = MeshGraph::grid3d(2, 2, 2);
        assert_eq!(g3.nodes, 8);
        assert_eq!(g3.edges.len(), 12);
        let sh = MeshGraph::shell2d(3, 3);
        assert!(sh.edges.len() > MeshGraph::grid2d(3, 3).edges.len());
    }

    #[test]
    fn fem_matrix_has_dof_supervariables() {
        let mesh = MeshGraph::grid2d(4, 4);
        let a = fem_block_matrix::<f64>(&mesh, 3, 0.4, 0.1, 1);
        assert_eq!(a.nrows(), 48);
        let sv = find_supervariables(&a);
        assert_eq!(sv.sizes(), vec![3; 16]);
        // supervariable blocking with bound 6 merges pairs where adjacent
        let p = supervariable_blocking(&a, 6);
        assert!(p.max_size() <= 6);
        assert!(p.sizes().iter().all(|&s| s % 3 == 0));
    }

    #[test]
    fn stiffness_matrix_is_symmetric() {
        let mesh = MeshGraph::grid2d(3, 3);
        let a = stiffness_block_matrix::<f64>(&mesh, 2, 0.5, 3);
        assert!(a.is_symmetric(1e-12));
        // diagonal dominance on the block diagonal keeps Cholesky happy
        let d = a.diagonal();
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn variable_dof_assembly() {
        let mesh = MeshGraph::grid2d(3, 3);
        let dofs = mixed_dofs(9, &[2, 3, 5], 42);
        assert_eq!(dofs.len(), 9);
        assert!(dofs.iter().all(|d| [2, 3, 5].contains(d)));
        let a = fem_variable_block_matrix::<f64>(&mesh, &dofs, 0.3, 7);
        let n: usize = dofs.iter().sum();
        assert_eq!(a.nrows(), n);
        let sv = find_supervariables(&a);
        assert_eq!(sv.sizes(), dofs);
    }

    #[test]
    fn determinism() {
        let mesh = MeshGraph::grid2d(4, 3);
        let a = fem_block_matrix::<f64>(&mesh, 2, 0.4, 0.2, 5);
        let b = fem_block_matrix::<f64>(&mesh, 2, 0.4, 0.2, 5);
        assert_eq!(a, b);
        let c = fem_block_matrix::<f64>(&mesh, 2, 0.4, 0.2, 6);
        assert_ne!(a, c);
    }
}
