//! Compressed Sparse Row matrices — the storage format the paper's
//! extraction step (§III-C) and the Krylov solvers operate on.

use crate::coo::CooMatrix;
use vbatch_core::{DenseMat, Scalar};

/// A sparse matrix in CSR format with sorted column indices per row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build directly from raw CSR arrays, validating the invariants
    /// (monotone row pointers, in-bounds sorted unique column indices).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), vals.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "nnz mismatch");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be monotone");
        }
        for r in 0..nrows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in seg.windows(2) {
                assert!(w[0] < w[1], "row {r}: columns must be sorted unique");
            }
            if let Some(&c) = seg.last() {
                assert!(c < ncols, "row {r}: column {c} out of bounds");
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Convert from coordinate form (duplicates are summed).
    pub fn from_coo(coo: &CooMatrix<T>) -> Self {
        coo.to_csr()
    }

    /// An `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![T::ONE; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row-pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable value array (pattern stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[T] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Entry `(i, j)` or zero (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> T {
        let cols = self.row_cols(i);
        match cols.binary_search(&j) {
            Ok(p) => self.row_vals(i)[p],
            Err(_) => T::ZERO,
        }
    }

    /// Main diagonal as a dense vector (zero where absent).
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut cnt = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            cnt[c + 1] += 1;
        }
        for i in 0..self.ncols {
            cnt[i + 1] += cnt[i];
        }
        let row_ptr = cnt.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![T::ZERO; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[p];
                let q = next[c];
                col_idx[q] = r;
                vals[q] = self.vals[p];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// `true` if the sparsity pattern and values are symmetric (within
    /// `tol` on the values).
    pub fn is_symmetric(&self, tol: T) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Densify (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMat<T> {
        let mut d = DenseMat::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                d[(r, *c)] = *v;
            }
        }
        d
    }

    /// Symmetric permutation `P A P^T`: row and column `perm[k]` of the
    /// input become row/column `k` of the output (`perm` in row-of-step
    /// form, as produced by the reordering algorithms).
    pub fn permute_symmetric(&self, perm: &[usize]) -> Self {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.nrows);
        let mut inv = vec![0usize; perm.len()];
        for (k, &p) in perm.iter().enumerate() {
            inv[p] = k;
        }
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                coo.push(inv[r], inv[*c], *v);
            }
        }
        coo.to_csr()
    }

    /// Structural bandwidth: `max |i - j|` over stored entries.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.nrows {
            for &c in self.row_cols(r) {
                bw = bw.max(r.abs_diff(c));
            }
        }
        bw
    }

    /// Scale into a new matrix: `out = alpha * self`.
    pub fn scaled(&self, alpha: T) -> Self {
        let mut out = self.clone();
        for v in out.vals.iter_mut() {
            *v *= alpha;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [10  2  0]
        // [ 3 20  0]
        // [ 0  0 30]
        CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 1, 0, 1, 2],
            vec![10.0, 2.0, 3.0, 20.0, 30.0],
        )
    }

    #[test]
    fn accessors() {
        let a = sample();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.row_cols(1), &[0, 1]);
        assert_eq!(a.row_nnz(2), 1);
        assert_eq!(a.diagonal(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic]
    fn unsorted_columns_rejected() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_column_rejected() {
        let _ = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(1, 0), 2.0);
        assert_eq!(a.transpose().get(0, 1), 3.0);
    }

    #[test]
    fn symmetry_check() {
        let a = sample();
        assert!(!a.is_symmetric(1e-12));
        let sym = CsrMatrix::from_raw(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![2.0, -1.0, -1.0, 2.0],
        );
        assert!(sym.is_symmetric(1e-12));
    }

    #[test]
    fn identity_and_dense() {
        let i = CsrMatrix::<f64>::identity(3);
        let d = i.to_dense();
        assert_eq!(d, DenseMat::identity(3));
    }

    #[test]
    fn symmetric_permutation() {
        let a = sample();
        // reverse ordering
        let p = a.permute_symmetric(&[2, 1, 0]);
        assert_eq!(p.get(0, 0), 30.0);
        assert_eq!(p.get(2, 2), 10.0);
        assert_eq!(p.get(2, 1), 2.0);
        assert_eq!(p.get(1, 2), 3.0);
        // permuting back restores
        assert_eq!(p.permute_symmetric(&[2, 1, 0]), a);
    }

    #[test]
    fn bandwidth_and_scale() {
        let a = sample();
        assert_eq!(a.bandwidth(), 1);
        let s = a.scaled(2.0);
        assert_eq!(s.get(1, 1), 40.0);
        assert_eq!(s.nnz(), a.nnz());
    }
}
