//! Supervariable blocking (§II-A).
//!
//! Variables that share the same column-nonzero pattern — e.g. the
//! multiple unknowns of one finite element node — form a *supervariable*.
//! The blocking pass detects maximal runs of consecutive rows with
//! identical sparsity pattern and then agglomerates *adjacent*
//! supervariables into diagonal blocks, never exceeding the user's upper
//! bound for the block size. The result is the variable-size block
//! partition that drives the batched factorization.

use crate::csr::CsrMatrix;
use vbatch_core::Scalar;

/// A block partition of `0..n`, stored as boundaries
/// `ptr[0]=0 < ptr[1] < … < ptr[nblocks]=n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    ptr: Vec<usize>,
}

impl BlockPartition {
    /// Build from raw boundaries; validates shape.
    pub fn from_ptr(ptr: Vec<usize>) -> Self {
        assert!(!ptr.is_empty(), "partition needs at least [0]");
        assert_eq!(ptr[0], 0, "partition must start at 0");
        for w in ptr.windows(2) {
            assert!(w[0] < w[1], "blocks must be non-empty and ordered");
        }
        BlockPartition { ptr }
    }

    /// Uniform partition of `0..n` into blocks of at most `bs`.
    pub fn uniform(n: usize, bs: usize) -> Self {
        assert!(bs > 0);
        let mut ptr = vec![0usize];
        let mut at = 0;
        while at < n {
            at = (at + bs).min(n);
            ptr.push(at);
        }
        BlockPartition { ptr }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.ptr.len() - 1
    }

    /// `true` for the empty partition of `n = 0`.
    pub fn is_empty(&self) -> bool {
        self.ptr.len() == 1
    }

    /// Boundary array (`len() + 1` entries).
    pub fn as_ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// Half-open row range of block `b`.
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.ptr[b]..self.ptr[b + 1]
    }

    /// Size of block `b`.
    pub fn size(&self, b: usize) -> usize {
        self.ptr[b + 1] - self.ptr[b]
    }

    /// All block sizes.
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.len()).map(|b| self.size(b)).collect()
    }

    /// Total number of rows covered.
    pub fn total(&self) -> usize {
        *self
            .ptr
            .last()
            .expect("partition ptr holds at least [0] by construction")
    }

    /// Largest block.
    pub fn max_size(&self) -> usize {
        (0..self.len()).map(|b| self.size(b)).max().unwrap_or(0)
    }

    /// Block index owning row `r` (binary search).
    pub fn block_of(&self, r: usize) -> usize {
        debug_assert!(r < self.total());
        match self.ptr.binary_search(&r) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    }
}

/// Detect supervariables: maximal runs of consecutive rows with equal
/// sparsity pattern. Returns the supervariable boundary vector.
pub fn find_supervariables<T: Scalar>(a: &CsrMatrix<T>) -> BlockPartition {
    let n = a.nrows();
    let mut ptr = vec![0usize];
    let mut run_start = 0usize;
    for r in 1..n {
        if a.row_cols(r) != a.row_cols(run_start) {
            ptr.push(r);
            run_start = r;
        }
    }
    if n > 0 {
        ptr.push(n);
    }
    BlockPartition::from_ptr(ptr)
}

/// Supervariable blocking: detect supervariables and agglomerate
/// adjacent ones into diagonal blocks of size at most `max_bs`.
/// Supervariables larger than `max_bs` are split.
pub fn supervariable_blocking<T: Scalar>(a: &CsrMatrix<T>, max_bs: usize) -> BlockPartition {
    assert!(max_bs > 0);
    let sv = find_supervariables(a);
    let n = a.nrows();
    let mut ptr = vec![0usize];
    let mut cur = 0usize; // current block start
    for b in 0..sv.len() {
        let (s, e) = (sv.as_ptr()[b], sv.as_ptr()[b + 1]);
        let sv_size = e - s;
        if sv_size > max_bs {
            // flush the running block, then split the oversized
            // supervariable into max_bs chunks
            if s > cur {
                ptr.push(s);
            }
            let mut at = s;
            while at + max_bs < e {
                at += max_bs;
                ptr.push(at);
            }
            cur = *ptr.last().expect("ptr starts as [0] and only grows");
            continue;
        }
        if e - cur > max_bs {
            // adding this supervariable would overflow: close the block
            ptr.push(s);
            cur = s;
        }
    }
    if n > 0 && *ptr.last().expect("ptr starts as [0] and only grows") != n {
        ptr.push(n);
    }
    BlockPartition::from_ptr(ptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Matrix with 2-variable supervariables: rows 2k and 2k+1 share
    /// their pattern (a block-tridiagonal of 2x2 blocks).
    fn block_matrix(nodes: usize, dof: usize) -> CsrMatrix<f64> {
        let n = nodes * dof;
        let mut c = CooMatrix::new(n, n);
        for node in 0..nodes {
            for i in 0..dof {
                for j in 0..dof {
                    c.push(
                        node * dof + i,
                        node * dof + j,
                        if i == j { 4.0 } else { 0.5 },
                    );
                }
                if node + 1 < nodes {
                    for j in 0..dof {
                        c.push(node * dof + i, (node + 1) * dof + j, -1.0);
                        c.push((node + 1) * dof + i, node * dof + j, -1.0);
                    }
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn partition_basics() {
        let p = BlockPartition::uniform(10, 4);
        assert_eq!(p.as_ptr(), &[0, 4, 8, 10]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.sizes(), vec![4, 4, 2]);
        assert_eq!(p.max_size(), 4);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(7), 1);
        assert_eq!(p.block_of(9), 2);
        assert_eq!(p.range(1), 4..8);
    }

    #[test]
    #[should_panic]
    fn invalid_partition_rejected() {
        let _ = BlockPartition::from_ptr(vec![0, 3, 3, 5]);
    }

    #[test]
    fn supervariables_detected() {
        let a = block_matrix(5, 3); // 5 nodes of 3 dofs
        let sv = find_supervariables(&a);
        assert_eq!(sv.sizes(), vec![3, 3, 3, 3, 3]);
    }

    #[test]
    fn agglomeration_respects_upper_bound() {
        let a = block_matrix(6, 2); // supervariables of size 2
        for max_bs in [2usize, 3, 4, 5, 6, 8] {
            let p = supervariable_blocking(&a, max_bs);
            assert_eq!(p.total(), 12);
            assert!(p.max_size() <= max_bs, "bound {max_bs}: {:?}", p.as_ptr());
            // supervariables must never be split when they fit
            for b in 0..p.len() {
                assert_eq!(p.size(b) % 2, 0, "bound {max_bs} split a supervariable");
            }
        }
    }

    #[test]
    fn agglomeration_packs_adjacent_supervariables() {
        let a = block_matrix(6, 2);
        let p = supervariable_blocking(&a, 4);
        // pairs of 2-dof supervariables should merge into 4s
        assert_eq!(p.sizes(), vec![4, 4, 4]);
    }

    #[test]
    fn oversized_supervariable_is_split() {
        // a dense 6x6 block has one supervariable of size 6
        let mut c = CooMatrix::new(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                c.push(i, j, 1.0 + (i == j) as i32 as f64);
            }
        }
        let a = c.to_csr();
        let p = supervariable_blocking(&a, 4);
        assert_eq!(p.total(), 6);
        assert!(p.max_size() <= 4);
        assert_eq!(p.sizes(), vec![4, 2]);
    }

    #[test]
    fn scalar_matrix_gives_scalar_supervariables_that_agglomerate() {
        // tridiagonal: every row pattern differs from its neighbor
        let mut c = CooMatrix::new(8, 8);
        for i in 0..8usize {
            c.push(i, i, 2.0);
            if i + 1 < 8 {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        let a = c.to_csr();
        let sv = find_supervariables(&a);
        assert_eq!(sv.len(), 8);
        let p = supervariable_blocking(&a, 3);
        assert!(p.max_size() <= 3);
        assert_eq!(p.total(), 8);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<f64>::from_raw(0, 0, vec![0], vec![], vec![]);
        let p = supervariable_blocking(&a, 4);
        assert!(p.is_empty());
        assert_eq!(p.total(), 0);
    }
}
