//! # vbatch-sparse
//!
//! Sparse substrate for the block-Jacobi pipeline of the ICPP'17 paper:
//! CSR/COO storage ([`csr`], [`coo`]), SpMV and BLAS-1 helpers
//! ([`mod@spmv`]), Matrix Market I/O ([`mm_io`]), reverse Cuthill-McKee
//! reordering ([`reorder`]), the SELL-P SpMV format of MAGMA-sparse
//! ([`sellp`]), **supervariable blocking** ([`blocking`],
//! §II-A of the paper), diagonal-block extraction ([`extract`],
//! §III-C), and the synthetic 48-problem Table-I test suite plus its
//! underlying generators ([`gen`]).

pub mod blocking;
pub mod coo;
pub mod csr;
pub mod extract;
pub mod gen;
pub mod mm_io;
pub mod pattern;
pub mod reorder;
pub mod sellp;
pub mod spike;
pub mod spmv;
pub mod stats;

pub use blocking::{find_supervariables, supervariable_blocking, BlockPartition};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use extract::{block_coverage, extract_diag_blocks, extract_diag_blocks_chunked};
pub use gen::suite::{by_name, table1_suite, ProblemClass, SuiteProblem};
pub use mm_io::{
    read_matrix_market, read_matrix_market_str, write_matrix_market, write_matrix_market_str,
    MmError,
};
pub use pattern::{BlockPattern, LevelSchedule, TriKind};
pub use reorder::{is_permutation, reverse_cuthill_mckee};
pub use sellp::SellPMatrix;
pub use spike::{
    extract_spike_blocks, extract_spike_blocks_chunked, SpikeBlocks, SpikeError, SpikePartition,
};
pub use spmv::{axpy, dot, nrm2, residual, scal, spmv, spmv_alloc, spmv_par, xpby};
pub use stats::{matrix_stats, partition_stats, row_length_histogram, MatrixStats, PartitionStats};
