//! Sparse matrix–vector products — the workhorse of the Krylov solvers
//! (the paper's IDR(4) performs one SpMV plus one preconditioner
//! application per inner step).

use crate::csr::CsrMatrix;
use vbatch_core::Scalar;
use vbatch_rt::prelude::*;

/// `y = A x` (sequential reference).
pub fn spmv<T: Scalar>(a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    for r in 0..a.nrows() {
        let mut acc = T::ZERO;
        for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            acc = v.mul_add(x[*c], acc);
        }
        y[r] = acc;
    }
}

/// `y = A x` with Rayon row-parallelism (bit-identical to [`spmv`]
/// because each row is reduced sequentially by one worker).
pub fn spmv_par<T: Scalar>(a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        let mut acc = T::ZERO;
        for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            acc = v.mul_add(x[*c], acc);
        }
        *out = acc;
    });
}

/// `y = A x` into a fresh vector.
pub fn spmv_alloc<T: Scalar>(a: &CsrMatrix<T>, x: &[T]) -> Vec<T> {
    let mut y = vec![T::ZERO; a.nrows()];
    spmv(a, x, &mut y);
    y
}

/// Residual `b - A x` into a fresh vector.
pub fn residual<T: Scalar>(a: &CsrMatrix<T>, x: &[T], b: &[T]) -> Vec<T> {
    let ax = spmv_alloc(a, x);
    b.iter().zip(ax).map(|(&bi, axi)| bi - axi).collect()
}

/// Euclidean norm.
pub fn nrm2<T: Scalar>(v: &[T]) -> T {
    v.iter().fold(T::ZERO, |acc, &x| x.mul_add(x, acc)).sqrt()
}

/// Dot product.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| x.mul_add(y, acc))
}

/// `y += alpha * x`.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `y = x + beta * y` (in place on `y`).
pub fn xpby<T: Scalar>(x: &[T], beta: T, y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = beta.mul_add(*yi, xi);
    }
}

/// `v *= alpha`.
pub fn scal<T: Scalar>(alpha: T, v: &mut [T]) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 2.0);
        c.push(0, 2, 1.0);
        c.push(1, 1, 3.0);
        c.push(2, 0, -1.0);
        c.push(2, 2, 4.0);
        c.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = vec![1.0, 2.0, -1.0];
        let y = spmv_alloc(&a, &x);
        let yd = d.matvec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    fn parallel_is_bit_identical() {
        let a = sample();
        let x = vec![0.5, -0.25, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        spmv(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = sample();
        let x = vec![1.0, 1.0, 1.0];
        let b = spmv_alloc(&a, &x);
        let r = residual(&a, &x, &b);
        assert!(nrm2(&r) == 0.0);
    }

    #[test]
    fn blas1_helpers() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
        xpby(&[1.0, 1.0], 0.5, &mut y);
        assert_eq!(y, vec![4.5, 6.0]);
        scal(2.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
