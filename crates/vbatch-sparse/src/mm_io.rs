//! Matrix Market I/O (the interchange format of the SuiteSparse
//! collection the paper's test set comes from).
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which cover
//! the collection. Pattern entries get value 1.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::fmt::Write as _;
use std::path::Path;
use vbatch_core::Scalar;

/// Errors while reading a Matrix Market stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmError {
    /// The banner line is missing or unsupported.
    BadHeader(String),
    /// A malformed size or entry line.
    BadLine { line_no: usize, content: String },
    /// Underlying I/O problem.
    Io(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::BadHeader(h) => write!(f, "unsupported MatrixMarket header: {h}"),
            MmError::BadLine { line_no, content } => {
                write!(f, "malformed line {line_no}: {content}")
            }
            MmError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for MmError {}

/// Parse a Matrix Market document from a string.
pub fn read_matrix_market_str<T: Scalar>(text: &str) -> Result<CsrMatrix<T>, MmError> {
    let mut lines = text.lines().enumerate();
    let (_, banner) = lines
        .next()
        .ok_or_else(|| MmError::BadHeader("empty input".into()))?;
    let banner_lc = banner.to_ascii_lowercase();
    let fields: Vec<&str> = banner_lc.split_whitespace().collect();
    if fields.len() < 5
        || fields[0] != "%%matrixmarket"
        || fields[1] != "matrix"
        || fields[2] != "coordinate"
    {
        return Err(MmError::BadHeader(banner.to_string()));
    }
    let pattern = match fields[3] {
        "real" | "integer" => false,
        "pattern" => true,
        _ => return Err(MmError::BadHeader(banner.to_string())),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        _ => return Err(MmError::BadHeader(banner.to_string())),
    };

    // skip comments, read the size line
    let mut size_line = None;
    for (no, l) in lines.by_ref() {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((no, t.to_string()));
        break;
    }
    let (no, size) = size_line.ok_or_else(|| MmError::BadHeader("missing size line".into()))?;
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(|s| {
            s.parse().map_err(|_| MmError::BadLine {
                line_no: no + 1,
                content: size.clone(),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MmError::BadLine {
            line_no: no + 1,
            content: size,
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut coo = CooMatrix::<T>::new(nrows, ncols);
    let mut seen = 0usize;
    for (no, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let bad = || MmError::BadLine {
            line_no: no + 1,
            content: t.to_string(),
        };
        if parts.len() < 2 {
            return Err(bad());
        }
        let i: usize = parts[0].parse().map_err(|_| bad())?;
        let j: usize = parts[1].parse().map_err(|_| bad())?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(bad());
        }
        let v = if pattern {
            T::ONE
        } else {
            let x: f64 = parts.get(2).ok_or_else(bad)?.parse().map_err(|_| bad())?;
            T::from_f64(x)
        };
        if symmetric {
            coo.push_sym(i - 1, j - 1, v);
        } else {
            coo.push(i - 1, j - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MmError::BadHeader(format!(
            "entry count mismatch: header says {nnz}, found {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market<T: Scalar>(path: &Path) -> Result<CsrMatrix<T>, MmError> {
    let text = std::fs::read_to_string(path).map_err(|e| MmError::Io(e.to_string()))?;
    read_matrix_market_str(&text)
}

/// Serialize a CSR matrix as `coordinate real general`.
pub fn write_matrix_market_str<T: Scalar>(a: &CsrMatrix<T>) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "{} {} {}", a.nrows(), a.ncols(), a.nnz());
    for r in 0..a.nrows() {
        for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let _ = writeln!(out, "{} {} {:e}", r + 1, c + 1, v.to_f64());
        }
    }
    out
}

/// Write a CSR matrix to a Matrix Market file.
pub fn write_matrix_market<T: Scalar>(a: &CsrMatrix<T>, path: &Path) -> Result<(), MmError> {
    std::fs::write(path, write_matrix_market_str(a)).map_err(|e| MmError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   2 3 3\n\
                   1 1 1.5\n\
                   2 2 -2.0\n\
                   1 3 4e-1\n";
        let a: CsrMatrix<f64> = read_matrix_market_str(doc).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(1, 1), -2.0);
        assert_eq!(a.get(0, 2), 0.4);
    }

    #[test]
    fn parse_symmetric_expands() {
        let doc = "%%MatrixMarket matrix coordinate real symmetric\n\
                   3 3 3\n\
                   1 1 2.0\n\
                   2 1 -1.0\n\
                   3 3 5.0\n";
        let a: CsrMatrix<f64> = read_matrix_market_str(doc).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn parse_pattern() {
        let doc = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 2\n\
                   1 2\n\
                   2 1\n";
        let a: CsrMatrix<f64> = read_matrix_market_str(doc).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn roundtrip() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 3\n\
                   1 1 1.0\n\
                   1 2 2.0\n\
                   2 2 3.0\n";
        let a: CsrMatrix<f64> = read_matrix_market_str(doc).unwrap();
        let text = write_matrix_market_str(&a);
        let b: CsrMatrix<f64> = read_matrix_market_str(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            read_matrix_market_str::<f64>("%%MatrixMarket matrix array real general\n1 1\n1.0\n"),
            Err(MmError::BadHeader(_))
        ));
        assert!(read_matrix_market_str::<f64>("").is_err());
    }

    #[test]
    fn bad_entry_rejected() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 1\n\
                   3 1 1.0\n";
        assert!(matches!(
            read_matrix_market_str::<f64>(doc),
            Err(MmError::BadLine { .. })
        ));
    }

    #[test]
    fn count_mismatch_rejected() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 5\n\
                   1 1 1.0\n";
        assert!(read_matrix_market_str::<f64>(doc).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut c = crate::coo::CooMatrix::new(2, 2);
        c.push(0, 0, 3.25);
        c.push(1, 0, -1.0);
        let a = c.to_csr();
        let dir = std::env::temp_dir().join("vbatch_mm_test.mtx");
        write_matrix_market(&a, &dir).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(&dir).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&dir);
    }
}
