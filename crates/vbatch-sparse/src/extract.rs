//! Diagonal-block extraction (CPU reference of the paper's §III-C
//! kernel): gather the dense diagonal blocks defined by a
//! [`BlockPartition`] out of a CSR matrix into a variable-size
//! [`MatrixBatch`].

use crate::blocking::BlockPartition;
use crate::csr::CsrMatrix;
use vbatch_core::{MatrixBatch, Scalar};
use vbatch_rt::prelude::*;

/// Extract the diagonal blocks of `a` given by `part` into a batch of
/// dense column-major blocks. Positions absent from the sparsity
/// pattern are zero.
pub fn extract_diag_blocks<T: Scalar>(a: &CsrMatrix<T>, part: &BlockPartition) -> MatrixBatch<T> {
    assert_eq!(part.total(), a.nrows(), "partition must cover the matrix");
    let _span = vbatch_trace::span!("sparse.extract", part.len());
    let mut batch = MatrixBatch::zeros(&part.sizes());
    let blocks: Vec<(usize, &mut [T])> = batch.blocks_mut();
    blocks
        .into_par_iter()
        .enumerate()
        .for_each(|(b, (bs, data))| {
            let start = part.as_ptr()[b];
            for r in 0..bs {
                let row = start + r;
                for (c, v) in a.row_cols(row).iter().zip(a.row_vals(row)) {
                    if *c >= start && *c < start + bs {
                        data[(*c - start) * bs + r] = *v;
                    }
                }
            }
        });
    batch
}

/// Chunked row-streaming variant of [`extract_diag_blocks`]: rows are
/// processed in windows of `chunk_rows`, bounding the live portion of
/// the source matrix an out-of-core reader would need resident at
/// once (ROADMAP item 2(b) groundwork). Output is bitwise identical
/// to the monolithic extraction for every chunk size: each destination
/// cell is written by at most one source entry, so chunking only
/// reorders disjoint writes.
pub fn extract_diag_blocks_chunked<T: Scalar>(
    a: &CsrMatrix<T>,
    part: &BlockPartition,
    chunk_rows: usize,
) -> MatrixBatch<T> {
    assert_eq!(part.total(), a.nrows(), "partition must cover the matrix");
    assert!(chunk_rows >= 1, "chunk_rows must be at least 1");
    let _span = vbatch_trace::span!("sparse.extract_chunked", part.len());
    let mut batch = MatrixBatch::zeros(&part.sizes());
    let n = a.nrows();
    let mut row = 0usize;
    while row < n {
        let end = (row + chunk_rows).min(n);
        for r in row..end {
            let b = part.block_of(r);
            let range = part.range(b);
            let bs = range.end - range.start;
            let data = batch.block_mut(b);
            for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                if *c >= range.start && *c < range.end {
                    data[(*c - range.start) * bs + (r - range.start)] = *v;
                }
            }
        }
        row = end;
    }
    batch
}

/// Fraction of the matrix nonzeros captured by the diagonal blocks —
/// a quality measure for a block partition.
pub fn block_coverage<T: Scalar>(a: &CsrMatrix<T>, part: &BlockPartition) -> f64 {
    assert_eq!(part.total(), a.nrows());
    let mut inside = 0usize;
    for b in 0..part.len() {
        let r = part.range(b);
        for row in r.clone() {
            inside += a
                .row_cols(row)
                .iter()
                .filter(|&&c| c >= r.start && c < r.end)
                .count();
        }
    }
    if a.nnz() == 0 {
        1.0
    } else {
        inside as f64 / a.nnz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        // 5x5; blocks [0..2), [2..5)
        let mut c = CooMatrix::new(5, 5);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(0, 4, 9.0); // outside
        c.push(1, 1, 3.0);
        c.push(2, 2, 4.0);
        c.push(2, 4, 5.0);
        c.push(3, 0, 8.0); // outside
        c.push(3, 3, 6.0);
        c.push(4, 2, 7.0);
        c.push(4, 4, 10.0);
        c.to_csr()
    }

    #[test]
    fn extraction_matches_expected_blocks() {
        let a = sample();
        let part = BlockPartition::from_ptr(vec![0, 2, 5]);
        let batch = extract_diag_blocks(&a, &part);
        assert_eq!(batch.len(), 2);
        let b0 = batch.block_as_mat(0);
        assert_eq!(b0[(0, 0)], 1.0);
        assert_eq!(b0[(0, 1)], 2.0);
        assert_eq!(b0[(1, 0)], 0.0);
        assert_eq!(b0[(1, 1)], 3.0);
        let b1 = batch.block_as_mat(1);
        assert_eq!(b1[(0, 0)], 4.0);
        assert_eq!(b1[(0, 2)], 5.0);
        assert_eq!(b1[(1, 1)], 6.0);
        assert_eq!(b1[(2, 0)], 7.0);
        assert_eq!(b1[(2, 2)], 10.0);
        // outside entries ignored
        assert_eq!(b1[(1, 0)], 0.0);
    }

    #[test]
    fn extraction_agrees_with_dense_slicing() {
        let a = sample();
        let d = a.to_dense();
        let part = BlockPartition::uniform(5, 3);
        let batch = extract_diag_blocks(&a, &part);
        for b in 0..part.len() {
            let r = part.range(b);
            let m = batch.block_as_mat(b);
            for (bi, i) in r.clone().enumerate() {
                for (bj, j) in r.clone().enumerate() {
                    assert_eq!(m[(bi, bj)], d[(i, j)], "block {b} ({bi},{bj})");
                }
            }
        }
    }

    #[test]
    fn coverage_measures_inside_fraction() {
        let a = sample();
        let part = BlockPartition::from_ptr(vec![0, 2, 5]);
        // 8 of 10 entries are inside the two blocks
        assert!((block_coverage(&a, &part) - 0.8).abs() < 1e-12);
        let whole = BlockPartition::from_ptr(vec![0, 5]);
        assert_eq!(block_coverage(&a, &whole), 1.0);
    }

    #[test]
    fn size_one_blocks_pick_the_diagonal() {
        let a = sample();
        let part = BlockPartition::uniform(5, 1);
        let batch = extract_diag_blocks(&a, &part);
        assert_eq!(batch.len(), 5);
        let diag = a.diagonal();
        for (b, &d) in diag.iter().enumerate() {
            assert_eq!(batch.block(b), &[d]);
        }
    }
}
