//! SPIKE partitioning substrate (Li/Serban/Negrut splitting): banded
//! detection plus partition extraction for the split solver in
//! `vbatch-solver::spike`.
//!
//! A banded matrix with half-bandwidth `k`, cut into `p` contiguous
//! partitions each of order at least `2k`, decomposes as
//!
//! ```text
//! A = D + couplings,   D = diag(A_1, ..., A_p)
//! ```
//!
//! where every off-partition nonzero lives in one of the `p - 1`
//! coupling corners: the **upper tip** `B_j` (bottom-right `k × k`
//! corner of partition `j` against the first `k` columns of partition
//! `j + 1`) or the **lower tip** `C_j` (top-left corner of partition
//! `j + 1` against the last `k` columns of partition `j`). This module
//! validates that structure ([`SpikePartition`]) and gathers the
//! partitions and tips into variable-size [`MatrixBatch`]es
//! ([`extract_spike_blocks`]) so the batched LU pipeline can factorize
//! all partitions at once. A chunked row-streaming variant
//! ([`extract_spike_blocks_chunked`]) bounds the extraction working
//! window, mirroring [`crate::extract::extract_diag_blocks_chunked`].

use std::fmt;

use crate::blocking::BlockPartition;
use crate::csr::CsrMatrix;
use vbatch_core::{MatrixBatch, Scalar};

/// Failures of SPIKE partition validation and extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpikeError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// The partition does not tile the matrix rows.
    PartitionMismatch {
        /// Rows covered by the partition.
        covered: usize,
        /// Matrix order.
        n: usize,
    },
    /// Some partition is smaller than `2 * bandwidth`, so its top and
    /// bottom coupling windows would overlap (or a tip would span more
    /// than one neighbour).
    PartitionTooSmall {
        /// Index of the offending partition.
        block: usize,
        /// Its size.
        size: usize,
        /// The half-bandwidth the partition must accommodate.
        bandwidth: usize,
    },
    /// A nonzero falls outside the diagonal partitions and their
    /// coupling tips — the matrix is not banded with the claimed
    /// half-bandwidth relative to this partition.
    OutOfBand {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The half-bandwidth the structure was validated against.
        bandwidth: usize,
    },
}

impl fmt::Display for SpikeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpikeError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            SpikeError::PartitionMismatch { covered, n } => {
                write!(f, "partition covers {covered} rows of a {n}-row matrix")
            }
            SpikeError::PartitionTooSmall {
                block,
                size,
                bandwidth,
            } => write!(
                f,
                "partition {block} has {size} rows, need >= 2*bandwidth = {}",
                2 * bandwidth
            ),
            SpikeError::OutOfBand {
                row,
                col,
                bandwidth,
            } => write!(
                f,
                "entry ({row}, {col}) outside the diagonal partitions and \
                 their {bandwidth}-wide coupling tips"
            ),
        }
    }
}

impl std::error::Error for SpikeError {}

/// A contiguous row partition paired with the structural half-bandwidth
/// it must accommodate — the geometry of one SPIKE split.
///
/// Invariant (checked on construction): when there is more than one
/// partition and `bandwidth > 0`, every partition has at least
/// `2 * bandwidth` rows, so the coupling tips of adjacent partitions
/// occupy disjoint row windows and each tip couples exactly one
/// neighbour.
#[derive(Clone, Debug)]
pub struct SpikePartition {
    part: BlockPartition,
    bandwidth: usize,
}

impl SpikePartition {
    /// Wrap an explicit partition, validating the `2 * bandwidth`
    /// minimum partition size.
    pub fn new(part: BlockPartition, bandwidth: usize) -> Result<Self, SpikeError> {
        if part.len() > 1 && bandwidth > 0 {
            for b in 0..part.len() {
                if part.size(b) < 2 * bandwidth {
                    return Err(SpikeError::PartitionTooSmall {
                        block: b,
                        size: part.size(b),
                        bandwidth,
                    });
                }
            }
        }
        Ok(SpikePartition { part, bandwidth })
    }

    /// A near-uniform split of `n` rows into `partitions` pieces
    /// (sizes differ by at most one), validated against `bandwidth`.
    pub fn uniform(n: usize, partitions: usize, bandwidth: usize) -> Result<Self, SpikeError> {
        assert!(partitions >= 1, "need at least one partition");
        assert!(n >= partitions, "more partitions than rows");
        let base = n / partitions;
        let extra = n % partitions;
        let mut ptr = Vec::with_capacity(partitions + 1);
        ptr.push(0usize);
        for b in 0..partitions {
            let sz = base + usize::from(b < extra);
            ptr.push(ptr[b] + sz);
        }
        SpikePartition::new(BlockPartition::from_ptr(ptr), bandwidth)
    }

    /// Banded detection: measure the structural half-bandwidth of `a`
    /// and build the near-uniform `partitions`-way split for it.
    pub fn detect<T: Scalar>(a: &CsrMatrix<T>, partitions: usize) -> Result<Self, SpikeError> {
        if a.nrows() != a.ncols() {
            return Err(SpikeError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        SpikePartition::uniform(a.nrows(), partitions, a.bandwidth())
    }

    /// Largest partition count a near-uniform split of `n` rows can
    /// sustain for this half-bandwidth (every piece keeps `>= 2 *
    /// bandwidth` rows). At least 1.
    pub fn max_partitions(n: usize, bandwidth: usize) -> usize {
        if bandwidth == 0 {
            return n.max(1);
        }
        (n / (2 * bandwidth)).max(1)
    }

    /// The row partition.
    pub fn part(&self) -> &BlockPartition {
        &self.part
    }

    /// The half-bandwidth the split was validated against.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Number of partitions `p`.
    pub fn len(&self) -> usize {
        self.part.len()
    }

    /// Whether the split has no partitions.
    pub fn is_empty(&self) -> bool {
        self.part.len() == 0
    }

    /// Number of coupled interfaces: `p - 1` when the bandwidth is
    /// nonzero, else 0 (a block-diagonal matrix has no coupling).
    pub fn interfaces(&self) -> usize {
        if self.bandwidth == 0 {
            0
        } else {
            self.part.len().saturating_sub(1)
        }
    }
}

/// The dense blocks of one SPIKE split: the `p` diagonal partitions
/// plus the `p - 1` coupling tips on each side, all column-major and
/// vbatch-sized so they feed straight into the batched pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpikeBlocks<T: Scalar> {
    /// The `p` diagonal partition blocks `A_j`.
    pub diag: MatrixBatch<T>,
    /// The `p - 1` upper tips `B_j` (`k × k`): bottom-right corner of
    /// partition `j` coupling into the top of partition `j + 1`.
    pub upper_tips: MatrixBatch<T>,
    /// The `p - 1` lower tips `C_j` (`k × k`): top-left corner of
    /// partition `j + 1` coupling back into the bottom of partition
    /// `j`.
    pub lower_tips: MatrixBatch<T>,
}

/// Extract the SPIKE blocks of `a` under `sp`, validating along the
/// way that every nonzero is covered (diagonal partition or coupling
/// tip) — the extraction *is* the banded-structure proof.
pub fn extract_spike_blocks<T: Scalar>(
    a: &CsrMatrix<T>,
    sp: &SpikePartition,
) -> Result<SpikeBlocks<T>, SpikeError> {
    extract_spike_blocks_chunked(a, sp, a.nrows().max(1))
}

/// Chunked row-streaming variant of [`extract_spike_blocks`]: rows are
/// processed in windows of `chunk_rows`, bounding the live portion of
/// the source matrix an out-of-core reader would need in memory at
/// once. Output is bitwise identical to the monolithic extraction for
/// every chunk size (each destination cell is written by exactly one
/// source entry, and chunking only reorders disjoint writes).
pub fn extract_spike_blocks_chunked<T: Scalar>(
    a: &CsrMatrix<T>,
    sp: &SpikePartition,
    chunk_rows: usize,
) -> Result<SpikeBlocks<T>, SpikeError> {
    assert!(chunk_rows >= 1, "chunk_rows must be at least 1");
    let n = a.nrows();
    if n != a.ncols() {
        return Err(SpikeError::NotSquare {
            rows: n,
            cols: a.ncols(),
        });
    }
    let part = sp.part();
    if part.total() != n {
        return Err(SpikeError::PartitionMismatch {
            covered: part.total(),
            n,
        });
    }
    let _span = vbatch_trace::span!("sparse.spike_extract", part.len());
    let k = sp.bandwidth();
    let p = part.len();
    let tip_sizes = vec![k; sp.interfaces()];
    let mut out = SpikeBlocks {
        diag: MatrixBatch::zeros(&part.sizes()),
        upper_tips: MatrixBatch::zeros(&tip_sizes),
        lower_tips: MatrixBatch::zeros(&tip_sizes),
    };
    let mut row = 0usize;
    while row < n {
        let end = (row + chunk_rows).min(n);
        for r in row..end {
            let b = part.block_of(r);
            let range = part.range(b);
            let bs = range.end - range.start;
            for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                if c >= range.start && c < range.end {
                    out.diag.block_mut(b)[(c - range.start) * bs + (r - range.start)] = v;
                } else if k > 0
                    && b + 1 < p
                    && r >= range.end - k
                    && c >= range.end
                    && c < range.end + k
                {
                    // upper tip B_b: local row counts from `end - k`
                    out.upper_tips.block_mut(b)[(c - range.end) * k + (r - (range.end - k))] = v;
                } else if k > 0
                    && b > 0
                    && r < range.start + k
                    && c < range.start
                    && c >= range.start - k
                {
                    // lower tip C_{b-1}: local col counts from `start - k`
                    out.lower_tips.block_mut(b - 1)
                        [(c - (range.start - k)) * k + (r - range.start)] = v;
                } else {
                    return Err(SpikeError::OutOfBand {
                        row: r,
                        col: c,
                        bandwidth: k,
                    });
                }
            }
        }
        row = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use vbatch_rt::testgen;

    fn banded(n: usize, bw: usize, dominance: f64, seed: u64) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in testgen::banded_system_triplets(n, bw, dominance, seed) {
            coo.push(i, j, v);
        }
        coo.to_csr()
    }

    #[test]
    fn detect_measures_bandwidth_and_validates_sizes() {
        let a = banded(24, 2, 2.0, 3);
        let sp = SpikePartition::detect(&a, 4).unwrap();
        assert_eq!(sp.bandwidth(), 2);
        assert_eq!(sp.len(), 4);
        assert_eq!(sp.interfaces(), 3);
        assert_eq!(sp.part().sizes(), vec![6, 6, 6, 6]);
        // 24 rows of bandwidth 2 support at most 6 partitions
        assert_eq!(SpikePartition::max_partitions(24, 2), 6);
        assert!(SpikePartition::detect(&a, 7).is_err());
        assert!(matches!(
            SpikePartition::uniform(24, 8, 2),
            Err(SpikeError::PartitionTooSmall { .. })
        ));
    }

    #[test]
    fn extraction_reassembles_the_matrix() {
        let a = banded(30, 3, 1.5, 11);
        let sp = SpikePartition::detect(&a, 3).unwrap();
        let blocks = extract_spike_blocks(&a, &sp).unwrap();
        let d = a.to_dense();
        let part = sp.part();
        let k = sp.bandwidth();
        let mut rebuilt = vec![0.0f64; 30 * 30];
        for b in 0..part.len() {
            let r = part.range(b);
            let bs = r.end - r.start;
            let blk = blocks.diag.block(b);
            for c in 0..bs {
                for i in 0..bs {
                    rebuilt[(r.start + i) * 30 + (r.start + c)] = blk[c * bs + i];
                }
            }
            if b + 1 < part.len() {
                let up = blocks.upper_tips.block(b);
                let lo = blocks.lower_tips.block(b);
                for c in 0..k {
                    for i in 0..k {
                        rebuilt[(r.end - k + i) * 30 + (r.end + c)] += up[c * k + i];
                        rebuilt[(r.end + i) * 30 + (r.end - k + c)] += lo[c * k + i];
                    }
                }
            }
        }
        for i in 0..30 {
            for j in 0..30 {
                assert_eq!(rebuilt[i * 30 + j], d[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn out_of_band_entries_are_rejected() {
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 7, 1.0); // far off-band
        let a = coo.to_csr();
        // claim bandwidth 1 even though the matrix violates it
        let sp = SpikePartition::uniform(8, 2, 1).unwrap();
        assert_eq!(
            extract_spike_blocks(&a, &sp),
            Err(SpikeError::OutOfBand {
                row: 0,
                col: 7,
                bandwidth: 1
            })
        );
    }

    #[test]
    fn chunked_extraction_is_bitwise_invisible() {
        let a = banded(37, 2, 1.2, 5);
        let sp = SpikePartition::uniform(37, 4, 2).unwrap();
        let whole = extract_spike_blocks(&a, &sp).unwrap();
        for chunk in [1, 2, 3, 5, 8, 13, 36, 37, 100] {
            let c = extract_spike_blocks_chunked(&a, &sp, chunk).unwrap();
            assert_eq!(c, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn zero_bandwidth_has_no_interfaces() {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0 + i as f64);
        }
        let a = coo.to_csr();
        let sp = SpikePartition::detect(&a, 3).unwrap();
        assert_eq!(sp.bandwidth(), 0);
        assert_eq!(sp.interfaces(), 0);
        let blocks = extract_spike_blocks(&a, &sp).unwrap();
        assert_eq!(blocks.upper_tips.len(), 0);
        assert_eq!(blocks.diag.len(), 3);
    }
}
