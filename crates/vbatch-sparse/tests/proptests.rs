//! Property-based tests for the sparse substrate: CSR/COO conversion
//! invariants, transpose algebra, SpMV against the dense reference,
//! Matrix Market round-trips, blocking partitions and RCM permutations.

use vbatch_rt::{run_cases, testgen, SmallRng};
use vbatch_sparse::{
    block_coverage, extract_diag_blocks, find_supervariables, is_permutation,
    read_matrix_market_str, reverse_cuthill_mckee, spmv_alloc, spmv_par, supervariable_blocking,
    write_matrix_market_str, BlockPartition, CooMatrix, CsrMatrix,
};

/// A random sparse square matrix as triplets (duplicates allowed — the
/// conversion must sum them); see [`testgen::coo_entries`].
fn coo_matrix(rng: &mut SmallRng) -> (usize, Vec<(usize, usize, f64)>) {
    testgen::coo_entries(rng)
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    let mut c = CooMatrix::new(n, n);
    for &(i, j, v) in entries {
        c.push(i, j, v);
    }
    // ensure nonzero diagonal so downstream consumers stay happy
    for i in 0..n {
        c.push(i, i, 1.0 + i as f64 * 0.01);
    }
    c.to_csr()
}

#[test]
fn coo_to_csr_preserves_sums() {
    run_cases("coo_to_csr_preserves_sums", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let a = build(n, &entries);
        // reference accumulation in a dense map
        let mut dense = vec![0.0f64; n * n];
        for &(i, j, v) in &entries {
            dense[i * n + j] += v;
        }
        for i in 0..n {
            dense[i * n + i] += 1.0 + i as f64 * 0.01;
        }
        for i in 0..n {
            for j in 0..n {
                let want = dense[i * n + j];
                assert!((a.get(i, j) - want).abs() < 1e-12);
            }
        }
        // structural invariants
        assert_eq!(*a.row_ptr().last().unwrap(), a.nnz());
        for r in 0..n {
            let cols = a.row_cols(r);
            for w in cols.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    });
}

#[test]
fn transpose_is_involution() {
    run_cases("transpose_is_involution", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let a = build(n, &entries);
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn spmv_matches_dense() {
    run_cases("spmv_matches_dense", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let x_seed = rng.next_u64();
        let a = build(n, &entries);
        let x: Vec<f64> = (0..n)
            .map(|i| ((i as u64 ^ x_seed) % 17) as f64 / 8.0 - 1.0)
            .collect();
        let y = spmv_alloc(&a, &x);
        let yd = a.to_dense().matvec(&x);
        for (p, q) in y.iter().zip(&yd) {
            assert!((p - q).abs() < 1e-10);
        }
        // parallel SpMV is bit-identical
        let mut yp = vec![0.0; n];
        spmv_par(&a, &x, &mut yp);
        assert_eq!(y, yp);
    });
}

#[test]
fn matrix_market_roundtrip() {
    run_cases("matrix_market_roundtrip", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let a = build(n, &entries);
        let text = write_matrix_market_str(&a);
        let b: CsrMatrix<f64> = read_matrix_market_str(&text).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..n {
            for j in 0..n {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn symmetric_permutation_is_similarity() {
    run_cases("symmetric_permutation_is_similarity", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let shift = rng.next_u64() as usize;
        let a = build(n, &entries);
        // a rotation permutation
        let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
        let p = a.permute_symmetric(&perm);
        assert_eq!(p.nnz(), a.nnz());
        // entries move consistently: P(i,j) = A(perm[i], perm[j])... via inverse
        let mut inv = vec![0usize; n];
        for (k, &v) in perm.iter().enumerate() {
            inv[v] = k;
        }
        for i in 0..n {
            for j in 0..n {
                assert!((p.get(inv[i], inv[j]) - a.get(i, j)).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn rcm_always_yields_permutation() {
    run_cases("rcm_always_yields_permutation", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let a = build(n, &entries);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), n);
        assert!(is_permutation(&p));
    });
}

#[test]
fn blocking_partitions_are_valid() {
    run_cases("blocking_partitions_are_valid", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let bound = rng.gen_range(1usize..9);
        let a = build(n, &entries);
        let part = supervariable_blocking(&a, bound);
        assert_eq!(part.total(), n);
        assert!(part.max_size() <= bound);
        // block_of is consistent with ranges
        for b in 0..part.len() {
            for r in part.range(b) {
                assert_eq!(part.block_of(r), b);
            }
        }
        // coverage is a fraction
        let cov = block_coverage(&a, &part);
        assert!((0.0..=1.0).contains(&cov));
    });
}

#[test]
fn supervariables_never_split_identical_runs() {
    run_cases(
        "supervariables_never_split_identical_runs",
        64,
        |rng, _case| {
            let (n, entries) = coo_matrix(rng);
            let a = build(n, &entries);
            let sv = find_supervariables(&a);
            assert_eq!(sv.total(), n);
            // rows inside one supervariable share the pattern; rows across a
            // boundary differ
            for b in 0..sv.len() {
                let r0 = sv.range(b).start;
                for r in sv.range(b) {
                    assert_eq!(a.row_cols(r), a.row_cols(r0));
                }
                if b + 1 < sv.len() {
                    let next = sv.range(b + 1).start;
                    assert_ne!(a.row_cols(next - 1), a.row_cols(next));
                }
            }
        },
    );
}

#[test]
fn extraction_matches_dense_slices() {
    run_cases("extraction_matches_dense_slices", 64, |rng, _case| {
        let (n, entries) = coo_matrix(rng);
        let bound = rng.gen_range(1usize..7);
        let a = build(n, &entries);
        let part = BlockPartition::uniform(n, bound);
        let batch = extract_diag_blocks(&a, &part);
        let d = a.to_dense();
        for b in 0..part.len() {
            let r = part.range(b);
            let m = batch.block_as_mat(b);
            for (bi, i) in r.clone().enumerate() {
                for (bj, j) in r.clone().enumerate() {
                    assert_eq!(m[(bi, bj)], d[(i, j)]);
                }
            }
        }
    });
}

/// Chunk-size sweep: streaming the extraction through row windows of
/// any size must be bitwise-invisible relative to the monolithic
/// extraction (ROADMAP item 2(b) down payment — an out-of-core reader
/// can hand the extractor bounded row windows without changing a bit
/// of the batch it produces).
#[test]
fn chunked_extraction_is_bitwise_invisible() {
    use vbatch_sparse::extract_diag_blocks_chunked;
    run_cases(
        "chunked_extraction_is_bitwise_invisible",
        64,
        |rng, _case| {
            let (n, entries) = coo_matrix(rng);
            let bound = rng.gen_range(1usize..7);
            let a = build(n, &entries);
            let part = BlockPartition::uniform(n, bound);
            let whole = extract_diag_blocks(&a, &part);
            let random_chunk = rng.gen_range(1usize..n + 2);
            for chunk in [1, 2, 3, random_chunk, n, 2 * n + 1] {
                let c = extract_diag_blocks_chunked(&a, &part, chunk);
                assert_eq!(c, whole, "chunk={chunk}");
            }
        },
    );
}

/// Same sweep for the SPIKE extraction: diagonal partitions and both
/// tip batches come out bitwise identical for every chunk size.
#[test]
fn chunked_spike_extraction_is_bitwise_invisible() {
    use vbatch_sparse::{extract_spike_blocks, extract_spike_blocks_chunked, SpikePartition};
    run_cases(
        "chunked_spike_extraction_is_bitwise_invisible",
        64,
        |rng, _case| {
            let n = rng.gen_range(8usize..40);
            let bw = rng.gen_range(1usize..4);
            let seed = rng.gen_range(0u64..1 << 20);
            let a = build(n, &testgen::banded_system_triplets(n, bw, 1.5, seed));
            let p = rng.gen_range(1usize..SpikePartition::max_partitions(n, bw) + 1);
            let sp = SpikePartition::uniform(n, p, bw).unwrap();
            let whole = extract_spike_blocks(&a, &sp).unwrap();
            let random_chunk = rng.gen_range(1usize..n + 2);
            for chunk in [1, 2, random_chunk, n, 2 * n + 1] {
                let c = extract_spike_blocks_chunked(&a, &sp, chunk).unwrap();
                assert_eq!(c, whole, "chunk={chunk}");
            }
        },
    );
}

/// The level schedules built for the block triangular sweeps must form
/// a valid topological partition of the block dependency DAG: every
/// block row appears in exactly one level, every dependency sits in a
/// strictly earlier level, and each row's level is *minimal* (one more
/// than its deepest dependency, so no artificial serialization).
#[test]
fn level_schedules_topologically_partition_the_block_dag() {
    use vbatch_sparse::{BlockPattern, LevelSchedule, TriKind};
    run_cases(
        "level_schedules_topologically_partition_the_block_dag",
        64,
        |rng, _case| {
            let (n, entries) = coo_matrix(rng);
            let bound = rng.gen_range(1usize..7);
            let a = build(n, &entries);
            let part = BlockPartition::uniform(n, bound);
            let pattern = BlockPattern::build(&a, &part);
            for kind in [TriKind::Lower, TriKind::Upper] {
                let sched = match kind {
                    TriKind::Lower => LevelSchedule::lower(&pattern),
                    TriKind::Upper => LevelSchedule::upper(&pattern),
                };
                assert_eq!(sched.num_rows(), part.len());
                // partition: every block row in exactly one level
                let mut seen = vec![false; part.len()];
                for l in 0..sched.num_levels() {
                    assert!(!sched.level(l).is_empty(), "level {l} is empty");
                    for &i in sched.level(l) {
                        assert!(!seen[i], "row {i} scheduled twice");
                        seen[i] = true;
                        assert_eq!(sched.level_of(i), l);
                    }
                }
                assert!(seen.iter().all(|&s| s), "some row was never scheduled");
                // topological order + minimality against the dependency
                // set of the sweep direction
                for i in 0..part.len() {
                    let deps: &[usize] = match kind {
                        TriKind::Lower => pattern.lower_cols(i),
                        TriKind::Upper => pattern.upper_cols(i),
                    };
                    let mut deepest = None::<usize>;
                    for &j in deps {
                        assert!(
                            sched.level_of(j) < sched.level_of(i),
                            "dependency {j} of row {i} not in an earlier level"
                        );
                        deepest = Some(
                            deepest.map_or(sched.level_of(j), |d: usize| d.max(sched.level_of(j))),
                        );
                    }
                    let expect = deepest.map_or(0, |d| d + 1);
                    assert_eq!(
                        sched.level_of(i),
                        expect,
                        "row {i} not at its minimal level"
                    );
                }
            }
        },
    );
}
