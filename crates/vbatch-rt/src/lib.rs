//! # vbatch-rt
//!
//! The runtime substrate every other crate in the workspace builds on,
//! written against `std` only so the whole system builds in hermetic
//! (network-less) environments:
//!
//! * [`par`] — data-parallel iteration over owned collections and
//!   mutable slices with scoped threads (the CPU analogue of launching
//!   one warp per block), exposed through a small rayon-style
//!   [`par::prelude`];
//! * [`rng`] — a deterministic splitmix64 PRNG with a `rand`-style
//!   `gen_range` surface, used by the problem generators, IDR's shadow
//!   space and the test harnesses;
//! * [`check`] — a seeded random-case harness for property tests
//!   (deterministic, shrink-free, zero-dependency);
//! * [`fault`] — seeded fault-injection plans assigning corruption
//!   classes to batch members, so every recovery path in the stack is
//!   deterministically exercisable;
//! * [`chaos`] — seeded *runtime* chaos plans (delayed workers,
//!   poisoned tenants, burst arrivals, skewed clocks) driving the
//!   service-level property suites in `vbatch-serve`;
//! * [`sync`] — bounded MPSC channels with non-destructive fullness
//!   probes plus a cooperative [`sync::CancelToken`], the admission /
//!   drain substrate of the batched-solve service;
//! * [`bench`] — a wall-clock micro-benchmark harness for the
//!   `harness = false` bench targets;
//! * [`workspace`] — grow-once scratch buffers and a buffer free-list
//!   arena so steady-state hot loops (the preconditioner apply, the
//!   Krylov iteration bodies) perform zero heap allocations after
//!   warm-up;
//! * [`alloc_guard`] — a counting `GlobalAlloc` wrapper the zero-alloc
//!   tests install to *prove* that claim rather than assume it;
//! * [`testgen`] — the shared matrix/CSR input generators every
//!   property suite builds its cases from (raw data only: this crate
//!   sits below the container types);
//! * [`simd`] — dependency-free portable wide-lane chunks
//!   (`f64xN`/`f32xN`) with run-time width selection, the element type
//!   the `CpuSimd` backend's interleaved kernels are written against.

pub mod alloc_guard;
pub mod bench;
pub mod chaos;
pub mod check;
pub mod fault;
pub mod par;
pub mod rng;
pub mod simd;
pub mod sync;
pub mod testgen;
pub mod workspace;

pub use alloc_guard::{AllocSnapshot, CountingAlloc};
pub use chaos::{ChaosPlan, SkewClock};
pub use check::run_cases;
pub use fault::{FaultClass, FaultPlan};
pub use par::prelude;
pub use rng::SmallRng;
pub use simd::{lane_width, Chunk, Mask, SimdElem, MAX_LANE_WIDTH};
pub use sync::{bounded, CancelToken, Receiver, RecvError, Sender, TrySendError};
pub use workspace::{ScratchArena, Workspace};
