//! Bounded MPSC channels and cooperative cancellation — the thread
//! coordination substrate of the batched-solve service (`vbatch-serve`).
//!
//! `std::sync::mpsc::sync_channel` would nearly fit, but the service
//! needs three things it does not expose: a *non-destructive* fullness
//! probe (admission control must reject with a retry-after hint rather
//! than block a client thread), an exact live-depth reading (the
//! bounded-memory chaos property asserts queue depth against the
//! configured capacity), and a `recv_timeout` that wakes the batcher for
//! idle-tick flushes. So the channel here is a small Mutex + Condvar
//! ring with those three operations, plus a [`CancelToken`] the service
//! hands to shard workers for graceful drain.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::try_send`], handing the rejected value
/// back to the caller so admission control can answer the client
/// without losing the request.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the value is returned unqueued.
    Full(T),
    /// The receiver is gone; the value is returned unqueued.
    Disconnected(T),
}

/// Error returned by the receiving operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout (or, for `try_recv`, the
    /// queue was empty at the probe).
    Empty,
    /// The queue is empty and every sender is gone: no message can ever
    /// arrive again.
    Disconnected,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on enqueue and on sender disconnect.
    not_empty: Condvar,
    capacity: usize,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// The producing half of a bounded channel; clonable across client
/// threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded channel (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded MPSC channel of the given capacity (at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue without blocking; on a full queue or a dead receiver the
    /// value comes back in the error so the caller still owns it.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued (racy by nature; exact at the instant
    /// of the read).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // wake a receiver blocked in recv_timeout so it can observe
            // the disconnect instead of sleeping out its timeout
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(v) => Ok(v),
            None if inner.senders == 0 => Err(RecvError::Disconnected),
            None => Err(RecvError::Empty),
        }
    }

    /// Dequeue, waiting up to `timeout` for a message — the batcher's
    /// idle-tick wait: a timeout wakeup is the signal to consider
    /// flushing a partially filled batch.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, timeout)
                .expect("channel poisoned");
            inner = guard;
            if res.timed_out() {
                return match inner.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if inner.senders == 0 => Err(RecvError::Disconnected),
                    None => Err(RecvError::Empty),
                };
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receiver_alive = false;
    }
}

/// A cooperative cancellation flag shared between the service front
/// door and its shard workers: `cancel()` is observed by every clone.
/// Used for graceful drain — workers finish what is queued, then exit.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag; idempotent, observed by all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn try_send_respects_capacity_and_returns_value() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
    }

    #[test]
    fn depth_never_exceeds_capacity_under_contention() {
        let (tx, rx) = bounded::<usize>(8);
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let tx = tx.clone();
                thread::spawn(move || {
                    let mut sent = 0usize;
                    for i in 0..200 {
                        if tx.try_send(w * 1000 + i).is_ok() {
                            sent += 1;
                        }
                        assert!(tx.len() <= tx.capacity());
                    }
                    sent
                })
            })
            .collect();
        let reader = thread::spawn(move || {
            let mut got = 0usize;
            loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(_) => got += 1,
                    Err(RecvError::Disconnected) => return got,
                    Err(RecvError::Empty) => {}
                }
            }
        });
        let sent: usize = writers.into_iter().map(|w| w.join().unwrap()).sum();
        drop(tx);
        let got = reader.join().unwrap();
        assert_eq!(sent, got, "every accepted message is delivered once");
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Empty)
        );
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn disconnects_are_observed_on_both_ends() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));

        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn dropping_last_sender_wakes_blocked_receiver() {
        let (tx, rx) = bounded::<u8>(1);
        let h = thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        // the receiver returns promptly (well under the 5 s timeout)
        assert_eq!(h.join().unwrap(), Err(RecvError::Disconnected));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        let h = thread::spawn(move || {
            t.cancel();
        });
        h.join().unwrap();
        assert!(c.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }
}
