//! A minimal wall-clock micro-benchmark harness (`std`-only), used by
//! the `harness = false` bench targets. Each measurement warms up once,
//! then doubles the iteration count until the timed window exceeds a
//! floor, reporting ns/iter — enough to compare kernel variants without
//! an external benchmarking dependency.
//!
//! The harness reads time through [`MonoTimer`], a monotonic-clamped
//! wrapper over a raw nanosecond clock. `Instant` is documented as
//! monotonic, but under VM clock steps (live migration, host suspend)
//! raw readings have been observed to regress on some platforms; the
//! timer absorbs any backwards step by clamping to the largest reading
//! seen so far, so deltas are never negative. [`monotonic_ns`] exposes
//! the process-wide clamped clock — the timestamp source for the
//! `vbatch-trace` event rings.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Minimum measured window per benchmark; short enough for CI, long
/// enough to dominate timer noise on the block sizes we test.
const WINDOW: Duration = Duration::from_millis(200);

/// Hard cap on iterations so trivially cheap closures still terminate.
const MAX_ITERS: u64 = 1 << 22;

/// A raw nanosecond clock. The production implementation reads
/// `Instant`; tests inject fake clocks that step backwards to exercise
/// the clamping in [`MonoTimer`].
pub trait RawClock {
    /// Current reading in nanoseconds since an arbitrary fixed origin.
    fn raw_ns(&self) -> u64;
}

/// The production clock: nanoseconds since the first reading in this
/// process (a lazily pinned `Instant` epoch).
#[derive(Clone, Copy, Debug, Default)]
pub struct StdClock;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl RawClock for StdClock {
    fn raw_ns(&self) -> u64 {
        epoch().elapsed().as_nanos() as u64
    }
}

/// A monotonic-clamped view over a [`RawClock`]: every reading is at
/// least as large as every earlier reading, even if the raw clock steps
/// backwards. Thread-safe; the clamp is a single relaxed `fetch_max`.
#[derive(Debug, Default)]
pub struct MonoTimer<C: RawClock> {
    clock: C,
    last: AtomicU64,
}

impl<C: RawClock> MonoTimer<C> {
    /// Wrap `clock` with a fresh high-water mark.
    pub const fn new(clock: C) -> Self {
        MonoTimer {
            clock,
            last: AtomicU64::new(0),
        }
    }

    /// Clamped current reading in nanoseconds: `max` of the raw clock
    /// and every reading previously returned by this timer.
    pub fn now_ns(&self) -> u64 {
        let raw = self.clock.raw_ns();
        let prev = self.last.fetch_max(raw, Ordering::Relaxed);
        raw.max(prev)
    }

    /// Nanoseconds elapsed since an earlier [`Self::now_ns`] reading;
    /// saturates at zero, never wraps.
    pub fn elapsed_ns(&self, since_ns: u64) -> u64 {
        self.now_ns().saturating_sub(since_ns)
    }
}

static GLOBAL_TIMER: MonoTimer<StdClock> = MonoTimer::new(StdClock);

/// Process-wide monotonic timestamp in nanoseconds (clamped against
/// backwards clock steps). Allocation-free and lock-free: one `Instant`
/// read plus one relaxed `fetch_max`.
pub fn monotonic_ns() -> u64 {
    GLOBAL_TIMER.now_ns()
}

/// Time `f`, printing `label` and ns/iter.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut iters = 1u64;
    loop {
        let start = monotonic_ns();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = Duration::from_nanos(GLOBAL_TIMER.elapsed_ns(start));
        if elapsed >= WINDOW || iters >= MAX_ITERS {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<56} {per:>14.1} ns/iter  ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(2);
    }
}

/// Print a section header separating benchmark groups.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A scripted clock that replays a fixed sequence of raw readings,
    /// including backwards steps.
    struct FakeClock {
        readings: Mutex<std::vec::IntoIter<u64>>,
    }

    impl FakeClock {
        fn new(readings: Vec<u64>) -> Self {
            FakeClock {
                readings: Mutex::new(readings.into_iter()),
            }
        }
    }

    impl RawClock for FakeClock {
        fn raw_ns(&self) -> u64 {
            self.readings
                .lock()
                .unwrap()
                .next()
                .expect("fake clock exhausted")
        }
    }

    #[test]
    fn mono_timer_clamps_backwards_steps() {
        // raw clock jumps back twice (1000 -> 400, 1500 -> 200)
        let timer = MonoTimer::new(FakeClock::new(vec![100, 1000, 400, 1200, 1500, 200, 1600]));
        let mut prev = 0u64;
        let mut got = Vec::new();
        for _ in 0..7 {
            let t = timer.now_ns();
            assert!(t >= prev, "timer regressed: {t} < {prev}");
            prev = t;
            got.push(t);
        }
        // backwards raw readings are clamped to the running maximum
        assert_eq!(got, [100, 1000, 1000, 1200, 1500, 1500, 1600]);
    }

    #[test]
    fn mono_timer_elapsed_saturates() {
        // a start reading taken just before a backwards step must yield
        // a zero delta, not a wrapped huge one
        let timer = MonoTimer::new(FakeClock::new(vec![1000, 300, 500]));
        let start = timer.now_ns();
        assert_eq!(timer.elapsed_ns(start), 0);
        // and elapsed against a stale larger stamp also saturates
        assert_eq!(timer.elapsed_ns(u64::MAX), 0);
    }

    #[test]
    fn global_monotonic_ns_advances() {
        let a = monotonic_ns();
        let mut b = monotonic_ns();
        for _ in 0..1000 {
            b = monotonic_ns();
            assert!(b >= a);
        }
        assert!(b >= a);
    }
}
