//! A minimal wall-clock micro-benchmark harness (`std`-only), used by
//! the `harness = false` bench targets. Each measurement warms up once,
//! then doubles the iteration count until the timed window exceeds a
//! floor, reporting ns/iter — enough to compare kernel variants without
//! an external benchmarking dependency.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measured window per benchmark; short enough for CI, long
/// enough to dominate timer noise on the block sizes we test.
const WINDOW: Duration = Duration::from_millis(200);

/// Hard cap on iterations so trivially cheap closures still terminate.
const MAX_ITERS: u64 = 1 << 22;

/// Time `f`, printing `label` and ns/iter.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= WINDOW || iters >= MAX_ITERS {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<56} {per:>14.1} ns/iter  ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(2);
    }
}

/// Print a section header separating benchmark groups.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
