//! Scoped-thread data parallelism with a rayon-style surface.
//!
//! The batched workloads in this workspace are embarrassingly parallel
//! collections of independent small problems; all we need is an ordered
//! parallel `map`/`for_each` over an owned `Vec` (or over the disjoint
//! mutable slices of a batch). Work is split into one contiguous chunk
//! per available core and executed on `std::thread::scope` threads, so
//! there is no global pool, no unsafe code and no dependency.

use std::ops::Range;

/// Number of worker threads a parallel call will use.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Ordered parallel map over an owned collection: results arrive in
/// input order. Falls back to a plain sequential map for tiny inputs.
pub fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let outs: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    outs.into_iter().flatten().collect()
}

/// An eager parallel iterator: adapters like [`ParIter::map`] execute
/// immediately across threads and hand back the (ordered) results.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair every item with its input index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel map preserving input order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Parallel side-effecting visit of every item.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Gather the items into any collection (no further parallelism —
    /// upstream adapters already ran).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// Convert into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel views over mutable slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// One mutable reference per element.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Disjoint mutable chunks of at most `size` elements.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// Rayon-style prelude: `use vbatch_rt::prelude::*;` at the sites that
/// previously imported `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_and_enumerate() {
        let out: Vec<(usize, usize)> = (10..15).into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]);
    }

    #[test]
    fn for_each_on_mut_slices() {
        let mut data = vec![0usize; 64];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i * i);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * i));
        let mut chunked = vec![0usize; 10];
        chunked
            .par_chunks_mut(3)
            .enumerate()
            .for_each(|(c, chunk)| chunk.iter_mut().for_each(|v| *v = c));
        assert_eq!(chunked, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
