//! Deterministic fault-injection planning.
//!
//! Robustness paths (singular-block fallbacks, health triage, solver
//! breakdown handling) are only trustworthy if they are *exercised*, so
//! this module provides a seeded, reproducible way to decide which
//! members of a batch get corrupted and how. The plan is pure
//! bookkeeping — it assigns a [`FaultClass`] to a chosen fraction of
//! indices — and knows nothing about matrices; the numerical corruption
//! itself is applied by the consumer (`vbatch-exec::fault`), keeping
//! this crate scalar-agnostic.
//!
//! Determinism contract: for a fixed `(seed, classes, count)` the
//! assignment is identical across runs, platforms and thread counts, so
//! differential tests can assert per-block statuses against the exact
//! injected fault map.

use crate::rng::SmallRng;

/// The kinds of numerical corruption a fault plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Overwrite one matrix entry with NaN.
    NanEntry,
    /// Overwrite one matrix entry with +Inf.
    InfEntry,
    /// Zero an entire row: the block becomes exactly singular.
    ZeroRow,
    /// Scale one column by `sqrt(eps)`: the block becomes severely
    /// ill-conditioned but stays nonsingular.
    EpsColumn,
    /// Corrupt the block's right-hand-side segment with NaN (the matrix
    /// itself stays intact).
    RhsNan,
}

impl FaultClass {
    /// All classes, for exhaustive tests.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::NanEntry,
        FaultClass::InfEntry,
        FaultClass::ZeroRow,
        FaultClass::EpsColumn,
        FaultClass::RhsNan,
    ];

    /// Stable label used in stats and test diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NanEntry => "nan_entry",
            FaultClass::InfEntry => "inf_entry",
            FaultClass::ZeroRow => "zero_row",
            FaultClass::EpsColumn => "eps_column",
            FaultClass::RhsNan => "rhs_nan",
        }
    }
}

/// A seeded plan describing which fraction of a batch receives which
/// [`FaultClass`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// `(class, fraction)` entries; fractions are of the *total* batch
    /// and are realized as `round(fraction * count)` victims each.
    classes: Vec<(FaultClass, f64)>,
}

impl FaultPlan {
    /// Empty plan with the given seed; add fault classes with
    /// [`FaultPlan::with`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            classes: Vec::new(),
        }
    }

    /// Add `fraction` (of the whole batch) of blocks corrupted with
    /// `class`. Fractions must be in `[0, 1]` and their sum must not
    /// exceed 1.
    pub fn with(mut self, class: FaultClass, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fault fraction {fraction} outside [0, 1]"
        );
        self.classes.push((class, fraction));
        let total: f64 = self.classes.iter().map(|&(_, f)| f).sum();
        assert!(total <= 1.0 + 1e-12, "fault fractions sum to {total} > 1");
        self
    }

    /// The seed the assignment is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured `(class, fraction)` entries.
    pub fn classes(&self) -> &[(FaultClass, f64)] {
        &self.classes
    }

    /// Deterministically assign faults to a batch of `count` members:
    /// returns one entry per index, `Some(class)` for victims. Each
    /// class receives `round(fraction * count)` victims, chosen by a
    /// seeded Fisher-Yates shuffle of the index space, so the same plan
    /// always corrupts the same blocks.
    pub fn assign(&self, count: usize) -> Vec<Option<FaultClass>> {
        let mut order: Vec<usize> = (0..count).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for i in (1..count).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        let mut out = vec![None; count];
        let mut next = 0usize;
        for &(class, fraction) in &self.classes {
            let victims = ((fraction * count as f64).round() as usize).min(count - next);
            for &idx in &order[next..next + victims] {
                out[idx] = Some(class);
            }
            next += victims;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic() {
        let plan = FaultPlan::new(7)
            .with(FaultClass::ZeroRow, 0.1)
            .with(FaultClass::NanEntry, 0.05);
        assert_eq!(plan.assign(200), plan.assign(200));
        // a rebuilt identical plan assigns identically too
        let again = FaultPlan::new(7)
            .with(FaultClass::ZeroRow, 0.1)
            .with(FaultClass::NanEntry, 0.05);
        assert_eq!(plan.assign(200), again.assign(200));
    }

    #[test]
    fn fractions_are_realized_exactly() {
        let plan = FaultPlan::new(3)
            .with(FaultClass::ZeroRow, 0.1)
            .with(FaultClass::EpsColumn, 0.25);
        let assigned = plan.assign(1000);
        let count_of = |c: FaultClass| assigned.iter().filter(|a| **a == Some(c)).count();
        assert_eq!(count_of(FaultClass::ZeroRow), 100);
        assert_eq!(count_of(FaultClass::EpsColumn), 250);
        assert_eq!(assigned.iter().filter(|a| a.is_none()).count(), 650);
    }

    #[test]
    fn distinct_seeds_pick_distinct_victims() {
        let a = FaultPlan::new(1)
            .with(FaultClass::NanEntry, 0.2)
            .assign(100);
        let b = FaultPlan::new(2)
            .with(FaultClass::NanEntry, 0.2)
            .assign(100);
        assert_ne!(a, b);
        // but the victim *count* is identical
        assert_eq!(
            a.iter().filter(|v| v.is_some()).count(),
            b.iter().filter(|v| v.is_some()).count()
        );
    }

    #[test]
    fn empty_plan_assigns_nothing() {
        assert!(FaultPlan::new(0).assign(50).iter().all(|a| a.is_none()));
    }

    #[test]
    fn full_coverage_is_allowed() {
        let assigned = FaultPlan::new(9).with(FaultClass::ZeroRow, 1.0).assign(8);
        assert!(assigned.iter().all(|a| *a == Some(FaultClass::ZeroRow)));
    }

    #[test]
    #[should_panic(expected = "> 1")]
    fn oversubscribed_fractions_rejected() {
        let _ = FaultPlan::new(0)
            .with(FaultClass::ZeroRow, 0.7)
            .with(FaultClass::NanEntry, 0.7);
    }

    #[test]
    fn labels_are_stable() {
        for c in FaultClass::ALL {
            assert!(!c.label().is_empty());
        }
        assert_eq!(FaultClass::EpsColumn.label(), "eps_column");
    }
}
