//! Deterministic chaos planning for the batched-solve service.
//!
//! Like [`crate::fault`] for numerics, this module makes the *runtime*
//! failure modes reproducible: a seeded [`ChaosPlan`] decides which
//! shard flushes get artificially delayed workers, which tenants submit
//! poisoned (singular / non-finite) systems, how large each arrival
//! burst is, and how a skewed clock misbehaves — all as pure
//! bookkeeping, so the property suites in `vbatch-serve` can drive the
//! service through the same storm on every run and assert exact
//! outcomes.
//!
//! Determinism contract: every query is a pure function of
//! `(seed, arguments)` — no interior state, no ordering sensitivity —
//! so concurrent shard workers can consult one shared plan and still
//! reproduce bit-identical schedules across runs and thread counts.

use crate::bench::RawClock;
use crate::rng::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seeded, stateless chaos schedule for service-level property tests.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    seed: u64,
    /// Fraction of shard flushes whose worker sleeps before executing.
    delay_fraction: f64,
    /// Upper bound of an injected worker delay.
    max_delay: Duration,
    /// Fraction of tenants whose submissions are poisoned.
    poison_fraction: f64,
    /// Burst arrivals: every `burst_every`-th arrival step delivers
    /// `burst_len` requests at once instead of one.
    burst_every: usize,
    burst_len: usize,
}

impl ChaosPlan {
    /// A plan with no chaos; enable pieces with the builder methods.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            delay_fraction: 0.0,
            max_delay: Duration::ZERO,
            poison_fraction: 0.0,
            burst_every: 0,
            burst_len: 1,
        }
    }

    /// Delay `fraction` of shard flushes by up to `max_delay`.
    pub fn with_worker_delays(mut self, fraction: f64, max_delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "delay fraction {fraction}");
        self.delay_fraction = fraction;
        self.max_delay = max_delay;
        self
    }

    /// Poison `fraction` of tenant ids ([`ChaosPlan::is_poisoned`]).
    pub fn with_poisoned_tenants(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "poison fraction {fraction}"
        );
        self.poison_fraction = fraction;
        self
    }

    /// Make every `every`-th arrival step a burst of `len` requests.
    pub fn with_bursts(mut self, every: usize, len: usize) -> Self {
        assert!(len >= 1, "burst length must be at least 1");
        self.burst_every = every;
        self.burst_len = len;
        self
    }

    /// The seed all decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash the query coordinates into an independent stream.
    fn stream(&self, salt: u64, a: u64, b: u64) -> SmallRng {
        SmallRng::seed_from_u64(
            self.seed
                ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ a.wrapping_mul(0xbf58_476d_1ce4_e5b9)
                ^ b.wrapping_mul(0x94d0_49bb_1331_11eb),
        )
    }

    /// Injected worker delay before flush number `flush` on `shard`
    /// (`None` for the undelayed majority). Deterministic per
    /// `(seed, shard, flush)`.
    pub fn worker_delay(&self, shard: usize, flush: u64) -> Option<Duration> {
        if self.delay_fraction <= 0.0 || self.max_delay.is_zero() {
            return None;
        }
        let mut rng = self.stream(1, shard as u64, flush);
        if (rng.gen_range(0u64..1_000_000) as f64) < self.delay_fraction * 1e6 {
            let ns = rng.gen_range(0..self.max_delay.as_nanos().max(1) as u64);
            Some(Duration::from_nanos(ns))
        } else {
            None
        }
    }

    /// `true` when submissions from `tenant` carry poisoned systems.
    /// Deterministic per `(seed, tenant)`.
    pub fn is_poisoned(&self, tenant: u64) -> bool {
        if self.poison_fraction <= 0.0 {
            return false;
        }
        let mut rng = self.stream(2, tenant, 0);
        (rng.gen_range(0u64..1_000_000) as f64) < self.poison_fraction * 1e6
    }

    /// Number of requests arriving at open-loop step `step` (1 outside
    /// bursts, `burst_len` on every `burst_every`-th step).
    pub fn burst_len(&self, step: u64) -> usize {
        if self.burst_every > 0 && step % self.burst_every as u64 == 0 {
            self.burst_len
        } else {
            1
        }
    }
}

/// A deterministic misbehaving clock for [`crate::bench::MonoTimer`]:
/// advances `tick_ns` per reading but steps *backwards* by `skew_ns`
/// every `skew_every`-th reading — the VM clock-step scenario the
/// monotonic clamp exists for. Service deadline logic tested against
/// this clock must never observe time running backwards.
#[derive(Debug)]
pub struct SkewClock {
    reads: AtomicU64,
    tick_ns: u64,
    skew_every: u64,
    skew_ns: u64,
}

impl SkewClock {
    /// A clock advancing `tick_ns` per read, jumping back `skew_ns`
    /// every `skew_every` reads (0 disables skew).
    pub fn new(tick_ns: u64, skew_every: u64, skew_ns: u64) -> Self {
        SkewClock {
            reads: AtomicU64::new(0),
            tick_ns,
            skew_every,
            skew_ns,
        }
    }
}

impl RawClock for SkewClock {
    fn raw_ns(&self) -> u64 {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let base = n.saturating_mul(self.tick_ns);
        if self.skew_every > 0 && n % self.skew_every == 0 {
            base.saturating_sub(self.skew_ns)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MonoTimer;

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let plan = ChaosPlan::new(42)
            .with_worker_delays(0.5, Duration::from_millis(5))
            .with_poisoned_tenants(0.25)
            .with_bursts(10, 7);
        let again = plan.clone();
        // query in different orders: same answers
        let fwd: Vec<_> = (0..64).map(|t| plan.is_poisoned(t)).collect();
        let rev: Vec<_> = (0..64).rev().map(|t| again.is_poisoned(t)).collect();
        assert_eq!(fwd, rev.into_iter().rev().collect::<Vec<_>>());
        for shard in 0..4 {
            for flush in 0..32 {
                assert_eq!(
                    plan.worker_delay(shard, flush),
                    again.worker_delay(shard, flush)
                );
            }
        }
    }

    #[test]
    fn fractions_are_roughly_realized() {
        let plan = ChaosPlan::new(7)
            .with_worker_delays(0.3, Duration::from_millis(1))
            .with_poisoned_tenants(0.2);
        let poisoned = (0..10_000).filter(|&t| plan.is_poisoned(t)).count();
        assert!(
            (1_600..=2_400).contains(&poisoned),
            "poisoned {poisoned}/10000 vs fraction 0.2"
        );
        let delayed = (0..10_000u64)
            .filter(|&f| plan.worker_delay(0, f).is_some())
            .count();
        assert!(
            (2_400..=3_600).contains(&delayed),
            "delayed {delayed}/10000 vs fraction 0.3"
        );
        // delays respect the bound
        for f in 0..1_000 {
            if let Some(d) = plan.worker_delay(1, f) {
                assert!(d <= Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn zero_chaos_plan_is_inert() {
        let plan = ChaosPlan::new(3);
        assert!((0..100).all(|t| !plan.is_poisoned(t)));
        assert!((0..100u64).all(|f| plan.worker_delay(0, f).is_none()));
        assert!((0..100u64).all(|s| plan.burst_len(s) == 1));
    }

    #[test]
    fn bursts_fire_on_schedule() {
        let plan = ChaosPlan::new(0).with_bursts(5, 9);
        assert_eq!(plan.burst_len(0), 9);
        assert_eq!(plan.burst_len(1), 1);
        assert_eq!(plan.burst_len(5), 9);
        assert_eq!(plan.burst_len(7), 1);
        assert_eq!(plan.burst_len(10), 9);
    }

    #[test]
    fn skew_clock_regresses_but_mono_timer_does_not() {
        let raw = SkewClock::new(100, 4, 250);
        // raw readings do regress at every 4th read
        let mut raws = Vec::new();
        for _ in 0..12 {
            raws.push(raw.raw_ns());
        }
        assert!(
            raws.windows(2).any(|w| w[1] < w[0]),
            "skew clock must actually step backwards: {raws:?}"
        );
        // the clamped timer never does
        let timer = MonoTimer::new(SkewClock::new(100, 4, 250));
        let mut prev = 0;
        for _ in 0..64 {
            let t = timer.now_ns();
            assert!(t >= prev, "clamped timer regressed: {t} < {prev}");
            prev = t;
        }
    }
}
