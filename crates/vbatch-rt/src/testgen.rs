//! Shared test-input generators for the property suites.
//!
//! Every crate's `tests/proptests.rs` used to carry its own copy of
//! the same few builders (diagonally dominant dense blocks, ragged
//! batch shapes, sparse triplet systems). They live here now, in the
//! substrate crate, expressed as **raw data** — column-major `Vec<f64>`
//! blocks, size lists, and `(row, col, value)` triplet lists — because
//! `vbatch-rt` sits below the crates that define `DenseMat`,
//! `MatrixBatch` and `CsrMatrix`. Each consumer wraps the raw data
//! into its own container with a one-line adapter.
//!
//! Builder families:
//!
//! * dense blocks — [`dd_dense`], [`well_conditioned_dense`],
//!   [`hashed_dense`], [`ill_conditioned_dense`], [`singular_dense`];
//! * batches — [`ragged_sizes`], [`dd_batch`], [`uniform_dd_batch`];
//! * sparse systems — [`coo_entries`], [`extra_couplings`],
//!   [`dd_system_triplets`], [`spd_system_triplets`],
//!   [`block_system_triplets`].

use crate::rng::SmallRng;

/// A variable-size batch as raw data: per-block orders and per-block
/// column-major `n × n` element vectors.
#[derive(Clone, Debug)]
pub struct RawBatch {
    /// Block orders.
    pub sizes: Vec<usize>,
    /// One column-major `n*n` vector per block.
    pub blocks: Vec<Vec<f64>>,
}

impl RawBatch {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the batch has no blocks.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

/// Diagonally dominant random block (column-major): off-diagonal
/// entries uniform in `[-1, 1)`, diagonal shifted by `2 + n` — the
/// standard "always factorizes, any pivoting" test block.
pub fn dd_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for c in 0..n {
        for r in 0..n {
            let v = rng.gen_range(-1.0..1.0);
            m[c * n + r] = if r == c { v + 2.0 + n as f64 } else { v };
        }
    }
    m
}

/// Well-conditioned random block (column-major): entries uniform in
/// `[-1, 1)` with the diagonal pushed away from zero by `±n` (sign
/// preserved). Unlike [`dd_dense`] the diagonal keeps its sign, so
/// pivoting still has real choices to make.
pub fn well_conditioned_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for i in 0..n {
        let d = m[i * n + i];
        m[i * n + i] = d + if d >= 0.0 { n as f64 } else { -(n as f64) };
    }
    m
}

/// Deterministic hash-based block (column-major): entries derived from
/// `(i, j, seed)` through a multiplicative hash, diagonal shifted by
/// `+3.5`. Reproducible without an RNG — the form the differential
/// suites use when two implementations must see bit-identical inputs.
pub fn hashed_dense(n: usize, seed: u64) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            let h =
                (i.wrapping_mul(2654435761) ^ j.wrapping_mul(0x9e3779b9) ^ seed as usize) % 4096;
            let v = h as f64 / 2048.0 - 1.0 + if i == j { 3.5 } else { 0.0 };
            m[j * n + i] = v;
        }
    }
    m
}

/// Ill-conditioned block: a [`dd_dense`] base with its last column
/// scaled down by `10^-decades`, driving the condition estimate up by
/// roughly that factor while staying exactly representable.
pub fn ill_conditioned_dense(rng: &mut SmallRng, n: usize, decades: u32) -> Vec<f64> {
    let mut m = dd_dense(rng, n);
    let scale = 10f64.powi(-(decades as i32));
    let c = n - 1;
    for r in 0..n {
        m[c * n + r] *= scale;
    }
    m
}

/// Exactly singular block: a [`dd_dense`] base with its last row
/// zeroed.
pub fn singular_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m = dd_dense(rng, n);
    let r = n - 1;
    for c in 0..n {
        m[c * n + r] = 0.0;
    }
    m
}

/// A ragged batch shape: `1..=max_count` blocks of order `1..=max_n`.
pub fn ragged_sizes(rng: &mut SmallRng, max_n: usize, max_count: usize) -> Vec<usize> {
    let count = rng.gen_range(1usize..max_count + 1);
    (0..count)
        .map(|_| rng.gen_range(1usize..max_n + 1))
        .collect()
}

/// A ragged batch of [`dd_dense`] blocks.
pub fn dd_batch(rng: &mut SmallRng, max_n: usize, max_count: usize) -> RawBatch {
    let sizes = ragged_sizes(rng, max_n, max_count);
    dd_batch_of(rng, &sizes)
}

/// [`dd_dense`] blocks for the exact shape `sizes`.
pub fn dd_batch_of(rng: &mut SmallRng, sizes: &[usize]) -> RawBatch {
    let blocks = sizes.iter().map(|&n| dd_dense(rng, n)).collect();
    RawBatch {
        sizes: sizes.to_vec(),
        blocks,
    }
}

/// A uniform batch (`count` blocks, all order `n`) of [`dd_dense`]
/// blocks.
pub fn uniform_dd_batch(rng: &mut SmallRng, n: usize, count: usize) -> RawBatch {
    dd_batch_of(rng, &vec![n; count])
}

/// Random sparse square matrix as raw triplets, duplicates allowed
/// (conversion to CSR must sum them): `2..=20` rows, up to 79 entries
/// uniform in `[-2, 2)`. Pair with a per-suite diagonal fix-up.
pub fn coo_entries(rng: &mut SmallRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(2usize..21);
    let count = rng.gen_range(0usize..80);
    let entries = (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-2.0f64..2.0),
            )
        })
        .collect();
    (n, entries)
}

/// Up to `max_count` random off-structure couplings with indices in
/// `0..idx_bound` and values in `[-val, val)` — the "extra" input of
/// the system builders below.
pub fn extra_couplings(
    rng: &mut SmallRng,
    max_count: usize,
    idx_bound: usize,
    val: f64,
) -> Vec<(usize, usize, f64)> {
    let count = rng.gen_range(0usize..max_count.max(1));
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0usize..idx_bound),
                rng.gen_range(0usize..idx_bound),
                rng.gen_range(-val..val),
            )
        })
        .collect()
}

/// Random sparse diagonally-dominant nonsymmetric `n × n` system as
/// triplets: the `extra` couplings (indices folded modulo `n`,
/// diagonal hits dropped), a `-0.5 / -0.4` chain coupling guaranteeing
/// irreducibility, and a dominant diagonal.
pub fn dd_system_triplets(n: usize, extra: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i != j {
            out.push((i, j, v));
            rowsum[i] += v.abs();
        }
    }
    for i in 0..n.saturating_sub(1) {
        out.push((i, i + 1, -0.5));
        out.push((i + 1, i, -0.4));
        rowsum[i] += 0.5;
        rowsum[i + 1] += 0.4;
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.3) * 1.05));
    }
    out
}

/// Symmetric positive-definite variant of [`dd_system_triplets`]:
/// couplings mirrored across the diagonal, symmetric chain, strictly
/// dominant diagonal — SPD by Gershgorin.
pub fn spd_system_triplets(n: usize, extra: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i != j {
            out.push((i, j, v));
            out.push((j, i, v));
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        }
    }
    for i in 0..n.saturating_sub(1) {
        out.push((i, i + 1, -0.5));
        out.push((i + 1, i, -0.5));
        rowsum[i] += 0.5;
        rowsum[i + 1] += 0.5;
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.3) * 1.05));
    }
    out
}

/// Block-structured sparse system as triplets: `nodes` dense `dof ×
/// dof` node blocks on the diagonal, the `extra` couplings kept only
/// when they cross node boundaries, and a dominant diagonal — the
/// shape block-Jacobi partitioning is designed for.
pub fn block_system_triplets(
    nodes: usize,
    dof: usize,
    extra: &[(usize, usize, f64)],
) -> Vec<(usize, usize, f64)> {
    let n = nodes * dof;
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for node in 0..nodes {
        for i in 0..dof {
            for j in 0..dof {
                if i != j {
                    let v = ((node * 31 + i * 7 + j * 3) % 13) as f64 / 13.0 - 0.5;
                    out.push((node * dof + i, node * dof + j, v));
                    rowsum[node * dof + i] += v.abs();
                }
            }
        }
    }
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i / dof != j / dof {
            out.push((i, j, v));
            rowsum[i] += v.abs();
        }
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.4) * 1.1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xbadc0ffee)
    }

    fn is_dd(n: usize, m: &[f64]) -> bool {
        (0..n).all(|r| {
            let off: f64 = (0..n).filter(|&c| c != r).map(|c| m[c * n + r].abs()).sum();
            m[r * n + r].abs() > off
        })
    }

    #[test]
    fn dd_blocks_are_diagonally_dominant() {
        let mut rng = rng();
        for n in 1..12 {
            assert!(is_dd(n, &dd_dense(&mut rng, n)), "n={n}");
        }
    }

    #[test]
    fn hashed_blocks_are_deterministic() {
        assert_eq!(hashed_dense(7, 42), hashed_dense(7, 42));
        assert_ne!(hashed_dense(7, 42), hashed_dense(7, 43));
    }

    #[test]
    fn singular_blocks_have_a_zero_row() {
        let mut rng = rng();
        let n = 6;
        let m = singular_dense(&mut rng, n);
        assert!((0..n).all(|c| m[c * n + n - 1] == 0.0));
    }

    #[test]
    fn ill_conditioned_scales_last_column() {
        let mut rng = rng();
        let n = 5;
        let m = ill_conditioned_dense(&mut rng, n, 12);
        for r in 0..n {
            assert!(m[(n - 1) * n + r].abs() < 1e-10);
        }
    }

    #[test]
    fn system_triplets_are_row_dominant() {
        let n = 9;
        let extra = [(1, 5, 0.7), (8, 0, -0.9), (3, 3, 4.0)];
        for trips in [
            dd_system_triplets(n, &extra),
            spd_system_triplets(n, &extra),
            block_system_triplets(3, 3, &extra),
        ] {
            let mut diag = vec![0.0f64; n];
            let mut off = vec![0.0f64; n];
            for &(i, j, v) in &trips {
                if i == j {
                    diag[i] += v;
                } else {
                    off[i] += v.abs();
                }
            }
            for i in 0..n {
                assert!(diag[i] > off[i], "row {i}: {} vs {}", diag[i], off[i]);
            }
        }
    }

    #[test]
    fn ragged_batches_respect_bounds() {
        let mut rng = rng();
        for _ in 0..50 {
            let b = dd_batch(&mut rng, 9, 14);
            assert!(!b.is_empty() && b.len() <= 14);
            for (i, &n) in b.sizes.iter().enumerate() {
                assert!((1..=9).contains(&n));
                assert_eq!(b.blocks[i].len(), n * n);
            }
        }
    }
}
