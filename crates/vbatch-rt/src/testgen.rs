//! Shared test-input generators for the property suites.
//!
//! Every crate's `tests/proptests.rs` used to carry its own copy of
//! the same few builders (diagonally dominant dense blocks, ragged
//! batch shapes, sparse triplet systems). They live here now, in the
//! substrate crate, expressed as **raw data** — column-major `Vec<f64>`
//! blocks, size lists, and `(row, col, value)` triplet lists — because
//! `vbatch-rt` sits below the crates that define `DenseMat`,
//! `MatrixBatch` and `CsrMatrix`. Each consumer wraps the raw data
//! into its own container with a one-line adapter.
//!
//! Builder families:
//!
//! * dense blocks — [`dd_dense`], [`well_conditioned_dense`],
//!   [`hashed_dense`], [`ill_conditioned_dense`], [`singular_dense`];
//! * batches — [`ragged_sizes`], [`dd_batch`], [`uniform_dd_batch`];
//! * sparse systems — [`coo_entries`], [`extra_couplings`],
//!   [`dd_system_triplets`], [`spd_system_triplets`],
//!   [`block_system_triplets`];
//! * banded systems (SPIKE substrate) — [`banded_system_triplets`],
//!   [`block_tridiag_triplets`].

use crate::rng::SmallRng;

/// A variable-size batch as raw data: per-block orders and per-block
/// column-major `n × n` element vectors.
#[derive(Clone, Debug)]
pub struct RawBatch {
    /// Block orders.
    pub sizes: Vec<usize>,
    /// One column-major `n*n` vector per block.
    pub blocks: Vec<Vec<f64>>,
}

impl RawBatch {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the batch has no blocks.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

/// Diagonally dominant random block (column-major): off-diagonal
/// entries uniform in `[-1, 1)`, diagonal shifted by `2 + n` — the
/// standard "always factorizes, any pivoting" test block.
pub fn dd_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for c in 0..n {
        for r in 0..n {
            let v = rng.gen_range(-1.0..1.0);
            m[c * n + r] = if r == c { v + 2.0 + n as f64 } else { v };
        }
    }
    m
}

/// Well-conditioned random block (column-major): entries uniform in
/// `[-1, 1)` with the diagonal pushed away from zero by `±n` (sign
/// preserved). Unlike [`dd_dense`] the diagonal keeps its sign, so
/// pivoting still has real choices to make.
pub fn well_conditioned_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for i in 0..n {
        let d = m[i * n + i];
        m[i * n + i] = d + if d >= 0.0 { n as f64 } else { -(n as f64) };
    }
    m
}

/// Deterministic hash-based block (column-major): entries derived from
/// `(i, j, seed)` through a multiplicative hash, diagonal shifted by
/// `+3.5`. Reproducible without an RNG — the form the differential
/// suites use when two implementations must see bit-identical inputs.
pub fn hashed_dense(n: usize, seed: u64) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            let h =
                (i.wrapping_mul(2654435761) ^ j.wrapping_mul(0x9e3779b9) ^ seed as usize) % 4096;
            let v = h as f64 / 2048.0 - 1.0 + if i == j { 3.5 } else { 0.0 };
            m[j * n + i] = v;
        }
    }
    m
}

/// Ill-conditioned block: a [`dd_dense`] base with its last column
/// scaled down by `10^-decades`, driving the condition estimate up by
/// roughly that factor while staying exactly representable.
pub fn ill_conditioned_dense(rng: &mut SmallRng, n: usize, decades: u32) -> Vec<f64> {
    let mut m = dd_dense(rng, n);
    let scale = 10f64.powi(-(decades as i32));
    let c = n - 1;
    for r in 0..n {
        m[c * n + r] *= scale;
    }
    m
}

/// Exactly singular block: a [`dd_dense`] base with its last row
/// zeroed.
pub fn singular_dense(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    let mut m = dd_dense(rng, n);
    let r = n - 1;
    for c in 0..n {
        m[c * n + r] = 0.0;
    }
    m
}

/// A ragged batch shape: `1..=max_count` blocks of order `1..=max_n`.
pub fn ragged_sizes(rng: &mut SmallRng, max_n: usize, max_count: usize) -> Vec<usize> {
    let count = rng.gen_range(1usize..max_count + 1);
    (0..count)
        .map(|_| rng.gen_range(1usize..max_n + 1))
        .collect()
}

/// A ragged batch of [`dd_dense`] blocks.
pub fn dd_batch(rng: &mut SmallRng, max_n: usize, max_count: usize) -> RawBatch {
    let sizes = ragged_sizes(rng, max_n, max_count);
    dd_batch_of(rng, &sizes)
}

/// [`dd_dense`] blocks for the exact shape `sizes`.
pub fn dd_batch_of(rng: &mut SmallRng, sizes: &[usize]) -> RawBatch {
    let blocks = sizes.iter().map(|&n| dd_dense(rng, n)).collect();
    RawBatch {
        sizes: sizes.to_vec(),
        blocks,
    }
}

/// A uniform batch (`count` blocks, all order `n`) of [`dd_dense`]
/// blocks.
pub fn uniform_dd_batch(rng: &mut SmallRng, n: usize, count: usize) -> RawBatch {
    dd_batch_of(rng, &vec![n; count])
}

/// Random sparse square matrix as raw triplets, duplicates allowed
/// (conversion to CSR must sum them): `2..=20` rows, up to 79 entries
/// uniform in `[-2, 2)`. Pair with a per-suite diagonal fix-up.
pub fn coo_entries(rng: &mut SmallRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(2usize..21);
    let count = rng.gen_range(0usize..80);
    let entries = (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-2.0f64..2.0),
            )
        })
        .collect();
    (n, entries)
}

/// Up to `max_count` random off-structure couplings with indices in
/// `0..idx_bound` and values in `[-val, val)` — the "extra" input of
/// the system builders below.
pub fn extra_couplings(
    rng: &mut SmallRng,
    max_count: usize,
    idx_bound: usize,
    val: f64,
) -> Vec<(usize, usize, f64)> {
    let count = rng.gen_range(0usize..max_count.max(1));
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0usize..idx_bound),
                rng.gen_range(0usize..idx_bound),
                rng.gen_range(-val..val),
            )
        })
        .collect()
}

/// Random sparse diagonally-dominant nonsymmetric `n × n` system as
/// triplets: the `extra` couplings (indices folded modulo `n`,
/// diagonal hits dropped), a `-0.5 / -0.4` chain coupling guaranteeing
/// irreducibility, and a dominant diagonal.
pub fn dd_system_triplets(n: usize, extra: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i != j {
            out.push((i, j, v));
            rowsum[i] += v.abs();
        }
    }
    for i in 0..n.saturating_sub(1) {
        out.push((i, i + 1, -0.5));
        out.push((i + 1, i, -0.4));
        rowsum[i] += 0.5;
        rowsum[i + 1] += 0.4;
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.3) * 1.05));
    }
    out
}

/// Symmetric positive-definite variant of [`dd_system_triplets`]:
/// couplings mirrored across the diagonal, symmetric chain, strictly
/// dominant diagonal — SPD by Gershgorin.
pub fn spd_system_triplets(n: usize, extra: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i != j {
            out.push((i, j, v));
            out.push((j, i, v));
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        }
    }
    for i in 0..n.saturating_sub(1) {
        out.push((i, i + 1, -0.5));
        out.push((i + 1, i, -0.5));
        rowsum[i] += 0.5;
        rowsum[i + 1] += 0.5;
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.3) * 1.05));
    }
    out
}

/// Block-structured sparse system as triplets: `nodes` dense `dof ×
/// dof` node blocks on the diagonal, the `extra` couplings kept only
/// when they cross node boundaries, and a dominant diagonal — the
/// shape block-Jacobi partitioning is designed for.
pub fn block_system_triplets(
    nodes: usize,
    dof: usize,
    extra: &[(usize, usize, f64)],
) -> Vec<(usize, usize, f64)> {
    let n = nodes * dof;
    let mut out = Vec::new();
    let mut rowsum = vec![0.0f64; n];
    for node in 0..nodes {
        for i in 0..dof {
            for j in 0..dof {
                if i != j {
                    let v = ((node * 31 + i * 7 + j * 3) % 13) as f64 / 13.0 - 0.5;
                    out.push((node * dof + i, node * dof + j, v));
                    rowsum[node * dof + i] += v.abs();
                }
            }
        }
    }
    for &(i, j, v) in extra {
        let (i, j) = (i % n, j % n);
        if i / dof != j / dof {
            out.push((i, j, v));
            rowsum[i] += v.abs();
        }
    }
    for (i, s) in rowsum.iter().enumerate() {
        out.push((i, i, s.max(0.4) * 1.1));
    }
    out
}

/// Deterministic banded `n × n` system as triplets: a dense band of
/// half-bandwidth `bw` (every in-band position holds a hashed nonzero),
/// unit diagonal, and each row's off-diagonal entries rescaled so their
/// absolute sum is exactly `1 / dominance`. `dominance > 1` therefore
/// gives a strictly diagonally dominant row (Gershgorin margin
/// `1 - 1/dominance`), while `dominance < 1` deliberately breaks
/// dominance — the conditioning knob of the SPIKE property suites.
/// Reproducible from `(n, bw, dominance, seed)` alone.
pub fn banded_system_triplets(
    n: usize,
    bw: usize,
    dominance: f64,
    seed: u64,
) -> Vec<(usize, usize, f64)> {
    assert!(dominance > 0.0, "dominance must be positive");
    let mut out = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(bw);
        let hi = (i + bw).min(n.saturating_sub(1));
        let mut row = Vec::new();
        let mut rowsum = 0.0f64;
        for j in lo..=hi {
            if j == i {
                continue;
            }
            let h = (i
                .wrapping_mul(2654435761)
                .wrapping_add(j.wrapping_mul(0x9e3779b9))
                ^ (seed as usize).wrapping_mul(0x85ebca6b))
                % 1024;
            // (h - 511.5)/512 is never exactly zero, so the band stays
            // structurally dense and `bandwidth()` reports `bw`.
            let v = (h as f64 - 511.5) / 512.0;
            row.push((i, j, v));
            rowsum += v.abs();
        }
        if rowsum > 0.0 {
            let scale = 1.0 / (dominance * rowsum);
            for (i, j, v) in row {
                out.push((i, j, v * scale));
            }
        }
        out.push((i, i, 1.0));
    }
    out
}

/// Deterministic diagonally-dominant block-tridiagonal system as
/// triplets: `count` dense diagonal blocks of order `n` (hashed
/// entries, diagonal shifted by `n + 2`) coupled to their neighbours
/// through diagonal coupling blocks of value `coupling`. With
/// `coupling = -0.25` this reproduces, entry for entry, the matrix the
/// benchmark suite has always used for block-ILU(0) and SPIKE
/// throughput columns; property suites reuse it so benches and tests
/// share one source of cases. The natural partition is `count` blocks
/// of order `n`, and the structural half-bandwidth is exactly `n`.
pub fn block_tridiag_triplets(count: usize, n: usize, coupling: f64) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for blk in 0..count {
        let base = blk * n;
        for i in 0..n {
            for j in 0..n {
                let h = (i * 131 + j * 37 + blk * 17 + 3) % 1024;
                let v = h as f64 / 512.0 - 1.0 + if i == j { (n + 2) as f64 } else { 0.0 };
                out.push((base + i, base + j, v));
            }
            if blk + 1 < count {
                out.push((base + i, base + n + i, coupling));
                out.push((base + n + i, base + i, coupling));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xbadc0ffee)
    }

    fn is_dd(n: usize, m: &[f64]) -> bool {
        (0..n).all(|r| {
            let off: f64 = (0..n).filter(|&c| c != r).map(|c| m[c * n + r].abs()).sum();
            m[r * n + r].abs() > off
        })
    }

    #[test]
    fn dd_blocks_are_diagonally_dominant() {
        let mut rng = rng();
        for n in 1..12 {
            assert!(is_dd(n, &dd_dense(&mut rng, n)), "n={n}");
        }
    }

    #[test]
    fn hashed_blocks_are_deterministic() {
        assert_eq!(hashed_dense(7, 42), hashed_dense(7, 42));
        assert_ne!(hashed_dense(7, 42), hashed_dense(7, 43));
    }

    #[test]
    fn singular_blocks_have_a_zero_row() {
        let mut rng = rng();
        let n = 6;
        let m = singular_dense(&mut rng, n);
        assert!((0..n).all(|c| m[c * n + n - 1] == 0.0));
    }

    #[test]
    fn ill_conditioned_scales_last_column() {
        let mut rng = rng();
        let n = 5;
        let m = ill_conditioned_dense(&mut rng, n, 12);
        for r in 0..n {
            assert!(m[(n - 1) * n + r].abs() < 1e-10);
        }
    }

    #[test]
    fn system_triplets_are_row_dominant() {
        let n = 9;
        let extra = [(1, 5, 0.7), (8, 0, -0.9), (3, 3, 4.0)];
        for trips in [
            dd_system_triplets(n, &extra),
            spd_system_triplets(n, &extra),
            block_system_triplets(3, 3, &extra),
        ] {
            let mut diag = vec![0.0f64; n];
            let mut off = vec![0.0f64; n];
            for &(i, j, v) in &trips {
                if i == j {
                    diag[i] += v;
                } else {
                    off[i] += v.abs();
                }
            }
            for i in 0..n {
                assert!(diag[i] > off[i], "row {i}: {} vs {}", diag[i], off[i]);
            }
        }
    }

    #[test]
    fn banded_triplets_are_banded_and_dominance_controlled() {
        let (n, bw) = (23, 3);
        let trips = banded_system_triplets(n, bw, 2.0, 7);
        assert_eq!(trips, banded_system_triplets(n, bw, 2.0, 7));
        assert_ne!(trips, banded_system_triplets(n, bw, 2.0, 8));
        let mut max_off = 0usize;
        let mut offsum = vec![0.0f64; n];
        let mut diag = vec![0.0f64; n];
        for &(i, j, v) in &trips {
            if i == j {
                diag[i] = v;
            } else {
                assert!(v != 0.0);
                max_off = max_off.max(i.abs_diff(j));
                offsum[i] += v.abs();
            }
        }
        // dense band: every interior row reaches the full half-bandwidth
        assert_eq!(max_off, bw);
        for i in 0..n {
            assert_eq!(diag[i], 1.0);
            assert!((offsum[i] - 0.5).abs() < 1e-12, "row {i}: {}", offsum[i]);
        }
        // dominance < 1 breaks row dominance
        let weak = banded_system_triplets(n, bw, 0.5, 7);
        let mut offsum = vec![0.0f64; n];
        for &(i, j, v) in &weak {
            if i != j {
                offsum[i] += v.abs();
            }
        }
        assert!(offsum.iter().any(|&s| s > 1.0));
    }

    #[test]
    fn block_tridiag_triplets_match_the_published_hash() {
        let (count, n) = (3, 4);
        let trips = block_tridiag_triplets(count, n, -0.25);
        let total = count * n;
        let mut dense = vec![0.0f64; total * total];
        for &(i, j, v) in &trips {
            dense[i * total + j] += v;
        }
        // spot-check the hash formula and the coupling pattern
        let h = 2 * 131 + 37 + 17 + 3; // = 319, already under the 1024 modulus
        assert_eq!(dense[(n + 2) * total + (n + 1)], h as f64 / 512.0 - 1.0);
        assert_eq!(dense[total + n + 1], -0.25);
        assert_eq!(dense[(n + 1) * total + 1], -0.25);
        assert_eq!(dense[2 * n], 0.0); // beyond the coupling diagonal
                                       // diagonally dominant throughout
        for i in 0..total {
            let off: f64 = (0..total)
                .filter(|&j| j != i)
                .map(|j| dense[i * total + j].abs())
                .sum();
            assert!(dense[i * total + i] > off, "row {i}");
        }
    }

    #[test]
    fn ragged_batches_respect_bounds() {
        let mut rng = rng();
        for _ in 0..50 {
            let b = dd_batch(&mut rng, 9, 14);
            assert!(!b.is_empty() && b.len() <= 14);
            for (i, &n) in b.sizes.iter().enumerate() {
                assert!((1..=9).contains(&n));
                assert_eq!(b.blocks[i].len(), n * n);
            }
        }
    }
}
