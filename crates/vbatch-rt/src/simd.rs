//! Portable explicit-wide-lane chunks for the SIMD backend.
//!
//! A [`Chunk<T, W>`] is a fixed-width array of `W` lanes of `T` whose
//! element-wise operations are written as plain per-lane loops the
//! compiler auto-vectorizes (with `-C target-cpu=native` every op below
//! compiles to a single vector instruction on AVX2/AVX-512 hosts).
//! There is no `std::simd`/intrinsics dependency, so the same code
//! builds — and stays correct, just scalar — on any target.
//!
//! Design rules that the batched-LU kernels rely on:
//!
//! * every lane op performs exactly the scalar IEEE operation per lane
//!   (`div` is a true division, `mul_add` a single-rounding fused
//!   multiply-add, [`Chunk::select`] a compare-and-blend that returns
//!   one of the two inputs **bitwise**, never an arithmetic mix) — this
//!   is what makes the SIMD kernels bitwise-identical to the scalar
//!   interleaved kernels for every slot;
//! * masks are carried as lanes of `T` (`0.0` / `1.0` flag lanes built
//!   by the kernels, or [`Mask`] bool arrays from comparisons) so the
//!   hot selects vectorize instead of round-tripping through integer
//!   lanes.
//!
//! [`lane_width`] picks the run-time width from the host vector ISA
//! (AVX-512F → 64-byte vectors, AVX2 → 32, anything else → 16), clamped
//! to the supported widths {2, 4, 8}; the `VBATCH_SIMD_WIDTH`
//! environment variable overrides it (values 1, 2, 4, 8 — width 1
//! forces the scalar remainder path everywhere, which CI uses to keep
//! the fallback green on any host).
#![deny(clippy::disallowed_methods, clippy::disallowed_macros)]

use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::OnceLock;

/// Largest lane width any kernel instantiates (AVX-512 × f64).
pub const MAX_LANE_WIDTH: usize = 8;

/// Element types that can ride in a [`Chunk`] lane.
///
/// Deliberately minimal and with `lane_`-prefixed names so it can be a
/// supertrait of richer numeric traits (e.g. `vbatch_core::Scalar`)
/// without creating method-resolution ambiguity in existing generic
/// code.
pub trait SimdElem:
    Copy
    + Send
    + Sync
    + Default
    + PartialOrd
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    const LANE_ZERO: Self;
    /// Multiplicative identity.
    const LANE_ONE: Self;
    /// Size of one lane in bytes (4 for `f32`, 8 for `f64`).
    const LANE_BYTES: usize;
    /// Fused multiply-add with a single rounding: `self * a + b`.
    fn lane_mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn lane_abs(self) -> Self;
    /// Neither NaN nor infinite.
    fn lane_is_finite(self) -> bool;
}

impl SimdElem for f32 {
    const LANE_ZERO: Self = 0.0;
    const LANE_ONE: Self = 1.0;
    const LANE_BYTES: usize = 4;
    #[inline(always)]
    fn lane_mul_add(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline(always)]
    fn lane_abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn lane_is_finite(self) -> bool {
        self.is_finite()
    }
}

impl SimdElem for f64 {
    const LANE_ZERO: Self = 0.0;
    const LANE_ONE: Self = 1.0;
    const LANE_BYTES: usize = 8;
    #[inline(always)]
    fn lane_mul_add(self, a: Self, b: Self) -> Self {
        self.mul_add(a, b)
    }
    #[inline(always)]
    fn lane_abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn lane_is_finite(self) -> bool {
        self.is_finite()
    }
}

/// A `W`-wide vector of lanes, `f64xN`/`f32xN` style.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct Chunk<T, const W: usize>(pub [T; W]);

/// Per-lane boolean mask produced by [`Chunk`] comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct Mask<const W: usize>(pub [bool; W]);

impl<const W: usize> Mask<W> {
    /// Lane-wise OR.
    #[inline(always)]
    pub fn or(self, rhs: Self) -> Self {
        let mut m = [false; W];
        for w in 0..W {
            m[w] = self.0[w] || rhs.0[w];
        }
        Mask(m)
    }

    /// Lane-wise AND.
    #[inline(always)]
    pub fn and(self, rhs: Self) -> Self {
        let mut m = [false; W];
        for w in 0..W {
            m[w] = self.0[w] && rhs.0[w];
        }
        Mask(m)
    }

    /// `true` if any lane is set (horizontal OR).
    #[inline(always)]
    pub fn any(self) -> bool {
        let mut any = false;
        for w in 0..W {
            any |= self.0[w];
        }
        any
    }
}

// The arithmetic methods deliberately mirror the scalar lane-op names
// (add/sub/mul/div/neg) as plain inherent methods: the kernels read as
// straight-line lane algebra, and the operator traits would force
// by-ref/by-value choices on every call site for no gain.
#[allow(clippy::should_implement_trait)]
impl<T: SimdElem, const W: usize> Chunk<T, W> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Chunk([v; W])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(T::LANE_ZERO)
    }

    /// Load the first `W` elements of `src` (contiguous lanes).
    #[inline(always)]
    pub fn load(src: &[T]) -> Self {
        let mut v = [T::LANE_ZERO; W];
        v.copy_from_slice(&src[..W]);
        Chunk(v)
    }

    /// Store all lanes into the first `W` elements of `dst`.
    #[inline(always)]
    pub fn store(self, dst: &mut [T]) {
        dst[..W].copy_from_slice(&self.0);
    }

    /// Lane-wise addition.
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w] + rhs.0[w];
        }
        Chunk(v)
    }

    /// Lane-wise subtraction.
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w] - rhs.0[w];
        }
        Chunk(v)
    }

    /// Lane-wise multiplication.
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w] * rhs.0[w];
        }
        Chunk(v)
    }

    /// Lane-wise true IEEE division `self / rhs`.
    #[inline(always)]
    pub fn div(self, rhs: Self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w] / rhs.0[w];
        }
        Chunk(v)
    }

    /// Lane-wise negation.
    #[inline(always)]
    pub fn neg(self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = -v[w];
        }
        Chunk(v)
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w].lane_abs();
        }
        Chunk(v)
    }

    /// Lane-wise fused multiply-add with one rounding: `self * a + b`.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        let mut v = self.0;
        for w in 0..W {
            v[w] = v[w].lane_mul_add(a.0[w], b.0[w]);
        }
        Chunk(v)
    }

    /// Mask of lanes exactly equal to zero (`-0.0` compares equal).
    #[inline(always)]
    pub fn eq_zero(self) -> Mask<W> {
        let mut m = [false; W];
        for w in 0..W {
            m[w] = self.0[w] == T::LANE_ZERO;
        }
        Mask(m)
    }

    /// Mask of lanes not equal to zero. Used on the `0.0`/`1.0` flag
    /// lanes the kernels maintain, where it is exact.
    #[inline(always)]
    pub fn ne_zero(self) -> Mask<W> {
        let mut m = [false; W];
        for w in 0..W {
            m[w] = self.0[w] != T::LANE_ZERO;
        }
        Mask(m)
    }

    /// Mask of lanes where `self > rhs` (strict, IEEE: false on NaN).
    #[inline(always)]
    pub fn gt(self, rhs: Self) -> Mask<W> {
        let mut m = [false; W];
        for w in 0..W {
            m[w] = self.0[w] > rhs.0[w];
        }
        Mask(m)
    }

    /// Exact per-lane select: `mask ? if_true : if_false`.
    ///
    /// Returns one of the two input lanes bit-for-bit (a blend, never
    /// an arithmetic combination) — required for the bitwise contract.
    #[inline(always)]
    pub fn select(mask: Mask<W>, if_true: Self, if_false: Self) -> Self {
        let mut v = if_false.0;
        for w in 0..W {
            if mask.0[w] {
                v[w] = if_true.0[w];
            }
        }
        Chunk(v)
    }
}

impl<T, const W: usize> From<[T; W]> for Chunk<T, W> {
    #[inline(always)]
    fn from(v: [T; W]) -> Self {
        Chunk(v)
    }
}

/// Vector register width of the host in bytes, detected once.
fn vector_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                64
            } else if std::arch::is_x86_feature_detected!("avx2") {
                32
            } else {
                16
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            16
        }
    })
}

/// Validate a raw `VBATCH_SIMD_WIDTH` value: `None` (unset) and the
/// supported widths 1, 2, 4, 8 pass; anything else is an error naming
/// the offending value and the accepted set. Pure so it is unit-testable
/// independently of the process-wide environment.
pub fn parse_simd_width(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(w) if matches!(w, 1 | 2 | 4 | 8) => Ok(Some(w)),
        _ => Err(format!(
            "invalid VBATCH_SIMD_WIDTH={raw:?}: expected one of 1, 2, 4, 8 (or unset \
             to auto-detect from the host vector ISA)"
        )),
    }
}

/// `VBATCH_SIMD_WIDTH` override, parsed and validated once. An invalid
/// value aborts with a clear error instead of silently falling back to
/// auto-detection — a typo like `VBATCH_SIMD_WIDTH=3` must not quietly
/// run a different kernel configuration than the one asked for.
fn width_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let var = std::env::var("VBATCH_SIMD_WIDTH").ok();
        match parse_simd_width(var.as_deref()) {
            Ok(w) => w,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// Run-time lane width for elements of `elem_bytes` bytes.
///
/// Without an override this is the host vector width divided by the
/// element size, clamped to `[2, MAX_LANE_WIDTH]` — so f64 gets 8 on
/// AVX-512, 4 on AVX2, 2 elsewhere, and f32 gets 8 on both AVX
/// generations. With `VBATCH_SIMD_WIDTH={1,2,4,8}` set, that value is
/// used for both precisions (1 forces the scalar remainder path).
pub fn lane_width(elem_bytes: usize) -> usize {
    if let Some(w) = width_override() {
        return w;
    }
    (vector_bytes() / elem_bytes.max(1)).clamp(2, MAX_LANE_WIDTH)
}

/// Convenience: the selected lane width for a `SimdElem` type.
pub fn lane_width_of<T: SimdElem>() -> usize {
    lane_width(T::LANE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_width_values_are_validated() {
        assert_eq!(parse_simd_width(None), Ok(None));
        for (raw, want) in [("1", 1usize), ("2", 2), ("4", 4), ("8", 8), (" 4 ", 4)] {
            assert_eq!(parse_simd_width(Some(raw)), Ok(Some(want)));
        }
        for bad in ["0", "3", "16", "-2", "four", "", "8x"] {
            let err = parse_simd_width(Some(bad)).expect_err(bad);
            assert!(err.contains("VBATCH_SIMD_WIDTH"), "{err}");
            assert!(err.contains("1, 2, 4, 8"), "{err}");
            assert!(err.contains(bad), "{err} must name the offending value");
        }
    }

    #[test]
    fn lane_width_is_supported_and_consistent() {
        for bytes in [4usize, 8] {
            let w = lane_width(bytes);
            assert!(
                matches!(w, 1 | 2 | 4 | 8),
                "width {w} for {bytes}-byte lanes"
            );
        }
        // deterministic across calls (OnceLock-cached)
        assert_eq!(lane_width(8), lane_width(8));
        // without an override f32 lanes are at least as wide as f64's
        if width_override().is_none() {
            assert!(lane_width(4) >= lane_width(8));
        }
    }

    #[test]
    fn select_is_bitwise_exact() {
        // select must return the *input bits*, not an arithmetic blend:
        // -0.0 and 0.0 are distinguishable only bitwise
        let a = Chunk::<f64, 4>::from([-0.0, 1.0, f64::NAN, 3.0]);
        let b = Chunk::<f64, 4>::from([7.0, -0.0, 2.0, f64::INFINITY]);
        let m = Mask([true, false, true, false]);
        let r = Chunk::select(m, a, b);
        assert_eq!(r.0[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.0[1].to_bits(), (-0.0f64).to_bits());
        assert!(r.0[2].is_nan());
        assert_eq!(r.0[3], f64::INFINITY);
    }

    #[test]
    fn mul_add_is_fused_single_rounding() {
        // a*b+c where a*b rounds differently unfused: classic FMA probe
        let a = 1.0 + f64::EPSILON;
        let fused = Chunk::<f64, 2>::splat(a).mul_add(Chunk::splat(a), Chunk::splat(-1.0));
        let scalar = a.mul_add(a, -1.0);
        for w in 0..2 {
            assert_eq!(fused.0[w].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn gt_sub_and_any_match_scalar_semantics() {
        let x = Chunk::<f64, 4>::from([1.0, -2.0, f64::NAN, 0.0]);
        let y = Chunk::<f64, 4>::from([0.5, -2.0, 1.0, -0.0]);
        // strict >; NaN compares false; 0.0 > -0.0 is false
        assert_eq!(x.gt(y), Mask([true, false, false, false]));
        let d = x.sub(y);
        assert_eq!(d.0[0].to_bits(), 0.5f64.to_bits());
        assert!(d.0[2].is_nan());
        // (v - v).ne_zero() is the vector non-finite probe
        assert_eq!(x.sub(x).ne_zero(), Mask([false, false, true, false]));
        assert!(Mask([false, true, false, false]).any());
        assert!(!Mask::<4>([false; 4]).any());
    }

    #[test]
    fn ops_match_scalar_semantics_per_lane() {
        let x = Chunk::<f32, 8>::from([1.5, -2.0, 0.0, -0.0, 3.25, -4.5, 8.0, 0.125]);
        let y = Chunk::<f32, 8>::splat(2.0);
        let d = x.div(y);
        let n = x.neg();
        let ab = x.abs();
        for w in 0..8 {
            assert_eq!(d.0[w].to_bits(), (x.0[w] / 2.0).to_bits());
            assert_eq!(n.0[w].to_bits(), (-x.0[w]).to_bits());
            assert_eq!(ab.0[w].to_bits(), x.0[w].abs().to_bits());
        }
        assert_eq!(
            x.eq_zero(),
            Mask([false, false, true, true, false, false, false, false])
        );
    }
}
