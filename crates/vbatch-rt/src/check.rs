//! A seeded random-case property-test harness.
//!
//! `run_cases("label", 64, |rng, case| { ... })` runs the body with 64
//! deterministic RNG streams derived from the label, so failures are
//! reproducible by name without a shrinking engine or an external
//! dependency. The body signals failure by panicking (plain asserts);
//! the harness reports which case index failed before re-raising.

use crate::rng::SmallRng;

/// FNV-1a over the label: stable across runs and platforms.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `count` deterministic random cases of a property.
///
/// Each case gets its own [`SmallRng`] seeded from the label hash and
/// the case index, so adding cases never perturbs earlier ones.
pub fn run_cases<F>(label: &str, count: usize, mut body: F)
where
    F: FnMut(&mut SmallRng, usize),
{
    let base = label_hash(label);
    for case in 0..count {
        let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng, case)));
        if let Err(payload) = result {
            eprintln!("property '{label}' failed at case {case}/{count} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_with_distinct_streams() {
        let mut firsts = Vec::new();
        run_cases("distinct-streams", 8, |rng, case| {
            assert!(case < 8);
            firsts.push(rng.next_u64());
        });
        assert_eq!(firsts.len(), 8);
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), firsts.len());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn propagates_case_failure() {
        run_cases("failing-property", 4, |_, case| {
            if case == 2 {
                panic!("deliberate");
            }
        });
    }
}
