//! A counting global allocator for *proving* zero-allocation claims in
//! tests.
//!
//! The workspace pipeline promises that after warm-up a preconditioned
//! Krylov iteration performs no heap allocations. Inspection cannot
//! prove that — an innocent `entry().or_default()` or buffer
//! move-assign hides an alloc/free pair — so the zero-alloc tests
//! install [`CountingAlloc`] as their `#[global_allocator]` and assert
//! the counter delta across the measured region is exactly zero:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.snapshot();
//! hot_loop();
//! assert_eq!(ALLOC.snapshot().allocs_since(&before), 0);
//! ```
//!
//! The counters are relaxed atomics over [`std::alloc::System`]; the
//! overhead is a handful of nanoseconds per allocation, fine for a
//! test binary and deliberately not installed anywhere else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation.
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocations (including reallocs that moved).
    pub allocs: u64,
    /// Total deallocations.
    pub deallocs: u64,
    /// Total bytes ever requested.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Allocations performed since the earlier snapshot `start`.
    pub fn allocs_since(&self, start: &AllocSnapshot) -> u64 {
        self.allocs - start.allocs
    }

    /// Bytes requested since the earlier snapshot `start`.
    pub fn bytes_since(&self, start: &AllocSnapshot) -> u64 {
        self.bytes - start.bytes
    }
}

impl CountingAlloc {
    /// A fresh counting allocator (all counters zero).
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Read the current counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    fn count_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: defers every operation to `System`; the counters are plain
// relaxed atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // a grow-in-place still touches the heap; count it as one
        // allocation so "zero allocations" really means untouched
        self.count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] here (the test binary would
    // count every harness allocation); exercise the counters directly.
    #[test]
    fn counters_track_manual_calls() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = a.snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let after = a.snapshot();
        assert_eq!(after.allocs_since(&before), 1);
        assert_eq!(after.bytes_since(&before), 64);
        assert_eq!(after.deallocs - before.deallocs, 1);
    }

    #[test]
    fn snapshot_delta_is_zero_without_activity() {
        let a = CountingAlloc::new();
        let s1 = a.snapshot();
        let s2 = a.snapshot();
        assert_eq!(s2.allocs_since(&s1), 0);
        assert_eq!(s2.bytes_since(&s1), 0);
    }
}
