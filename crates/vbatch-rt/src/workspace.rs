//! Reusable scratch workspaces for steady-state zero-allocation hot
//! loops.
//!
//! The paper's apply phase (batched TRSVs on every Krylov iteration)
//! keeps the right-hand side in registers and folds the pivot
//! permutation into its load — nothing is materialized per iteration.
//! The CPU analogue is a [`Workspace`]: a grow-once buffer that hands
//! out `&mut [T]` scratch slices. It allocates only while growing
//! (warm-up); once every request size has been seen, checkouts are
//! plain slice borrows and the steady state performs zero heap
//! allocations. A high-water mark records the largest footprint ever
//! requested so executors can report workspace pressure in their stats.

/// A grow-once scratch buffer handing out zeroed `&mut [T]` slices.
///
/// `scratch(len)` returns a zero-filled slice of exactly `len`
/// elements, reusing (and growing, if needed) one backing allocation.
/// The split variants ([`Workspace::scratch2`], [`Workspace::scratch3`])
/// carve several disjoint slices out of a single checkout for kernels
/// that need more than one temporary at once.
#[derive(Debug, Default)]
pub struct Workspace<T> {
    buf: Vec<T>,
    high_water: usize,
}

impl<T: Copy + Default> Workspace<T> {
    /// Empty workspace; the first checkout allocates.
    pub fn new() -> Self {
        Workspace {
            buf: Vec::new(),
            high_water: 0,
        }
    }

    /// Workspace pre-grown to `cap` elements so checkouts up to that
    /// size never allocate.
    pub fn with_capacity(cap: usize) -> Self {
        Workspace {
            buf: vec![T::default(); cap],
            high_water: 0,
        }
    }

    /// Ensure the backing buffer holds at least `len` elements.
    fn reserve_len(&mut self, len: usize) {
        if self.buf.len() < len {
            self.buf.resize(len, T::default());
        }
        if len > self.high_water {
            self.high_water = len;
        }
    }

    /// Check out a zero-filled scratch slice of `len` elements.
    pub fn scratch(&mut self, len: usize) -> &mut [T] {
        self.reserve_len(len);
        let s = &mut self.buf[..len];
        s.fill(T::default());
        s
    }

    /// Check out two disjoint zero-filled slices of `a` and `b`
    /// elements from one backing buffer.
    pub fn scratch2(&mut self, a: usize, b: usize) -> (&mut [T], &mut [T]) {
        self.reserve_len(a + b);
        let s = &mut self.buf[..a + b];
        s.fill(T::default());
        s.split_at_mut(a)
    }

    /// Check out three disjoint zero-filled slices.
    pub fn scratch3(&mut self, a: usize, b: usize, c: usize) -> (&mut [T], &mut [T], &mut [T]) {
        self.reserve_len(a + b + c);
        let s = &mut self.buf[..a + b + c];
        s.fill(T::default());
        let (sa, rest) = s.split_at_mut(a);
        let (sb, sc) = rest.split_at_mut(b);
        (sa, sb, sc)
    }

    /// Largest number of elements ever checked out at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current backing capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

/// A free-list pool of equal-length vectors for solver iteration
/// buffers: `take` pops a recycled vector (or allocates one during
/// warm-up), `recycle` returns it for reuse. Unlike [`Workspace`] the
/// checked-out buffers are owned, so a solver can hold many at once
/// (Krylov basis vectors) without lifetime gymnastics, yet repeated
/// solves through the same arena stop allocating after the first.
#[derive(Debug)]
pub struct ScratchArena<T> {
    len: usize,
    free: Vec<Vec<T>>,
    outstanding: usize,
    high_water: usize,
}

impl<T: Copy + Default> ScratchArena<T> {
    /// Arena handing out vectors of exactly `len` elements.
    pub fn new(len: usize) -> Self {
        ScratchArena {
            len,
            free: Vec::new(),
            outstanding: 0,
            high_water: 0,
        }
    }

    /// Arena pre-seeded with `count` buffers so the first `count`
    /// checkouts never allocate.
    pub fn with_buffers(len: usize, count: usize) -> Self {
        let mut a = ScratchArena::new(len);
        a.free.reserve(count);
        for _ in 0..count {
            a.free.push(vec![T::default(); len]);
        }
        a
    }

    /// Element length of every buffer this arena hands out.
    pub fn buffer_len(&self) -> usize {
        self.len
    }

    /// Check out a zero-filled buffer of `buffer_len()` elements.
    pub fn take(&mut self) -> Vec<T> {
        self.outstanding += 1;
        if self.outstanding > self.high_water {
            self.high_water = self.outstanding;
        }
        match self.free.pop() {
            Some(mut v) => {
                v.fill(T::default());
                v
            }
            None => vec![T::default(); self.len],
        }
    }

    /// Return a buffer for reuse. Buffers of the wrong length are
    /// dropped (they would poison later checkouts).
    pub fn recycle(&mut self, v: Vec<T>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if v.len() == self.len {
            self.free.push(v);
        }
    }

    /// Most buffers ever checked out simultaneously.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_grow_once() {
        let mut w: Workspace<f64> = Workspace::new();
        {
            let s = w.scratch(4);
            s.fill(7.0);
        }
        let s = w.scratch(4);
        assert!(s.iter().all(|&x| x == 0.0), "scratch must be re-zeroed");
        assert_eq!(w.high_water(), 4);
        let _ = w.scratch(16);
        assert_eq!(w.high_water(), 16);
        assert!(w.capacity() >= 16);
    }

    #[test]
    fn split_scratch_is_disjoint() {
        let mut w: Workspace<f64> = Workspace::new();
        let (a, b, c) = w.scratch3(2, 3, 4);
        a.fill(1.0);
        b.fill(2.0);
        c.fill(3.0);
        assert_eq!(a, [1.0; 2]);
        assert_eq!(b, [2.0; 3]);
        assert_eq!(c, [3.0; 4]);
        assert_eq!(w.high_water(), 9);
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut a: ScratchArena<f64> = ScratchArena::new(8);
        let mut v = a.take();
        v.fill(5.0);
        let p = v.as_ptr();
        a.recycle(v);
        let v2 = a.take();
        assert_eq!(v2.as_ptr(), p, "recycled buffer must be reused");
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(a.high_water(), 1);
    }

    #[test]
    fn arena_preseeded_checkouts() {
        let mut a: ScratchArena<f64> = ScratchArena::with_buffers(4, 3);
        let x = a.take();
        let y = a.take();
        let z = a.take();
        assert_eq!(a.high_water(), 3);
        a.recycle(x);
        a.recycle(y);
        a.recycle(z);
        assert_eq!(a.high_water(), 3);
    }

    #[test]
    fn wrong_length_buffers_are_dropped() {
        let mut a: ScratchArena<f64> = ScratchArena::new(4);
        a.recycle(vec![0.0; 9]);
        let v = a.take();
        assert_eq!(v.len(), 4);
    }
}
