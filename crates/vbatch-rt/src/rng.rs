//! Deterministic splitmix64 PRNG with a `rand`-style surface.
//!
//! The workspace only needs reproducible pseudo-randomness for problem
//! generators, IDR's shadow space, and the property-test harness, so a
//! single-u64-state splitmix64 is plenty: it passes BigCrush for these
//! purposes, seeds from a single integer, and costs nothing to build.

use std::ops::Range;

/// A small deterministic PRNG (splitmix64).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: u64,
}

impl SmallRng {
    /// Construct from a 64-bit seed (the `rand::SeedableRng` spelling).
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { s: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample from a range; mirrors `rand`'s `Rng::gen_range`
    /// so existing call sites (`rng.gen_range(-1.0..1.0)`,
    /// `rng.gen_range(0..len)`) compile unchanged.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Range types [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        let span = self.end.checked_sub(self.start).filter(|&w| w > 0);
        let span = span.expect("empty usize sample range");
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
        // far below what the generators or tests can observe.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
        self.start + hi
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SmallRng) -> u64 {
        let span = self.end.checked_sub(self.start).filter(|&w| w > 0);
        let span = span.expect("empty u64 sample range");
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
